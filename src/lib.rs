//! # nested-deps
//!
//! A library for reasoning about schema mappings specified by **nested
//! tgds**, reproducing
//!
//! > Kolaitis, Pichler, Sallinger, Savenkov.
//! > *Nested Dependencies: Structure and Reasoning.* PODS 2014.
//!
//! It provides, from the ground up:
//!
//! - the dependency classes of the paper — s-t tgds (GLAV), nested tgds,
//!   (plain) SO tgds, source egds — with a text parser ([`core`]);
//! - chase engines with chase-forest provenance ([`chase`]);
//! - homomorphisms, cores, Gaifman graphs, f-blocks ([`hom`]);
//! - the paper's decision procedures: the **IMPLIES** implication test for
//!   nested tgds (Thm. 3.1), logical equivalence (Cor. 3.11), deciding
//!   **GLAV-equivalence** with verified witnesses (Thm. 4.2), the f-degree
//!   and path-length separation tools (Thms. 4.12/4.16), all also in the
//!   presence of source egds (Thms. 5.5–5.7) ([`reasoning`]);
//! - workload generators ([`gen`]) and the Theorem 5.1 Turing-machine
//!   reduction ([`turing`]);
//! - a static analyzer for dependency programs with spanned diagnostics
//!   and stable `NDL0xx` lint codes ([`analyze`]).
//!
//! ## Quickstart
//!
//! ```
//! use nested_deps::prelude::*;
//!
//! let mut syms = SymbolTable::new();
//! // The nested tgd from the paper's introduction.
//! let m = NestedMapping::parse(
//!     &mut syms,
//!     &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
//!     &[],
//! )
//! .unwrap();
//!
//! // Chase a source instance and take the core of the universal solution.
//! let s = syms.rel("S");
//! let a = Value::Const(syms.constant("a"));
//! let b = Value::Const(syms.constant("b"));
//! let source = Instance::from_facts([Fact::new(s, vec![a, b]), Fact::new(s, vec![a, a])]);
//! let (result, _nulls) = chase_mapping(&source, &m, &mut syms);
//! let core = core_of(&result.target);
//! assert!(satisfies_mapping(&source, &core, &m));
//!
//! // The paper's headline: this mapping is NOT equivalent to any GLAV
//! // mapping — decided, not just asserted.
//! let decision = glav_equivalent(&m, &mut syms, &FblockOptions::default()).unwrap();
//! assert!(!decision.analysis.bounded);
//! ```

pub use ndl_analyze as analyze;
pub use ndl_chase as chase;
pub use ndl_core as core;
pub use ndl_gen as gen;
pub use ndl_hom as hom;
pub use ndl_obs as obs;
pub use ndl_reasoning as reasoning;
pub use ndl_turing as turing;

/// One-stop re-exports for applications.
pub mod prelude {
    pub use ndl_analyze::{
        lint_source, AnalysisReport, ChaseAnalysis, DataflowAnalysis, DataflowSummary, Diagnostic,
        LintOptions, Severity, Termination, TerminationClass,
    };
    pub use ndl_chase::{
        all_matches, chase_egds, chase_fixpoint, chase_fixpoint_delta,
        chase_fixpoint_delta_parallel, chase_fixpoint_delta_parallel_with,
        chase_fixpoint_delta_with, chase_fixpoint_parallel, chase_fixpoint_parallel_with,
        chase_fixpoint_with, chase_mapping, chase_nested, chase_nested_planned, chase_so, chase_st,
        dataflow_facts, derive_schedule, satisfies_egds, statement_footprints,
        verify_dataflow_cert, verify_schedule, Binding, ChaseConfig, ChaseForest, ChasePlan,
        ChaseResult, DataflowCert, EgdChase, EgdConflict, FixpointChase, FixpointError,
        FixpointProgress, NullFactory, ParallelSchedule, Prepared, RigidPolicy, StmtFootprint,
        Triggering,
    };
    pub use ndl_core::prelude::*;
    pub use ndl_gen::{
        clio_scenario, cycle, grid, random_instance, random_nested_tgd, random_program,
        random_program_with_dead_code, successor, successor_with_zero, ClioScenario,
        InstanceGenOptions, ProgramGenOptions, TgdGenOptions,
    };
    pub use ndl_hom::{
        core_of, core_of_assuming_ground, f_block_size, f_blocks, f_degree, find_homomorphism,
        hom_equivalent, homomorphic, is_core, null_blocks, null_blocks_with_ground,
        null_path_length, verify_core, FactGraph, HomMap, NullGraph,
    };
    pub use ndl_obs::{ChaseObserver, ChaseStats, HomObserver, HomStats, JsonlTracer, Stats};
    pub use ndl_reasoning::{
        canonical_instances, clone_bound, equivalent, glav_equivalent, has_bounded_fblock_size,
        implies_mapping, implies_tgd, k_patterns, legalize, redundant_tgds, satisfies_mapping,
        satisfies_nested, satisfies_plain_so, satisfies_so, sweep_nested, sweep_so, CanonicalPair,
        FblockAnalysis, FblockOptions, GlavDecision, ImpliesOptions, ImpliesReport,
        NotNestedReason, Pattern, ReasoningError, SeparationReport,
    };
    pub use ndl_turing::{
        build_reduction, busy_halter, forever_bounce, forever_right, Machine, Reduction,
        ReductionOutcome,
    };
}
