//! `ndl` — a command-line front end to the nested-dependency reasoner.
//!
//! ```text
//! ndl parse    (--nested|--st|--so|--egd) "<dependency>"
//! ndl lint     <file> [--json] [--stats] [--max-depth N] [--max-skolem-arity N] [--max-findings N]
//! ndl analyze  <file> [--json|--dot[=positions|conflicts|dataflow]|--schedule [--json]|--dataflow [--json]] [--stats]
//! ndl skolemize "<nested tgd>"
//! ndl chase    <file> [--delta|--no-delta] [--parallel] [--no-cert] [--stats] [--no-timings] [--trace <out.jsonl>] [--budget N]
//! ndl chase    --tgd "<nested tgd>"... --fact "R(a,b)"... [--egd "<egd>"...] [--core]
//! ndl implies  --premise "<tgd>"... [--egd "<egd>"...] --conclusion "<tgd>"
//! ndl equiv    --left "<tgd>"... --right "<tgd>"... [--egd "<egd>"...]
//! ndl classify --tgd "<tgd>"... [--egd "<egd>"...]
//! ndl compose  --first "<st tgd>"... --second "<st tgd>"...
//! ndl certain  --tgd "<tgd>"... --fact "R(a,b)"... --query "q(x) :- T(x,y)"
//! ```
//!
//! All dependencies use the library's text syntax (see the README).
//! `lint` exits with the number of error- and warning-severity diagnostics
//! (capped at `--max-findings`, default 100), so `ndl lint file && deploy`
//! gates on a clean program.
//! `analyze` prints the semantic report for a program — position/Skolem
//! graphs, chase-termination class and cost bounds — as a human summary,
//! machine-readable JSON (`--json`) or Graphviz DOT (`--dot`, or
//! `--dot=positions`; `--dot=conflicts` renders the statement conflict
//! graph, `--dot=dataflow` the relation-level dataflow graph).
//! `analyze --schedule` prints the parallel-schedule
//! report — conflict-free stages, width, conflict edges — as a summary or,
//! with `--json`, the machine-readable `ScheduleReport`; `analyze
//! --dataflow` prints the whole-mapping dataflow report — sources,
//! reachability, dead statements, ground relations, position provenance —
//! as a summary or, with `--json`, the machine-readable `DataflowSummary`.
//!
//! `chase <file>` runs the **planned fixpoint chase** of a program file end
//! to end: tgd statements become the chase program, `fact:` statements the
//! source instance, and the analyzer's plan supplies the firing order and
//! termination verdict. By default the **semi-naive delta engine** runs:
//! each round matches only triggers reaching the previous round's delta
//! frontier, with output bit-identical to the naive rescan engine
//! (`--no-delta`, or `NDL_CHASE_DELTA=0`, selects the naive engine).
//! `--parallel` runs the stage-parallel variant — with `--delta`, the
//! sharded delta engine (`NDL_CHASE_SHARDS`); with `--no-delta`, the
//! naive stage-parallel engine — firing the conflict-free statements of
//! each schedule stage across worker threads (`NDL_CHASE_THREADS`), still
//! with bit-identical output. `--budget N` bounds programs without a
//! termination
//! guarantee; `--stats` prints the engine's counters as JSON instead of the
//! instance (`--no-timings` zeroes wall-clock fields for diffable output);
//! `--trace f.jsonl` appends one JSON event per round/statement to `f`.
//! `lint`/`analyze` accept `--stats` for a one-line timing/size summary on
//! stderr. I/O and usage failures exit with code 101, distinct from lint
//! findings.

use nested_deps::analyze;
use nested_deps::obs;
use nested_deps::prelude::*;
use nested_deps::reasoning::{certain_answers, compose_glav, ConjunctiveQuery};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = run(&args);
    // Configuration problems (e.g. an unparsable NDL_HOM_THREADS override)
    // are collected process-wide and surfaced here, once, on stderr.
    for w in obs::take_warnings() {
        eprintln!("warning: {}", w.message);
    }
    match out {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            // I/O and internal failures use a code far above the lint
            // findings range (which is capped at 100), so scripts can tell
            // "program has findings" from "tool could not run".
            ExitCode::from(101)
        }
    }
}

const USAGE: &str = "usage:
  ndl parse (--nested|--st|--so|--egd) \"<dependency>\"
  ndl lint <file> [--json] [--stats] [--max-depth N] [--max-skolem-arity N] [--max-findings N]
  ndl analyze <file> [--json|--dot[=positions|conflicts|dataflow]|--schedule [--json]|--dataflow [--json]] [--stats]
  ndl skolemize \"<nested tgd>\"
  ndl chase <file> [--delta|--no-delta] [--parallel] [--no-cert] [--stats] [--no-timings] [--trace <out.jsonl>] [--budget N]
  ndl chase --tgd \"<tgd>\"... --fact \"R(a,b)\"... [--egd \"<egd>\"...] [--core]
  ndl implies --premise \"<tgd>\"... [--egd \"<egd>\"...] --conclusion \"<tgd>\"
  ndl equiv --left \"<tgd>\"... --right \"<tgd>\"... [--egd \"<egd>\"...]
  ndl classify --tgd \"<tgd>\"... [--egd \"<egd>\"...]
  ndl compose --first \"<st tgd>\"... --second \"<st tgd>\"...
  ndl certain --tgd \"<tgd>\"... --fact \"R(a,b)\"... --query \"q(x) :- T(x,y)\"";

type CliResult = std::result::Result<(), String>;

/// Collects the values following every occurrence of `flag`.
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.as_str());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Looks up a `--flag[=value]` option: `None` when absent, `Some("")` for
/// the bare flag, `Some(value)` for the `--flag=value` form.
fn flag_mode<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    for a in args {
        if a == flag {
            return Some("");
        }
        if let Some(v) = a.strip_prefix(flag) {
            if let Some(v) = v.strip_prefix('=') {
                return Some(v);
            }
        }
    }
    None
}

/// The first positional (non-flag) argument, skipping the value slot after
/// every flag in `value_flags`.
fn positional_arg<'a>(args: &'a [String], value_flags: &[&str]) -> Option<&'a str> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if value_flags.contains(&a.as_str()) {
            i += 2;
            continue;
        }
        if !a.starts_with("--") {
            return Some(a);
        }
        i += 1;
    }
    None
}

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn parse_mapping(
    syms: &mut SymbolTable,
    tgds: &[&str],
    egds: &[&str],
) -> std::result::Result<NestedMapping, String> {
    if tgds.is_empty() {
        return Err("at least one tgd is required".into());
    }
    NestedMapping::parse(syms, tgds, egds).map_err(err)
}

fn parse_facts(syms: &mut SymbolTable, facts: &[&str]) -> std::result::Result<Instance, String> {
    let mut inst = Instance::new();
    for f in facts {
        inst.insert(parse_fact(syms, f).map_err(err)?);
    }
    Ok(inst)
}

fn run(args: &[String]) -> std::result::Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    let mut syms = SymbolTable::new();
    let done = |r: CliResult| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "parse" => done(cmd_parse(&mut syms, rest)),
        "lint" => cmd_lint(&mut syms, rest),
        "analyze" => done(cmd_analyze(&mut syms, rest)),
        "skolemize" => done(cmd_skolemize(&mut syms, rest)),
        "chase" => done(cmd_chase(&mut syms, rest)),
        "implies" => done(cmd_implies(&mut syms, rest)),
        "equiv" => done(cmd_equiv(&mut syms, rest)),
        "classify" => done(cmd_classify(&mut syms, rest)),
        "compose" => done(cmd_compose(&mut syms, rest)),
        "certain" => done(cmd_certain(&mut syms, rest)),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// `ndl lint <file> [--json] [--max-depth N] [--max-skolem-arity N]
/// [--max-findings N]`
///
/// Exit code is the number of error/warning diagnostics, capped at
/// `--max-findings` (default 100, hard ceiling 100 so the code never
/// collides with 101, the tool-failure code) — zero exactly when the
/// program is clean (info findings don't fail).
fn cmd_lint(syms: &mut SymbolTable, args: &[String]) -> std::result::Result<ExitCode, String> {
    let path = args
        .iter()
        .find(|a| {
            !a.starts_with("--")
                && flag_values(args, "--max-depth").first() != Some(&a.as_str())
                && flag_values(args, "--max-skolem-arity").first() != Some(&a.as_str())
                && flag_values(args, "--max-findings").first() != Some(&a.as_str())
        })
        .ok_or("missing program file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut opts = LintOptions::default();
    for flag in ["--max-depth", "--max-skolem-arity", "--max-findings"] {
        if has_flag(args, flag) && flag_values(args, flag).is_empty() {
            return Err(format!("{flag} requires a value"));
        }
    }
    if let Some(v) = flag_values(args, "--max-depth").first() {
        opts.max_depth = v.parse().map_err(|_| format!("bad --max-depth {v:?}"))?;
    }
    if let Some(v) = flag_values(args, "--max-skolem-arity").first() {
        opts.max_skolem_arity = v
            .parse()
            .map_err(|_| format!("bad --max-skolem-arity {v:?}"))?;
    }
    let max_findings: usize = match flag_values(args, "--max-findings").first() {
        Some(v) => {
            let n: usize = v.parse().map_err(|_| format!("bad --max-findings {v:?}"))?;
            n.min(100)
        }
        None => 100,
    };
    let started = Instant::now();
    let diags = lint_source(syms, &src, &opts);
    if has_flag(args, "--stats") {
        eprintln!(
            "{{\"command\":\"lint\",\"bytes\":{},\"diagnostics\":{},\"elapsed_ns\":{}}}",
            src.len(),
            diags.len(),
            started.elapsed().as_nanos()
        );
    }
    if has_flag(args, "--json") {
        println!("{}", analyze::to_json(&diags));
    } else {
        print!("{}", analyze::render(&diags, path, &src));
        println!("{}", analyze::summary(&diags));
    }
    let failing = diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .count();
    Ok(ExitCode::from(failing.min(max_findings) as u8))
}

/// `ndl analyze <file> [--json|--dot[=positions|conflicts]|--schedule]`
///
/// Prints the semantic analysis of a dependency program: position and
/// Skolem dependency graphs, the chase-termination class with its witness
/// cycle, cost bounds and the derived firing order. `--json` emits the
/// machine-readable [`analyze::AnalysisReport`]; `--dot` (or
/// `--dot=positions`) emits the dependency graphs as Graphviz, while
/// `--dot=conflicts` emits the statement conflict graph. `--schedule`
/// prints the parallel-schedule report instead (with `--json`, as the
/// machine-readable `ScheduleReport`).
fn cmd_analyze(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing program file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let started = Instant::now();
    let (analysis, parse_errors) = analyze::ChaseAnalysis::analyze_source(syms, &src);
    if has_flag(args, "--stats") {
        eprintln!(
            "{{\"command\":\"analyze\",\"statements\":{},\"clauses\":{},\"positions\":{},\"elapsed_ns\":{}}}",
            analysis.graphs.statements,
            analysis.graphs.clauses.len(),
            analysis.graphs.positions.positions.len(),
            started.elapsed().as_nanos()
        );
    }
    if let Some(mode) = flag_mode(args, "--dot") {
        match mode {
            "" | "positions" => print!("{}", analysis.to_dot(syms)),
            "conflicts" => print!("{}", analysis.conflict_dot(syms)),
            "dataflow" => print!("{}", analysis.dataflow_dot(syms)),
            other => {
                return Err(format!(
                    "unknown --dot mode {other:?} (expected positions, conflicts or dataflow)"
                ))
            }
        }
        return Ok(());
    }
    if has_flag(args, "--schedule") {
        let report = analysis.schedule_report(syms);
        if has_flag(args, "--json") {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render());
        }
        return Ok(());
    }
    if has_flag(args, "--dataflow") {
        let report = analysis.dataflow_summary(syms);
        if has_flag(args, "--json") {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render());
        }
        return Ok(());
    }
    let report = analysis.report(syms);
    if has_flag(args, "--json") {
        println!("{}", report.to_json());
        return Ok(());
    }
    println!(
        "program: {} statements ({} analyzed, {} parse errors), {} clauses",
        report.statements, report.analyzed_statements, parse_errors, report.clauses
    );
    println!(
        "position graph: {} positions, {} regular edges, {} special ({} under rich acyclicity)",
        report.positions, report.regular_edges, report.special_edges_wa, report.special_edges_ra
    );
    println!("termination: {}", report.class);
    for line in &report.witness {
        println!("  cycle: {line}");
    }
    match report.max_rank {
        Some(r) => println!("max rank: {r}"),
        None => println!("max rank: unbounded"),
    }
    for d in &report.relation_depths {
        println!("  null depth of {}: {}", d.relation, d.depth);
    }
    match report.size_degree {
        Some(d) => println!(
            "chase size: O(n^{d}) (widest join: {} atoms)",
            report.max_body_atoms
        ),
        None => println!(
            "chase size: no polynomial bound (widest join: {} atoms)",
            report.max_body_atoms
        ),
    }
    println!(
        "skolem graph: {} functions, {} nesting edges",
        report.skolem_functions.len(),
        report.skolem_edges
    );
    for f in &report.skolem_functions {
        println!(
            "  {} (statement {}): fan-in {}, fan-out {}",
            f.function,
            f.statement + 1,
            f.fan_in,
            f.fan_out
        );
    }
    println!(
        "firing order: {}",
        report
            .firing_order
            .iter()
            .map(|s| (s + 1).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

fn cmd_parse(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let text = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing dependency text")?;
    if has_flag(args, "--so") {
        let t = parse_so_tgd(syms, text).map_err(err)?;
        let mut schema = Schema::new();
        t.validate(&mut schema).map_err(err)?;
        println!(
            "SO tgd ({}): {}",
            if t.is_plain() { "plain" } else { "full" },
            t.display(syms)
        );
    } else if has_flag(args, "--egd") {
        let e = parse_egd(syms, text).map_err(err)?;
        let mut schema = Schema::new();
        e.validate(&mut schema).map_err(err)?;
        println!("egd: {}", e.display(syms));
    } else if has_flag(args, "--st") {
        let t = parse_st_tgd(syms, text).map_err(err)?;
        let mut schema = Schema::new();
        t.validate(&mut schema).map_err(err)?;
        println!("s-t tgd: {}", t.display(syms));
    } else {
        let t = parse_nested_tgd(syms, text).map_err(err)?;
        let mut schema = Schema::new();
        t.validate(&mut schema).map_err(err)?;
        println!(
            "nested tgd ({} parts, depth {}): {}",
            t.num_parts(),
            t.depth(),
            t.display(syms)
        );
        println!("schema: {}", schema.display(syms));
    }
    Ok(())
}

fn cmd_skolemize(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let text = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing nested tgd")?;
    let t = parse_nested_tgd(syms, text).map_err(err)?;
    let mut schema = Schema::new();
    t.validate(&mut schema).map_err(err)?;
    let (so, _) = skolemize(&t, syms);
    println!("{}", so.display(syms));
    Ok(())
}

fn cmd_chase(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    // File mode: `ndl chase <file> ...` — no inline --tgd flags, a
    // positional program file instead.
    if flag_values(args, "--tgd").is_empty() {
        let path = positional_arg(args, &["--trace", "--budget"])
            .ok_or("chase needs a program file or --tgd/--fact flags")?;
        return cmd_chase_file(syms, path, args);
    }
    let m = parse_mapping(
        syms,
        &flag_values(args, "--tgd"),
        &flag_values(args, "--egd"),
    )?;
    let source = parse_facts(syms, &flag_values(args, "--fact"))?;
    if !satisfies_egds(&source, &m.source_egds) {
        return Err("source instance violates the source egds".into());
    }
    let (res, nulls) = chase_mapping(&source, &m, syms);
    let mut target = res.target;
    let mut label = "chase(I, M)";
    if has_flag(args, "--core") {
        target = core_of(&target);
        label = "core(chase(I, M))";
    }
    println!(
        "{label}: {} facts, {} nulls, f-block size {}",
        target.len(),
        target.nulls().len(),
        f_block_size(&target)
    );
    for fact in target.facts() {
        println!("  {}", nulls.display_fact_ref(fact, syms));
    }
    Ok(())
}

/// `ndl chase <file> [--delta|--no-delta] [--parallel] [--no-cert]
/// [--stats] [--no-timings] [--trace <out.jsonl>] [--budget N]` — the
/// planned fixpoint chase of a program file.
///
/// Tgd statements form the chase program (Skolemized once, by the
/// analyzer), `fact:` statements the source instance; egd statements are
/// validated against the source. The analyzer's plan drives firing order
/// and termination: non-terminating programs are refused unless `--budget`
/// bounds them, and a budgeted run that is cut off still reports its
/// partial progress.
///
/// Engine selection: the semi-naive delta engine by default
/// (`ChaseConfig::global().delta`, i.e. `NDL_CHASE_DELTA`), overridden per
/// run by `--delta`/`--no-delta`; `--parallel` picks the stage-parallel
/// variant of whichever engine is selected. All four produce bit-identical
/// output — only the statistics differ.
fn cmd_chase_file(syms: &mut SymbolTable, path: &str, args: &[String]) -> CliResult {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (stmts, parse_errs) = analyze::parse_program(syms, &src);
    if let Some((stmt, e)) = parse_errs.first() {
        return Err(format!("{path} statement {} does not parse: {e}", stmt + 1));
    }
    let analysis = analyze::ChaseAnalysis::analyze(syms, &stmts);
    let mut source = Instance::new();
    let mut egds = Vec::new();
    for s in &stmts {
        match &s.ast {
            Some(analyze::StmtAst::Fact(f)) => {
                source.insert(f.clone());
            }
            Some(analyze::StmtAst::Egd(e)) => egds.push(e.clone()),
            _ => {}
        }
    }
    if !satisfies_egds(&source, &egds) {
        return Err("the fact statements violate the program's egds".into());
    }
    let budget = match flag_values(args, "--budget").first() {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("bad --budget {v:?}"))?,
        ),
        None => {
            if has_flag(args, "--budget") {
                return Err("--budget requires a value".into());
            }
            None
        }
    };
    let tgds: Vec<SoTgd> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let mut plan = analysis.tgd_plan(budget);
    if has_flag(args, "--no-cert") {
        // Drop the dataflow certificate: every engine then re-matches the
        // dead statements each round. Output is bit-identical either way
        // (the parity check in ci.sh diffs the two), so the flag exists
        // for exactly that check and for timing the uncertified path.
        plan.cert = None;
    }

    let mut nulls = NullFactory::new();
    let mut stats = ChaseStats::new();
    let trace_path = flag_values(args, "--trace").first().copied();
    if has_flag(args, "--trace") && trace_path.is_none() {
        return Err("--trace requires a file path".into());
    }
    let mut tracer = match trace_path {
        Some(tp) => {
            let file = std::fs::File::create(tp).map_err(|e| format!("cannot write {tp}: {e}"))?;
            Some(JsonlTracer::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let parallel = has_flag(args, "--parallel");
    let delta = if has_flag(args, "--no-delta") {
        if has_flag(args, "--delta") {
            return Err("--delta and --no-delta are mutually exclusive".into());
        }
        false
    } else {
        has_flag(args, "--delta") || ChaseConfig::global().delta
    };
    macro_rules! run_engine {
        ($obs:expr) => {
            match (delta, parallel) {
                (true, true) => {
                    chase_fixpoint_delta_parallel_with(&source, &tgds, &plan, &mut nulls, $obs)
                }
                (true, false) => chase_fixpoint_delta_with(&source, &tgds, &plan, &mut nulls, $obs),
                (false, true) => {
                    chase_fixpoint_parallel_with(&source, &tgds, &plan, &mut nulls, $obs)
                }
                (false, false) => chase_fixpoint_with(&source, &tgds, &plan, &mut nulls, $obs),
            }
        };
    }
    let outcome = match &mut tracer {
        Some(t) => {
            let mut obs = (&mut stats, t);
            run_engine!(&mut obs)
        }
        None => run_engine!(&mut stats),
    };
    if let Some(t) = tracer {
        if t.io_errors() > 0 {
            eprintln!(
                "warning: {} trace events could not be written",
                t.io_errors()
            );
        }
        t.into_inner();
    }
    if has_flag(args, "--no-timings") {
        stats.redact_timings();
    }

    match outcome {
        Ok(res) => {
            if has_flag(args, "--stats") {
                println!("{}", stats.to_json());
                return Ok(());
            }
            println!(
                "fixpoint: {} facts ({} derived, {} nulls) in {} rounds",
                res.instance.len(),
                res.derived,
                nulls.len(),
                res.rounds
            );
            for fact in res.instance.facts() {
                println!("  {}", nulls.display_fact_ref(fact, syms));
            }
            Ok(())
        }
        // A budgeted cutoff is a legitimate bounded run, not a tool
        // failure: report the partial progress (or partial stats) and exit
        // clean, leaving code 101 for real errors.
        Err(FixpointError::BudgetExhausted {
            budget, progress, ..
        }) => {
            if has_flag(args, "--stats") {
                println!("{}", stats.to_json());
                return Ok(());
            }
            println!(
                "budget exhausted: {} facts derived in {} rounds (budget {})",
                progress.derived, progress.rounds, budget
            );
            Ok(())
        }
        Err(e @ FixpointError::NonTerminating { .. }) => {
            Err(format!("{e}; re-run with --budget N to chase it anyway"))
        }
        // The analyzer's schedule or dataflow certificate failed the
        // engine's re-verification — an internal inconsistency, reported
        // as a tool failure.
        Err(e @ FixpointError::InvalidSchedule { .. }) => Err(e.to_string()),
        Err(e @ FixpointError::InvalidCert { .. }) => Err(e.to_string()),
    }
}

fn cmd_implies(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let premise = parse_mapping(
        syms,
        &flag_values(args, "--premise"),
        &flag_values(args, "--egd"),
    )?;
    let conclusion_texts = flag_values(args, "--conclusion");
    if conclusion_texts.is_empty() {
        return Err("missing --conclusion".into());
    }
    for text in conclusion_texts {
        let conclusion = parse_nested_tgd(syms, text).map_err(err)?;
        let report =
            implies_tgd(&premise, &conclusion, syms, &ImpliesOptions::default()).map_err(err)?;
        println!(
            "Σ ⊨ σ: {}   (v = {}, w = {}, k = {}, {} patterns checked)",
            report.holds, report.v, report.w, report.k, report.patterns_checked
        );
        if let Some(ce) = report.counterexample {
            println!("  counterexample pattern: {}", ce.pattern.display());
            println!("  I_p = {}", ce.source.display(syms));
        }
    }
    Ok(())
}

fn cmd_equiv(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let egds = flag_values(args, "--egd");
    let left = parse_mapping(syms, &flag_values(args, "--left"), &egds)?;
    let right = parse_mapping(syms, &flag_values(args, "--right"), &egds)?;
    let eq = equivalent(&left, &right, syms, &ImpliesOptions::default()).map_err(err)?;
    println!("logically equivalent: {eq}");
    Ok(())
}

fn cmd_classify(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let m = parse_mapping(
        syms,
        &flag_values(args, "--tgd"),
        &flag_values(args, "--egd"),
    )?;
    let d = glav_equivalent(&m, syms, &FblockOptions::default()).map_err(err)?;
    println!(
        "f-block size bounded: {} (clone bound k = {})",
        d.analysis.bounded, d.analysis.clone_bound
    );
    match d.witness {
        Some(w) => {
            println!("GLAV-equivalent: yes; verified witness:");
            for t in &w.tgds {
                println!("  {}", t.display(syms));
            }
        }
        None => {
            println!("GLAV-equivalent: no");
            if let Some(e) = d.analysis.evidence {
                println!(
                    "  certificate: cloning node {} of pattern {} grows cores {:?}",
                    e.cloned_node,
                    e.base_pattern.display(),
                    e.ladder_sizes
                );
            }
        }
    }
    Ok(())
}

fn cmd_compose(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let first: Vec<StTgd> = flag_values(args, "--first")
        .iter()
        .map(|t| parse_st_tgd(syms, t))
        .collect::<std::result::Result<_, _>>()
        .map_err(err)?;
    let second: Vec<StTgd> = flag_values(args, "--second")
        .iter()
        .map(|t| parse_st_tgd(syms, t))
        .collect::<std::result::Result<_, _>>()
        .map_err(err)?;
    if first.is_empty() || second.is_empty() {
        return Err("--first and --second each need at least one s-t tgd".into());
    }
    let so = compose_glav(&first, &second, syms).map_err(err)?;
    println!(
        "composition ({} SO tgd, {} clauses):",
        if so.is_plain() { "plain" } else { "full" },
        so.clauses.len()
    );
    println!("  {}", so.display(syms));
    Ok(())
}

fn cmd_certain(syms: &mut SymbolTable, args: &[String]) -> CliResult {
    let m = parse_mapping(
        syms,
        &flag_values(args, "--tgd"),
        &flag_values(args, "--egd"),
    )?;
    let source = parse_facts(syms, &flag_values(args, "--fact"))?;
    let query_text = flag_values(args, "--query");
    let query_text = query_text.first().ok_or("missing --query")?;
    let q = ConjunctiveQuery::parse(syms, query_text).map_err(err)?;
    let answers = certain_answers(&q, &source, &m, syms);
    println!(
        "certain answers of {} ({}):",
        q.display(syms),
        answers.len()
    );
    for t in answers {
        println!(
            "  ({})",
            t.iter()
                .map(|v| v.display(syms).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(())
}
