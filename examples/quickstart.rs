//! Quickstart: parse a nested tgd, chase a source instance, inspect the
//! chase forest, compute the core of the universal solution, and run the
//! paper's decision procedures on the mapping.
//!
//! Run with `cargo run --example quickstart`.

use nested_deps::prelude::*;

fn main() {
    let mut syms = SymbolTable::new();

    // The nested tgd from the paper's introduction (Section 1):
    // ∀x1x2 (S(x1,x2) → ∃y (R(y,x2) ∧ ∀x3 (S(x1,x3) → R(y,x3)))).
    let mapping = NestedMapping::parse(
        &mut syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .expect("mapping parses");
    println!("Mapping:\n  {}", mapping.display(&syms));
    println!("  schema: {}", mapping.schema.display(&syms));
    println!("  syntactically GLAV? {}", mapping.is_glav());

    // A small source instance.
    let s = syms.rel("S");
    let a = Value::Const(syms.constant("a"));
    let b = Value::Const(syms.constant("b"));
    let c = Value::Const(syms.constant("c"));
    let source = Instance::from_facts([
        Fact::new(s, vec![a, b]),
        Fact::new(s, vec![a, c]),
        Fact::new(s, vec![b, c]),
    ]);
    println!("\nSource instance:\n  {}", source.display(&syms));

    // Chase: canonical universal solution + chase forest provenance.
    let (result, nulls) = chase_mapping(&source, &mapping, &mut syms);
    println!(
        "\nchase(I, M)  ({} facts, {} nulls, {} chase trees):",
        result.target.len(),
        result.target.nulls().len(),
        result.forest.roots.len()
    );
    println!("  {}", nulls.display_instance(&result.target, &syms));

    // The result is a solution, and a universal one.
    assert!(satisfies_mapping(&source, &result.target, &mapping));

    // Core of the universal solutions.
    let core = core_of(&result.target);
    println!(
        "\ncore(chase(I, M))  ({} facts, f-block size {}, f-degree {}):",
        core.len(),
        f_block_size(&core),
        f_degree(&core)
    );
    println!("  {}", nulls.display_instance(&core, &syms));
    assert!(verify_core(&core, &result.target));

    // Reasoning: is this mapping expressible as a plain GLAV mapping?
    let decision = glav_equivalent(&mapping, &mut syms, &FblockOptions::default())
        .expect("decision procedure runs");
    println!(
        "\nGLAV-equivalent? {}  (f-block size bounded: {}, clone bound k = {})",
        decision.witness.is_some(),
        decision.analysis.bounded,
        decision.analysis.clone_bound
    );
    if let Some(e) = &decision.analysis.evidence {
        println!(
            "  unboundedness certificate: cloning subtree at node {} of pattern {} grows cores {:?}",
            e.cloned_node,
            e.base_pattern.display(),
            e.ladder_sizes
        );
    }

    // Implication: the mapping implies its GLAV weakening, not conversely.
    let weakening = NestedMapping::parse(
        &mut syms,
        &["S(x1,x2) & S(x1,x3) -> exists y (R(y,x2) & R(y,x3))"],
        &[],
    )
    .unwrap();
    let opts = ImpliesOptions::default();
    let fwd = implies_mapping(&mapping, &weakening, &mut syms, &opts).unwrap();
    let bwd = implies_mapping(&weakening, &mapping, &mut syms, &opts).unwrap();
    println!("\nM ⊨ weakening: {fwd};  weakening ⊨ M: {bwd}");
    assert!(fwd && !bwd);
}
