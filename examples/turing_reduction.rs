//! The Theorem 5.1 reduction in action: from a Turing machine, build a
//! plain SO tgd + a single source key dependency whose chase cores have
//! bounded f-block size iff the machine halts, and watch the Figure 8
//! enumeration grow (or plateau) in the target.
//!
//! Run with `cargo run --release --example turing_reduction`.

use nested_deps::prelude::*;
use nested_deps::turing::{delete_row, measure, sweep};

fn print_sweep(name: &str, outcomes: &[ReductionOutcome]) {
    println!("\n{name}");
    println!("   n   good rows   anchored block   core f-degree");
    for o in outcomes {
        println!(
            "  {:2}   {:9}   {:14}   {:13}",
            o.n, o.good_rows, o.anchored_block_size, o.core_fdegree
        );
    }
}

fn main() {
    // --- a halting machine ------------------------------------------------
    let mut syms = SymbolTable::new();
    let halter = busy_halter(3); // halts after 3 steps
    let red = build_reduction(&halter, &mut syms);
    println!("Reduction SO tgd (plain): {}", red.tgd.display(&syms));
    println!("Key dependency:           {}", red.key.display(&syms));
    let outcomes = sweep(&halter, &red, &[5, 7, 9, 11], &mut syms);
    print_sweep("busy_halter(3) — HALTS: anchored block plateaus", &outcomes);
    let plateau = outcomes[0].anchored_block_size;
    assert!(outcomes.iter().all(|o| o.anchored_block_size == plateau));

    // --- a non-halting machine --------------------------------------------
    let mut syms2 = SymbolTable::new();
    let runner = forever_right();
    let red2 = build_reduction(&runner, &mut syms2);
    let outcomes2 = sweep(&runner, &red2, &[5, 7, 9, 11], &mut syms2);
    print_sweep(
        "forever_right() — DOES NOT HALT: anchored block grows",
        &outcomes2,
    );
    assert!(outcomes2
        .windows(2)
        .all(|w| w[1].anchored_block_size > w[0].anchored_block_size));

    // Theorem 5.2's corollary: the growing blocks have bounded f-degree,
    // so (by Theorem 4.12) the reduction tgd is not equivalent to any
    // nested GLAV mapping either.
    let max_degree = outcomes2.iter().map(|o| o.core_fdegree).max().unwrap();
    println!("\nmax f-degree across the growing sweep: {max_degree} (bounded)");
    assert!(max_degree <= 3, "enumeration chain + anchor has degree ≤ 3");

    // --- missing information breaks the enumeration ------------------------
    let mut syms3 = SymbolTable::new();
    let red3 = build_reduction(&runner, &mut syms3);
    let schema = red3.schema.clone();
    let full = measure(&runner, &red3, 8, &mut syms3, "full_", |e| e);
    let gutted = measure(&runner, &red3, 8, &mut syms3, "gut_", |e| {
        delete_row(&e, &schema, 5)
    });
    println!(
        "\nwith row 5 deleted: anchored block {} -> {} (fragments beyond the gap collapse)",
        full.anchored_block_size, gutted.anchored_block_size
    );
    assert!(gutted.anchored_block_size < full.anchored_block_size);
    assert!(gutted.anchored_block_size > 0);
}
