//! Mapping optimization with the paper's decision procedures:
//!
//! 1. **Redundancy removal** — drop nested tgds implied by the rest of the
//!    mapping (Theorem 3.1's IMPLIES as a minimization engine).
//! 2. **Language downgrade** — decide for each mapping whether it is
//!    logically equivalent to a plain GLAV mapping (Theorem 4.2) and, when
//!    it is, emit the verified GLAV rewriting (executable with plain SQL
//!    in a system like Clio).
//!
//! Run with `cargo run --example mapping_optimization`.

use nested_deps::prelude::*;

fn main() {
    let mut syms = SymbolTable::new();

    // --- 1. Redundancy removal -----------------------------------------
    let mapping = NestedMapping::parse(
        &mut syms,
        &[
            "Emp(e,d) -> exists m (Mgr(e,m) & Dept(d,m))",
            // Implied by the first tgd (a projection of its head):
            "Emp(e,d) -> exists m Mgr(e,m)",
            // Not implied — a different target shape:
            "Emp(e,d) & Emp(e2,d) -> exists t (Team(t,e) & Team(t,e2))",
        ],
        &[],
    )
    .expect("mapping parses");
    println!("Input mapping ({} tgds):", mapping.tgds.len());
    for t in &mapping.tgds {
        println!("  {}", t.display(&syms));
    }
    let opts = ImpliesOptions::default();
    let redundant = redundant_tgds(&mapping, &mut syms, &opts).expect("IMPLIES runs");
    println!("\nredundant tgd indexes: {redundant:?}");
    assert_eq!(redundant, vec![1]);
    let minimized = NestedMapping::new(
        mapping
            .tgds
            .iter()
            .enumerate()
            .filter(|(i, _)| !redundant.contains(i))
            .map(|(_, t)| t.clone())
            .collect(),
        vec![],
    )
    .unwrap();
    assert!(equivalent(&mapping, &minimized, &mut syms, &opts).unwrap());
    println!(
        "minimized mapping is equivalent ✓ ({} tgds)",
        minimized.tgds.len()
    );

    // --- 2. Language downgrade ------------------------------------------
    println!("\nGLAV-expressibility audit:");
    let candidates = [
        // Vacuous nesting: unnests to GLAV.
        "forall x1 (Reg(x1) -> exists y (forall x2 (Item(x2) -> Listed(x2,x2))))",
        // Real nesting: provably not GLAV-expressible.
        "forall x1 (Cat(x1) -> exists y (forall x2 (In(x1,x2) -> Grp(y,x2))))",
        // Plain s-t tgd: trivially GLAV.
        "Sale(x,y) -> exists z Rcpt(x,z)",
    ];
    for text in candidates {
        let m = NestedMapping::parse(&mut syms, &[text], &[]).unwrap();
        match glav_equivalent(&m, &mut syms, &FblockOptions::default()) {
            Ok(decision) => match decision.witness {
                Some(w) => {
                    println!("\n  {text}\n    => GLAV-equivalent; verified witness:");
                    for t in &w.tgds {
                        println!("       {}", t.display(&syms));
                    }
                }
                None => {
                    let e = decision.analysis.evidence.expect("unbounded evidence");
                    println!(
                        "\n  {text}\n    => NOT GLAV-equivalent (core f-blocks grow {:?})",
                        e.ladder_sizes
                    );
                }
            },
            Err(e) => println!("\n  {text}\n    => analysis failed: {e}"),
        }
    }
}
