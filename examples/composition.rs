//! Composing GLAV mappings into SO tgds — the Section 1 background that
//! frames the whole paper: "SO tgds are exactly the dependencies needed to
//! specify the composition of an arbitrary number of GLAV mappings" [8].
//!
//! We compose two GLAV ETL stages, watch *nested terms* and *equalities*
//! appear (the features separating full SO tgds from plain ones), verify
//! the composition semantically, and answer conjunctive queries with
//! certain-answer semantics over the composed pipeline.
//!
//! Run with `cargo run --example composition`.

use nested_deps::prelude::*;
use nested_deps::reasoning::{certain_answers, compose_glav, two_step_chase, ConjunctiveQuery};

fn main() {
    let mut syms = SymbolTable::new();

    // Stage 1: normalize a staffing feed, inventing contract ids.
    let m12 = vec![parse_st_tgd(
        &mut syms,
        "Hire(p,team) -> exists c (Contract(p,c) & TeamOf(c,team))",
    )
    .unwrap()];
    // Stage 2: publish; invents a badge per contract.
    let m23 = vec![
        parse_st_tgd(&mut syms, "Contract(p,c) -> exists b Badge(c,b)").unwrap(),
        parse_st_tgd(&mut syms, "Contract(p,c) & TeamOf(c,t) -> Roster(p,t)").unwrap(),
    ];
    println!("Stage 1 (S1 → S2):");
    for t in &m12 {
        println!("  {}", t.display(&syms));
    }
    println!("Stage 2 (S2 → S3):");
    for t in &m23 {
        println!("  {}", t.display(&syms));
    }

    let sigma13 = compose_glav(&m12, &m23, &mut syms).expect("composition succeeds");
    println!("\ncomposed SO tgd (S1 → S3):");
    println!("  {}", sigma13.display(&syms));
    println!(
        "  plain? {}  (nested terms arise from invention over invention)",
        sigma13.is_plain()
    );
    assert!(!sigma13.is_plain());

    // Semantic verification on a concrete feed.
    let hire = syms.rel("Hire");
    let alice = Value::Const(syms.constant("alice"));
    let bob = Value::Const(syms.constant("bob"));
    let db = Value::Const(syms.constant("db_team"));
    let ml = Value::Const(syms.constant("ml_team"));
    let source = Instance::from_facts([
        Fact::new(hire, vec![alice, db]),
        Fact::new(hire, vec![bob, ml]),
    ]);
    let mut nulls = NullFactory::new();
    let direct = chase_so(&source, &sigma13, &mut nulls);
    let two_step = two_step_chase(&source, &m12, &m23, &mut syms);
    println!("\nsource: {}", source.display(&syms));
    println!("chase(I, σ13): {}", nulls.display_instance(&direct, &syms));
    let agree = hom_equivalent(&direct, &two_step);
    println!("direct chase ↔ two-step chase: {agree}");
    assert!(agree);

    // Certain answers through the composed pipeline: Roster is certain,
    // Badge ids are invented nulls and never certain.
    let glav13 = NestedMapping::parse(
        &mut syms,
        &["Hire(p,team) -> Roster(p,team)"], // the GLAV core of the pipeline
        &[],
    )
    .unwrap();
    let q = ConjunctiveQuery::parse(&mut syms, "q(p,t) :- Roster(p,t)").unwrap();
    let ans = certain_answers(&q, &source, &glav13, &mut syms);
    println!("\ncertain answers of {}:", q.display(&syms));
    for t in &ans {
        println!(
            "  ({})",
            t.iter()
                .map(|v| v.display(&syms).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    assert_eq!(ans.len(), 2);
    // Badge column: nothing certain.
    let qb = ConjunctiveQuery::parse(&mut syms, "q(b) :- Badge(c,b)").unwrap();
    let direct_answers = qb.evaluate(&direct);
    let certain: Vec<_> = direct_answers
        .iter()
        .filter(|t| t.iter().all(|v| v.is_const()))
        .collect();
    println!(
        "\nBadge answers over the universal solution: {} (certain: {})",
        direct_answers.len(),
        certain.len()
    );
    assert!(certain.is_empty());
}
