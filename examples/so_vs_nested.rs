//! Telling apart plain SO tgds from nested GLAV mappings (Section 4.2 of
//! the paper), on the paper's own examples:
//!
//! - the Section 1 tgd `S(x,y) → R(f(x),f(y))` — separated by the
//!   f-degree tool (Theorem 4.12 / Proposition 4.13);
//! - Example 4.14's 3-ary tgd — f-blocks are cliques, so only the path
//!   length tool (Theorem 4.16) separates it;
//! - Example 4.15's tgd — *equivalent* to a nested tgd: both tools stay
//!   silent, and we machine-check the equivalence on instance families.
//!
//! Run with `cargo run --example so_vs_nested`.

use nested_deps::prelude::*;

fn successor_family(syms: &mut SymbolTable, with_q: bool, ns: &[usize]) -> Vec<Instance> {
    let s = syms.rel("S");
    let q = syms.rel("Q");
    ns.iter()
        .map(|&n| {
            let mut inst = successor(syms, s, n, "c");
            if with_q {
                let o = Value::Const(syms.constant("o"));
                inst.insert(Fact::new(q, vec![o]));
            }
            inst
        })
        .collect()
}

fn print_report(name: &str, report: &SeparationReport) {
    println!("\n{name}");
    println!("  |I|   f-block  f-degree  path-length");
    for p in &report.points {
        println!(
            "  {:3}   {:7}  {:8}  {}",
            p.source_size,
            p.fblock_size,
            p.fdegree,
            p.path_length.map_or("-".into(), |l| l.to_string())
        );
    }
    match report.verdict {
        Some(NotNestedReason::FdegreeGap) => {
            println!("  => NOT nested-GLAV-expressible: f-blocks grow, f-degree bounded (Thm 4.12)")
        }
        Some(NotNestedReason::UnboundedPathLength) => {
            println!("  => NOT nested-GLAV-expressible: null-graph path length grows (Thm 4.16)")
        }
        None => println!("  => no separation evidence on this family"),
    }
}

fn main() {
    let mut syms = SymbolTable::new();

    // --- Section 1 tgd: f-degree separation ------------------------------
    let tau = parse_so_tgd(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))").unwrap();
    let family = successor_family(&mut syms, false, &[4, 6, 8, 10]);
    let report = sweep_so(&tau, &family);
    print_report(
        "τ = S(x,y) → R(f(x),f(y))   on successor relations",
        &report,
    );
    assert_eq!(report.verdict, Some(NotNestedReason::FdegreeGap));

    // --- Example 4.14: path-length separation ----------------------------
    let sigma = parse_so_tgd(
        &mut syms,
        "exists f,g . S(x,y) & Q(z) -> R(f(z,x),f(z,y),g(z))",
    )
    .unwrap();
    let family = successor_family(&mut syms, true, &[4, 6, 8]);
    let report = sweep_so(&sigma, &family);
    print_report(
        "σ = S(x,y) ∧ Q(z) → R(f(z,x),f(z,y),g(z))   (Example 4.14)",
        &report,
    );
    assert_eq!(report.verdict, Some(NotNestedReason::UnboundedPathLength));

    // --- Example 4.15: no separation, and a verified nested equivalent ---
    let sigma_p = parse_so_tgd(
        &mut syms,
        "exists f,g . S(x,y) & Q(z) -> R(f(z,x,y),g(z),x)",
    )
    .unwrap();
    let family = successor_family(&mut syms, true, &[4, 6, 8]);
    let report = sweep_so(&sigma_p, &family);
    print_report(
        "σ' = S(x,y) ∧ Q(z) → R(f(z,x,y),g(z),x)   (Example 4.15)",
        &report,
    );
    assert_eq!(report.verdict, None);

    // The paper displays the equivalent nested tgd; check the equivalence
    // semantically on the family: the chase results under σ' and under the
    // nested tgd are homomorphically equivalent on every instance.
    let nested = NestedMapping::parse(
        &mut syms,
        &["forall z (Q(z) -> exists u (forall x,y (S(x,y) -> exists v R(v,u,x))))"],
        &[],
    )
    .unwrap();
    println!("\nchecking σ' ≡ nested tgd on the family (chase cores hom-equivalent):");
    for inst in &family {
        let mut nulls = NullFactory::new();
        let so_chase = chase_so(inst, &sigma_p, &mut nulls);
        let (nested_chase, _) = chase_mapping(inst, &nested, &mut syms);
        let agree = hom_equivalent(&so_chase, &nested_chase.target);
        println!(
            "  |I| = {:2}: {}",
            inst.len(),
            if agree { "✓" } else { "✗" }
        );
        assert!(agree);
    }
    println!("\nall checks passed");
}
