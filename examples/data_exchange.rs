//! Clio-style data exchange (the motivating scenario of nested mappings,
//! [10, 12] in the paper): restructure an HR database grouping employees
//! and projects under per-department group identifiers.
//!
//! Compares the **nested** mapping (one group existential per department,
//! correlated across members) with its best **flat GLAV** approximation
//! (group re-invented per member), quantifying the redundancy the paper's
//! introduction describes.
//!
//! Run with `cargo run --example data_exchange`.

use nested_deps::prelude::*;

fn main() {
    let mut syms = SymbolTable::new();
    let scenario = clio_scenario(&mut syms, 5, 4, 2024);
    println!("Nested mapping:\n  {}", scenario.nested.display(&syms));
    println!("\nFlat GLAV approximation:");
    for line in scenario.flat.display(&syms).lines() {
        println!("  {line}");
    }
    println!(
        "\nSource: {} departments, {} facts",
        scenario.departments,
        scenario.source.len()
    );

    // Exchange data under both mappings.
    let (nested_res, nested_nulls) = chase_mapping(&scenario.source, &scenario.nested, &mut syms);
    let (flat_res, _) = chase_mapping(&scenario.source, &scenario.flat, &mut syms);

    println!("\n                     nested    flat GLAV");
    println!(
        "target facts:       {:7}    {:9}",
        nested_res.target.len(),
        flat_res.target.len()
    );
    println!(
        "invented groups:    {:7}    {:9}",
        nested_res.target.nulls().len(),
        flat_res.target.nulls().len()
    );
    let nested_core = core_of(&nested_res.target);
    let flat_core = core_of(&flat_res.target);
    println!(
        "core facts:         {:7}    {:9}",
        nested_core.len(),
        flat_core.len()
    );
    println!(
        "core f-block size:  {:7}    {:9}",
        f_block_size(&nested_core),
        f_block_size(&flat_core)
    );

    // The nested chase groups each department's members under ONE null:
    assert_eq!(
        nested_res.target.nulls().len(),
        scenario.departments,
        "one group per department"
    );
    // ...while the flat mapping cannot correlate them.
    assert!(flat_res.target.nulls().len() > scenario.departments);

    // The nested target correlates: every employee group null also occurs
    // in a DeptGrp fact of the same department.
    let dept_grp = syms.rel("DeptGrp");
    let emp_of = syms.rel("EmpOf");
    let grouped_nulls: std::collections::BTreeSet<_> = nested_res
        .target
        .tuples(dept_grp)
        .filter_map(|t| t[0].as_null())
        .collect();
    for t in nested_res.target.tuples(emp_of) {
        let g = t[0].as_null().expect("group is a null");
        assert!(grouped_nulls.contains(&g), "employee group is correlated");
    }
    println!("\ncorrelation check: every EmpOf group null appears in DeptGrp ✓");

    // The mappings are NOT logically equivalent: nested ⊨ flat, flat ⊭ nested.
    let opts = ImpliesOptions::default();
    let fwd = implies_mapping(&scenario.nested, &scenario.flat, &mut syms, &opts).unwrap();
    let bwd = implies_mapping(&scenario.flat, &scenario.nested, &mut syms, &opts).unwrap();
    println!("nested ⊨ flat: {fwd};  flat ⊨ nested: {bwd}");
    assert!(fwd && !bwd);

    // And the nested mapping is not GLAV-expressible at all (Thm 4.2).
    let decision = glav_equivalent(&scenario.nested, &mut syms, &FblockOptions::default())
        .expect("decision runs");
    println!(
        "nested mapping GLAV-equivalent? {} (f-block size bounded: {})",
        decision.witness.is_some(),
        decision.analysis.bounded
    );
    assert!(decision.witness.is_none());

    // Print a sample of the exchanged data for one department.
    println!("\nSample of the nested exchange result:");
    for fact in nested_res.target.facts().take(8) {
        println!("  {}", nested_nulls.display_fact_ref(fact, &syms));
    }
}
