//! Integration tests for Section 2 of the paper: the basic concepts —
//! universal solutions, closure under target homomorphisms, the
//! Emp/Mgr/SelfMgr SO tgd, and the Skolemization displayed for the
//! running example.

use nested_deps::prelude::*;
use nested_deps::reasoning::satisfies_so;

/// "J is a universal solution for I iff J is a solution and J → J' for
/// every solution J'" — exercised over a pool of hand-built solutions.
#[test]
fn universal_solutions_map_into_all_solutions() {
    let mut syms = SymbolTable::new();
    let m = NestedMapping::parse(
        &mut syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .unwrap();
    let s = syms.rel("S");
    let r = syms.rel("R");
    let a = Value::Const(syms.constant("a"));
    let b = Value::Const(syms.constant("b"));
    let source = Instance::from_facts([Fact::new(s, vec![a, b])]);
    let (res, _) = chase_mapping(&source, &m, &mut syms);
    // A pool of solutions: ground witnesses, padded variants, the chase.
    let solutions = [
        Instance::from_facts([Fact::new(r, vec![a, b])]),
        Instance::from_facts([
            Fact::new(r, vec![a, b]),
            Fact::new(r, vec![b, b]),
            Fact::new(r, vec![a, a]),
        ]),
        res.target.clone(),
    ];
    for j in &solutions {
        assert!(satisfies_mapping(&source, j, &m), "{}", j.display(&syms));
        assert!(
            homomorphic(&res.target, j),
            "chase must map into {}",
            j.display(&syms)
        );
    }
    // A non-solution: the chase does NOT map into it.
    let non_solution = Instance::from_facts([Fact::new(r, vec![b, a])]);
    assert!(!satisfies_mapping(&source, &non_solution, &m));
    assert!(!homomorphic(&res.target, &non_solution));
}

/// Closure under target homomorphisms (plain SO tgds / nested tgds): if J
/// is a solution and J → J' (identity on constants), J' is a solution.
#[test]
fn closure_under_target_homomorphisms() {
    let mut syms = SymbolTable::new();
    let m =
        NestedMapping::parse(&mut syms, &["S(x) -> exists y,z (R(x,y) & R(y,z))"], &[]).unwrap();
    let s = syms.rel("S");
    let a = Value::Const(syms.constant("a"));
    let source = Instance::from_facts([Fact::new(s, vec![a])]);
    let (res, _) = chase_mapping(&source, &m, &mut syms);
    // Apply several homomorphisms to the chase result; all images remain
    // solutions.
    let nulls: Vec<NullId> = res.target.nulls().into_iter().collect();
    assert_eq!(nulls.len(), 2);
    let images = [
        // fold both nulls onto the constant
        res.target.map_values(&|v| if v.is_null() { a } else { v }),
        // fold second null onto the first
        res.target.map_values(&|v| {
            if v == Value::Null(nulls[1]) {
                Value::Null(nulls[0])
            } else {
                v
            }
        }),
    ];
    for j in &images {
        assert!(satisfies_mapping(&source, j, &m), "{}", j.display(&syms));
    }
}

/// The Emp/Mgr/SelfMgr SO tgd of Section 2: full SO semantics with an
/// equality, checked through the general model checker.
#[test]
fn emp_mgr_selfmgr_semantics() {
    let mut syms = SymbolTable::new();
    let sigma = parse_so_tgd(
        &mut syms,
        "exists f . Emp(e) -> Mgr(e,f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)",
    )
    .unwrap();
    assert!(!sigma.is_plain());
    let emp = syms.rel("Emp");
    let mgr = syms.rel("Mgr");
    let selfm = syms.rel("SelfMgr");
    let a = Value::Const(syms.constant("ann"));
    let b = Value::Const(syms.constant("bo"));
    let source = Instance::from_facts([Fact::new(emp, vec![a]), Fact::new(emp, vec![b])]);
    // Everyone managed by bo; bo manages himself, so SelfMgr(bo) required.
    let j_missing = Instance::from_facts([Fact::new(mgr, vec![a, b]), Fact::new(mgr, vec![b, b])]);
    assert!(!satisfies_so(&source, &j_missing, &sigma));
    let mut j_ok = j_missing.clone();
    j_ok.insert(Fact::new(selfm, vec![b]));
    assert!(satisfies_so(&source, &j_ok, &sigma));
    // External management never forces SelfMgr.
    let ext = Value::Const(syms.constant("root"));
    let j_ext = Instance::from_facts([Fact::new(mgr, vec![a, ext]), Fact::new(mgr, vec![b, ext])]);
    assert!(satisfies_so(&source, &j_ext, &sigma));
}

/// Section 2's inclusion chain, on the syntax level: every s-t tgd is a
/// nested tgd; every Skolemized nested tgd is a plain SO tgd; and the
/// model checkers agree across the encodings.
#[test]
fn inclusion_chain_semantics_agree() {
    let mut syms = SymbolTable::new();
    let st = parse_st_tgd(&mut syms, "S(x,y) -> exists z (R(x,z) & R(z,y))").unwrap();
    let nested: NestedTgd = st.into();
    let (so, _) = skolemize(&nested, &mut syms);
    assert!(so.is_plain());
    let s = syms.rel("S");
    let r = syms.rel("R");
    let a = Value::Const(syms.constant("a"));
    let b = Value::Const(syms.constant("b"));
    let source = Instance::from_facts([Fact::new(s, vec![a, b])]);
    let candidates = [
        Instance::new(),
        Instance::from_facts([Fact::new(r, vec![a, a]), Fact::new(r, vec![a, b])]),
        Instance::from_facts([Fact::new(r, vec![a, b])]),
        Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![b, b])]),
    ];
    for j in &candidates {
        let via_nested = satisfies_nested(&source, j, &nested);
        let via_plain = satisfies_plain_so(&source, j, &so);
        let via_full = satisfies_so(&source, j, &so);
        assert_eq!(via_nested, via_plain, "{}", j.display(&syms));
        assert_eq!(via_nested, via_full, "{}", j.display(&syms));
    }
}

/// The f-block terminology of Section 2: connectivity via the Gaifman
/// graph of facts on a concrete mixed instance.
#[test]
fn fblock_definitions() {
    let mut syms = SymbolTable::new();
    let r = syms.rel("R");
    let a = Value::Const(syms.constant("a"));
    let n0 = Value::Null(NullId(0));
    let n1 = Value::Null(NullId(1));
    let n2 = Value::Null(NullId(2));
    let j = Instance::from_facts([
        Fact::new(r, vec![n0, n1]),
        Fact::new(r, vec![n1, n2]),
        Fact::new(r, vec![a, a]),
        Fact::new(r, vec![a, n2]),
    ]);
    let blocks = f_blocks(&j);
    // The n0-n1-n2 chain plus R(a,n2) is one block; R(a,a) is isolated.
    assert_eq!(blocks.len(), 2);
    assert_eq!(f_block_size(&j), 3);
    let fg = nested_deps::hom::FactGraph::of(&j);
    assert!(!fg.is_connected());
}
