//! Integration tests for Section 5: source egds, legal canonical
//! instances (Example 5.3), the decidability results for nested tgds in
//! the presence of egds (Theorems 5.5–5.7), and the Turing-machine
//! reduction behind Theorems 5.1/5.2.

use nested_deps::prelude::*;
use nested_deps::turing::{delete_row, flip_cell, good_cells, measure, sweep};

/// Example 5.3 end-to-end: naive cloning of the canonical source violates
/// Σs; legal canonical instances repair it, and the boundedness analysis
/// changes verdict accordingly for the x1-growth variant.
#[test]
fn example_53_legal_canonical_instances() {
    let mut syms = SymbolTable::new();
    let sigma = parse_nested_tgd(
        &mut syms,
        "forall z (Q(z) -> exists y (forall x1,x2 (P1(z,x1) & P2(z,x2) -> R(y,x1,x2))))",
    )
    .unwrap();
    let egd = parse_egd(&mut syms, "P1(z,w1) & P1(z,w2) -> w1 = w2").unwrap();
    let info = SkolemInfo::for_nested(&sigma, &mut syms);
    let mut pattern = Pattern::root_only(0);
    pattern.add_child(0, 1);
    pattern.add_child(0, 1); // the "clone" of the example
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(&sigma, &info, &pattern, &mut syms, &mut nulls);
    assert!(!satisfies_egds(&pair.source, std::slice::from_ref(&egd)));
    let legal = legalize(&pair, std::slice::from_ref(&egd), &mut nulls);
    assert!(satisfies_egds(&legal.source, std::slice::from_ref(&egd)));
    // The legal source has one P1 atom but still two P2 atoms.
    let p1 = syms.rel("P1");
    let p2 = syms.rel("P2");
    assert_eq!(legal.source.rel_len(p1), 1);
    assert_eq!(legal.source.rel_len(p2), 2);
}

/// Theorem 5.7: implication with source egds. Also checks that an egd can
/// flip an implication verdict in both directions of interest.
#[test]
fn theorem_57_implication_with_egds() {
    let mut syms = SymbolTable::new();
    let opts = ImpliesOptions::default();
    // With S functional in its first column, S(x,y) ∧ S(x,z) forces y = z.
    let premise = NestedMapping::parse(
        &mut syms,
        &["S(x,y) -> T(y,y)"],
        &["S(x,w1) & S(x,w2) -> w1 = w2"],
    )
    .unwrap();
    let sigma = parse_nested_tgd(&mut syms, "S(x,y) & S(x,z) -> T(y,z)").unwrap();
    assert!(
        implies_tgd(&premise, &sigma, &mut syms, &opts)
            .unwrap()
            .holds
    );
    // Nested conclusion under egds.
    let nested_conclusion = parse_nested_tgd(
        &mut syms,
        "forall x,y (S(x,y) -> exists u (forall z (S(x,z) -> T(u,z))))",
    )
    .unwrap();
    // Premise gives T(y,y); under the egd, z = y for the nested part and
    // u := y works.
    assert!(
        implies_tgd(&premise, &nested_conclusion, &mut syms, &opts)
            .unwrap()
            .holds
    );
    // Without the egd the same implication fails.
    let premise_free = NestedMapping::parse(&mut syms, &["S(x,y) -> T(y,y)"], &[]).unwrap();
    assert!(
        !implies_tgd(&premise_free, &nested_conclusion, &mut syms, &opts)
            .unwrap()
            .holds
    );
}

/// Theorem 5.6: GLAV-equivalence stays decidable with egds, and the
/// verdict can flip from "not equivalent" to "equivalent (with witness)".
#[test]
fn theorem_56_glav_equivalence_with_egds() {
    let mut syms = SymbolTable::new();
    let tgds = &["forall z (Q(z) -> exists y (forall x1 (P1(z,x1) -> R(y,x1))))"];
    let opts = FblockOptions::default();
    let free = NestedMapping::parse(&mut syms, tgds, &[]).unwrap();
    let d_free = glav_equivalent(&free, &mut syms, &opts).unwrap();
    assert!(d_free.witness.is_none());
    let keyed = NestedMapping::parse(&mut syms, tgds, &["P1(z,w1) & P1(z,w2) -> w1 = w2"]).unwrap();
    let d_keyed = glav_equivalent(&keyed, &mut syms, &opts).unwrap();
    assert!(d_keyed.analysis.bounded);
    let witness = d_keyed.witness.unwrap();
    assert!(witness.is_glav());
    assert!(equivalent(&keyed, &witness, &mut syms, &ImpliesOptions::default()).unwrap());
}

/// Theorem 5.1's observable: the reduction's core f-block size plateaus
/// for a halting machine and grows for a non-halting one, under the single
/// key dependency.
#[test]
fn theorem_51_reduction_observable() {
    // Halting.
    let mut syms = SymbolTable::new();
    let halter = busy_halter(2);
    let red = build_reduction(&halter, &mut syms);
    let outs = sweep(&halter, &red, &[4, 6, 8], &mut syms);
    assert!(outs
        .windows(2)
        .all(|w| w[0].anchored_block_size == w[1].anchored_block_size));
    // Non-halting (two different non-halting machines).
    for machine in [forever_right(), forever_bounce()] {
        let mut syms2 = SymbolTable::new();
        let red2 = build_reduction(&machine, &mut syms2);
        let outs2 = sweep(&machine, &red2, &[4, 6, 8], &mut syms2);
        assert!(
            outs2
                .windows(2)
                .all(|w| w[1].anchored_block_size > w[0].anchored_block_size),
            "machine should grow: {outs2:?}"
        );
    }
}

/// Theorem 5.2's ingredient: for a non-halting machine the reduction
/// produces arbitrarily large blocks with bounded f-degree, so (by
/// Theorem 4.12) the SO tgd is not equivalent to any nested GLAV mapping.
#[test]
fn theorem_52_bounded_degree_growth() {
    let mut syms = SymbolTable::new();
    let machine = forever_right();
    let red = build_reduction(&machine, &mut syms);
    let outs = sweep(&machine, &red, &[4, 6, 8, 10], &mut syms);
    let degrees: Vec<usize> = outs.iter().map(|o| o.core_fdegree).collect();
    let blocks: Vec<usize> = outs.iter().map(|o| o.anchored_block_size).collect();
    assert!(blocks.windows(2).all(|w| w[1] > w[0]));
    assert!(degrees.iter().all(|&d| d <= 3));
}

/// "Incorrect and missing information" handling: corruptions truncate the
/// good region and the anchored enumeration accordingly.
#[test]
fn reduction_corruption_handling() {
    let mut syms = SymbolTable::new();
    let machine = forever_right();
    let red = build_reduction(&machine, &mut syms);
    let schema = red.schema.clone();
    let n = 7;
    let full = measure(&machine, &red, n, &mut syms, "a_", |e| e);
    // Missing info: delete a middle row.
    let schema2 = schema.clone();
    let gutted = measure(&machine, &red, n, &mut syms, "b_", move |e| {
        delete_row(&e, &schema2, 4)
    });
    assert!(gutted.good_rows < full.good_rows);
    assert!(gutted.anchored_block_size < full.anchored_block_size);
    // Incorrect info: flip a cell.
    let machine2 = machine.clone();
    let schema3 = schema.clone();
    let flipped = measure(&machine, &red, n, &mut syms, "c_", move |e| {
        flip_cell(&e, &schema3, &machine2, 3, 2)
    });
    assert!(flipped.anchored_block_size < full.anchored_block_size);
}

/// The key dependency is essential to the encoding: honest encodings
/// satisfy it, and merging successor predecessors breaks the run shape.
#[test]
fn key_dependency_discipline() {
    let mut syms = SymbolTable::new();
    let machine = busy_halter(2);
    let red = build_reduction(&machine, &mut syms);
    let run = machine.run(&[], 10);
    let enc = nested_deps::turing::encode_run(&run, 5, &red.schema, &mut syms, "k_");
    assert!(satisfies_egds(
        &enc.instance,
        std::slice::from_ref(&red.key)
    ));
    // An adversarial source with two predecessors of one element violates
    // the key dependency and is rejected by the egd chase.
    let mut bad = enc.instance.clone();
    let extra = Value::Const(syms.constant("rogue"));
    bad.insert(Fact::new(red.schema.s, vec![extra, enc.indexes[1]]));
    assert!(!satisfies_egds(&bad, std::slice::from_ref(&red.key)));
    assert!(chase_egds(&bad, std::slice::from_ref(&red.key), RigidPolicy::AllRigid).is_err());
    // The checker itself never marks cells good beyond what the
    // (corrupted) data supports.
    let good = good_cells(&enc, &red.schema, &machine);
    assert!(good.contains(&(1, 1)));
}
