//! Integration tests for Section 4: the structure of cores, bounded
//! f-block size, GLAV-equivalence (Theorem 4.2), Example 4.8 (bounded
//! anchors), and the separation tools (Theorems 4.12/4.16).

use nested_deps::prelude::*;

/// Example 4.8: chase of a directed n-cycle under
/// σ = S(x,y) → R(f(x),f(y)) ∧ R(f(y),f(x)) is the undirected n-cycle;
/// for odd n the core is the full cycle.
#[test]
fn example_48_odd_cycles_are_cores() {
    let mut syms = SymbolTable::new();
    let sigma = parse_so_tgd(
        &mut syms,
        "exists f . S(x,y) -> R(f(x),f(y)) & R(f(y),f(x))",
    )
    .unwrap();
    let s = syms.rel("S");
    for n in [3usize, 5, 7] {
        let source = cycle(&mut syms, s, n, &format!("n{n}_"));
        let mut nulls = NullFactory::new();
        let chased = chase_so(&source, &sigma, &mut nulls);
        assert_eq!(chased.len(), 2 * n);
        assert_eq!(chased.nulls().len(), n);
        let core = core_of(&chased);
        // Odd cycle: the core is the whole undirected cycle.
        assert_eq!(core.len(), 2 * n, "odd {n}-cycle must be a core");
        assert_eq!(f_block_size(&core), 2 * n);
    }
    // Even cycles collapse to a single undirected edge.
    let source = cycle(&mut syms, s, 6, "e_");
    let mut nulls = NullFactory::new();
    let core = core_of(&chase_so(&source, &sigma, &mut nulls));
    assert_eq!(core.len(), 2);
}

/// Example 4.8's anchor phenomenon: for n > 3 odd, no proper subinstance
/// of I_n yields a large connected core block — but the *smaller* instance
/// I_3 (not a subinstance of I_n!) does: core(chase(I_3)) is the triangle.
#[test]
fn example_48_bounded_anchor_counterexample() {
    let mut syms = SymbolTable::new();
    let sigma = parse_so_tgd(
        &mut syms,
        "exists f . S(x,y) -> R(f(x),f(y)) & R(f(y),f(x))",
    )
    .unwrap();
    let s = syms.rel("S");
    // A proper subinstance of I_7: a directed path. Its chase core is a
    // single undirected edge (the path is 2-colorable).
    let path = successor(&mut syms, s, 7, "p_");
    let mut nulls = NullFactory::new();
    let path_core = core_of(&chase_so(&path, &sigma, &mut nulls));
    assert_eq!(path_core.len(), 2);
    // I_3 is small, NOT contained in I_7, and its core is the triangle of
    // size 6 ≥ |J| for the J of the example.
    let i3 = cycle(&mut syms, s, 3, "t_");
    let mut nulls3 = NullFactory::new();
    let tri_core = core_of(&chase_so(&i3, &sigma, &mut nulls3));
    assert_eq!(tri_core.len(), 6);
    assert_eq!(f_block_size(&tri_core), 6);
}

/// Theorem 4.2 on the paper's flagship examples, both outcomes, with
/// verified witnesses in the positive cases.
#[test]
fn theorem_42_decisions() {
    let mut syms = SymbolTable::new();
    let opts = FblockOptions::default();
    // Not GLAV-equivalent: the intro nested tgd.
    let nested = NestedMapping::parse(
        &mut syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .unwrap();
    let d = glav_equivalent(&nested, &mut syms, &opts).unwrap();
    assert!(!d.analysis.bounded && d.witness.is_none());
    // GLAV-equivalent: vacuous nesting.
    let vacuous = NestedMapping::parse(
        &mut syms,
        &["forall x1 (P(x1) -> exists y (forall x2 (Q(x2) -> T(x1,x2))))"],
        &[],
    )
    .unwrap();
    let d2 = glav_equivalent(&vacuous, &mut syms, &opts).unwrap();
    assert!(d2.analysis.bounded);
    let w = d2.witness.unwrap();
    assert!(w.is_glav());
    assert!(equivalent(&vacuous, &w, &mut syms, &ImpliesOptions::default()).unwrap());
}

/// Theorem 4.4's certificate shape: the growth evidence of the classic
/// unbounded tgd is a strictly increasing cloning ladder.
#[test]
fn theorem_44_growth_ladder() {
    let mut syms = SymbolTable::new();
    let m = NestedMapping::parse(
        &mut syms,
        &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))"],
        &[],
    )
    .unwrap();
    let a = has_bounded_fblock_size(&m, &mut syms, &FblockOptions::default()).unwrap();
    assert!(!a.bounded);
    let e = a.evidence.unwrap();
    assert!(e.ladder_sizes.len() >= 3);
    for w in e.ladder_sizes.windows(2) {
        assert!(w[1] > w[0]);
    }
}

/// The exhaustive Theorem 4.10 test agrees with the ladder method on tiny
/// mappings (both outcomes).
#[test]
fn theorem_410_exhaustive_cross_check() {
    // Bounded case.
    let mut syms = SymbolTable::new();
    let bounded = NestedMapping::parse(&mut syms, &["S(x) -> exists y R(x,y)"], &[]).unwrap();
    let a = has_bounded_fblock_size(&bounded, &mut syms, &FblockOptions::default()).unwrap();
    assert!(a.bounded);
    assert!(fblock_size_bounded_by_exhaustive(
        &bounded,
        a.max_observed,
        3,
        &mut syms
    ));
    // Unbounded case: some tiny instance already exceeds the claimed bound.
    let mut syms2 = SymbolTable::new();
    let unbounded = NestedMapping::parse(
        &mut syms2,
        &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))"],
        &[],
    )
    .unwrap();
    assert!(!fblock_size_bounded_by_exhaustive(
        &unbounded, 2, 4, &mut syms2
    ));
}

use ndl_reasoning::fblock_size_bounded_by_exhaustive;

/// Section 1's hierarchy, machine-checked: s-t tgds ⊊ nested tgds
/// (via Theorem 4.2) and nested tgds ⊊ plain SO tgds (via Theorem 4.12 on
/// the Section 1 SO tgd).
#[test]
fn strict_hierarchy() {
    let mut syms = SymbolTable::new();
    // Every s-t tgd is a nested tgd (syntactic inclusion).
    let st = parse_st_tgd(&mut syms, "S(x,y) -> exists z R(x,z)").unwrap();
    let as_nested: NestedTgd = st.into();
    assert!(as_nested.is_st_tgd());
    // A nested tgd that is not GLAV-expressible.
    let m = NestedMapping::parse(
        &mut syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .unwrap();
    assert!(glav_equivalent(&m, &mut syms, &FblockOptions::default())
        .unwrap()
        .witness
        .is_none());
    // Every nested tgd Skolemizes to a plain SO tgd (syntactic inclusion).
    let (so, _) = skolemize(&m.tgds[0], &mut syms);
    assert!(so.is_plain());
    // A plain SO tgd that is not nested-expressible (f-degree evidence).
    let tau = parse_so_tgd(&mut syms, "exists f . T(x,y) -> U(f(x),f(y))").unwrap();
    let t = syms.rel("T");
    let family: Vec<Instance> = [4, 6, 8]
        .iter()
        .map(|&n| successor(&mut syms, t, n, &format!("h{n}_")))
        .collect();
    assert_eq!(
        sweep_so(&tau, &family).verdict,
        Some(NotNestedReason::FdegreeGap)
    );
}

/// Theorem 4.12 reflected on the implementation: for nested GLAV mappings,
/// f-block growth and f-degree growth go together on a family.
#[test]
fn theorem_412_lockstep_for_nested() {
    let mut syms = SymbolTable::new();
    let m = NestedMapping::parse(
        &mut syms,
        &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))"],
        &[],
    )
    .unwrap();
    let s2 = syms.rel("S2");
    let s1 = syms.rel("S1");
    let a = Value::Const(syms.constant("seed"));
    let family: Vec<Instance> = [2usize, 4, 6]
        .iter()
        .map(|&n| {
            let mut inst = Instance::new();
            inst.insert(Fact::new(s1, vec![a]));
            for i in 0..n {
                let c = Value::Const(syms.constant(&format!("m{i}")));
                inst.insert(Fact::new(s2, vec![c]));
            }
            inst
        })
        .collect();
    let report = sweep_nested(&m, &family, &mut syms);
    assert_eq!(report.verdict, None);
    // Block size and degree grow together: blocks are stars around y.
    for w in report.points.windows(2) {
        assert!(w[1].fblock_size > w[0].fblock_size);
        assert!(w[1].fdegree > w[0].fdegree);
    }
    // And the path length stays bounded (Theorem 4.16): stars have
    // null-graph paths of length ≤ 2... in fact the only null is y, so 0.
    assert!(report.points.iter().all(|p| p.path_length == Some(0)));
}
