//! Property tests pinning the observability layer to the semantics of
//! the engines it watches: observers may count, but they must never
//! change a result, and what they count must be internally consistent.

use nested_deps::analyze::{parse_program, StmtAst};
use nested_deps::hom::{core_of_observed, is_core_observed};
use nested_deps::obs::NoopObserver;
use nested_deps::prelude::*;
use proptest::prelude::*;

type ChaseOutcome = std::result::Result<FixpointChase, FixpointError>;

/// Runs the planned fixpoint chase on a generated program source twice —
/// once with the no-op observer, once collecting [`ChaseStats`] — and
/// returns both outcomes plus the interned-null counts.
fn chase_twice(text: &str) -> Option<(ChaseOutcome, ChaseOutcome, ChaseStats, usize, usize)> {
    let mut syms = SymbolTable::new();
    let (stmts, errs) = parse_program(&mut syms, text);
    if !errs.is_empty() {
        return None;
    }
    let analysis = ChaseAnalysis::analyze(&mut syms, &stmts);
    let mut source = Instance::new();
    for s in &stmts {
        if let Some(StmtAst::Fact(f)) = &s.ast {
            source.insert(f.clone());
        }
    }
    let tgds: Vec<_> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let plan = analysis.tgd_plan(Some(2_000));

    let mut plain_nulls = NullFactory::new();
    let plain = chase_fixpoint_with(&source, &tgds, &plan, &mut plain_nulls, &mut NoopObserver);
    let mut stats = ChaseStats::new();
    let mut observed_nulls = NullFactory::new();
    let observed = chase_fixpoint_with(&source, &tgds, &plan, &mut observed_nulls, &mut stats);
    Some((
        plain,
        observed,
        stats,
        plain_nulls.len(),
        observed_nulls.len(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Attaching an observer never changes the chase: the observed run
    /// is bit-identical to the plain run — same instance, same interned
    /// nulls, same error on the budget path.
    #[test]
    fn observed_chase_is_bit_identical(seed in 0u64..10_000, statements in 2usize..14) {
        let text = random_program(&ProgramGenOptions {
            statements,
            relations: (statements / 2).max(3),
            seed,
            ..Default::default()
        });
        if let Some((plain, observed, _, plain_nulls, observed_nulls)) = chase_twice(&text) {
            prop_assert_eq!(plain_nulls, observed_nulls);
            match (plain, observed) {
                (Ok(p), Ok(o)) => {
                    prop_assert_eq!(p.instance, o.instance);
                    prop_assert_eq!(p.rounds, o.rounds);
                    prop_assert_eq!(p.derived, o.derived);
                }
                (Err(p), Err(o)) => prop_assert_eq!(format!("{p:?}"), format!("{o:?}")),
                (p, o) => prop_assert!(false, "outcomes diverge: {p:?} vs {o:?}"),
            }
        }
    }

    /// What the stats sink counts is internally consistent: fired
    /// triggers never exceed examined ones, the aggregate totals are the
    /// sums of the per-statement rows, interned nulls match the factory,
    /// and the per-round fresh counts cover every round.
    #[test]
    fn chase_stats_invariants_hold(seed in 0u64..10_000, statements in 2usize..14) {
        let text = random_program(&ProgramGenOptions {
            statements,
            relations: (statements / 2).max(3),
            seed,
            ..Default::default()
        });
        if let Some((_, observed, stats, _, observed_nulls)) = chase_twice(&text) {
            prop_assert!(stats.triggers_fired <= stats.triggers_examined);
            prop_assert_eq!(stats.round_fresh.len(), stats.rounds);
            prop_assert_eq!(stats.nulls_interned, observed_nulls as u64);
            let by_stmt: u64 = stats.statements.iter().map(|s| s.derived).sum();
            prop_assert_eq!(stats.derived, by_stmt);
            let examined: u64 = stats.statements.iter().map(|s| s.examined).sum();
            prop_assert_eq!(stats.triggers_examined, examined);
            let fired: u64 = stats.statements.iter().map(|s| s.fired).sum();
            prop_assert_eq!(stats.triggers_fired, fired);
            let interned: u64 = stats.statements.iter().map(|s| s.nulls_interned).sum();
            prop_assert_eq!(stats.nulls_interned, interned);
            match observed {
                Ok(res) => prop_assert_eq!(stats.derived, res.derived as u64),
                Err(FixpointError::BudgetExhausted { progress, .. }) => {
                    prop_assert_eq!(stats.derived, progress.derived as u64);
                    prop_assert_eq!(stats.rounds, progress.rounds);
                }
                Err(e) => prop_assert!(false, "unplanned refusal: {e:?}"),
            }
        }
    }

    /// The observed core engine agrees with the plain one on chased
    /// targets (the instances with nulls the paper cares about), and the
    /// counters it reports are consistent with what happened.
    #[test]
    fn observed_core_agrees_with_plain(seed in 0u64..10_000, depth in 1usize..4, facts in 1usize..10) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(&mut syms, "p", &TgdGenOptions {
            max_depth: depth,
            max_children: 2,
            existential_prob: 0.7,
            seed,
        });
        let mapping = NestedMapping::new(vec![tgd], vec![]).expect("generated tgd is valid");
        let rels: Vec<(RelId, usize)> = mapping
            .schema
            .relations()
            .filter(|&(_, _, s)| s == Side::Source)
            .map(|(r, a, _)| (r, a))
            .collect();
        let source = random_instance(&mut syms, &rels, &InstanceGenOptions {
            facts,
            domain: 3,
            seed: seed.wrapping_mul(97).wrapping_add(13),
        });
        let (res, _) = chase_mapping(&source, &mapping, &mut syms);

        let plain = core_of(&res.target);
        let stats = HomStats::new();
        let observed = core_of_observed(&res.target, &stats);
        prop_assert_eq!(&plain, &observed);

        let snap = stats.snapshot();
        prop_assert!(snap.retractions <= snap.retraction_probes);
        prop_assert!(snap.blocks_solved <= snap.block_searches);
        if observed.len() < res.target.len() {
            prop_assert!(snap.retractions > 0, "a shrinking core must report retractions");
        }

        let check = HomStats::new();
        prop_assert!(is_core_observed(&observed, &check));
        prop_assert_eq!(check.snapshot().retractions, 0);
    }
}
