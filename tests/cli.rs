//! End-to-end tests of the `ndl` command-line front end.

use std::process::Command;

fn ndl(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ndl"))
        .args(args)
        .output()
        .expect("ndl runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

#[test]
fn parse_nested() {
    let (ok, out) = ndl(&[
        "parse",
        "forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))",
    ]);
    assert!(ok);
    assert!(out.contains("2 parts"));
    assert!(out.contains("S: S1/1, S2/1; T: R/2"));
}

#[test]
fn parse_so_and_egd() {
    let (ok, out) = ndl(&["parse", "--so", "exists f . S(x,y) -> R(f(x),f(y))"]);
    assert!(ok);
    assert!(out.contains("plain"));
    let (ok, out) = ndl(&["parse", "--egd", "S(x,y) & S(x2,y) -> x = x2"]);
    assert!(ok);
    assert!(out.contains("x = x2"));
}

#[test]
fn skolemize_matches_paper() {
    let (ok, out) = ndl(&[
        "skolemize",
        "forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
    ]);
    assert!(ok);
    assert!(out.contains("f(x1,x2)"));
}

#[test]
fn chase_with_core() {
    let (ok, out) = ndl(&[
        "chase",
        "--tgd",
        "S(x,y) -> exists z (R(x,z) & R(z,y))",
        "--fact",
        "S(a,b)",
        "--core",
    ]);
    assert!(ok);
    assert!(out.contains("2 facts"));
    assert!(out.contains("R(a,f(a,b))"));
}

#[test]
fn chase_rejects_egd_violation() {
    let (ok, _) = ndl(&[
        "chase",
        "--tgd",
        "S(x,y) -> R(x,y)",
        "--egd",
        "S(x,y) & S(x2,y) -> x = x2",
        "--fact",
        "S(a,c)",
        "--fact",
        "S(b,c)",
    ]);
    assert!(!ok);
}

#[test]
fn implies_example_310() {
    let (ok, out) = ndl(&[
        "implies",
        "--premise",
        "S1(x1) & S2(x2) -> R(x2,x1)",
        "--conclusion",
        "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
    ]);
    assert!(ok);
    assert!(out.contains("true"));
    assert!(out.contains("k = 3"));
    let (ok, out) = ndl(&[
        "implies",
        "--premise",
        "S2(x2) -> exists z R(x2,z)",
        "--conclusion",
        "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
    ]);
    assert!(ok);
    assert!(out.contains("false"));
    assert!(out.contains("counterexample"));
}

#[test]
fn classify_both_ways() {
    let (ok, out) = ndl(&[
        "classify",
        "--tgd",
        "forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))",
    ]);
    assert!(ok);
    assert!(out.contains("GLAV-equivalent: no"));
    let (ok, out) = ndl(&[
        "classify",
        "--tgd",
        "forall x1 (P(x1) -> exists y (forall x2 (Q(x2) -> U(x2,x2))))",
    ]);
    assert!(ok);
    assert!(out.contains("GLAV-equivalent: yes"));
}

#[test]
fn equiv_splits() {
    let (ok, out) = ndl(&[
        "equiv",
        "--left",
        "S(x,y) -> R(x,y) & T(y,x)",
        "--right",
        "S(x,y) -> R(x,y)",
        "--right",
        "S(x,y) -> T(y,x)",
    ]);
    assert!(ok);
    assert!(out.contains("true"));
}

#[test]
fn compose_and_certain() {
    let (ok, out) = ndl(&[
        "compose",
        "--first",
        "P(x) -> exists u Q(x,u)",
        "--second",
        "Q(x,u) -> exists w T(u,w)",
    ]);
    assert!(ok);
    assert!(out.contains("full SO tgd"));
    let (ok, out) = ndl(&[
        "certain",
        "--tgd",
        "S(x,y) -> exists z (R(x,z) & R(z,y))",
        "--fact",
        "S(a,b)",
        "--query",
        "q(x,y) :- R(x,z) & R(z,y)",
    ]);
    assert!(ok);
    assert!(out.contains("(a, b)"));
}

#[test]
fn bad_input_fails_gracefully() {
    let (ok, _) = ndl(&["implies", "--conclusion", "S(x) -> R(x)"]);
    assert!(!ok);
    let (ok, _) = ndl(&["nonsense"]);
    assert!(!ok);
    let (ok, _) = ndl(&["parse", "S(x ->"]);
    assert!(!ok);
}

/// Runs `ndl` and returns (exit code, stdout).
fn ndl_code(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ndl"))
        .args(args)
        .output()
        .expect("ndl runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().expect("exit code"), stdout)
}

#[test]
fn analyze_summarizes_a_program() {
    let dir = std::env::temp_dir().join("ndl_cli_analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("copy.ndl");
    std::fs::write(
        &path,
        "S(x,y) -> exists z (R(x,z) & T(z,y))\nfact: S(a,b)\n",
    )
    .unwrap();
    let (code, out) = ndl_code(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(out.contains("termination: richly-acyclic"), "{out}");
    assert!(out.contains("chase size: O(n^2)"), "{out}");
    assert!(out.contains("fan-in 2, fan-out 2"), "{out}");

    let (code, json) = ndl_code(&["analyze", "--json", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(json.contains("\"class\": \"richly-acyclic\""), "{json}");

    let (code, dot) = ndl_code(&["analyze", "--dot", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(dot.starts_with("digraph analysis {"), "{dot}");
    assert!(dot.contains("cluster_positions"), "{dot}");
    assert!(dot.contains("cluster_skolem"), "{dot}");
}

#[test]
fn analyze_reports_cycles_with_their_witness() {
    let dir = std::env::temp_dir().join("ndl_cli_analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cyclic.ndl");
    std::fs::write(&path, "E(x,y) -> exists z E(y,z)\n").unwrap();
    let (code, out) = ndl_code(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, 0, "analyze reports, lint gates");
    assert!(out.contains("termination: cyclic"), "{out}");
    assert!(out.contains("cycle: E.2 =f=> E.2 (statement 1)"), "{out}");
    assert!(out.contains("max rank: unbounded"), "{out}");
    assert!(out.contains("chase size: no polynomial bound"), "{out}");
}

/// I/O and usage failures exit with 101, above the lint findings range.
#[test]
fn io_and_usage_failures_exit_with_101() {
    for args in [
        &["lint", "/no/such/file.ndl"][..],
        &["analyze", "/no/such/file.ndl"],
        &["analyze"],
        &["nonsense"],
    ] {
        let (code, _) = ndl_code(args);
        assert_eq!(code, 101, "args {args:?}");
    }
}

/// The lint exit code counts findings but saturates at 100, so it can
/// never collide with the 101 failure code.
#[test]
fn lint_exit_code_caps_at_100() {
    let dir = std::env::temp_dir().join("ndl_cli_cap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("many_errors.ndl");
    let mut src = String::new();
    for i in 0..120 {
        src.push_str(&format!("R{i}(x ->\n")); // 120 parse errors
    }
    std::fs::write(&path, src).unwrap();
    let (code, _) = ndl_code(&["lint", "--json", path.to_str().unwrap()]);
    assert_eq!(code, 100);
}

fn ndl_err(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ndl"))
        .args(args)
        .output()
        .expect("ndl runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// `ndl chase <file>` runs the planned fixpoint chase end to end.
#[test]
fn chase_file_reaches_fixpoint() {
    let (ok, out) = ndl(&["chase", "examples/programs/running.ndl"]);
    assert!(ok);
    assert!(out.contains("fixpoint: 3 facts (1 derived, 1 nulls) in 2 rounds"));
    assert!(out.contains("R3(f(a),b)"));
}

/// `--stats` replaces the fact listing with the collected chase statistics
/// as JSON on stdout; `--no-timings` zeroes the clock fields so the output
/// is deterministic.
#[test]
fn chase_file_stats_json_is_deterministic() {
    let (ok, out, _) = ndl_err(&[
        "chase",
        "examples/programs/running.ndl",
        "--stats",
        "--no-timings",
    ]);
    assert!(ok);
    assert!(out.contains("\"outcome\": \"fixpoint\""));
    assert!(out.contains("\"rounds\": 2"));
    assert!(out.contains("\"elapsed_ns\": 0"));
    let again = ndl_err(&[
        "chase",
        "examples/programs/running.ndl",
        "--stats",
        "--no-timings",
    ]);
    assert_eq!(out, again.1, "redacted stats output is reproducible");
}

/// `--trace` writes one JSONL event per lifecycle point.
#[test]
fn chase_file_trace_writes_jsonl() {
    let dir = std::env::temp_dir().join("ndl_cli_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("running.jsonl");
    let (ok, _) = ndl(&[
        "chase",
        "examples/programs/running.ndl",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(ok);
    let trace = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = trace.lines().collect();
    assert!(lines.first().unwrap().contains("\"event\":\"chase_start\""));
    assert!(lines.last().unwrap().contains("\"event\":\"chase_end\""));
    assert!(trace.contains("\"event\":\"statement\""));
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"event\":\"round_start\""))
            .count(),
        lines
            .iter()
            .filter(|l| l.contains("\"event\":\"round_end\""))
            .count(),
    );
}

/// A non-terminating program is refused with a diagnosis and a hint to
/// re-run with an explicit budget; with `--budget N` the bounded run is a
/// legitimate result and exits clean, reporting the partial progress.
#[test]
fn chase_file_refusal_and_budget() {
    let (ok, _, err) = ndl_err(&["chase", "examples/programs/recursive.ndl"]);
    assert!(!ok);
    assert!(err.contains("not guaranteed to terminate"));
    assert!(err.contains("--budget"));

    let (ok, out, _) = ndl_err(&[
        "chase",
        "examples/programs/recursive.ndl",
        "--budget",
        "10",
        "--stats",
        "--no-timings",
    ]);
    assert!(ok, "a budgeted cutoff is a legitimate bounded run");
    assert!(out.contains("\"outcome\": \"budget-exhausted\""));
    assert!(out.contains("\"derived\": 11"));
}

/// `lint --stats` and `analyze --stats` report run statistics on stderr,
/// keeping stdout identical to an unflagged run.
#[test]
fn lint_and_analyze_stats_go_to_stderr() {
    let (ok, out, err) = ndl_err(&["lint", "examples/programs/running.ndl", "--stats"]);
    assert!(ok);
    assert!(err.contains("\"command\":\"lint\""));
    // The running example reports the five info-level relation-role
    // findings (R2/R3/R4 write-only, S2/S4 read-only), no errors.
    assert!(err.contains("\"diagnostics\":5"));
    let plain = ndl(&["lint", "examples/programs/running.ndl"]);
    assert_eq!(out, plain.1, "--stats must not perturb stdout");

    let (ok, out, err) = ndl_err(&["analyze", "examples/programs/running.ndl", "--stats"]);
    assert!(ok);
    assert!(err.contains("\"command\":\"analyze\""));
    assert!(err.contains("\"statements\":4"));
    let plain = ndl(&["analyze", "examples/programs/running.ndl"]);
    assert_eq!(out, plain.1, "--stats must not perturb stdout");
}
