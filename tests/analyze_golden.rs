//! Golden tests for `ndl analyze` over the example programs in
//! `examples/programs/`, classification of the paper's worked examples,
//! and the analysis-to-chase handoff (refusal of non-terminating
//! programs with an NDL020-backed diagnosis).

use nested_deps::analyze::AnalysisReport;
use nested_deps::prelude::*;
use std::process::Command;

fn example(name: &str) -> String {
    format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(example(&format!("golden/{name}"))).expect("golden file exists")
}

/// Runs `ndl analyze <flag> <example>` and returns its stdout.
fn analyze_cli(name: &str, flag: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_ndl"))
        .args(["analyze", flag, &example(name)])
        .output()
        .expect("ndl runs");
    assert!(out.status.success(), "analyze fails on {name}");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn example_reports_match_the_committed_goldens() {
    for name in ["running", "recursive", "pipeline"] {
        let got = analyze_cli(&format!("{name}.ndl"), "--json");
        let want = golden(&format!("{name}.json"));
        assert_eq!(got.trim_end(), want.trim_end(), "golden drift for {name}");
        // The goldens parse back into reports (schema stability).
        let report = AnalysisReport::from_json(&want).expect("golden parses");
        assert_eq!(report.to_json(), want.trim_end());
    }
}

#[test]
fn running_example_dot_matches_the_committed_golden() {
    let got = analyze_cli("running.ndl", "--dot");
    assert_eq!(got, golden("running.dot"));
}

#[test]
fn library_report_matches_the_cli() {
    for name in ["running", "recursive", "pipeline"] {
        let src = std::fs::read_to_string(example(&format!("{name}.ndl"))).unwrap();
        let mut syms = SymbolTable::new();
        let (analysis, parse_errors) = ChaseAnalysis::analyze_source(&mut syms, &src);
        assert_eq!(parse_errors, 0);
        let want = golden(&format!("{name}.json"));
        assert_eq!(analysis.report(&syms).to_json(), want.trim_end());
    }
}

/// The worked examples of the paper all sit inside the weakly acyclic
/// fragment — in fact, being source-to-target, no created value ever
/// re-enters a body, so they are richly acyclic and every chase variant
/// terminates on them.
#[test]
fn paper_worked_examples_are_weakly_acyclic() {
    let fixtures: &[(&str, &str)] = &[
        (
            "running_sigma",
            "forall x1 (S1(x1) -> exists y1 (forall x2 (S2(x2) -> R2(y1,x2)) & \
             forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
             forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
        ),
        (
            "tau_310",
            "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
        ),
        (
            "intro_nested",
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
        ),
        (
            "sigma_48",
            "so: exists f . S(x,y) -> R(f(x),f(y)) & R(f(y),f(x))",
        ),
        ("tau_413", "so: exists f . S(x,y) -> R(f(x),f(y))"),
        (
            "sigma_414",
            "so: exists f,g . S(x,y) & Q(z) -> R(f(z,x),f(z,y),g(z))",
        ),
        (
            "sigma_415",
            "so: exists f,g . S(x,y) & Q(z) -> R(f(z,x,y),g(z),x)",
        ),
        (
            "nested_415",
            "forall z (Q(z) -> exists u (forall x,y (S(x,y) -> exists v R(v,u,x))))",
        ),
    ];
    for (name, text) in fixtures {
        let mut syms = SymbolTable::new();
        let (analysis, parse_errors) = ChaseAnalysis::analyze_source(&mut syms, text);
        assert_eq!(parse_errors, 0, "{name} parses");
        assert!(
            analysis.termination.class <= TerminationClass::WeaklyAcyclic,
            "{name} classified {:?}",
            analysis.termination.class
        );
        // Source-to-target: richly acyclic, with a polynomial size bound.
        assert_eq!(
            analysis.termination.class,
            TerminationClass::RichlyAcyclic,
            "{name}"
        );
        assert!(analysis.cost.size_degree.is_some(), "{name}");
    }
}

/// Skolemizes each tgd statement of a program text for the fixpoint chase.
fn so_tgds(syms: &mut SymbolTable, texts: &[&str]) -> Vec<SoTgd> {
    texts
        .iter()
        .map(|t| {
            let tgd = parse_nested_tgd(syms, t).expect("tgd parses");
            skolemize(&tgd, syms).0
        })
        .collect()
}

/// The chase-refusal path: a cyclic program's plan carries the same
/// diagnosis the linter reports as NDL020, the fixpoint chase refuses to
/// run it without a budget, and a budget turns the refusal into a
/// bounded `BudgetExhausted`.
#[test]
fn fixpoint_chase_refuses_cyclic_programs_with_the_lint_diagnosis() {
    let text = "E(x,y) -> exists z E(y,z)";
    let mut syms = SymbolTable::new();
    let (analysis, _) = ChaseAnalysis::analyze_source(&mut syms, text);
    assert_eq!(analysis.termination.class, TerminationClass::Cyclic);

    // The plan's diagnosis is the NDL020 story.
    let plan = analysis.plan(None);
    assert!(!plan.guaranteed_terminating);
    let diagnosis = plan
        .diagnosis
        .clone()
        .expect("cyclic plans carry a diagnosis");
    assert!(diagnosis.contains("not weakly acyclic"), "{diagnosis}");
    let diags = lint_source(&mut syms, text, &LintOptions::default());
    let ndl020 = diags.iter().find(|d| d.code == "NDL020").expect("NDL020");
    assert!(ndl020.message.contains("not weakly acyclic"));

    let tgds = so_tgds(&mut syms, &[text]);
    let mut source = Instance::new();
    source.insert(parse_fact(&mut syms, "E(a,b)").unwrap());

    // Without a budget the engine refuses outright...
    let mut nulls = NullFactory::new();
    match chase_fixpoint(&source, &tgds, &plan, &mut nulls) {
        Err(FixpointError::NonTerminating { diagnosis: d }) => {
            let d = d.expect("refusal carries the analyzer diagnosis");
            assert!(d.contains("not weakly acyclic"), "{d}")
        }
        other => panic!("expected refusal, got {other:?}"),
    }

    // ...and with one, it stops at the budget instead of diverging.
    let budgeted = analysis.plan(Some(16));
    let mut nulls = NullFactory::new();
    match chase_fixpoint(&source, &tgds, &budgeted, &mut nulls) {
        Err(FixpointError::BudgetExhausted { budget, .. }) => assert_eq!(budget, 16),
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

/// Richly acyclic plans run to a fixpoint without any budget.
#[test]
fn fixpoint_chase_runs_guaranteed_plans_unbudgeted() {
    let texts = ["S(x) -> exists y T(x,y)", "T(x,y) -> exists z U(y,z)"];
    let mut syms = SymbolTable::new();
    let (analysis, _) = ChaseAnalysis::analyze_source(&mut syms, &texts.join("\n"));
    assert_eq!(analysis.termination.class, TerminationClass::RichlyAcyclic);
    let tgds = so_tgds(&mut syms, &texts);
    let mut source = Instance::new();
    source.insert(parse_fact(&mut syms, "S(a)").unwrap());
    let mut nulls = NullFactory::new();
    let res = chase_fixpoint(&source, &tgds, &analysis.plan(None), &mut nulls)
        .expect("guaranteed plan runs");
    assert_eq!(res.derived, 2); // T(a,f(a)) and U(f(a),g(a,f(a)))
    assert!(res.instance.nulls().len() >= 2);
}
