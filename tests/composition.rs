//! Integration tests for GLAV composition into SO tgds (reference [8] of
//! the paper) and its interaction with the paper's hierarchy results.

use nested_deps::prelude::*;
use nested_deps::reasoning::{compose_glav, two_step_chase};

/// chase(I, σ13) must be hom-equivalent to the two-step composition chase.
fn verify(
    m12: &[StTgd],
    m23: &[StTgd],
    sigma13: &SoTgd,
    source: &Instance,
    syms: &mut SymbolTable,
) {
    let mut nulls = NullFactory::new();
    let direct = chase_so(source, sigma13, &mut nulls);
    let two = two_step_chase(source, m12, m23, syms);
    assert!(
        hom_equivalent(&direct, &two),
        "direct {} vs two-step {}",
        direct.display(syms),
        two.display(syms)
    );
}

#[test]
fn chain_of_three_mappings() {
    // Compose (M12 ∘ M23) ∘ M34 by composing pairwise... our composer
    // takes GLAV inputs, so associate the GLAV stages: first compose
    // M23 ∘ M34, then verify (M12 ∘ (M23 ∘ M34)) against a three-step
    // chase. Since the intermediate composition is an SO tgd (not GLAV),
    // we check the final semantics directly via chained chases.
    let mut syms = SymbolTable::new();
    let m12 = vec![parse_st_tgd(&mut syms, "A(x) -> exists u B(x,u)").unwrap()];
    let m23 = vec![parse_st_tgd(&mut syms, "B(x,u) -> C(u,x)").unwrap()];
    let m34 = vec![parse_st_tgd(&mut syms, "C(u,x) -> exists w D(x,u,w)").unwrap()];
    // σ(12)(23): A(x) → C(f(x), x).
    let s12_23 = compose_glav(&m12, &m23, &mut syms).unwrap();
    assert!(s12_23.is_plain());
    // Verify both stages pairwise.
    let a = syms.rel("A");
    let c1 = Value::Const(syms.constant("c1"));
    let c2 = Value::Const(syms.constant("c2"));
    let source = Instance::from_facts([Fact::new(a, vec![c1]), Fact::new(a, vec![c2])]);
    verify(&m12, &m23, &s12_23, &source, &mut syms);
    let s23_34 = compose_glav(&m23, &m34, &mut syms).unwrap();
    let b = syms.rel("B");
    let mid = Instance::from_facts([Fact::new(b, vec![c1, c2])]);
    verify(&m23, &m34, &s23_34, &mid, &mut syms);
}

#[test]
fn composition_with_full_tgds_and_joins() {
    let mut syms = SymbolTable::new();
    // M12 copies with a swap; M23 joins.
    let m12 = vec![
        parse_st_tgd(&mut syms, "E(x,y) -> F(y,x)").unwrap(),
        parse_st_tgd(&mut syms, "V(x) -> exists c G(x,c)").unwrap(),
    ];
    let m23 = vec![parse_st_tgd(&mut syms, "F(y,x) & G(x,c) -> H(y,c)").unwrap()];
    let sigma = compose_glav(&m12, &m23, &mut syms).unwrap();
    assert_eq!(sigma.clauses.len(), 1);
    let e = syms.rel("E");
    let v = syms.rel("V");
    let a = Value::Const(syms.constant("a"));
    let b = Value::Const(syms.constant("b"));
    let source = Instance::from_facts([
        Fact::new(e, vec![a, b]),
        Fact::new(v, vec![a]),
        Fact::new(v, vec![b]),
    ]);
    verify(&m12, &m23, &sigma, &source, &mut syms);
}

#[test]
fn composition_output_feeds_the_separation_tools() {
    // The composition of two innocuous GLAV stages can already fail to be
    // nested-GLAV-expressible: compose "copy the edge relation through an
    // element renaming" — the Section 1 tgd S(x,y) → R(f(x),f(y)) *is*
    // such a composition: M12: S(x,y) → N(x,y) plus node renaming
    // M12': V(x) → exists u Rn(x,u); M23: N(x,y) & Rn(x,u) & Rn(y,w) →
    // R(u,w).
    let mut syms = SymbolTable::new();
    let m12 = vec![
        parse_st_tgd(&mut syms, "S(x,y) -> N(x,y)").unwrap(),
        parse_st_tgd(&mut syms, "S(x,y) -> exists u Rn(x,u)").unwrap(),
        parse_st_tgd(&mut syms, "S(x,y) -> exists w Rn(y,w)").unwrap(),
    ];
    let m23 = vec![parse_st_tgd(&mut syms, "N(x,y) & Rn(x,u) & Rn(y,w) -> R(u,w)").unwrap()];
    let sigma = compose_glav(&m12, &m23, &mut syms).unwrap();
    // Many clauses (producer combinations), with equalities in the mixed
    // ones.
    assert!(sigma.clauses.len() >= 4);
    let s = syms.rel("S");
    let a = Value::Const(syms.constant("a"));
    let b = Value::Const(syms.constant("b"));
    let c = Value::Const(syms.constant("c"));
    let source = Instance::from_facts([Fact::new(s, vec![a, b]), Fact::new(s, vec![b, c])]);
    verify(&m12, &m23, &sigma, &source, &mut syms);
}

mod random_compositions {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random chaining GLAV pairs: Σ12 over P* → Q*, Σ23 over Q* → T*.
    fn random_stages(seed: u64) -> (SymbolTable, Vec<StTgd>, Vec<StTgd>, Instance) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut syms = SymbolTable::new();
        let n_mid = rng.gen_range(1..=2usize);
        let mut m12 = Vec::new();
        for i in 0..rng.gen_range(1..=2usize) {
            let q = rng.gen_range(0..n_mid);
            let text = match rng.gen_range(0..3) {
                0 => format!("P{i}(x,y) -> Q{q}(y,x)"),
                1 => format!("P{i}(x,y) -> exists u Q{q}(x,u)"),
                _ => format!("P{i}(x,y) -> exists u (Q{q}(x,u) & Q{q}(u,y))"),
            };
            m12.push(parse_st_tgd(&mut syms, &text).unwrap());
        }
        let mut m23 = Vec::new();
        for i in 0..rng.gen_range(1..=2usize) {
            let qa = rng.gen_range(0..n_mid);
            let text = match rng.gen_range(0..3) {
                0 => format!("Q{qa}(x,y) -> T{i}(x,y)"),
                1 => format!("Q{qa}(x,y) -> exists w T{i}(y,w)"),
                _ => format!("Q{qa}(x,y) & Q{qa}(y,z) -> exists w T{i}(x,w)"),
            };
            m23.push(parse_st_tgd(&mut syms, &text).unwrap());
        }
        // Random source over the P-relations.
        let mut source = Instance::new();
        let pool: Vec<Value> = (0..3)
            .map(|i| Value::Const(syms.constant(&format!("d{i}"))))
            .collect();
        for i in 0..m12.len() {
            let p = syms.rel(&format!("P{i}"));
            for _ in 0..rng.gen_range(0..3usize) {
                let x = pool[rng.gen_range(0..pool.len())];
                let y = pool[rng.gen_range(0..pool.len())];
                source.insert(Fact::new(p, vec![x, y]));
            }
        }
        (syms, m12, m23, source)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The composed SO tgd is always semantically correct: its chase is
        /// hom-equivalent to the two-step chase through the middle schema.
        #[test]
        fn composition_is_always_correct(seed in 0u64..5_000) {
            let (mut syms, m12, m23, source) = random_stages(seed);
            let sigma = compose_glav(&m12, &m23, &mut syms).unwrap();
            let mut nulls = NullFactory::new();
            let direct = chase_so(&source, &sigma, &mut nulls);
            let two = two_step_chase(&source, &m12, &m23, &mut syms);
            prop_assert!(
                hom_equivalent(&direct, &two),
                "direct {} vs two-step {}",
                direct.display(&syms),
                two.display(&syms)
            );
        }
    }
}

#[test]
fn identity_composition() {
    let mut syms = SymbolTable::new();
    let m12 = vec![parse_st_tgd(&mut syms, "P(x,y) -> M(x,y)").unwrap()];
    let m23 = vec![parse_st_tgd(&mut syms, "M(x,y) -> T(x,y)").unwrap()];
    let sigma = compose_glav(&m12, &m23, &mut syms).unwrap();
    assert!(sigma.is_plain());
    assert!(sigma.occurring_funcs().is_empty());
    let p = syms.rel("P");
    let t = syms.rel("T");
    let a = Value::Const(syms.constant("a"));
    let source = Instance::from_facts([Fact::new(p, vec![a, a])]);
    let mut nulls = NullFactory::new();
    let direct = chase_so(&source, &sigma, &mut nulls);
    assert!(direct.contains_tuple(t, &[a, a]));
    verify(&m12, &m23, &sigma, &source, &mut syms);
}
