//! Integration tests for Section 3 of the paper: the chase forest,
//! patterns, canonical instances, and the IMPLIES decision procedure.

use nested_deps::prelude::*;

fn running_sigma(syms: &mut SymbolTable) -> NestedTgd {
    parse_nested_tgd(
        syms,
        "forall x1 (S1(x1) -> exists y1 (\
           forall x2 (S2(x2) -> R2(y1,x2)) & \
           forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
             forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
    )
    .unwrap()
}

/// Figure 1: σ has exactly 8 one-patterns, all distinct and valid.
#[test]
fn figure1_one_patterns() {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    let patterns = k_patterns(&sigma, 1, 100_000).unwrap();
    assert_eq!(patterns.len(), 8);
    let mut displays: Vec<String> = patterns.iter().map(Pattern::display).collect();
    displays.sort();
    assert_eq!(
        displays,
        vec![
            "s1",
            "s1(s2 s3 s3(s4))",
            "s1(s2 s3(s4))",
            "s1(s2 s3)",
            "s1(s2)",
            "s1(s3 s3(s4))",
            "s1(s3(s4))",
            "s1(s3)",
        ]
    );
}

/// Figure 2: the canonical instances of the pattern p8 = σ1(σ2 σ3(σ4)).
#[test]
fn figure2_canonical_instances() {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    let info = SkolemInfo::for_nested(&sigma, &mut syms);
    let mut p8 = Pattern::root_only(0);
    p8.add_child(0, 1);
    let s3 = p8.add_child(0, 2);
    p8.add_child(s3, 3);
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(&sigma, &info, &p8, &mut syms, &mut nulls);
    assert_eq!(
        pair.source.display(&syms),
        "S1(a1), S2(a2), S3(a1,a3), S4(a3,a4)"
    );
    assert_eq!(
        nulls.display_instance(&pair.target, &syms),
        "R2(f(a1),a2), R3(f(a1),a3), R4(g(a1,a3,a4),a4)"
    );
}

/// The Skolemized form displayed in Section 2: y1 ↦ f(x1), y2 ↦ g(x1,x3,x4).
#[test]
fn section2_skolemization() {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    let (so, info) = skolemize(&sigma, &mut syms);
    assert!(so.is_plain());
    let y1 = syms.find_var("y1").unwrap();
    let y2 = syms.find_var("y2").unwrap();
    assert_eq!(
        info.term_for(y1).unwrap().display(&syms).to_string(),
        "f(x1)"
    );
    assert_eq!(
        info.term_for(y2).unwrap().display(&syms).to_string(),
        "g(x1,x3,x4)"
    );
}

/// Example 3.10, full run: τ' ⊭ τ (k = 2) and τ'' ⊨ τ (k = 3), with the
/// homomorphism check on the 2-pattern p''₂ exactly as displayed.
#[test]
fn example_310_implies() {
    let mut syms = SymbolTable::new();
    let tau = parse_nested_tgd(
        &mut syms,
        "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
    )
    .unwrap();
    let tau_p = NestedMapping::parse(&mut syms, &["S2(x2) -> exists z R(x2,z)"], &[]).unwrap();
    let tau_pp = NestedMapping::parse(&mut syms, &["S1(x1) & S2(x2) -> R(x2,x1)"], &[]).unwrap();
    let opts = ImpliesOptions::default();

    let r1 = implies_tgd(&tau_p, &tau, &mut syms, &opts).unwrap();
    assert!(!r1.holds);
    assert_eq!(r1.k, 2);
    // The counterexample is a pattern with at least one nested node: its
    // canonical target has the shared null f(a1) that τ' cannot produce.
    let ce = r1.counterexample.unwrap();
    assert!(ce.target.nulls().len() == 1);
    assert!(!homomorphic(&ce.target, &ce.chased));

    let r2 = implies_tgd(&tau_pp, &tau, &mut syms, &opts).unwrap();
    assert!(r2.holds);
    assert_eq!(r2.k, 3);
    assert_eq!(r2.patterns_checked, 4);
}

/// The manual p''₂ check from Example 3.10: I = {S1(a1), S2(a2), S2(a2')};
/// chase with τ' gives per-tuple nulls (no hom), with τ'' gives ground
/// facts (hom exists).
#[test]
fn example_310_manual_p2_check() {
    let mut syms = SymbolTable::new();
    let tau = parse_nested_tgd(
        &mut syms,
        "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
    )
    .unwrap();
    let info = SkolemInfo::for_nested(&tau, &mut syms);
    let mut p2 = Pattern::root_only(0);
    p2.add_child(0, 1);
    p2.add_child(0, 1);
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(&tau, &info, &p2, &mut syms, &mut nulls);
    assert_eq!(pair.source.len(), 3);
    assert_eq!(pair.target.len(), 2);
    // chase with τ': J = {R(a2,g(a2)), R(a2_1,g(a2_1))} — no homomorphism.
    let tau_p = parse_st_tgd(&mut syms, "S2(x2) -> exists z R(x2,z)").unwrap();
    let mut n2 = NullFactory::new();
    let chased_p = chase_st(&pair.source, &[tau_p], &mut syms, &mut n2);
    assert_eq!(chased_p.nulls().len(), 2);
    assert!(!homomorphic(&pair.target, &chased_p));
    // chase with τ'': J = {R(a2,a1), R(a2_1,a1)} — [f(a1) ↦ a1] works.
    let tau_pp = parse_st_tgd(&mut syms, "S1(x1) & S2(x2) -> R(x2,x1)").unwrap();
    let mut n3 = NullFactory::new();
    let chased_pp = chase_st(&pair.source, &[tau_pp], &mut syms, &mut n3);
    assert!(chased_pp.nulls().is_empty());
    let h = find_homomorphism(&pair.target, &chased_pp).unwrap();
    assert_eq!(h.len(), 1); // a single null f(a1), mapped to a1
}

/// Distinct chase trees produce facts sharing no nulls — "one of the key
/// underpinnings of our decidability result" (Section 3).
#[test]
fn chase_trees_share_no_nulls() {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    let prep = Prepared::new(sigma, &mut syms);
    let s1 = syms.rel("S1");
    let s3 = syms.rel("S3");
    let s4 = syms.rel("S4");
    let mut source = Instance::new();
    for i in 0..4 {
        let a = Value::Const(syms.constant(&format!("a{i}")));
        let b = Value::Const(syms.constant(&format!("b{i}")));
        let c = Value::Const(syms.constant(&format!("c{i}")));
        source.insert(Fact::new(s1, vec![a]));
        source.insert(Fact::new(s3, vec![a, b]));
        source.insert(Fact::new(s4, vec![b, c]));
    }
    let mut nulls = NullFactory::new();
    let res = chase_nested(&source, &[prep], &mut nulls);
    assert_eq!(res.forest.roots.len(), 4);
    for (i, &r1) in res.forest.roots.iter().enumerate() {
        for &r2 in &res.forest.roots[i + 1..] {
            let n1 = res.forest.tree_facts(r1).nulls();
            let n2 = res.forest.tree_facts(r2).nulls();
            assert!(n1.is_disjoint(&n2));
        }
    }
}

/// Example 3.4: the tgd with a single nested part over the same variable
/// only realizes two-node chase trees, yet enumerating (unrealizable)
/// larger patterns does not hurt the correctness of IMPLIES.
#[test]
fn example_34_unrealizable_patterns_are_harmless() {
    let mut syms = SymbolTable::new();
    let sigma = parse_nested_tgd(&mut syms, "forall x1 (S1(x1) -> ((S2(x1) -> T2(x1))))").unwrap();
    let m = NestedMapping::new(vec![sigma.clone()], vec![]).unwrap();
    // Equivalent single s-t tgd.
    let st = NestedMapping::parse(&mut syms, &["S1(x1) & S2(x1) -> T2(x1)"], &[]).unwrap();
    let opts = ImpliesOptions::default();
    assert!(equivalent(&m, &st, &mut syms, &opts).unwrap());
}

/// Corollary 3.11 sanity: equivalence is reflexive, symmetric in outcome,
/// and distinguishes inequivalent mappings.
#[test]
fn equivalence_behaves() {
    let mut syms = SymbolTable::new();
    let a = NestedMapping::parse(
        &mut syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .unwrap();
    // Same tgd with the head conjunct order flipped via an equivalent
    // formulation: R(y,x2) is subsumed by the inner part at x3 = x2.
    let b = NestedMapping::parse(
        &mut syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .unwrap();
    let opts = ImpliesOptions::default();
    assert!(equivalent(&a, &b, &mut syms, &opts).unwrap());
    let c = NestedMapping::parse(&mut syms, &["S(x1,x2) -> exists y R(y,x2)"], &[]).unwrap();
    assert!(!equivalent(&a, &c, &mut syms, &opts).unwrap());
    assert!(implies_mapping(&a, &c, &mut syms, &opts).unwrap());
}
