//! Golden tests for `ndl lint --json` over the fixture programs in
//! `tests/lints/`: stable codes, severities, line/column anchors, exit
//! codes, and the JSON ↔ library round trip.

use nested_deps::analyze::{self, lint_source, Diagnostic, LintOptions, Severity};
use nested_deps::prelude::SymbolTable;
use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/lints/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs `ndl lint --json <fixture>` and returns (exit code, diagnostics).
fn lint_json(name: &str) -> (i32, Vec<Diagnostic>) {
    let out = Command::new(env!("CARGO_BIN_EXE_ndl"))
        .args(["lint", "--json", &fixture(name)])
        .output()
        .expect("ndl runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let diags = analyze::from_json(&stdout).expect("CLI emits valid diagnostic JSON");
    (out.status.code().expect("exit code"), diags)
}

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn paper_running_example_is_clean() {
    let (code, diags) = lint_json("paper_running.ndl");
    assert_eq!(code, 0);
    // No errors or warnings; the info-level relation-role lints report the
    // target relations (written, never read: R2, R3, R4) and the source
    // relations no fact populates (read, never written: S2, S4).
    assert!(
        diags.iter().all(|d| d.severity == Severity::Info),
        "{diags:?}"
    );
    assert_eq!(
        codes(&diags),
        ["NDL031", "NDL031", "NDL031", "NDL032", "NDL032"]
    );
    assert!(diags[0].message.contains("relation R2"));
    assert!(diags[3].message.contains("relation S2"));
}

#[test]
fn mixed_fixture_reports_all_three_findings() {
    let (code, diags) = lint_json("mixed.ndl");
    // The three position-anchored findings, then the unanchored info
    // lints: relation roles (Q1, Q2, T, U write-only; P, S0 read-only)
    // and the schedule-width report for the two analyzable statements.
    assert_eq!(
        codes(&diags),
        [
            "NDL002", "NDL012", "NDL016", "NDL031", "NDL031", "NDL031", "NDL031", "NDL032",
            "NDL032", "NDL034",
        ]
    );
    // Unsafe variable z, anchored on its quantifier-list occurrence.
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(diags[0].statement, Some(0));
    assert_eq!((diags[0].line, diags[0].col), (Some(3), Some(10)));
    // Non-normalized statement, spanning the whole statement.
    assert_eq!(diags[1].severity, Severity::Warning);
    assert_eq!(diags[1].statement, Some(1));
    assert_eq!((diags[1].line, diags[1].col), (Some(4), Some(1)));
    let span = diags[1].span.expect("statement span");
    assert_eq!(span.len(), "P(x) -> (Q1(x) & Q2(x))".len());
    // Mapping-level cyclic-null warning: no statement, no span.
    assert_eq!(diags[2].severity, Severity::Warning);
    assert_eq!(diags[2].statement, None);
    assert_eq!(diags[2].span, None);
    // Exit code counts error- and warning-severity findings.
    assert_eq!(code, 3);
}

#[test]
fn errors_fixture_covers_the_core_error_codes() {
    let (code, diags) = lint_json("errors.ndl");
    assert_eq!(
        codes(&diags),
        ["NDL001", "NDL003", "NDL005", "NDL006", "NDL031", "NDL032"]
    );
    // The four core findings are errors; the trailing relation-role
    // lints (W write-only, R3 read-only, from the one analyzable
    // statement) are info.
    assert!(diags[..4].iter().all(Diagnostic::is_error));
    let positions: Vec<_> = diags[..4].iter().map(|d| (d.line, d.col)).collect();
    assert_eq!(
        positions,
        [
            (Some(3), Some(5)),  // parse error at the dangling arrow
            (Some(4), Some(15)), // unbound y in the head
            (Some(5), Some(9)),  // the conflicting S3/2 occurrence
            (Some(6), Some(1)),  // R3 re-used on the source side
        ]
    );
    assert_eq!(code, 4);
}

#[test]
fn semantic_fixture_reports_the_termination_error_with_its_cycle() {
    let (code, diags) = lint_json("semantic.ndl");
    assert_eq!(
        codes(&diags),
        ["NDL020", "NDL006", "NDL006", "NDL003", "NDL003", "NDL034"]
    );
    assert_eq!(code, 5);
    // The NDL020 finding is an error spanning the whole first statement of
    // the witness cycle, with one note per edge of the cycle — the special
    // (null-creating) edge first, each anchored to its source position.
    let d = &diags[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.statement, Some(0));
    assert_eq!((d.line, d.col), (Some(5), Some(1)));
    assert_eq!(
        d.span.expect("statement span").len(),
        "A(x) -> exists y B(x,y)".len()
    );
    assert_eq!(d.notes.len(), 2);
    assert_eq!(
        d.notes[0].message,
        "special edge A.1 =f_1=> B.2 (statement 1)"
    );
    assert_eq!((d.notes[0].line, d.notes[0].col), (Some(5), Some(18)));
    assert_eq!(d.notes[1].message, "regular edge B.2 -> A.1 (statement 2)");
    assert_eq!((d.notes[1].line, d.notes[1].col), (Some(6), Some(11)));
}

/// Columns count characters, not bytes: the statement on line 7 sits after
/// multi-byte comment lines and itself contains multi-byte tokens before
/// the offending variables.
#[test]
fn semantic_fixture_columns_are_character_based() {
    let (_, diags) = lint_json("semantic.ndl");
    let unbound: Vec<_> = diags.iter().filter(|d| d.code == "NDL003").collect();
    // Byte-based columns would report 24 and 31 (ï and ï, ü, ß take two
    // bytes each); character columns are 22 and 27.
    assert_eq!((unbound[0].line, unbound[0].col), (Some(7), Some(22)));
    assert_eq!((unbound[1].line, unbound[1].col), (Some(7), Some(27)));
}

#[test]
fn semantic_fixture_renders_the_note_chain_with_aligned_carets() {
    let out = Command::new(env!("CARGO_BIN_EXE_ndl"))
        .args(["lint", &fixture("semantic.ndl")])
        .output()
        .expect("ndl runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[NDL020]: program is not weakly acyclic"));
    assert!(text.contains("note: special edge A.1 =f_1=> B.2 (statement 1)"));
    assert!(text.contains("note: regular edge B.2 -> A.1 (statement 2)"));
    // The caret under the unbound süß aligns by character count.
    assert!(text.contains("7 | S(naïve) -> R(naïve, süß, w)"));
    assert!(text.contains("  |                      ^^^"));
    assert_eq!(out.status.code(), Some(5));
}

#[test]
fn dead_fixture_reports_the_dataflow_lints() {
    let (code, diags) = lint_json("dead.ndl");
    // Position-anchored findings first (the two dead statements, the D
    // side-discipline error, the projection-only y), then the unanchored
    // relation-role/schedule lints and the dataflow reports NDL041–NDL044.
    assert_eq!(
        codes(&diags),
        [
            "NDL040", "NDL006", "NDL040", "NDL017", "NDL031", "NDL031", "NDL031", "NDL032",
            "NDL034", "NDL041", "NDL042", "NDL043", "NDL044",
        ]
    );
    let dead: Vec<_> = diags.iter().filter(|d| d.code == "NDL040").collect();
    assert_eq!(dead[0].severity, Severity::Warning);
    assert_eq!(dead[0].statement, Some(1));
    assert_eq!(dead[1].statement, Some(2));
    // The whole dead statement is underlined.
    assert_eq!(
        dead[0].span.expect("statement span").len(),
        "Z(x) -> D(x)".len()
    );
    let by_code = |c: &str| diags.iter().find(|d| d.code == c).expect(c);
    assert!(by_code("NDL041").message.contains("relation D"));
    assert!(by_code("NDL042").message.contains("relation V"));
    assert!(by_code("NDL043").message.contains("S.2"));
    assert!(by_code("NDL044").message.contains("null-free"));
    // 1 error + 4 warnings.
    assert_eq!(code, 5);
}

#[test]
fn max_findings_caps_the_exit_code() {
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_ndl"))
            .args(args)
            .arg(fixture("dead.ndl"))
            .output()
            .expect("ndl runs")
            .status
            .code()
            .expect("exit code")
    };
    // dead.ndl has 1 error + 4 warnings → exit 5 by default.
    assert_eq!(run(&["lint"]), 5);
    assert_eq!(run(&["lint", "--max-findings", "2"]), 2);
    // The cap never raises the code, and 0 silences it entirely.
    assert_eq!(run(&["lint", "--max-findings", "50"]), 5);
    assert_eq!(run(&["lint", "--max-findings", "0"]), 0);
}

#[test]
fn cli_json_matches_library_output() {
    for name in [
        "paper_running.ndl",
        "mixed.ndl",
        "errors.ndl",
        "semantic.ndl",
        "subsumed.ndl",
        "dead.ndl",
    ] {
        let (_, cli) = lint_json(name);
        let src = std::fs::read_to_string(fixture(name)).unwrap();
        let mut syms = SymbolTable::new();
        let lib = lint_source(&mut syms, &src, &LintOptions::default());
        assert_eq!(cli, lib, "CLI and library disagree on {name}");
        // And the library's own JSON round-trips losslessly.
        assert_eq!(analyze::from_json(&analyze::to_json(&lib)).unwrap(), lib);
    }
}

#[test]
fn human_rendering_carets_the_offending_token() {
    let out = Command::new(env!("CARGO_BIN_EXE_ndl"))
        .args(["lint", &fixture("mixed.ndl")])
        .output()
        .expect("ndl runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[NDL002]: universal variable z"));
    assert!(text.contains("3 | forall x,z (S(x) -> R(x))"));
    assert!(text.contains("  |          ^"));
    assert!(text.contains("1 error, 2 warnings, 7 info"));
}

#[test]
fn subsumed_fixture_reports_the_equivalent_duplicate() {
    let (code, diags) = lint_json("subsumed.ndl");
    // NDL030 anchors on the *later* statement of the α-equivalent pair —
    // IMPLIES holds in both directions, so either could go, and keeping
    // the earlier one is the stable choice. R is write-only (NDL031) and
    // the width-1 schedule is reported (both statements write R: W–W).
    assert_eq!(codes(&diags), ["NDL030", "NDL031", "NDL034"]);
    let d = &diags[0];
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.statement, Some(1));
    assert!(
        d.message.contains("equivalent to statement 0"),
        "{}",
        d.message
    );
    assert!(diags[2].message.contains("width 1"));
    // One warning → exit code 1.
    assert_eq!(code, 1);
}
