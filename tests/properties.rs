//! Property-based tests of the core invariants, driven by seeded random
//! nested tgds and source instances.

use nested_deps::prelude::*;
use proptest::prelude::*;

/// Builds a random nested tgd and a random source instance over its
/// source relations.
fn setup(seed: u64, depth: usize, facts: usize) -> (SymbolTable, NestedMapping, Instance) {
    let mut syms = SymbolTable::new();
    let tgd = random_nested_tgd(
        &mut syms,
        "p",
        &TgdGenOptions {
            max_depth: depth,
            max_children: 2,
            existential_prob: 0.7,
            seed,
        },
    );
    let mapping = NestedMapping::new(vec![tgd], vec![]).expect("generated tgd is valid");
    let rels: Vec<(RelId, usize)> = mapping
        .schema
        .relations()
        .filter(|&(_, _, s)| s == Side::Source)
        .map(|(r, a, _)| (r, a))
        .collect();
    let source = random_instance(
        &mut syms,
        &rels,
        &InstanceGenOptions {
            facts,
            domain: 4,
            seed: seed.wrapping_mul(31).wrapping_add(7),
        },
    );
    (syms, mapping, source)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chase result is a solution: (I, chase(I, M)) ⊨ M.
    #[test]
    fn chase_produces_solutions(seed in 0u64..10_000, depth in 1usize..4, facts in 0usize..12) {
        let (mut syms, mapping, source) = setup(seed, depth, facts);
        let (res, _) = chase_mapping(&source, &mapping, &mut syms);
        prop_assert!(satisfies_mapping(&source, &res.target, &mapping));
    }

    /// Universality: the chase maps homomorphically into every solution we
    /// can construct — here, homomorphic images of the chase (solutions by
    /// closure under target homomorphisms) and supersets.
    #[test]
    fn chase_is_universal(seed in 0u64..10_000, facts in 0usize..10) {
        let (mut syms, mapping, source) = setup(seed, 3, facts);
        let (res, _) = chase_mapping(&source, &mapping, &mut syms);
        let chased = res.target;
        // Core: a homomorphic image, hence a solution; chase must map in.
        let core = core_of(&chased);
        prop_assert!(satisfies_mapping(&source, &core, &mapping));
        prop_assert!(homomorphic(&chased, &core));
        // Superset solution.
        let mut bigger = chased.clone();
        let target_rel = mapping
            .schema
            .relations()
            .find(|&(_, _, s)| s == Side::Target)
            .map(|(r, a, _)| (r, a));
        if let Some((rel, arity)) = target_rel {
            let c = Value::Const(syms.constant("extra"));
            bigger.insert(Fact::new(rel, vec![c; arity]));
            prop_assert!(satisfies_mapping(&source, &bigger, &mapping));
            prop_assert!(homomorphic(&chased, &bigger));
        }
    }

    /// Core invariants: the core is a subinstance, hom-equivalent, and has
    /// no proper retraction.
    #[test]
    fn core_is_a_core(seed in 0u64..10_000, facts in 0usize..10) {
        let (mut syms, mapping, source) = setup(seed, 2, facts);
        let (res, _) = chase_mapping(&source, &mapping, &mut syms);
        let core = core_of(&res.target);
        prop_assert!(verify_core(&core, &res.target));
        // Idempotence.
        prop_assert_eq!(core_of(&core), core);
    }

    /// The nested chase agrees with the SO chase of the Skolemized tgd
    /// (compared via the ground Skolem terms labeling the nulls — the two
    /// engines may allocate `NullId`s in different orders).
    #[test]
    fn skolemization_preserves_chase(seed in 0u64..10_000, facts in 0usize..10) {
        let (mut syms, mapping, source) = setup(seed, 3, facts);
        let tgd = mapping.tgds[0].clone();
        let prep = Prepared::new(tgd.clone(), &mut syms);
        let so = skolemize_with(&tgd, &prep.info);
        let mut n1 = NullFactory::new();
        let nested = chase_nested(&source, &[prep], &mut n1).target;
        let mut n2 = NullFactory::new();
        let so_result = chase_so(&source, &so, &mut n2);
        let canon = |inst: &Instance, nf: &NullFactory| -> std::collections::BTreeSet<String> {
            inst.facts().map(|f| nf.display_fact_ref(f, &syms)).collect()
        };
        prop_assert_eq!(canon(&nested, &n1), canon(&so_result, &n2));
    }

    /// Model checking a nested tgd agrees with the homomorphism criterion
    /// chase(I, σ) → J on perturbed targets.
    #[test]
    fn model_check_agrees_with_hom_criterion(seed in 0u64..5_000, facts in 1usize..8, drop in 0usize..4) {
        let (mut syms, mapping, source) = setup(seed, 2, facts);
        let (res, _) = chase_mapping(&source, &mapping, &mut syms);
        // Perturb: drop `drop` facts from the chase result.
        let all: Vec<Fact> = res.target.facts().map(|f| f.to_fact()).collect();
        let j = Instance::from_facts(all.iter().skip(drop).cloned());
        let tgd = &mapping.tgds[0];
        prop_assert_eq!(
            satisfies_nested(&source, &j, tgd),
            homomorphic(&res.target, &j)
        );
    }

    /// IMPLIES is reflexive on random nested tgds (within pattern budget).
    #[test]
    fn implies_is_reflexive(seed in 0u64..2_000) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            "r",
            &TgdGenOptions { max_depth: 2, max_children: 1, existential_prob: 0.6, seed },
        );
        let mapping = NestedMapping::new(vec![tgd.clone()], vec![]).unwrap();
        let opts = ImpliesOptions { pattern_budget: 50_000 };
        match implies_tgd(&mapping, &tgd, &mut syms, &opts) {
            Ok(report) => prop_assert!(report.holds),
            Err(ReasoningError::PatternBudgetExceeded { .. }) => {} // discard
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The egd chase is idempotent and its result satisfies the egds.
    #[test]
    fn egd_chase_idempotent(seed in 0u64..10_000, facts in 0usize..15) {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let egd = parse_egd(&mut syms, "S(x,y) & S(x,y2) -> y = y2").unwrap();
        let source = random_instance(
            &mut syms,
            &[(s, 2)],
            &InstanceGenOptions { facts, domain: 5, seed },
        );
        let once = chase_egds(&source, std::slice::from_ref(&egd), RigidPolicy::AllFlexible).unwrap();
        prop_assert!(satisfies_egds(&once.instance, std::slice::from_ref(&egd)));
        let twice = chase_egds(&once.instance, std::slice::from_ref(&egd), RigidPolicy::AllFlexible).unwrap();
        prop_assert_eq!(&once.instance, &twice.instance);
        prop_assert!(!twice.merged_anything());
    }

    /// k-pattern enumeration: all patterns valid, clone multiplicities
    /// within k, counts monotone in k.
    #[test]
    fn k_patterns_invariants(seed in 0u64..2_000, k in 1usize..3) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            "k",
            &TgdGenOptions { max_depth: 2, max_children: 2, existential_prob: 0.5, seed },
        );
        let budget = 100_000;
        let (Ok(ps), Ok(ps_next)) = (k_patterns(&tgd, k, budget), k_patterns(&tgd, k + 1, budget)) else {
            return Ok(()); // budget discard
        };
        for p in &ps {
            prop_assert!(p.is_valid_for(&tgd));
            prop_assert!(p.max_clone_multiplicity() <= k);
        }
        prop_assert!(ps_next.len() >= ps.len());
    }

    /// Any homomorphism found is a genuine homomorphism, and the f-blocks
    /// partition the instance's facts.
    #[test]
    fn hom_and_blocks_invariants(seed in 0u64..10_000, facts in 0usize..10) {
        let (mut syms, mapping, source) = setup(seed, 2, facts);
        let (res, _) = chase_mapping(&source, &mapping, &mut syms);
        let chased = res.target;
        let blocks = f_blocks(&chased);
        let total: usize = blocks.iter().map(Instance::len).sum();
        prop_assert_eq!(total, chased.len());
        let core = core_of(&chased);
        if let Some(h) = find_homomorphism(&chased, &core) {
            prop_assert!(nested_deps::hom::is_homomorphism(&h, &chased, &core));
        } else {
            prop_assert!(false, "chase must map into its core");
        }
    }

    /// The indexed trigger matcher agrees with the scan-based one on
    /// random instances and conjunctions.
    #[test]
    fn matcher_agrees_with_scan_randomized(seed in 0u64..10_000, facts in 0usize..20) {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let inst = random_instance(
            &mut syms,
            &[(s, 2), (q, 1)],
            &InstanceGenOptions { facts, domain: 4, seed },
        );
        let x = syms.var("x");
        let y = syms.var("y");
        let z = syms.var("z");
        let queries: Vec<Vec<Atom>> = vec![
            vec![Atom::new(s, vec![x, y]), Atom::new(s, vec![y, z])],
            vec![Atom::new(s, vec![x, y]), Atom::new(q, vec![y])],
            vec![Atom::new(q, vec![x]), Atom::new(s, vec![x, x])],
        ];
        let matcher = nested_deps::chase::Matcher::new(&inst);
        for qr in &queries {
            let mut a = all_matches(&inst, qr, &Binding::new());
            let mut b = matcher.all_matches(qr, &Binding::new());
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    /// Normalization preserves logical equivalence on random nested tgds
    /// (checked with IMPLIES in both directions).
    #[test]
    fn normalization_preserves_equivalence(seed in 0u64..1_500) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            "n",
            &TgdGenOptions { max_depth: 2, max_children: 2, existential_prob: 0.5, seed },
        );
        let m = NestedMapping::new(vec![tgd], vec![]).unwrap();
        let opts = ImpliesOptions { pattern_budget: 50_000 };
        let Ok(norm) = nested_deps::reasoning::normalize_mapping(&m, &mut syms, &opts) else {
            return Ok(()); // pattern budget discard
        };
        match nested_deps::reasoning::equivalent(&m, &norm, &mut syms, &opts) {
            Ok(eq) => prop_assert!(eq, "normalized {} inequivalent", norm.display(&syms)),
            Err(ReasoningError::PatternBudgetExceeded { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Splitting independent conjuncts never loses or invents head atoms.
    #[test]
    fn split_preserves_atom_multiset(seed in 0u64..2_000) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            "s",
            &TgdGenOptions { max_depth: 3, max_children: 2, existential_prob: 0.6, seed },
        );
        let split = nested_deps::reasoning::split_independent_conjuncts(&tgd);
        let count = |t: &NestedTgd| -> usize {
            t.parts().iter().map(|p| p.head.len()).sum()
        };
        let total: usize = split.iter().map(count).sum();
        prop_assert_eq!(total, count(&tgd));
        for s in &split {
            prop_assert!(s.validate(&mut Schema::new()).is_ok());
        }
    }

    /// Pretty-print → parse round-trip for nested tgds: the parser accepts
    /// every rendering the printer produces, and re-rendering is a fixed
    /// point.
    #[test]
    fn nested_tgd_display_parse_round_trips(seed in 0u64..5_000, depth in 1usize..4) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            "rt",
            &TgdGenOptions { max_depth: depth, max_children: 2, existential_prob: 0.6, seed },
        );
        let text = tgd.display(&syms);
        let reparsed = parse_nested_tgd(&mut syms, &text);
        prop_assert!(reparsed.is_ok(), "reparse failed on {}: {:?}", text, reparsed.err());
        prop_assert_eq!(reparsed.unwrap().display(&syms), text);
    }

    /// Pretty-print → parse round-trip for s-t tgds and the SO tgds
    /// produced by Skolemization.
    #[test]
    fn st_and_so_display_parse_round_trips(seed in 0u64..5_000) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            "rs",
            &TgdGenOptions { max_depth: 1, max_children: 1, existential_prob: 0.6, seed },
        );
        let st = tgd.to_st_tgd().expect("depth-1 tgd is an s-t tgd");
        let st_text = st.display(&syms);
        let st_back = parse_st_tgd(&mut syms, &st_text);
        prop_assert!(st_back.is_ok(), "s-t reparse failed on {}: {:?}", st_text, st_back.err());
        prop_assert_eq!(st_back.unwrap().display(&syms), st_text);

        let deep = random_nested_tgd(
            &mut syms,
            "rq",
            &TgdGenOptions { max_depth: 3, max_children: 2, existential_prob: 0.7, seed },
        );
        let (so, _) = skolemize(&deep, &mut syms);
        let so_text = so.display(&syms);
        let so_back = parse_so_tgd(&mut syms, &so_text);
        prop_assert!(so_back.is_ok(), "SO reparse failed on {}: {:?}", so_text, so_back.err());
        prop_assert_eq!(so_back.unwrap().display(&syms), so_text);
    }

    /// Pretty-print → parse round-trip for egds (key constraints over
    /// random arities and key positions).
    #[test]
    fn egd_display_parse_round_trips(arity in 1usize..5, key in 0usize..4) {
        let mut syms = SymbolTable::new();
        let rel = syms.rel("K");
        let key = key.min(arity.saturating_sub(1));
        for egd in Egd::key(&mut syms, rel, arity, &[key]) {
            let text = egd.display(&syms);
            let back = parse_egd(&mut syms, &text);
            prop_assert!(back.is_ok(), "egd reparse failed on {}: {:?}", text, back.err());
            prop_assert_eq!(back.unwrap().display(&syms), text);
        }
    }

    /// The analyzer never reports error-severity diagnostics on well-formed
    /// generated programs (warnings and info findings are fine).
    #[test]
    fn lint_accepts_generated_programs(seed in 0u64..2_000, n in 1usize..4) {
        let mut syms = SymbolTable::new();
        let mut src = String::new();
        for i in 0..n {
            let tgd = random_nested_tgd(
                &mut syms,
                &format!("l{seed}_{i}"),
                &TgdGenOptions {
                    max_depth: 3,
                    max_children: 2,
                    existential_prob: 0.7,
                    seed: seed.wrapping_add(i as u64),
                },
            );
            src.push_str(&tgd.display(&syms));
            src.push('\n');
        }
        let diags = lint_source(&mut syms, &src, &LintOptions::default());
        for d in &diags {
            prop_assert!(d.severity != Severity::Error, "unexpected error {:?} on:\n{}", d, src);
        }
    }

    /// Legal canonical instances always satisfy the source egds
    /// (Definition 5.4).
    #[test]
    fn legal_canonical_instances_satisfy_egds(seed in 0u64..2_000) {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            "g",
            &TgdGenOptions { max_depth: 2, max_children: 2, existential_prob: 0.5, seed },
        );
        // A key egd on the first binary source relation, if any.
        let mut schema = Schema::new();
        tgd.validate(&mut schema).unwrap();
        let Some((rel, _, _)) = schema
            .relations()
            .find(|&(r, a, s)| s == Side::Source && a == 2 && { let _ = r; true })
        else {
            return Ok(());
        };
        let egds = Egd::key(&mut syms, rel, 2, &[0]);
        let info = SkolemInfo::for_nested(&tgd, &mut syms);
        let Ok(patterns) = k_patterns(&tgd, 2, 10_000) else { return Ok(()); };
        for pattern in patterns.iter().take(10) {
            let mut nulls = NullFactory::new();
            let pair = canonical_instances(&tgd, &info, pattern, &mut syms, &mut nulls);
            let legal = legalize(&pair, &egds, &mut nulls);
            prop_assert!(satisfies_egds(&legal.source, &egds));
        }
    }

    /// The full pipeline — parse, lint, semantic analysis — never panics
    /// and is deterministic on random program texts, including recursive
    /// programs and non-ASCII comments.
    #[test]
    fn analysis_pipeline_is_total_and_deterministic(
        seed in 0u64..10_000,
        stmts in 1usize..25,
        recur in 0usize..101,
    ) {
        let text = random_program(&ProgramGenOptions {
            statements: stmts,
            recursion_prob: recur as f64 / 100.0,
            seed,
            ..Default::default()
        });
        let run = || {
            let mut syms = SymbolTable::new();
            let diags = lint_source(&mut syms, &text, &LintOptions::default());
            let (analysis, errs) = ChaseAnalysis::analyze_source(&mut syms, &text);
            (diags, errs, analysis.report(&syms))
        };
        let (d1, e1, r1) = run();
        let (d2, e2, r2) = run();
        prop_assert_eq!(e1, 0, "generator emits only valid statements:\n{}", text);
        prop_assert_eq!(e2, 0);
        prop_assert_eq!(d1, d2, "lint findings must be deterministic");
        prop_assert_eq!(r1, r2, "analysis reports must be deterministic");
    }

    /// Certified dead-code elimination is invisible: on programs seeded
    /// with provably dead statements, every engine's certified run is
    /// bit-identical to the sequential uncertified baseline — same facts,
    /// same `NullId`s, same round and derived counts — and budget
    /// exhaustion/refusal outcomes agree too.
    #[test]
    fn certified_dead_code_elimination_is_bit_identical(
        seed in 0u64..3_000,
        n in 1usize..8,
        dead in 1usize..5,
        budget_raw in 0usize..30,
    ) {
        // 0 encodes "no budget" (the shim has no option strategy).
        let budget = (budget_raw > 0).then_some(budget_raw);
        let text = random_program_with_dead_code(
            &ProgramGenOptions {
                statements: n,
                recursion_prob: 0.2,
                fact_prob: 0.4,
                seed,
                ..Default::default()
            },
            dead,
        );
        let mut syms = SymbolTable::new();
        let (analysis, errs) = ChaseAnalysis::analyze_source(&mut syms, &text);
        prop_assert_eq!(errs, 0, "generator emits only valid statements:\n{}", text);
        let (stmts, _) = nested_deps::analyze::parse_program(&mut syms, &text);
        let mut source = Instance::new();
        for s in &stmts {
            if let Some(nested_deps::analyze::StmtAst::Fact(f)) = s.ast.as_ref() {
                source.insert(f.clone());
            }
        }
        let tgds: Vec<SoTgd> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
        let mut certified = analysis.tgd_plan(budget);
        // Budget even "guaranteed" plans so exhaustion parity is exercised;
        // a `None` budget on a non-guaranteed plan tests refusal parity.
        certified.step_budget = budget;
        let cert = certified.cert.clone().expect("tgd_plan attaches a cert");
        prop_assert!(
            !cert.dead.is_empty(),
            "generator guarantees provably dead statements:\n{}",
            text
        );
        let uncertified = ChasePlan { cert: None, ..certified.clone() };
        type Engine = fn(
            &Instance,
            &[SoTgd],
            &ChasePlan,
            &mut NullFactory,
        ) -> std::result::Result<FixpointChase, FixpointError>;
        let engines: [(&str, Engine); 4] = [
            ("fixpoint", chase_fixpoint),
            ("parallel", chase_fixpoint_parallel),
            ("delta", chase_fixpoint_delta),
            ("delta-parallel", chase_fixpoint_delta_parallel),
        ];
        let mut base_nulls = NullFactory::new();
        let baseline = chase_fixpoint(&source, &tgds, &uncertified, &mut base_nulls);
        for (name, engine) in engines {
            for (mode, plan) in [("certified", &certified), ("uncertified", &uncertified)] {
                let mut nf = NullFactory::new();
                match (engine(&source, &tgds, plan, &mut nf), &baseline) {
                    (Ok(out), Ok(base)) => {
                        prop_assert_eq!(
                            &out.instance, &base.instance,
                            "{} {} diverged on:\n{}", name, mode, text
                        );
                        prop_assert_eq!(out.rounds, base.rounds);
                        prop_assert_eq!(out.derived, base.derived);
                        prop_assert_eq!(nf.len(), base_nulls.len());
                    }
                    (Err(e), Err(b)) => prop_assert_eq!(
                        e.to_string(), b.to_string(),
                        "{} {} failed differently on:\n{}", name, mode, text
                    ),
                    (got, _) => prop_assert!(
                        false,
                        "{} {} outcome {:?} disagrees with baseline {:?} on:\n{}",
                        name, mode, got.map(|o| o.derived), baseline.as_ref().map(|o| o.derived), text
                    ),
                }
            }
        }
    }

    /// The termination classification is honest against a brute-force
    /// budgeted oblivious chase: richly acyclic programs reach their
    /// fixpoint within a generous budget, and whenever the budgeted chase
    /// diverges, the program was not classified richly acyclic.
    #[test]
    fn classification_agrees_with_budgeted_chase_oracle(seed in 0u64..4_000, n in 1usize..10) {
        let text = random_program(&ProgramGenOptions {
            statements: n,
            recursion_prob: 0.3,
            fact_prob: 0.4,
            seed,
            ..Default::default()
        });
        let mut syms = SymbolTable::new();
        let (analysis, _) = ChaseAnalysis::analyze_source(&mut syms, &text);
        let (stmts, _) = nested_deps::analyze::parse_program(&mut syms, &text);
        let mut tgds = Vec::new();
        let mut source = Instance::new();
        for s in &stmts {
            match s.ast.as_ref() {
                Some(nested_deps::analyze::StmtAst::Tgd(t)) => {
                    tgds.push(skolemize(t, &mut syms).0)
                }
                Some(nested_deps::analyze::StmtAst::So(t)) => tgds.push(t.clone()),
                Some(nested_deps::analyze::StmtAst::Fact(f)) => {
                    source.insert(f.clone());
                }
                _ => {}
            }
        }
        // Modest on purpose: the oracle's joins materialize up to
        // |instance|^2 bindings per round, so the budget bounds memory as
        // well as time. Generated programs that terminate do so well
        // under it (small constant pool, <= 9 statements).
        const BUDGET: usize = 1_000;
        let mut plan = analysis.plan(Some(BUDGET));
        // Budget even "guaranteed" plans so the oracle cannot hang; a
        // guaranteed plan exhausting it would fail the test below.
        plan.step_budget = Some(BUDGET);
        let mut nulls = NullFactory::new();
        match chase_fixpoint(&source, &tgds, &plan, &mut nulls) {
            Ok(_) => {} // terminated: consistent with every class
            Err(FixpointError::BudgetExhausted { .. }) => prop_assert!(
                analysis.termination.class != TerminationClass::RichlyAcyclic,
                "budgeted chase diverged on a richly acyclic program:\n{}",
                text
            ),
            Err(e) => prop_assert!(false, "unexpected chase error {e} on:\n{}", text),
        }
    }
}
