//! Source-instance families used throughout the paper's examples:
//! successor relations (Prop. 4.13, Examples 4.14/4.15, Thm. 5.1), directed
//! cycles (Example 4.8), grids, and random instances.

use ndl_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The successor relation `S(c1,c2), …, S(c{n-1},cn)` over `n` elements
/// (`n - 1` facts; empty for `n ≤ 1`). `rel` must be binary.
pub fn successor(syms: &mut SymbolTable, rel: RelId, n: usize, prefix: &str) -> Instance {
    let mut inst = Instance::new();
    for i in 1..n {
        let a = Value::Const(syms.constant(&format!("{prefix}{i}")));
        let b = Value::Const(syms.constant(&format!("{prefix}{}", i + 1)));
        inst.insert(Fact::new(rel, vec![a, b]));
    }
    inst
}

/// `n` pairwise-disjoint pairs `R(a1,b1), …, R(an,bn)` (`2n` distinct
/// constants). The seed shape of wide fan-out and pipeline chase
/// workloads: every fact triggers independently, so the instance scales
/// the chase linearly without growing any join. `rel` must be binary.
///
/// Building sources programmatically (instead of `fact:` statements)
/// keeps 10⁵–10⁶-fact bench workloads out of the parser; pair with a
/// small parsed program whose analysis supplies the plan.
pub fn disjoint_pairs(syms: &mut SymbolTable, rel: RelId, n: usize, prefix: &str) -> Instance {
    let mut inst = Instance::new();
    for i in 1..=n {
        let a = Value::Const(syms.constant(&format!("{prefix}a{i}")));
        let b = Value::Const(syms.constant(&format!("{prefix}b{i}")));
        inst.insert(Fact::new(rel, vec![a, b]));
    }
    inst
}

/// A successor relation plus a zero marker `Z(c1)` — the source shape of
/// the Theorem 5.1 reduction.
pub fn successor_with_zero(
    syms: &mut SymbolTable,
    s: RelId,
    z: RelId,
    n: usize,
    prefix: &str,
) -> Instance {
    let mut inst = successor(syms, s, n, prefix);
    if n >= 1 {
        let zero = Value::Const(syms.constant(&format!("{prefix}1")));
        inst.insert(Fact::new(z, vec![zero]));
    }
    inst
}

/// The directed cycle `S(c1,c2), …, S(cn,c1)` of length `n`
/// (Example 4.8's `I_n`).
pub fn cycle(syms: &mut SymbolTable, rel: RelId, n: usize, prefix: &str) -> Instance {
    let mut inst = Instance::new();
    for i in 1..=n {
        let a = Value::Const(syms.constant(&format!("{prefix}{i}")));
        let b = Value::Const(syms.constant(&format!("{prefix}{}", i % n + 1)));
        inst.insert(Fact::new(rel, vec![a, b]));
    }
    inst
}

/// A `w × h` grid: horizontal edges in `h_rel`, vertical edges in `v_rel`.
pub fn grid(
    syms: &mut SymbolTable,
    h_rel: RelId,
    v_rel: RelId,
    w: usize,
    h: usize,
    prefix: &str,
) -> Instance {
    let mut inst = Instance::new();
    let node = |syms: &mut SymbolTable, x: usize, y: usize| {
        Value::Const(syms.constant(&format!("{prefix}{x}_{y}")))
    };
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                let a = node(syms, x, y);
                let b = node(syms, x + 1, y);
                inst.insert(Fact::new(h_rel, vec![a, b]));
            }
            if y + 1 < h {
                let a = node(syms, x, y);
                let b = node(syms, x, y + 1);
                inst.insert(Fact::new(v_rel, vec![a, b]));
            }
        }
    }
    inst
}

/// Options for random instance generation.
#[derive(Clone, Copy, Debug)]
pub struct InstanceGenOptions {
    /// Number of facts to draw.
    pub facts: usize,
    /// Size of the constant pool.
    pub domain: usize,
    /// RNG seed (deterministic workloads for reproducible benches).
    pub seed: u64,
}

/// A random instance over the given relations (with arities), drawing each
/// fact's relation and constants uniformly.
pub fn random_instance(
    syms: &mut SymbolTable,
    rels: &[(RelId, usize)],
    opts: &InstanceGenOptions,
) -> Instance {
    assert!(!rels.is_empty(), "need at least one relation");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let pool: Vec<Value> = (0..opts.domain.max(1))
        .map(|i| Value::Const(syms.constant(&format!("r{i}"))))
        .collect();
    let mut inst = Instance::new();
    for _ in 0..opts.facts {
        let (rel, arity) = rels[rng.gen_range(0..rels.len())];
        let args: Vec<Value> = (0..arity)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        inst.insert(Fact::new(rel, args));
    }
    inst
}

/// Options for random *target* instance generation: a ground backbone plus
/// redundant null facts for the core engine to retract.
#[derive(Clone, Copy, Debug)]
pub struct TargetGenOptions {
    /// Approximate total number of facts.
    pub facts: usize,
    /// Size of the constant pool.
    pub domain: usize,
    /// Number of distinct nulls to introduce; every one of them is
    /// redundant (folds onto the ground backbone), so
    /// `core_of` performs exactly this many retractions.
    pub redundant_nulls: usize,
    /// RNG seed (deterministic workloads for reproducible benches).
    pub seed: u64,
}

/// A random target instance: a ground backbone of `facts - redundant_nulls`
/// facts plus `redundant_nulls` null-carrying facts that all fold back onto
/// the backbone, giving the core engine real retraction work with a known
/// answer (`core_of` = the backbone). Every third null yields a two-fact
/// block (a constant consistently replaced across two facts), the others
/// single-fact blocks (one position of one fact blanked).
pub fn random_target_instance(
    syms: &mut SymbolTable,
    rels: &[(RelId, usize)],
    opts: &TargetGenOptions,
) -> Instance {
    let ground = random_instance(
        syms,
        rels,
        &InstanceGenOptions {
            facts: opts.facts.saturating_sub(opts.redundant_nulls),
            domain: opts.domain,
            seed: opts.seed,
        },
    );
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x9e37_79b9_7f4a_7c15);
    let backbone: Vec<Fact> = ground.facts().map(|f| f.to_fact()).collect();
    let mut inst = ground;
    if backbone.is_empty() {
        return inst;
    }
    for i in 0..opts.redundant_nulls {
        let n = Value::Null(NullId(i as u32));
        let blank = |f: &Fact, c: Value| {
            Fact::new(
                f.rel,
                f.args
                    .iter()
                    .map(|&v| if v == c { n } else { v })
                    .collect::<Vec<_>>(),
            )
        };
        if i % 3 == 0 {
            // Two-fact block: blank a constant consistently across (up to)
            // two backbone facts containing it; `n ↦ c` retracts the block.
            let probe = &backbone[rng.gen_range(0..backbone.len())];
            let c = probe.args[rng.gen_range(0..probe.args.len())];
            for f in backbone.iter().filter(|f| f.args.contains(&c)).take(2) {
                inst.insert(blank(f, c));
            }
        } else {
            // Single-fact block: blank one position of one backbone fact.
            let f = &backbone[rng.gen_range(0..backbone.len())];
            let c = f.args[rng.gen_range(0..f.args.len())];
            let mut args = f.args.clone();
            let pos = f.args.iter().position(|&v| v == c).expect("present");
            args[pos] = n;
            inst.insert(Fact::new(f.rel, args));
        }
    }
    inst
}

/// Extracts a connected (via shared values) subinstance of `k` facts from
/// `inst` and consistently replaces its constants by nulls — a
/// homomorphism pattern that is satisfiable in `inst` by construction
/// (mapping every null back to the constant it replaced).
pub fn abstract_subpattern(inst: &Instance, k: usize, seed: u64) -> Instance {
    let facts: Vec<Fact> = inst.facts().map(|f| f.to_fact()).collect();
    if facts.is_empty() || k == 0 {
        return Instance::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = vec![facts[rng.gen_range(0..facts.len())].clone()];
    let mut values: std::collections::BTreeSet<Value> = chosen[0].args.iter().copied().collect();
    let mut used: std::collections::BTreeSet<Fact> = chosen.iter().cloned().collect();
    while chosen.len() < k {
        let Some(next) = facts
            .iter()
            .find(|f| !used.contains(f) && f.args.iter().any(|v| values.contains(v)))
        else {
            break; // component exhausted
        };
        values.extend(next.args.iter().copied());
        used.insert(next.clone());
        chosen.push(next.clone());
    }
    let mut null_of: std::collections::BTreeMap<Value, Value> = Default::default();
    let mut pattern = Instance::new();
    for f in &chosen {
        let args: Vec<Value> = f
            .args
            .iter()
            .map(|&v| {
                let next = null_of.len() as u32;
                *null_of
                    .entry(v)
                    .or_insert_with(|| Value::Null(NullId(next)))
            })
            .collect();
        pattern.insert(Fact::new(f.rel, args));
    }
    pattern
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_shape() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let inst = successor(&mut syms, s, 5, "c");
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.adom().len(), 5);
        assert!(successor(&mut syms, s, 1, "d").is_empty());
    }

    #[test]
    fn cycle_shape() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let inst = cycle(&mut syms, s, 5, "c");
        assert_eq!(inst.len(), 5);
        assert_eq!(inst.adom().len(), 5);
        // Closing edge S(c5, c1) present.
        let a = Value::Const(syms.constant("c5"));
        let b = Value::Const(syms.constant("c1"));
        assert!(inst.contains_tuple(s, &[a, b]));
    }

    #[test]
    fn disjoint_pairs_shape() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let inst = disjoint_pairs(&mut syms, s, 100, "p");
        assert_eq!(inst.len(), 100);
        assert_eq!(inst.adom().len(), 200, "pairs share no constants");
        assert!(disjoint_pairs(&mut syms, s, 0, "q").is_empty());
    }

    #[test]
    fn zero_marker() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let z = syms.rel("Z");
        let inst = successor_with_zero(&mut syms, s, z, 4, "c");
        assert_eq!(inst.rel_len(z), 1);
        assert_eq!(inst.rel_len(s), 3);
    }

    #[test]
    fn grid_edge_counts() {
        let mut syms = SymbolTable::new();
        let h = syms.rel("H");
        let v = syms.rel("V");
        let inst = grid(&mut syms, h, v, 3, 4, "g");
        assert_eq!(inst.rel_len(h), 2 * 4);
        assert_eq!(inst.rel_len(v), 3 * 3);
    }

    #[test]
    fn target_instance_nulls_all_fold() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let opts = TargetGenOptions {
            facts: 120,
            domain: 25,
            redundant_nulls: 12,
            seed: 3,
        };
        let a = random_target_instance(&mut syms, &[(s, 2), (q, 3)], &opts);
        let b = random_target_instance(&mut syms, &[(s, 2), (q, 3)], &opts);
        assert_eq!(a, b, "deterministic per seed");
        assert_eq!(a.nulls().len(), 12);
        // Every null is redundant by construction: the core is ground.
        let core = ndl_hom::core_of(&a);
        assert!(core.is_ground());
        assert!(ndl_hom::verify_core(&core, &a));
    }

    #[test]
    fn abstract_subpattern_is_satisfiable() {
        let mut syms = SymbolTable::new();
        let h = syms.rel("H");
        let v = syms.rel("V");
        let inst = grid(&mut syms, h, v, 6, 6, "g");
        let pat = abstract_subpattern(&inst, 8, 11);
        assert_eq!(pat.len(), 8);
        assert!(!pat.nulls().is_empty());
        assert!(ndl_hom::homomorphic(&pat, &inst));
        assert_eq!(pat, abstract_subpattern(&inst, 8, 11), "deterministic");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let opts = InstanceGenOptions {
            facts: 50,
            domain: 10,
            seed: 7,
        };
        let a = random_instance(&mut syms, &[(s, 2), (q, 1)], &opts);
        let b = random_instance(&mut syms, &[(s, 2), (q, 1)], &opts);
        assert_eq!(a, b);
        assert!(a.len() <= 50);
        assert!(a.is_ground());
    }
}
