//! Random dependency-program *texts* for property tests and benchmarks.
//!
//! Unlike [`crate::tgds`], which builds ASTs, this module emits program
//! *source* in the line-oriented syntax of `ndl-analyze` — tgds, facts,
//! blank lines and `#` comments (including non-ASCII ones, to exercise
//! byte-vs-character column handling). Statements are drawn over a fixed
//! pool of binary relations `R0..R{m}`; by default heads point at
//! strictly later relations, so programs lean richly acyclic, and
//! [`ProgramGenOptions::recursion_prob`] mixes in backward/self edges
//! that produce weakly acyclic and cyclic programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Options for random program-text generation.
#[derive(Clone, Copy, Debug)]
pub struct ProgramGenOptions {
    /// Number of statements (facts count toward this).
    pub statements: usize,
    /// Size of the relation pool (`R0..R{relations}`), minimum 2.
    pub relations: usize,
    /// Probability that a head relation is chosen freely (possibly
    /// backward or self-referential) instead of strictly forward.
    pub recursion_prob: f64,
    /// Probability of a comment line (drawn from a pool that includes
    /// non-ASCII text) before a statement.
    pub comment_prob: f64,
    /// Probability that a statement is a ground fact.
    pub fact_prob: f64,
    /// RNG seed — output is a pure function of the options.
    pub seed: u64,
}

impl Default for ProgramGenOptions {
    fn default() -> Self {
        ProgramGenOptions {
            statements: 12,
            relations: 8,
            recursion_prob: 0.15,
            comment_prob: 0.2,
            fact_prob: 0.25,
            seed: 0,
        }
    }
}

/// Comment pool; several entries are deliberately non-ASCII so generated
/// programs exercise character-based (not byte-based) diagnostic columns.
const COMMENTS: &[&str] = &[
    "# plain ascii comment",
    "# naïve Σ-join over the café relations",
    "# Überprüfung: Größe ≤ n²",
    "# 依存関係プログラムのテスト",
    "# пример зависимости",
];

/// Generates a random dependency-program text. Deterministic per options;
/// every emitted statement is syntactically valid.
pub fn random_program(opts: &ProgramGenOptions) -> String {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let m = opts.relations.max(2);
    let mut out = String::new();
    let _ = writeln!(out, "# generated program (seed {})", opts.seed);
    for _ in 0..opts.statements {
        if rng.gen_bool(opts.comment_prob) {
            out.push_str(COMMENTS[rng.gen_range(0..COMMENTS.len())]);
            out.push('\n');
        }
        if rng.gen_bool(opts.fact_prob) {
            let r = rng.gen_range(0..m);
            let a = rng.gen_range(0..6);
            let b = rng.gen_range(0..6);
            let _ = writeln!(out, "fact: R{r}(c{a}, c{b})");
            continue;
        }
        let i = rng.gen_range(0..m);
        // Head relation: strictly forward unless recursion is drawn (or
        // `i` is already the last relation of the pool).
        let j = if rng.gen_bool(opts.recursion_prob) || i + 1 >= m {
            rng.gen_range(0..m)
        } else {
            i + 1 + rng.gen_range(0..m - i - 1)
        };
        match rng.gen_range(0..5) {
            0 => {
                let _ = writeln!(out, "R{i}(x,y) -> R{j}(x,y)");
            }
            1 => {
                let _ = writeln!(out, "R{i}(x,y) -> R{j}(y,x)");
            }
            2 => {
                let k = rng.gen_range(0..m);
                let _ = writeln!(out, "R{i}(x,y) & R{k}(y,z) -> R{j}(x,z)");
            }
            3 => {
                let _ = writeln!(out, "R{i}(x,y) -> exists z R{j}(y,z)");
            }
            _ => {
                let _ = writeln!(out, "R{i}(x,y) -> exists z,w R{j}(z,w)");
            }
        }
    }
    out
}

/// Like [`random_program`], but guaranteed to contain statements a
/// whole-mapping dataflow analysis can prove dead. On top of the base
/// program it appends one unconditional fact (so the source set is
/// *known* rather than assumed from read/write sets) and `dead` extra
/// tgds whose bodies read orphan relations `Z0..Z{dead}` that no fact
/// or statement head ever populates — those statements can never fire
/// in any chase from the generated facts. Interleaved with them are a
/// few existential-free copy rules over the `R` pool, so the programs
/// also exercise ground (null-free) relation detection.
pub fn random_program_with_dead_code(opts: &ProgramGenOptions, dead: usize) -> String {
    let mut out = random_program(opts);
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x9e37_79b9_7f4a_7c15);
    let m = opts.relations.max(2);
    // Known sources: without at least one fact the analyzer falls back to
    // assumed sources and refuses to call anything dead.
    let _ = writeln!(out, "fact: R0(c0, c1)");
    for d in 0..dead {
        let j = rng.gen_range(0..m);
        match rng.gen_range(0..3) {
            0 => {
                let _ = writeln!(out, "Z{d}(x,y) -> R{j}(x,y)");
            }
            1 => {
                // Dead despite the live conjunct: Z{d} is never populated.
                let k = rng.gen_range(0..m);
                let _ = writeln!(out, "Z{d}(x,y) & R{k}(y,z) -> R{j}(x,z)");
            }
            _ => {
                let _ = writeln!(out, "Z{d}(x,y) -> exists w R{j}(y,w)");
            }
        }
        if rng.gen_bool(0.5) {
            // Existential-free rule: keeps its head ground when its body is.
            let i = rng.gen_range(0..m);
            let j = rng.gen_range(0..m);
            let _ = writeln!(out, "R{i}(x,y) -> R{j}(y,x)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let opts = ProgramGenOptions {
            seed: 7,
            ..Default::default()
        };
        assert_eq!(random_program(&opts), random_program(&opts));
        let other = ProgramGenOptions {
            seed: 8,
            ..Default::default()
        };
        assert_ne!(random_program(&opts), random_program(&other));
    }

    #[test]
    fn emits_requested_statement_count() {
        let opts = ProgramGenOptions {
            statements: 40,
            seed: 3,
            ..Default::default()
        };
        let text = random_program(&opts);
        let stmts = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .count();
        assert_eq!(stmts, 40);
    }

    #[test]
    fn dead_code_generator_emits_orphan_reads_and_a_fact() {
        let opts = ProgramGenOptions {
            seed: 11,
            ..Default::default()
        };
        let text = random_program_with_dead_code(&opts, 4);
        assert_eq!(text, random_program_with_dead_code(&opts, 4));
        assert!(text.contains("fact: R0(c0, c1)"));
        for d in 0..4 {
            let orphan = format!("Z{d}(");
            // Each orphan relation is read exactly once (its dead
            // statement) and never written by any head.
            assert_eq!(text.matches(&orphan).count(), 1, "missing {orphan}");
            assert!(!text.contains(&format!("-> Z{d}(")));
            assert!(!text.contains(&format!("fact: Z{d}(")));
        }
    }

    #[test]
    fn some_seed_produces_non_ascii_comments() {
        let found = (0..32).any(|seed| {
            let opts = ProgramGenOptions {
                comment_prob: 0.9,
                seed,
                ..Default::default()
            };
            !random_program(&opts).is_ascii()
        });
        assert!(found);
    }
}
