//! # ndl-gen
//!
//! Workload generators for benchmarks, examples and property tests:
//! successor relations, directed cycles, grids, random instances, random
//! nested tgds, random dependency-program *texts*, and a Clio-style HR
//! data-exchange scenario (the motivating workload of nested mappings in
//! [10, 12] of the paper).

#![warn(missing_docs)]

pub mod clio;
pub mod instances;
pub mod programs;
pub mod tgds;

pub use clio::{clio_scenario, ClioScenario};
pub use instances::{
    abstract_subpattern, cycle, disjoint_pairs, grid, random_instance, random_target_instance,
    successor, successor_with_zero, InstanceGenOptions, TargetGenOptions,
};
pub use programs::{random_program, random_program_with_dead_code, ProgramGenOptions};
pub use tgds::{random_nested_tgd, TgdGenOptions};
