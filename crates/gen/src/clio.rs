//! A Clio-style HR data-exchange scenario (after [10, 12] in the paper):
//! departments with employees and projects are restructured into a target
//! schema that groups employees and projects under a department *group*
//! identifier — the existential that a nested mapping correlates and a
//! naive GLAV mapping duplicates.
//!
//! Source schema:
//!   `Dept(did)`, `Emp(did, ename)`, `Proj(did, pname)`
//! Target schema:
//!   `DeptGrp(g, did)`, `EmpOf(g, ename)`, `ProjOf(g, pname)`
//!
//! The **nested** mapping creates one group per department and nests the
//! member tgds under it; the **flat GLAV** variant (the best
//! GLAV-expressible approximation) re-invents a group per (dept, member)
//! combination, losing the correlation.

use ndl_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generated scenario: mappings plus a source instance.
#[derive(Clone, Debug)]
pub struct ClioScenario {
    /// The nested GLAV mapping (one group existential per department).
    pub nested: NestedMapping,
    /// The flat GLAV approximation (group re-invented per member tgd).
    pub flat: NestedMapping,
    /// A generated source instance.
    pub source: Instance,
    /// Number of departments in `source`.
    pub departments: usize,
}

/// Builds the scenario with `departments` departments, about
/// `members_per_dept` employees and projects each, deterministically from
/// `seed`.
pub fn clio_scenario(
    syms: &mut SymbolTable,
    departments: usize,
    members_per_dept: usize,
    seed: u64,
) -> ClioScenario {
    let nested = NestedMapping::parse(
        syms,
        &["forall d (Dept(d) -> exists g (DeptGrp(g,d) \
             & forall e (Emp(d,e) -> EmpOf(g,e)) \
             & forall p (Proj(d,p) -> ProjOf(g,p))))"],
        &[],
    )
    .expect("nested Clio mapping parses");
    let flat = NestedMapping::parse(
        syms,
        &[
            "Dept(d) -> exists g DeptGrp(g,d)",
            "Dept(d) & Emp(d,e) -> exists g (DeptGrp(g,d) & EmpOf(g,e))",
            "Dept(d) & Proj(d,p) -> exists g (DeptGrp(g,d) & ProjOf(g,p))",
        ],
        &[],
    )
    .expect("flat Clio mapping parses");

    let dept = syms.rel("Dept");
    let emp = syms.rel("Emp");
    let proj = syms.rel("Proj");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut source = Instance::new();
    for d in 0..departments {
        let did = Value::Const(syms.constant(&format!("dept{d}")));
        source.insert(Fact::new(dept, vec![did]));
        let n_emp = rng.gen_range(1..=members_per_dept.max(1));
        for e in 0..n_emp {
            let ename = Value::Const(syms.constant(&format!("emp{d}_{e}")));
            source.insert(Fact::new(emp, vec![did, ename]));
        }
        let n_proj = rng.gen_range(1..=members_per_dept.max(1));
        for p in 0..n_proj {
            let pname = Value::Const(syms.constant(&format!("proj{d}_{p}")));
            source.insert(Fact::new(proj, vec![did, pname]));
        }
    }
    ClioScenario {
        nested,
        flat,
        source,
        departments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_and_classifies() {
        let mut syms = SymbolTable::new();
        let sc = clio_scenario(&mut syms, 3, 4, 42);
        assert!(!sc.nested.is_glav());
        assert!(sc.flat.is_glav());
        let dept = syms.rel("Dept");
        assert_eq!(sc.source.rel_len(dept), 3);
        assert!(sc.source.is_ground());
    }

    #[test]
    fn nested_chase_creates_one_group_per_dept() {
        let mut syms = SymbolTable::new();
        let sc = clio_scenario(&mut syms, 4, 3, 1);
        let (res, _) = ndl_chase::chase_mapping(&sc.source, &sc.nested, &mut syms);
        // One null (group) per department.
        assert_eq!(res.target.nulls().len(), 4);
        // The flat mapping invents more groups (one per tgd trigger).
        let (flat_res, _) = ndl_chase::chase_mapping(&sc.source, &sc.flat, &mut syms);
        assert!(flat_res.target.nulls().len() > res.target.nulls().len());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut s1 = SymbolTable::new();
        let a = clio_scenario(&mut s1, 2, 2, 9);
        let mut s2 = SymbolTable::new();
        let b = clio_scenario(&mut s2, 2, 2, 9);
        assert_eq!(a.source.len(), b.source.len());
    }
}
