//! Random nested tgds for property tests and scaling benchmarks.

use ndl_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for random nested tgd generation.
#[derive(Clone, Copy, Debug)]
pub struct TgdGenOptions {
    /// Maximum nesting depth (1 = plain s-t tgd).
    pub max_depth: usize,
    /// Maximum children per part.
    pub max_children: usize,
    /// Probability that a part introduces an existential variable.
    pub existential_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TgdGenOptions {
    fn default() -> Self {
        TgdGenOptions {
            max_depth: 3,
            max_children: 2,
            existential_prob: 0.7,
            seed: 0,
        }
    }
}

/// Generates a random, structurally valid nested tgd. Relations are named
/// `Src<tag>_<i>` / `Tgt<tag>_<i>` so that repeated calls with distinct
/// `tag`s never clash on source/target sides.
pub fn random_nested_tgd(syms: &mut SymbolTable, tag: &str, opts: &TgdGenOptions) -> NestedTgd {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut parts: Vec<Part> = Vec::new();
    let mut var_counter = 0usize;
    gen_part(
        syms,
        tag,
        &mut rng,
        opts,
        None,
        1,
        &mut parts,
        &mut var_counter,
        &[],
        &[],
    );
    let tgd = NestedTgd::from_parts(parts);
    debug_assert!(tgd.validate(&mut Schema::new()).is_ok());
    tgd
}

#[allow(clippy::too_many_arguments)]
fn gen_part(
    syms: &mut SymbolTable,
    tag: &str,
    rng: &mut StdRng,
    opts: &TgdGenOptions,
    parent: Option<usize>,
    depth: usize,
    parts: &mut Vec<Part>,
    var_counter: &mut usize,
    visible_universals: &[VarId],
    visible_existentials: &[VarId],
) -> usize {
    let id = parts.len();
    // Own universal variable.
    *var_counter += 1;
    let x = syms.var(&format!("v{tag}_{var_counter}"));
    // Body atom: Src(x) or Src(x, some ancestor universal).
    let mut universals = vec![x];
    let body = if !visible_universals.is_empty() && rng.gen_bool(0.5) {
        let anc = visible_universals[rng.gen_range(0..visible_universals.len())];
        let rel = syms.rel(&format!("Src{tag}_{id}b"));
        vec![Atom::new(rel, vec![anc, x])]
    } else {
        let rel = syms.rel(&format!("Src{tag}_{id}u"));
        vec![Atom::new(rel, vec![x])]
    };
    // Existential variable with configured probability.
    let mut existentials = Vec::new();
    if rng.gen_bool(opts.existential_prob) {
        *var_counter += 1;
        let y = syms.var(&format!("w{tag}_{var_counter}"));
        existentials.push(y);
    }
    // Head atom: Tgt(x) or Tgt(e, x) with a visible existential.
    let mut all_existentials: Vec<VarId> = visible_existentials.to_vec();
    all_existentials.extend(existentials.iter().copied());
    let head = if !all_existentials.is_empty() {
        let e = all_existentials[rng.gen_range(0..all_existentials.len())];
        let rel = syms.rel(&format!("Tgt{tag}_{id}e"));
        vec![Atom::new(rel, vec![e, x])]
    } else {
        let rel = syms.rel(&format!("Tgt{tag}_{id}u"));
        vec![Atom::new(rel, vec![x])]
    };
    parts.push(Part {
        parent,
        universals: universals.clone(),
        body,
        existentials: existentials.clone(),
        head,
        children: vec![],
    });
    // Children.
    if depth < opts.max_depth {
        let n_children = rng.gen_range(0..=opts.max_children);
        let mut vis_u: Vec<VarId> = visible_universals.to_vec();
        vis_u.append(&mut universals);
        for _ in 0..n_children {
            let c = gen_part(
                syms,
                tag,
                rng,
                opts,
                Some(id),
                depth + 1,
                parts,
                var_counter,
                &vis_u,
                &all_existentials,
            );
            parts[id].children.push(c);
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tgds_validate() {
        for seed in 0..20 {
            let mut syms = SymbolTable::new();
            let opts = TgdGenOptions {
                seed,
                ..Default::default()
            };
            let tgd = random_nested_tgd(&mut syms, &format!("t{seed}"), &opts);
            let mut schema = Schema::new();
            tgd.validate(&mut schema).unwrap();
            assert!(tgd.depth() <= 3);
        }
    }

    #[test]
    fn depth_one_gives_st_tgds() {
        let mut syms = SymbolTable::new();
        let opts = TgdGenOptions {
            max_depth: 1,
            seed: 3,
            ..Default::default()
        };
        let tgd = random_nested_tgd(&mut syms, "flat", &opts);
        assert!(tgd.is_st_tgd());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut s1 = SymbolTable::new();
        let mut s2 = SymbolTable::new();
        let opts = TgdGenOptions {
            seed: 11,
            ..Default::default()
        };
        let a = random_nested_tgd(&mut s1, "x", &opts);
        let b = random_nested_tgd(&mut s2, "x", &opts);
        assert_eq!(a.num_parts(), b.num_parts());
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_tags_share_a_symbol_table() {
        let mut syms = SymbolTable::new();
        let opts = TgdGenOptions::default();
        let a = random_nested_tgd(&mut syms, "a", &opts);
        let b = random_nested_tgd(&mut syms, "b", &opts);
        let mut schema = Schema::new();
        a.validate(&mut schema).unwrap();
        b.validate(&mut schema).unwrap(); // no source/target clashes
    }
}
