//! # ndl-chase
//!
//! Chase engines for the dependency classes of *Nested Dependencies:
//! Structure and Reasoning* (PODS 2014):
//!
//! - [`st`] — the oblivious chase for s-t tgds (GLAV mappings);
//! - [`nested`] — the recursive-triggering chase for nested tgds,
//!   producing the **chase forest** of Section 3 with full provenance;
//! - [`so`] — the chase for (plain and full) SO tgds over the Herbrand
//!   term interpretation;
//! - [`egd`] — the egd chase over source instances (Section 5), used both
//!   to validate sources and to *legalize* canonical instances
//!   (Definition 5.4);
//! - [`fixpoint`] — the oblivious **fixpoint** chase for recursive SO-tgd
//!   programs, driven by a [`plan::ChasePlan`] (firing order, termination
//!   verdict, step budget, index sizing) from the static analyzer;
//! - [`delta`] — the **semi-naive** fixpoint chase: each round matches
//!   only triggers reaching the previous round's delta frontier
//!   (`TupleIndex::mark_frontier`), with an optional sharded-parallel
//!   match phase — both bit-identical to [`fixpoint`];
//! - [`parallel`] — the stage-parallel fixpoint chase: fires the
//!   conflict-free statements of a [`plan::ParallelSchedule`] stage across
//!   scoped worker threads ([`config::ChaseConfig`], `NDL_CHASE_THREADS`)
//!   while staying bit-identical to [`fixpoint`] — the schedule is a
//!   verified certificate, not a trusted input;
//! - [`cert`] — dataflow certificates ([`DataflowCert`]): dead statements
//!   and null-free relations claimed by the analyzer, re-verified by
//!   every fixpoint engine against its actual inputs before dead
//!   statements are skipped;
//! - [`trigger`] — the shared conjunctive-query matching primitive;
//! - [`null`] — labeled nulls in bijection with ground Skolem terms.
//!
//! All engines produce **canonical universal solutions**: `chase(I, Σ)` is
//! a solution for `I`, and maps homomorphically into every solution.

#![warn(missing_docs)]

pub mod cert;
pub mod config;
pub mod delta;
pub mod egd;
pub mod fixpoint;
pub mod nested;
pub mod null;
pub mod parallel;
pub mod plan;
pub mod so;
pub mod st;
pub mod trigger;

pub use cert::{dataflow_facts, verify_dataflow_cert, DataflowCert, DataflowFacts};
pub use config::ChaseConfig;
pub use delta::{
    chase_fixpoint_delta, chase_fixpoint_delta_parallel, chase_fixpoint_delta_parallel_with,
    chase_fixpoint_delta_with,
};
pub use egd::{chase_egds, satisfies_egds, EgdChase, EgdConflict, RigidPolicy};
pub use fixpoint::{
    chase_fixpoint, chase_fixpoint_with, FixpointChase, FixpointError, FixpointProgress,
};
pub use nested::{
    chase_mapping, chase_nested, chase_nested_planned, ChaseForest, ChaseResult, Prepared, TrigId,
    Triggering,
};
pub use null::NullFactory;
pub use parallel::{
    chase_fixpoint_parallel, chase_fixpoint_parallel_with, derive_schedule, statement_footprints,
    verify_schedule, StmtFootprint,
};
pub use plan::{ChasePlan, ParallelSchedule};
pub use so::{chase_so, chase_so_set, ground_term};
pub use st::{chase_st, chase_st_with_forest};
pub use trigger::{all_matches, has_match, Binding, Matcher};
