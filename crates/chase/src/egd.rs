//! The egd chase over source instances (paper, Section 5).
//!
//! Used in two modes:
//! - **validation** of a user source instance against source egds (all
//!   constants rigid: equating two distinct constants is a hard failure);
//! - **legalization** of canonical instances of patterns (Definition 5.4),
//!   whose fresh constants are nameless placeholders that may be merged.

use crate::trigger::{all_matches, Binding};
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// How the egd chase treats equating two distinct constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RigidPolicy {
    /// Equating two distinct constants fails (standard semantics for real
    /// source instances).
    AllRigid,
    /// Constants may be merged (canonical-instance legalization,
    /// Definition 5.4: "enforcing all equalities between constants").
    AllFlexible,
}

/// A hard egd violation: two rigid constants were equated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EgdConflict {
    /// The two values that the egds force to be equal.
    pub left: Value,
    /// See `left`.
    pub right: Value,
}

impl std::fmt::Display for EgdConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "egd chase failed: {:?} = {:?} on rigid constants",
            self.left, self.right
        )
    }
}

impl std::error::Error for EgdConflict {}

/// Result of a successful egd chase.
#[derive(Clone, Debug)]
pub struct EgdChase {
    /// The chased instance (values replaced by representatives).
    pub instance: Instance,
    /// The merged-value map: every value of the input's active domain to
    /// its representative (identity where unmerged).
    pub renaming: BTreeMap<Value, Value>,
}

impl EgdChase {
    /// Did the chase merge anything?
    pub fn merged_anything(&self) -> bool {
        self.renaming.iter().any(|(k, v)| k != v)
    }
}

/// Chases `source` with `egds` to a fixpoint.
pub fn chase_egds(
    source: &Instance,
    egds: &[Egd],
    policy: RigidPolicy,
) -> std::result::Result<EgdChase, EgdConflict> {
    let mut uf = UnionFind::new();
    for v in source.adom() {
        uf.add(v);
    }
    let mut current = source.clone();
    loop {
        let mut changed = false;
        for egd in egds {
            for binding in all_matches(&current, &egd.body, &Binding::new()) {
                let l = binding[&egd.eq.0];
                let r = binding[&egd.eq.1];
                if uf.find(l) != uf.find(r) {
                    uf.union(l, r, policy)?;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        current = source.map_values(&|v| uf.find(v));
    }
    let renaming = source.adom().into_iter().map(|v| (v, uf.find(v))).collect();
    Ok(EgdChase {
        instance: current,
        renaming,
    })
}

/// Does the (ground) instance satisfy all egds?
pub fn satisfies_egds(source: &Instance, egds: &[Egd]) -> bool {
    egds.iter().all(|egd| {
        all_matches(source, &egd.body, &Binding::new())
            .into_iter()
            .all(|b| b[&egd.eq.0] == b[&egd.eq.1])
    })
}

/// Simple union-find over [`Value`]s with rigidity-aware representative
/// selection (a constant beats a null; ties broken by `Ord` for
/// determinism).
struct UnionFind {
    parent: BTreeMap<Value, Value>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: BTreeMap::new(),
        }
    }

    fn add(&mut self, v: Value) {
        self.parent.entry(v).or_insert(v);
    }

    fn find(&self, mut v: Value) -> Value {
        while let Some(&p) = self.parent.get(&v) {
            if p == v {
                return v;
            }
            v = p;
        }
        v
    }

    fn union(
        &mut self,
        a: Value,
        b: Value,
        policy: RigidPolicy,
    ) -> std::result::Result<(), EgdConflict> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        if policy == RigidPolicy::AllRigid && ra.is_const() && rb.is_const() {
            return Err(EgdConflict {
                left: ra,
                right: rb,
            });
        }
        // Prefer a constant representative; break ties deterministically.
        let (winner, loser) = match (ra.is_const(), rb.is_const()) {
            (true, false) => (ra, rb),
            (false, true) => (rb, ra),
            _ => (ra.min(rb), ra.max(rb)),
        };
        self.parent.insert(loser, winner);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_setup() -> (SymbolTable, Vec<Egd>, RelId) {
        let mut syms = SymbolTable::new();
        let egd = parse_egd(&mut syms, "S(x,y) & S(x2,y) -> x = x2").unwrap();
        let s = syms.rel("S");
        (syms, vec![egd], s)
    }

    #[test]
    fn rigid_conflict_is_detected() {
        let (mut syms, egds, s) = key_setup();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        // S(a,c), S(b,c): a = b forced, both rigid.
        let source = Instance::from_facts([Fact::new(s, vec![a, c]), Fact::new(s, vec![b, c])]);
        assert!(chase_egds(&source, &egds, RigidPolicy::AllRigid).is_err());
        assert!(!satisfies_egds(&source, &egds));
    }

    #[test]
    fn flexible_chase_merges() {
        let (mut syms, egds, s) = key_setup();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let source = Instance::from_facts([Fact::new(s, vec![a, c]), Fact::new(s, vec![b, c])]);
        let res = chase_egds(&source, &egds, RigidPolicy::AllFlexible).unwrap();
        assert_eq!(res.instance.len(), 1);
        assert!(res.merged_anything());
        assert_eq!(res.renaming[&b], res.renaming[&a]);
        assert!(satisfies_egds(&res.instance, &egds));
    }

    #[test]
    fn cascading_merges_reach_fixpoint() {
        // Functional dependency chain: S(x,y) & S(x2,y) -> x = x2 applied
        // to a "zig-zag" requiring two rounds.
        let (mut syms, egds, s) = key_setup();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let d = Value::Const(syms.constant("d"));
        let e = Value::Const(syms.constant("e"));
        // S(a,c), S(b,c) forces a=b; then S(a,d), S(b,e) stay separate,
        // but T-like chain: S(c,d), S(c2,d) ... keep it simple with a
        // 3-way merge: S(a,c), S(b,c), S(b2,c).
        let b2 = Value::Const(syms.constant("b2"));
        let source = Instance::from_facts([
            Fact::new(s, vec![a, c]),
            Fact::new(s, vec![b, c]),
            Fact::new(s, vec![b2, c]),
            Fact::new(s, vec![d, e]),
        ]);
        let res = chase_egds(&source, &egds, RigidPolicy::AllFlexible).unwrap();
        assert_eq!(res.instance.len(), 2);
        assert!(satisfies_egds(&res.instance, &egds));
    }

    #[test]
    fn satisfied_instance_is_untouched() {
        let (mut syms, egds, s) = key_setup();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, a]), Fact::new(s, vec![b, b])]);
        let res = chase_egds(&source, &egds, RigidPolicy::AllRigid).unwrap();
        assert_eq!(res.instance, source);
        assert!(!res.merged_anything());
        assert!(satisfies_egds(&source, &egds));
    }

    #[test]
    fn example_53_source_violation() {
        // Example 5.3: Σs = P1(z,x1) ∧ P1(z,x1') → x1 = x1'. The "cloned"
        // instance I' = {Q(a), P1(a,b), P2(a,b), P2(a,c), P1(a,d), P2(a,d)}
        // violates Σs via {P1(a,b), P1(a,d)}.
        let mut syms = SymbolTable::new();
        let egd = parse_egd(&mut syms, "P1(z,x1) & P1(z,x1p) -> x1 = x1p").unwrap();
        let q = syms.rel("Q");
        let p1 = syms.rel("P1");
        let p2 = syms.rel("P2");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let d = Value::Const(syms.constant("d"));
        let i = Instance::from_facts([
            Fact::new(q, vec![a]),
            Fact::new(p1, vec![a, b]),
            Fact::new(p2, vec![a, b]),
            Fact::new(p2, vec![a, c]),
        ]);
        assert!(satisfies_egds(&i, std::slice::from_ref(&egd)));
        let mut iprime = i.clone();
        iprime.insert(Fact::new(p1, vec![a, d]));
        iprime.insert(Fact::new(p2, vec![a, d]));
        assert!(!satisfies_egds(&iprime, std::slice::from_ref(&egd)));
        // Legalization merges b and d back together.
        let res = chase_egds(&iprime, &[egd], RigidPolicy::AllFlexible).unwrap();
        assert!(satisfies_egds(&res.instance, &[]));
        assert_eq!(res.instance.rel_len(p1), 1);
    }
}
