//! Conjunctive-query matching: enumerate the assignments under which a
//! conjunction of atoms holds in an instance, extending a partial binding.
//!
//! This is the trigger-finding primitive shared by all chase engines and by
//! the model checkers in `ndl-reasoning`.

use ndl_core::prelude::*;
use std::collections::BTreeMap;
use std::ops::ControlFlow;

/// A (partial) variable assignment.
pub type Binding = BTreeMap<VarId, Value>;

/// An indexed matcher: a shared [`TupleIndex`]
/// (`(rel, pos, value) → tuples`) accelerates trigger enumeration when the
/// same instance is matched against many times (every chase engine does
/// this — one triggering per body match, thousands of matches per chase).
///
/// The matcher either owns its index ([`Matcher::new`] builds one from an
/// instance) or borrows one the caller maintains ([`Matcher::over`]) — the
/// fixpoint engine keeps a single growing index across rounds and borrows
/// it per round instead of moving it in and out.
///
/// One-shot callers can keep using the free functions, which scan.
pub struct Matcher<'a> {
    index: IndexSource<'a>,
}

enum IndexSource<'a> {
    Owned(TupleIndex),
    Borrowed(&'a TupleIndex),
}

impl<'a> Matcher<'a> {
    /// Builds the index (O(total tuple cells)).
    pub fn new(instance: &Instance) -> Self {
        Matcher {
            index: IndexSource::Owned(TupleIndex::from_instance(instance)),
        }
    }

    /// Matches against an index the caller owns and keeps updating —
    /// no rebuild, no move. Read-only: the borrow ends when the matcher
    /// is dropped, so the caller can insert between rounds.
    pub fn over(index: &'a TupleIndex) -> Self {
        Matcher {
            index: IndexSource::Borrowed(index),
        }
    }

    fn idx(&self) -> &TupleIndex {
        match &self.index {
            IndexSource::Owned(i) => i,
            IndexSource::Borrowed(i) => i,
        }
    }

    /// Enumerates all extensions of `partial` satisfying every atom.
    pub fn all_matches(&self, atoms: &[Atom], partial: &Binding) -> Vec<Binding> {
        let mut results = Vec::new();
        self.for_each_match(atoms, partial, |b| results.push(b.clone()));
        results
    }

    /// Streams every match to `f` without materializing bindings — the
    /// match enumeration order is identical to [`Matcher::all_matches`],
    /// but nothing is cloned per match. The fixpoint engine's hot path:
    /// a chase examines every match once and keeps none of them.
    pub fn for_each_match(&self, atoms: &[Atom], partial: &Binding, mut f: impl FnMut(&Binding)) {
        let _ = self.try_for_each_match(atoms, partial, |b| {
            f(b);
            ControlFlow::Continue(())
        });
    }

    /// [`Matcher::for_each_match`] with early exit: enumeration stops as
    /// soon as `f` returns [`ControlFlow::Break`] (budget cutoffs,
    /// existence checks).
    pub fn try_for_each_match(
        &self,
        atoms: &[Atom],
        partial: &Binding,
        mut f: impl FnMut(&Binding) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let mut binding = partial.clone();
        let mut remaining: Vec<&Atom> = atoms.iter().collect();
        self.match_indexed(&mut remaining, &mut binding, &mut f)
    }

    /// Recursive join with dynamic atom selection: always match next the
    /// atom with the smallest candidate list under the current binding.
    fn match_indexed(
        &self,
        remaining: &mut Vec<&Atom>,
        binding: &mut Binding,
        f: &mut impl FnMut(&Binding) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if remaining.is_empty() {
            return f(binding);
        }
        // Pick the most selective atom, keeping its candidate list — the
        // selection scan already computed it.
        let mut best = 0;
        let mut best_ids: &[TupleId] = &[];
        let mut best_len = usize::MAX;
        for (i, atom) in remaining.iter().enumerate() {
            let ids = self.candidates(atom, binding);
            if ids.len() < best_len {
                best = i;
                best_ids = ids;
                best_len = ids.len();
                if best_len == 0 {
                    break;
                }
            }
        }
        // Positional remove + insert (not `swap_remove` + `push`): every
        // call restores `remaining` to exactly its entry state, so the
        // order of `remaining` at any node depends only on which ancestors
        // were matched, never on how sibling subtrees ran. The semi-naive
        // matcher relies on this to *skip* subtrees (all-old matches)
        // while enumerating the rest in identical order — see
        // [`Matcher::try_for_each_delta_match`].
        let atom = remaining.remove(best);
        let index = self.idx();
        // Rollback scratch, reused across every candidate at this level.
        let mut newly: Vec<VarId> = Vec::new();
        for &id in best_ids {
            if !index.is_live(id) {
                continue;
            }
            newly.clear();
            if try_extend(atom, index.tuple(id), binding, &mut newly) {
                let flow = self.match_indexed(remaining, binding, f);
                for v in &newly {
                    binding.remove(v);
                }
                if flow.is_break() {
                    remaining.insert(best, atom);
                    return flow;
                }
            }
        }
        remaining.insert(best, atom);
        ControlFlow::Continue(())
    }

    /// Streams exactly the **delta-touching subsequence** of
    /// [`Matcher::try_for_each_match`]'s enumeration: the matches in which
    /// at least one body atom binds a tuple in the index's current
    /// frontier (see `TupleIndex::mark_frontier`), in the same relative
    /// order and with identical bindings. This is the semi-naive rewrite
    /// of the join, generalized to nested-tgd bodies: instead of rewriting
    /// the body into per-atom delta rules (which would permute the match
    /// order and hence null interning), the recursive join itself prunes
    /// subtrees that provably contain only all-old matches.
    ///
    /// When the watermark is 0 (nothing marked yet) every tuple is delta
    /// and this is the full enumeration — including the empty body's
    /// single match.
    ///
    /// `touched` accumulates candidate tuples iterated: the delta engine's
    /// work measure (an empty frontier costs `O(atoms·log)` here, not a
    /// rescan) and the shard-balance statistic of the parallel engine.
    pub fn try_for_each_delta_match(
        &self,
        atoms: &[Atom],
        partial: &Binding,
        touched: &mut u64,
        mut f: impl FnMut(&Binding) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if atoms.is_empty() {
            // The empty conjunction matches once and touches no tuple: it
            // is a delta match only when everything is (round one).
            return if self.idx().frontier_start() == 0 {
                f(partial)
            } else {
                ControlFlow::Continue(())
            };
        }
        match self.delta_root(atoms, partial) {
            None => ControlFlow::Continue(()),
            Some((root, ids)) => self.run_delta_root(atoms, partial, root, ids, touched, &mut f),
        }
    }

    /// Depth-0 planning for the semi-naive join: the root atom the
    /// recursive join selects first (the same most-selective rule as the
    /// full matcher, over *full* candidate lists — selection must not
    /// depend on the frontier or the enumeration order would diverge) and
    /// the candidate slice the root loop iterates. `None` means the delta
    /// enumeration is provably empty: some atom has no candidates, or no
    /// atom can bind a frontier tuple — the empty-delta fast path.
    ///
    /// The parallel engine shards the returned slice into contiguous
    /// chunks ([`Matcher::run_delta_root`] accepts any sub-slice);
    /// concatenating the chunks' match streams in chunk order reproduces
    /// the sequential enumeration exactly.
    pub(crate) fn delta_root<'s>(
        &'s self,
        atoms: &[Atom],
        partial: &Binding,
    ) -> Option<(usize, &'s [TupleId])> {
        debug_assert!(!atoms.is_empty());
        let index = self.idx();
        let all = index.frontier_start() == 0;
        let mut best = 0;
        let mut best_ids: &[TupleId] = &[];
        let mut best_len = usize::MAX;
        let mut any_delta = all;
        for (i, atom) in atoms.iter().enumerate() {
            let ids = self.candidates(atom, partial);
            if !any_delta {
                let cut = ids.partition_point(|id| !index.in_frontier(*id));
                any_delta = cut < ids.len();
            }
            if ids.len() < best_len {
                best = i;
                best_ids = ids;
                best_len = ids.len();
                if best_len == 0 {
                    return None;
                }
            }
        }
        if !any_delta {
            return None;
        }
        if !all && atoms.len() == 1 {
            // A single-atom body must bind its one atom into the frontier:
            // only the frontier suffix of the candidates can match.
            let cut = best_ids.partition_point(|id| !index.in_frontier(*id));
            best_ids = &best_ids[cut..];
        }
        Some((best, best_ids))
    }

    /// Runs the semi-naive join over one contiguous chunk of the root
    /// candidates planned by [`Matcher::delta_root`]. `ids` may be any
    /// contiguous sub-slice of the planner's candidate slice; `root` must
    /// be the planner's atom index.
    pub(crate) fn run_delta_root(
        &self,
        atoms: &[Atom],
        partial: &Binding,
        root: usize,
        ids: &[TupleId],
        touched: &mut u64,
        f: &mut impl FnMut(&Binding) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let index = self.idx();
        let all = index.frontier_start() == 0;
        let mut binding = partial.clone();
        let mut remaining: Vec<&Atom> = atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != root)
            .map(|(_, a)| a)
            .collect();
        let atom = &atoms[root];
        let mut newly: Vec<VarId> = Vec::new();
        for &id in ids {
            *touched += 1;
            if !index.is_live(id) {
                continue;
            }
            newly.clear();
            if try_extend(atom, index.tuple(id), &mut binding, &mut newly) {
                let flow = self.match_delta(
                    &mut remaining,
                    &mut binding,
                    all || index.in_frontier(id),
                    touched,
                    f,
                );
                for v in &newly {
                    binding.remove(v);
                }
                if flow.is_break() {
                    return flow;
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// The delta twin of [`Matcher::match_indexed`]: identical atom
    /// selection and candidate iteration, plus a `delta_bound` flag
    /// tracking whether an ancestor already bound a frontier tuple.
    /// Completed matches fire only when `delta_bound`; subtrees in which
    /// no remaining atom can reach the frontier are pruned (safe because
    /// the full matcher restores `remaining` around every node, so
    /// skipping a subtree leaves siblings' state untouched); and a
    /// not-yet-bound final atom iterates only the frontier suffix of its
    /// candidates.
    fn match_delta(
        &self,
        remaining: &mut Vec<&Atom>,
        binding: &mut Binding,
        delta_bound: bool,
        touched: &mut u64,
        f: &mut impl FnMut(&Binding) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if remaining.is_empty() {
            return if delta_bound {
                f(binding)
            } else {
                ControlFlow::Continue(())
            };
        }
        let index = self.idx();
        let mut best = 0;
        let mut best_ids: &[TupleId] = &[];
        let mut best_len = usize::MAX;
        let mut any_delta = delta_bound;
        for (i, atom) in remaining.iter().enumerate() {
            let ids = self.candidates(atom, binding);
            if !any_delta {
                let cut = ids.partition_point(|id| !index.in_frontier(*id));
                any_delta = cut < ids.len();
            }
            if ids.len() < best_len {
                best = i;
                best_ids = ids;
                best_len = ids.len();
                if best_len == 0 {
                    break;
                }
            }
        }
        if best_len == 0 || !any_delta {
            // Either some atom matches nothing, or every remaining atom's
            // candidates lie entirely below the watermark — a match here
            // could only be all-old, and all-old matches already fired in
            // an earlier round (equality gates and head grounding are
            // factory-state independent, so re-firing them is pure dedup).
            return ControlFlow::Continue(());
        }
        if !delta_bound && remaining.len() == 1 {
            // Last chance to touch the frontier: only the frontier suffix
            // of the final atom's candidates can complete a delta match.
            let cut = best_ids.partition_point(|id| !index.in_frontier(*id));
            best_ids = &best_ids[cut..];
        }
        let atom = remaining.remove(best);
        let mut newly: Vec<VarId> = Vec::new();
        let mut flow = ControlFlow::Continue(());
        for &id in best_ids {
            *touched += 1;
            if !index.is_live(id) {
                continue;
            }
            newly.clear();
            if try_extend(atom, index.tuple(id), binding, &mut newly) {
                let fl = self.match_delta(
                    remaining,
                    binding,
                    delta_bound || index.in_frontier(id),
                    touched,
                    f,
                );
                for v in &newly {
                    binding.remove(v);
                }
                if fl.is_break() {
                    flow = fl;
                    break;
                }
            }
        }
        remaining.insert(best, atom);
        flow
    }

    /// The tightest available candidate list: the shortest posting list
    /// over the atom's bound positions, or the whole relation if none is
    /// bound.
    fn candidates(&self, atom: &Atom, binding: &Binding) -> &[TupleId] {
        let index = self.idx();
        let mut best: Option<&[TupleId]> = None;
        for (pos, var) in atom.args.iter().enumerate() {
            if let Some(&val) = binding.get(var) {
                let ts = index.posting(atom.rel, pos as u32, val);
                if ts.is_empty() {
                    return &[]; // no tuple matches
                }
                if best.is_none_or(|b: &[TupleId]| ts.len() < b.len()) {
                    best = Some(ts);
                }
            }
        }
        best.unwrap_or_else(|| index.rel_ids(atom.rel))
    }
}

/// Enumerates all extensions of `partial` under which every atom of `atoms`
/// holds in `instance`. Atoms are matched in an order that prefers atoms
/// with many already-bound variables (cheap greedy join ordering).
pub fn all_matches(instance: &Instance, atoms: &[Atom], partial: &Binding) -> Vec<Binding> {
    let mut order: Vec<&Atom> = atoms.iter().collect();
    let mut results = Vec::new();
    let mut binding = partial.clone();
    // Greedy static order: most constants-bound-first is dynamic; a simple
    // heuristic is to sort by (unbound var count under the initial binding,
    // relation size), which already avoids the worst cartesian blowups.
    order.sort_by_key(|a| {
        let unbound = a
            .args
            .iter()
            .filter(|v| !partial.contains_key(v))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        (unbound, instance.rel_len(a.rel))
    });
    match_rec(instance, &order, 0, &mut binding, &mut results);
    results
}

/// Does at least one extension of `partial` satisfy all atoms?
pub fn has_match(instance: &Instance, atoms: &[Atom], partial: &Binding) -> bool {
    // Cheap short-circuiting variant.
    let mut order: Vec<&Atom> = atoms.iter().collect();
    order.sort_by_key(|a| instance.rel_len(a.rel));
    let mut binding = partial.clone();
    exists_rec(instance, &order, 0, &mut binding)
}

fn match_rec(
    instance: &Instance,
    atoms: &[&Atom],
    i: usize,
    binding: &mut Binding,
    out: &mut Vec<Binding>,
) {
    if i == atoms.len() {
        out.push(binding.clone());
        return;
    }
    let atom = atoms[i];
    let mut newly: Vec<VarId> = Vec::new();
    for tuple in instance.tuples(atom.rel) {
        newly.clear();
        if try_extend(atom, tuple, binding, &mut newly) {
            match_rec(instance, atoms, i + 1, binding, out);
            for v in &newly {
                binding.remove(v);
            }
        }
    }
}

fn exists_rec(instance: &Instance, atoms: &[&Atom], i: usize, binding: &mut Binding) -> bool {
    if i == atoms.len() {
        return true;
    }
    let atom = atoms[i];
    let mut newly: Vec<VarId> = Vec::new();
    for tuple in instance.tuples(atom.rel) {
        newly.clear();
        if try_extend(atom, tuple, binding, &mut newly) {
            let found = exists_rec(instance, atoms, i + 1, binding);
            for v in &newly {
                binding.remove(v);
            }
            if found {
                return true;
            }
        }
    }
    false
}

/// Tries to unify `atom` with `tuple` under `binding`. On success, extends
/// `binding` in place, appends the newly bound variables to `newly` (for
/// rollback — the caller clears and reuses the buffer) and returns `true`;
/// on failure, leaves `binding` and `newly` untouched.
fn try_extend(atom: &Atom, tuple: &[Value], binding: &mut Binding, newly: &mut Vec<VarId>) -> bool {
    debug_assert_eq!(atom.args.len(), tuple.len());
    debug_assert!(newly.is_empty());
    for (&var, &val) in atom.args.iter().zip(tuple.iter()) {
        match binding.get(&var) {
            Some(&bound) => {
                if bound != val {
                    for v in newly.drain(..) {
                        binding.remove(&v);
                    }
                    return false;
                }
            }
            None => {
                binding.insert(var, val);
                newly.push(var);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (SymbolTable, Instance) {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let inst = Instance::from_facts([
            Fact::new(s, vec![a, b]),
            Fact::new(s, vec![b, c]),
            Fact::new(s, vec![a, c]),
        ]);
        (syms, inst)
    }

    #[test]
    fn single_atom_matches() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let x = syms.var("x");
        let y = syms.var("y");
        let ms = all_matches(&inst, &[Atom::new(s, vec![x, y])], &Binding::new());
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn join_two_atoms() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let x = syms.var("x");
        let y = syms.var("y");
        let z = syms.var("z");
        // S(x,y) & S(y,z): only a->b->c.
        let ms = all_matches(
            &inst,
            &[Atom::new(s, vec![x, y]), Atom::new(s, vec![y, z])],
            &Binding::new(),
        );
        assert_eq!(ms.len(), 1);
        let a = Value::Const(syms.constant("a"));
        let c = Value::Const(syms.constant("c"));
        assert_eq!(ms[0][&x], a);
        assert_eq!(ms[0][&z], c);
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let x = syms.var("x");
        let ms = all_matches(&inst, &[Atom::new(s, vec![x, x])], &Binding::new());
        assert!(ms.is_empty());
    }

    #[test]
    fn partial_binding_restricts() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let x = syms.var("x");
        let y = syms.var("y");
        let mut partial = Binding::new();
        partial.insert(x, Value::Const(syms.constant("a")));
        let ms = all_matches(&inst, &[Atom::new(s, vec![x, y])], &partial);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m[&x] == Value::Const(syms.constant("a"))));
    }

    #[test]
    fn has_match_short_circuits() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let x = syms.var("x");
        let y = syms.var("y");
        assert!(has_match(
            &inst,
            &[Atom::new(s, vec![x, y])],
            &Binding::new()
        ));
        assert!(!has_match(&inst, &[Atom::new(q, vec![x])], &Binding::new()));
    }

    #[test]
    fn empty_conjunction_has_the_empty_match() {
        let (_syms, inst) = tiny();
        let ms = all_matches(&inst, &[], &Binding::new());
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_empty());
        assert_eq!(
            Matcher::new(&inst).all_matches(&[], &Binding::new()).len(),
            1
        );
    }

    #[test]
    fn matcher_agrees_with_scan() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let x = syms.var("x");
        let y = syms.var("y");
        let z = syms.var("z");
        let matcher = Matcher::new(&inst);
        let queries: Vec<Vec<Atom>> = vec![
            vec![Atom::new(s, vec![x, y])],
            vec![Atom::new(s, vec![x, y]), Atom::new(s, vec![y, z])],
            vec![Atom::new(s, vec![x, x])],
            vec![Atom::new(s, vec![x, y]), Atom::new(s, vec![x, z])],
        ];
        for q in &queries {
            let mut scan: Vec<Binding> = all_matches(&inst, q, &Binding::new());
            let mut indexed: Vec<Binding> = matcher.all_matches(q, &Binding::new());
            scan.sort();
            indexed.sort();
            assert_eq!(scan, indexed, "query {q:?}");
        }
        // With a partial binding.
        let mut partial = Binding::new();
        partial.insert(x, Value::Const(syms.constant("a")));
        let q = vec![Atom::new(s, vec![x, y])];
        let mut scan = all_matches(&inst, &q, &partial);
        let mut indexed = matcher.all_matches(&q, &partial);
        scan.sort();
        indexed.sort();
        assert_eq!(scan, indexed);
    }

    /// Collects the delta enumeration of `matcher` for `atoms`.
    fn delta_matches(matcher: &Matcher, atoms: &[Atom]) -> (Vec<Binding>, u64) {
        let mut out = Vec::new();
        let mut touched = 0u64;
        let _ = matcher.try_for_each_delta_match(atoms, &Binding::new(), &mut touched, |b| {
            out.push(b.clone());
            ControlFlow::Continue(())
        });
        (out, touched)
    }

    #[test]
    fn delta_enumeration_is_the_new_minus_old_subsequence() {
        // Build a growing index the way the chase does: insert a base,
        // mark the frontier, insert a delta. The delta enumeration must be
        // exactly the full enumeration minus the old-index enumeration —
        // as a *subsequence*, in the full enumeration's order.
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let x = syms.var("x");
        let y = syms.var("y");
        let z = syms.var("z");
        let v: Vec<Value> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|n| Value::Const(syms.constant(n)))
            .collect();
        let mut idx = TupleIndex::new();
        for (i, j) in [(0, 1), (1, 2), (2, 3)] {
            idx.insert(s, vec![v[i], v[j]]);
        }
        let queries: Vec<Vec<Atom>> = vec![
            vec![Atom::new(s, vec![x, y])],
            vec![Atom::new(s, vec![x, y]), Atom::new(s, vec![y, z])],
            vec![Atom::new(s, vec![x, y]), Atom::new(s, vec![x, z])],
            vec![
                Atom::new(s, vec![x, y]),
                Atom::new(s, vec![y, z]),
                Atom::new(s, vec![z, x]),
            ],
        ];
        let old: Vec<Vec<Binding>> = queries
            .iter()
            .map(|q| Matcher::over(&idx).all_matches(q, &Binding::new()))
            .collect();
        idx.mark_frontier();
        for (i, j) in [(3, 4), (4, 0), (1, 4)] {
            idx.insert(s, vec![v[i], v[j]]);
        }
        let matcher = Matcher::over(&idx);
        for (q, old) in queries.iter().zip(&old) {
            let full = matcher.all_matches(q, &Binding::new());
            let (delta, _) = delta_matches(&matcher, q);
            // Subsequence of the full enumeration...
            let mut it = full.iter();
            for d in &delta {
                assert!(
                    it.any(|m| m == d),
                    "delta match {d:?} out of order for {q:?}"
                );
            }
            // ...and exactly the set difference against the old matches.
            let mut expect: Vec<&Binding> = full.iter().filter(|m| !old.contains(m)).collect();
            let mut got: Vec<&Binding> = delta.iter().collect();
            expect.sort();
            got.sort();
            assert_eq!(expect, got, "wrong delta set for {q:?}");
        }
    }

    #[test]
    fn zero_watermark_delta_equals_full_enumeration() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let x = syms.var("x");
        let y = syms.var("y");
        let z = syms.var("z");
        let matcher = Matcher::new(&inst);
        let q = vec![Atom::new(s, vec![x, y]), Atom::new(s, vec![y, z])];
        let full = matcher.all_matches(&q, &Binding::new());
        let (delta, touched) = delta_matches(&matcher, &q);
        assert_eq!(full, delta, "watermark 0 must enumerate everything");
        assert!(touched > 0);
        // Empty bodies match once under watermark 0.
        let (empty, _) = delta_matches(&matcher, &[]);
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn empty_frontier_is_pruned_without_a_rescan() {
        // A cross-product body over two 64-tuple relations has 4096 full
        // matches; with an empty frontier the delta matcher must prune at
        // the root, touching not a single candidate tuple.
        let mut syms = SymbolTable::new();
        let p = syms.rel("P");
        let q = syms.rel("Q");
        let x = syms.var("x");
        let y = syms.var("y");
        let mut idx = TupleIndex::new();
        for i in 0..64 {
            let c = Value::Const(syms.constant(&format!("c{i}")));
            idx.insert(p, vec![c]);
            idx.insert(q, vec![c]);
        }
        idx.mark_frontier();
        let matcher = Matcher::over(&idx);
        let body = vec![Atom::new(p, vec![x]), Atom::new(q, vec![y])];
        let (delta, touched) = delta_matches(&matcher, &body);
        assert!(delta.is_empty());
        assert_eq!(touched, 0, "empty delta must not rescan the instance");
        // Empty bodies no longer match once the watermark has moved.
        let (empty, _) = delta_matches(&matcher, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn matcher_handles_unmatchable_values() {
        let (mut syms, inst) = tiny();
        let s = syms.rel("S");
        let x = syms.var("x");
        let y = syms.var("y");
        let mut partial = Binding::new();
        partial.insert(x, Value::Const(syms.constant("zzz")));
        let matcher = Matcher::new(&inst);
        assert!(matcher
            .all_matches(&[Atom::new(s, vec![x, y])], &partial)
            .is_empty());
    }
}
