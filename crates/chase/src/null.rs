//! Labeled nulls in bijection with ground Skolem terms.
//!
//! The chase interprets Skolem functions over the Herbrand universe: each
//! ground function application denotes one labeled null, allocated on first
//! use. This makes the oblivious chase deterministic, lets re-fired
//! triggers reuse their nulls, and lets figures print nulls exactly as the
//! paper does (`f(a_1)`, `g(a_1,a_3,a_4)`, ...).

use ndl_core::prelude::*;
use std::collections::HashMap;

/// Allocator and registry of labeled nulls, keyed by ground Skolem term.
#[derive(Clone, Debug, Default)]
pub struct NullFactory {
    terms: Vec<GroundTerm>,
    ids: HashMap<GroundTerm, NullId>,
    offset: u32,
}

impl NullFactory {
    /// Creates an empty factory allocating ids from 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a factory allocating ids from `offset` upward — use this to
    /// keep null spaces disjoint when values from several chase runs end
    /// up in one instance (e.g. the two-step composition chase).
    pub fn starting_at(offset: u32) -> Self {
        NullFactory {
            offset,
            ..Self::default()
        }
    }

    /// The first id that would be allocated next (offset + count).
    pub fn next_id(&self) -> u32 {
        self.offset + self.terms.len() as u32
    }

    /// The null labeled by `term`, allocated on first use.
    pub fn null_for(&mut self, term: &GroundTerm) -> NullId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = NullId(self.offset + self.terms.len() as u32);
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// The value denoted by a ground term: constants denote themselves,
    /// function applications denote nulls.
    pub fn value_of(&mut self, term: &GroundTerm) -> Value {
        match term {
            GroundTerm::Const(c) => Value::Const(*c),
            t @ GroundTerm::App(..) => Value::Null(self.null_for(t)),
        }
    }

    /// The ground term labeling a null allocated by this factory.
    pub fn term(&self, id: NullId) -> Option<&GroundTerm> {
        let idx = id.0.checked_sub(self.offset)? as usize;
        self.terms.get(idx)
    }

    /// Number of nulls allocated so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Has no null been allocated yet?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Renders a value, printing nulls as their ground Skolem terms when
    /// known (e.g. `f(a_1)`) and as `_Nk` otherwise.
    pub fn display_value(&self, v: Value, syms: &SymbolTable) -> String {
        match v {
            Value::Const(c) => syms.const_name(c).to_string(),
            Value::Null(n) => match self.term(n) {
                Some(t) => t.display(syms).to_string(),
                None => format!("_N{}", n.0),
            },
        }
    }

    /// Renders a fact with Skolem-term nulls.
    pub fn display_fact(&self, fact: &Fact, syms: &SymbolTable) -> String {
        let args = fact
            .args
            .iter()
            .map(|&v| self.display_value(v, syms))
            .collect::<Vec<_>>()
            .join(",");
        format!("{}({})", syms.rel_name(fact.rel), args)
    }

    /// Renders an instance with Skolem-term nulls, facts separated by `, `.
    pub fn display_instance(&self, inst: &Instance, syms: &SymbolTable) -> String {
        inst.facts()
            .map(|f| self.display_fact(&f, syms))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_term_same_null() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let a = syms.constant("a");
        let mut nf = NullFactory::new();
        let t = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let n1 = nf.null_for(&t);
        let n2 = nf.null_for(&t);
        assert_eq!(n1, n2);
        assert_eq!(nf.len(), 1);
        assert_eq!(nf.term(n1), Some(&t));
    }

    #[test]
    fn constants_denote_themselves() {
        let mut syms = SymbolTable::new();
        let a = syms.constant("a");
        let mut nf = NullFactory::new();
        assert_eq!(nf.value_of(&GroundTerm::Const(a)), Value::Const(a));
        assert!(nf.is_empty());
    }

    #[test]
    fn offset_factories_keep_null_spaces_disjoint() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let a = syms.constant("a");
        let t = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let mut n1 = NullFactory::new();
        let id1 = n1.null_for(&t);
        assert_eq!(id1, NullId(0));
        let mut n2 = NullFactory::starting_at(n1.next_id());
        let id2 = n2.null_for(&t);
        assert_eq!(id2, NullId(1));
        // Reverse lookup respects the offset.
        assert_eq!(n2.term(id2), Some(&t));
        assert_eq!(n2.term(id1), None);
        assert_eq!(n2.next_id(), 2);
    }

    #[test]
    fn display_uses_skolem_terms() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let a = syms.constant("a_1");
        let r = syms.rel("R");
        let mut nf = NullFactory::new();
        let t = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let v = nf.value_of(&t);
        let fact = Fact::new(r, vec![v, Value::Const(a)]);
        assert_eq!(nf.display_fact(&fact, &syms), "R(f(a_1),a_1)");
        // Unknown null falls back to _Nk.
        assert_eq!(nf.display_value(Value::Null(NullId(99)), &syms), "_N99");
    }
}
