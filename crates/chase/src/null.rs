//! Labeled nulls in bijection with ground Skolem terms.
//!
//! The chase interprets Skolem functions over the Herbrand universe: each
//! ground function application denotes one labeled null, allocated on first
//! use. This makes the oblivious chase deterministic, lets re-fired
//! triggers reuse their nulls, and lets figures print nulls exactly as the
//! paper does (`f(a_1)`, `g(a_1,a_3,a_4)`, ...).
//!
//! Storage is hash-consed: a null is recorded as one function application
//! over *values* (constants or previously allocated nulls), never as a
//! fully expanded term. Deeply nested Herbrand terms therefore cost O(1)
//! space per null — a chase whose nulls nest `k` levels deep would
//! otherwise pay term sizes exponential in `k` (each application copies
//! every argument subterm). Structural [`GroundTerm`]s are reconstructed
//! on demand for display and for egd constant renaming.

use ndl_core::prelude::*;

/// Allocator and registry of labeled nulls, keyed by ground Skolem term.
///
/// The interning map is keyed per function symbol, with argument vectors as
/// the inner keys: probes borrow `&[Value]` (via `Vec<Value>: Borrow<[Value]>`)
/// so the hot re-derivation path never allocates.
#[derive(Clone, Debug, Default)]
pub struct NullFactory {
    /// Per null, its defining application over already-interned values.
    apps: Vec<(FuncId, Vec<Value>)>,
    ids: FxHashMap<FuncId, FxHashMap<Vec<Value>, NullId>>,
    offset: u32,
}

impl NullFactory {
    /// Creates an empty factory allocating ids from 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a factory allocating ids from `offset` upward — use this to
    /// keep null spaces disjoint when values from several chase runs end
    /// up in one instance (e.g. the two-step composition chase).
    pub fn starting_at(offset: u32) -> Self {
        NullFactory {
            offset,
            ..Self::default()
        }
    }

    /// The first id that would be allocated next (offset + count).
    pub fn next_id(&self) -> u32 {
        self.offset + self.apps.len() as u32
    }

    /// The null labeled by one function application over interned values.
    /// This is the engine-facing fast path: arguments that are themselves
    /// Skolem applications are passed as their nulls, so no structural
    /// term is ever materialized.
    pub fn null_for_app(&mut self, f: FuncId, args: Vec<Value>) -> NullId {
        let per_f = self.ids.entry(f).or_default();
        if let Some(&id) = per_f.get(args.as_slice()) {
            return id;
        }
        let id = NullId(self.offset + self.apps.len() as u32);
        self.apps.push((f, args.clone()));
        per_f.insert(args, id);
        id
    }

    /// [`null_for_app`](Self::null_for_app) over a borrowed argument slice:
    /// the interned id is returned without allocating when the application
    /// has been seen before (the common case once the chase starts
    /// re-deriving facts); the owned vectors are built only on first use.
    pub fn null_for_app_slice(&mut self, f: FuncId, args: &[Value]) -> NullId {
        if let Some(&id) = self.ids.get(&f).and_then(|per_f| per_f.get(args)) {
            return id;
        }
        let id = NullId(self.offset + self.apps.len() as u32);
        self.apps.push((f, args.to_vec()));
        self.ids.entry(f).or_default().insert(args.to_vec(), id);
        id
    }

    /// The null already interned for one function application over values,
    /// if any — a **non-interning** probe. Engines use this to evaluate
    /// equality gates without the side effect of allocating nulls for
    /// clauses that never fire (a failing equality must leave the factory
    /// untouched).
    pub fn lookup_app(&self, f: FuncId, args: &[Value]) -> Option<NullId> {
        self.ids.get(&f)?.get(args).copied()
    }

    /// The null labeled by `term`, allocated on first use. Subterms are
    /// interned bottom-up, so nested applications allocate (and reuse)
    /// nulls for their arguments as well.
    pub fn null_for(&mut self, term: &GroundTerm) -> NullId {
        match term {
            GroundTerm::Const(_) => panic!("constants do not label nulls"),
            GroundTerm::App(f, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.value_of(a)).collect();
                self.null_for_app(*f, vals)
            }
        }
    }

    /// The value denoted by a ground term: constants denote themselves,
    /// function applications denote nulls.
    pub fn value_of(&mut self, term: &GroundTerm) -> Value {
        match term {
            GroundTerm::Const(c) => Value::Const(*c),
            t @ GroundTerm::App(..) => Value::Null(self.null_for(t)),
        }
    }

    /// The ground term labeling a null allocated by this factory,
    /// reconstructed from the hash-consed applications. `None` for ids
    /// outside this factory's range (including argument nulls minted by a
    /// different factory).
    pub fn term(&self, id: NullId) -> Option<GroundTerm> {
        let idx = id.0.checked_sub(self.offset)? as usize;
        let (f, args) = self.apps.get(idx)?;
        let args = args
            .iter()
            .map(|&v| match v {
                Value::Const(c) => Some(GroundTerm::Const(c)),
                Value::Null(n) => self.term(n),
            })
            .collect::<Option<Vec<_>>>()?;
        Some(GroundTerm::App(*f, args))
    }

    /// Number of nulls allocated so far.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Has no null been allocated yet?
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Renders a value, printing nulls as their ground Skolem terms when
    /// known (e.g. `f(a_1)`) and as `_Nk` otherwise.
    pub fn display_value(&self, v: Value, syms: &SymbolTable) -> String {
        match v {
            Value::Const(c) => syms.const_name(c).to_string(),
            Value::Null(n) => match self.term(n) {
                Some(t) => t.display(syms).to_string(),
                None => format!("_N{}", n.0),
            },
        }
    }

    /// Renders a fact with Skolem-term nulls.
    pub fn display_fact(&self, fact: &Fact, syms: &SymbolTable) -> String {
        self.display_fact_ref(fact.as_ref(), syms)
    }

    /// Renders a borrowed fact view with Skolem-term nulls.
    pub fn display_fact_ref(&self, fact: FactRef<'_>, syms: &SymbolTable) -> String {
        let args = fact
            .args
            .iter()
            .map(|&v| self.display_value(v, syms))
            .collect::<Vec<_>>()
            .join(",");
        format!("{}({})", syms.rel_name(fact.rel), args)
    }

    /// Renders an instance with Skolem-term nulls, facts separated by `, `.
    pub fn display_instance(&self, inst: &Instance, syms: &SymbolTable) -> String {
        inst.facts()
            .map(|f| self.display_fact_ref(f, syms))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_term_same_null() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let a = syms.constant("a");
        let mut nf = NullFactory::new();
        let t = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let n1 = nf.null_for(&t);
        let n2 = nf.null_for(&t);
        assert_eq!(n1, n2);
        assert_eq!(nf.len(), 1);
        assert_eq!(nf.term(n1), Some(t));
    }

    #[test]
    fn constants_denote_themselves() {
        let mut syms = SymbolTable::new();
        let a = syms.constant("a");
        let mut nf = NullFactory::new();
        assert_eq!(nf.value_of(&GroundTerm::Const(a)), Value::Const(a));
        assert!(nf.is_empty());
    }

    #[test]
    fn nested_terms_intern_their_subterms() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let g = syms.func("g");
        let a = syms.constant("a");
        let mut nf = NullFactory::new();
        let inner = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let outer = GroundTerm::App(g, vec![inner.clone()]);
        let outer_id = nf.null_for(&outer);
        // g(f(a)) interns f(a) too, and reconstructs structurally.
        assert_eq!(nf.len(), 2);
        assert_eq!(nf.term(outer_id), Some(outer.clone()));
        assert_eq!(nf.null_for(&inner), NullId(0));
        // The compact path agrees with the structural one.
        let inner_id = nf.null_for(&inner);
        assert_eq!(nf.null_for_app(g, vec![Value::Null(inner_id)]), outer_id);
        assert_eq!(nf.len(), 2);
    }

    #[test]
    fn offset_factories_keep_null_spaces_disjoint() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let a = syms.constant("a");
        let t = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let mut n1 = NullFactory::new();
        let id1 = n1.null_for(&t);
        assert_eq!(id1, NullId(0));
        let mut n2 = NullFactory::starting_at(n1.next_id());
        let id2 = n2.null_for(&t);
        assert_eq!(id2, NullId(1));
        // Reverse lookup respects the offset.
        assert_eq!(n2.term(id2), Some(t));
        assert_eq!(n2.term(id1), None);
        assert_eq!(n2.next_id(), 2);
    }

    #[test]
    fn display_uses_skolem_terms() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let a = syms.constant("a_1");
        let r = syms.rel("R");
        let mut nf = NullFactory::new();
        let t = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let v = nf.value_of(&t);
        let fact = Fact::new(r, vec![v, Value::Const(a)]);
        assert_eq!(nf.display_fact(&fact, &syms), "R(f(a_1),a_1)");
        // Unknown null falls back to _Nk.
        assert_eq!(nf.display_value(Value::Null(NullId(99)), &syms), "_N99");
    }
}
