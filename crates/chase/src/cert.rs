//! Dataflow certificates: dead statements and null-free relations,
//! claimed by the static analyzer and **re-verified** by every engine.
//!
//! Like the parallel schedule of [`crate::plan::ParallelSchedule`], a
//! [`DataflowCert`] is a certificate, not a trusted input. Before the
//! first round, each fixpoint engine recomputes the two claims against
//! the *actual* source instance and tgd list it was handed:
//!
//! - a statement is provably **dead** when every one of its clauses reads
//!   some relation that is neither populated by the source nor writable
//!   by any chain of firing clauses — no round of the fixpoint chase can
//!   ever fire it;
//! - a relation is provably **ground** (null-free) when no firing clause
//!   can place a Skolem term into it, directly or by copying a variable
//!   bound only at nullable relations.
//!
//! A certificate claiming a *subset* of the provable sets verifies; one
//! claiming a statement that can fire or a relation that can hold a null
//! is rejected with [`FixpointError::InvalidCert`] before any work
//! happens. Skipping a provably dead statement is then exact — the
//! statement contributes zero matches in every round, so eliding it
//! changes neither derived facts nor null identities nor round counts —
//! and downstream consumers (e.g. `ndl-hom`'s null-block computation) may
//! skip per-value null scans on the ground relations.
//!
//! The analyzer attaches a certificate via
//! `ndl_analyze::ChaseAnalysis::tgd_plan`; its dataflow pass starts from
//! a superset of any real source population (fact-populated relations, or
//! all read-never-written relations when the program has no facts), and
//! the fixpoints are monotone in the source set, so analyzer claims
//! always verify here. Hand-built plans are still checked the hard way.

use crate::fixpoint::FixpointError;
use ndl_core::prelude::*;
use std::collections::BTreeSet;

/// Dataflow claims attached to a [`crate::ChasePlan`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataflowCert {
    /// Indices into the engine's tgd slice of statements claimed dead
    /// (never able to fire from the given source).
    pub dead: BTreeSet<usize>,
    /// Relations claimed provably null-free throughout the chase.
    pub ground: BTreeSet<RelId>,
}

impl DataflowCert {
    /// Is there nothing to verify or exploit?
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty() && self.ground.is_empty()
    }
}

/// What the engines can prove about a chase of `tgds` from `source` —
/// the reference the certificate is checked against.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataflowFacts {
    /// Relations that can ever hold a fact: populated source relations,
    /// closed under firing clauses.
    pub reachable: BTreeSet<RelId>,
    /// Tgd indices whose every clause reads some unreachable relation.
    pub dead: BTreeSet<usize>,
    /// Relations some firing clause can place a null into.
    pub nullable: BTreeSet<RelId>,
}

/// Recomputes the provable dataflow facts from the engine's own inputs.
pub fn dataflow_facts(source: &Instance, tgds: &[SoTgd]) -> DataflowFacts {
    let mut facts = DataflowFacts {
        reachable: source
            .active_relations()
            .filter(|&r| source.rel_len(r) > 0)
            .collect(),
        ..DataflowFacts::default()
    };
    // Reachability: a clause whose body relations are all reachable can
    // fire and marks its head relations reachable.
    loop {
        let mut changed = false;
        for tgd in tgds {
            for c in &tgd.clauses {
                if c.body.iter().all(|b| facts.reachable.contains(&b.rel)) {
                    for ta in &c.head {
                        changed |= facts.reachable.insert(ta.rel);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let fires = |c: &SoClause| -> bool { c.body.iter().all(|b| facts.reachable.contains(&b.rel)) };
    for (i, tgd) in tgds.iter().enumerate() {
        if !tgd.clauses.iter().any(fires) {
            facts.dead.insert(i);
        }
    }
    // Groundness: a head argument introduces a null when it is a Skolem
    // term, or a variable whose every body binding is at a nullable
    // relation (joins bind the variable at all occurrences at once, so a
    // single null-free occurrence grounds it). A head variable with no
    // body occurrence is conservatively nullable.
    loop {
        let mut changed = false;
        for tgd in tgds {
            for c in &tgd.clauses {
                if !fires(c) {
                    continue;
                }
                for ta in &c.head {
                    if facts.nullable.contains(&ta.rel) {
                        continue;
                    }
                    let introduces = ta.args.iter().any(|t| match t {
                        Term::App(..) => true,
                        Term::Var(v) => {
                            let mut any = false;
                            let all_nullable =
                                c.body.iter().filter(|b| b.args.contains(v)).all(|b| {
                                    any = true;
                                    facts.nullable.contains(&b.rel)
                                });
                            !any || all_nullable
                        }
                    });
                    if introduces {
                        facts.nullable.insert(ta.rel);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    facts
}

/// Verifies a dataflow certificate against facts recomputed from the
/// engine's own `source` and `tgds`. Every claimed-dead statement must be
/// provably dead and every claimed-ground relation provably null-free;
/// claiming less than provable is fine.
pub fn verify_dataflow_cert(
    source: &Instance,
    tgds: &[SoTgd],
    cert: &DataflowCert,
) -> std::result::Result<(), FixpointError> {
    let facts = dataflow_facts(source, tgds);
    for &d in &cert.dead {
        if d >= tgds.len() {
            return Err(FixpointError::InvalidCert {
                reason: format!("dead statement {d} out of range ({} tgds)", tgds.len()),
            });
        }
        if !facts.dead.contains(&d) {
            return Err(FixpointError::InvalidCert {
                reason: format!(
                    "statement {d} is claimed dead but some clause can fire \
                     from the populated relations"
                ),
            });
        }
    }
    if let Some(&r) = cert.ground.intersection(&facts.nullable).next() {
        return Err(FixpointError::InvalidCert {
            reason: format!(
                "relation {} is claimed ground but a firing clause can \
                 place a null into it",
                r.index()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn copy_tgd(from: RelId, to: RelId, v: VarId) -> SoTgd {
        SoTgd::new(
            vec![],
            vec![SoClause::new(
                vec![Atom::new(from, vec![v])],
                vec![],
                vec![TermAtom::from_vars(to, &[v])],
            )],
        )
    }

    fn skolem_tgd(from: RelId, to: RelId, v: VarId, f: FuncId) -> SoTgd {
        SoTgd::new(
            vec![f],
            vec![SoClause::new(
                vec![Atom::new(from, vec![v])],
                vec![],
                vec![TermAtom::new(
                    to,
                    vec![Term::Var(v), Term::App(f, vec![Term::Var(v)])],
                )],
            )],
        )
    }

    fn setup() -> (SymbolTable, Instance) {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let c = syms.constant("a");
        let mut inst = Instance::new();
        inst.insert(Fact::new(s, vec![Value::Const(c)]));
        (syms, inst)
    }

    #[test]
    fn facts_mark_unfed_statements_dead() {
        let (mut syms, inst) = setup();
        let (s, t, z, w) = (syms.rel("S"), syms.rel("T"), syms.rel("Z"), syms.rel("W"));
        let v = syms.var("x");
        let tgds = vec![copy_tgd(s, t, v), copy_tgd(z, w, v), copy_tgd(t, z, v)];
        // S is populated: S->T fires, T->Z fires, so Z->W fires too.
        let facts = dataflow_facts(&inst, &tgds);
        assert!(facts.dead.is_empty());
        // Without the T->Z bridge, Z->W is dead.
        let facts = dataflow_facts(&inst, &tgds[..2]);
        assert_eq!(facts.dead, BTreeSet::from([1]));
        assert_eq!(
            facts.reachable,
            BTreeSet::from([s, t]),
            "Z and W stay unreachable"
        );
    }

    #[test]
    fn nullable_propagates_through_copies() {
        let (mut syms, inst) = setup();
        let (s, r, p) = (syms.rel("S"), syms.rel("R"), syms.rel("P"));
        let v = syms.var("x");
        let f = syms.func("f");
        let tgds = vec![skolem_tgd(s, r, v, f), copy_tgd(r, p, v)];
        let facts = dataflow_facts(&inst, &tgds);
        assert_eq!(facts.nullable, BTreeSet::from([r, p]));
        assert!(!facts.nullable.contains(&s));
    }

    #[test]
    fn verification_accepts_subsets_and_rejects_overclaims() {
        let (mut syms, inst) = setup();
        let (s, t, z, w) = (syms.rel("S"), syms.rel("T"), syms.rel("Z"), syms.rel("W"));
        let v = syms.var("x");
        let tgds = vec![copy_tgd(s, t, v), copy_tgd(z, w, v)];
        // Claiming nothing, or exactly the provable sets, verifies.
        assert!(verify_dataflow_cert(&inst, &tgds, &DataflowCert::default()).is_ok());
        let ok = DataflowCert {
            dead: BTreeSet::from([1]),
            ground: BTreeSet::from([s, t, z, w]),
        };
        assert!(verify_dataflow_cert(&inst, &tgds, &ok).is_ok());
        // Claiming the live statement dead is rejected.
        let bad = DataflowCert {
            dead: BTreeSet::from([0]),
            ground: BTreeSet::new(),
        };
        assert!(matches!(
            verify_dataflow_cert(&inst, &tgds, &bad),
            Err(FixpointError::InvalidCert { .. })
        ));
        // Out-of-range indices are rejected.
        let oob = DataflowCert {
            dead: BTreeSet::from([7]),
            ground: BTreeSet::new(),
        };
        assert!(verify_dataflow_cert(&inst, &tgds, &oob).is_err());
    }

    #[test]
    fn verification_rejects_nullable_ground_claims() {
        let (mut syms, inst) = setup();
        let (s, r) = (syms.rel("S"), syms.rel("R"));
        let v = syms.var("x");
        let f = syms.func("f");
        let tgds = vec![skolem_tgd(s, r, v, f)];
        let bad = DataflowCert {
            dead: BTreeSet::new(),
            ground: BTreeSet::from([r]),
        };
        assert!(matches!(
            verify_dataflow_cert(&inst, &tgds, &bad),
            Err(FixpointError::InvalidCert { .. })
        ));
        // S itself is fine.
        let ok = DataflowCert {
            dead: BTreeSet::new(),
            ground: BTreeSet::from([s]),
        };
        assert!(verify_dataflow_cert(&inst, &tgds, &ok).is_ok());
    }

    #[test]
    fn empty_source_kills_everything_with_a_body() {
        let mut syms = SymbolTable::new();
        let (s, t) = (syms.rel("S"), syms.rel("T"));
        let v = syms.var("x");
        let tgds = vec![copy_tgd(s, t, v)];
        let facts = dataflow_facts(&Instance::new(), &tgds);
        assert_eq!(facts.dead, BTreeSet::from([0]));
        assert!(facts.nullable.is_empty());
    }
}
