//! Chase execution plans.
//!
//! A [`ChasePlan`] is what the static analyzer (`ndl-analyze`) hands the
//! chase engines: a clause firing order, a termination verdict derived
//! from the position graph of the Skolemized program (weak/rich
//! acyclicity), a worst-case chase-size degree for index pre-sizing, and —
//! for programs whose chase is *not* provably terminating — either a step
//! budget or an instruction to refuse outright. The engines stay usable
//! without an analyzer: [`ChasePlan::trusting`] reproduces the historical
//! behavior (natural order, no budget, assume termination).

/// A stratification of a firing order into conflict-free stages.
///
/// Each stage is a run of statement indices whose read/write relation
/// sets and Skolem-function footprints are pairwise disjoint, so the
/// statements of a stage can *match* concurrently. The concatenation of
/// the stages must equal the plan's firing order exactly — stages cut
/// the order into contiguous runs rather than reordering it — which is
/// what lets the parallel engine replay trigger resolution in the exact
/// sequential order and stay bit-identical (same NullIds, same rounds,
/// same derived counts). The schedule is a *certificate*, not a trusted
/// input: the engine re-derives statement footprints from the program
/// itself and rejects a schedule whose stages are not conflict-free
/// ([`crate::fixpoint::FixpointError::InvalidSchedule`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelSchedule {
    /// Stages in execution order; each stage lists statement indices in
    /// firing order. Every stage must be non-empty.
    pub stages: Vec<Vec<usize>>,
}

impl ParallelSchedule {
    /// The degenerate schedule: every statement is its own stage, in the
    /// given firing order. Always a valid certificate.
    pub fn sequential(order: &[usize]) -> ParallelSchedule {
        ParallelSchedule {
            stages: order.iter().map(|&i| vec![i]).collect(),
        }
    }

    /// Widest stage (maximum statements matchable concurrently); 0 for an
    /// empty schedule.
    pub fn width(&self) -> usize {
        self.stages.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total statements across all stages.
    pub fn len(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// True when the schedule has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage concatenation — must equal the plan's firing order for the
    /// schedule to certify bit-identical execution.
    pub fn flattened(&self) -> Vec<usize> {
        self.stages.iter().flatten().copied().collect()
    }
}

/// How a chase engine should run a dependency program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChasePlan {
    /// Statement indices in preferred firing order. Engines fire
    /// statements in this order; indices out of range are ignored and
    /// statements missing from the order are appended in natural order.
    pub order: Vec<usize>,
    /// Is the (oblivious, fixpoint) chase provably terminating — i.e. did
    /// the analyzer certify rich acyclicity of the position graph?
    pub guaranteed_terminating: bool,
    /// Worst-case chase-size polynomial degree: `|chase(I)| = O(|I|^d)`.
    /// Meaningful only when `guaranteed_terminating`.
    pub size_degree: usize,
    /// Step budget (count of derived facts) for programs without a
    /// termination guarantee. `None` means: refuse to chase such a
    /// program at all.
    pub step_budget: Option<usize>,
    /// The analyzer's explanation when termination is not guaranteed —
    /// the NDL020/NDL021 finding, e.g. the special-edge cycle.
    pub diagnosis: Option<String>,
    /// Interference-free stage schedule for the parallel engine, when the
    /// analyzer computed one. `None` means: no schedule was derived; the
    /// parallel engine falls back to deriving its own from the program.
    pub schedule: Option<ParallelSchedule>,
    /// Dataflow certificate (dead statements, null-free relations), when
    /// the analyzer derived one. Engines verify it against their actual
    /// inputs before exploiting it — see [`crate::cert`]. `None` means:
    /// no claims, nothing to verify or skip.
    pub cert: Option<crate::cert::DataflowCert>,
}

impl ChasePlan {
    /// The plan used when no analysis ran: natural firing order, assume
    /// termination (the historical single-pass engines cannot diverge).
    pub fn trusting(statements: usize) -> ChasePlan {
        ChasePlan {
            order: (0..statements).collect(),
            guaranteed_terminating: true,
            size_degree: 1,
            step_budget: None,
            diagnosis: None,
            schedule: None,
            cert: None,
        }
    }

    /// Normalizes `order` against a program of `n` statements: keeps the
    /// planned order (dropping out-of-range duplicates), then appends any
    /// statement the plan did not mention.
    pub fn firing_order(&self, n: usize) -> Vec<usize> {
        let mut seen = vec![false; n];
        let mut out = Vec::with_capacity(n);
        for &i in &self.order {
            if i < n && !seen[i] {
                seen[i] = true;
                out.push(i);
            }
        }
        out.extend((0..n).filter(|&i| !seen[i]));
        out
    }

    /// Predicted number of chase facts for a source of `n` facts, from the
    /// size degree — the trigger-index pre-sizing hint. Clamped so a
    /// pessimistic degree cannot ask for absurd allocations.
    pub fn predicted_tuples(&self, n: usize) -> usize {
        const CAP: usize = 1 << 20;
        if !self.guaranteed_terminating {
            return self.step_budget.unwrap_or(0).min(CAP).max(n.min(CAP));
        }
        n.saturating_pow(self.size_degree.min(6) as u32)
            .clamp(n.min(CAP), CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trusting_plan_is_natural_order() {
        let p = ChasePlan::trusting(3);
        assert_eq!(p.firing_order(3), vec![0, 1, 2]);
        assert!(p.guaranteed_terminating);
        assert_eq!(p.step_budget, None);
    }

    #[test]
    fn firing_order_normalizes() {
        let p = ChasePlan {
            order: vec![2, 2, 9, 0],
            ..ChasePlan::trusting(0)
        };
        assert_eq!(p.firing_order(4), vec![2, 0, 1, 3]);
    }

    #[test]
    fn sequential_schedule_is_singleton_stages() {
        let s = ParallelSchedule::sequential(&[2, 0, 1]);
        assert_eq!(s.stages, vec![vec![2], vec![0], vec![1]]);
        assert_eq!(s.width(), 1);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.flattened(), vec![2, 0, 1]);
        assert!(ParallelSchedule::default().is_empty());
        assert_eq!(ParallelSchedule::default().width(), 0);
    }

    #[test]
    fn schedule_flattening_preserves_stage_order() {
        let s = ParallelSchedule {
            stages: vec![vec![0, 1], vec![2], vec![3, 4]],
        };
        assert_eq!(s.flattened(), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.width(), 2);
    }

    #[test]
    fn predicted_tuples_scales_and_clamps() {
        let mut p = ChasePlan::trusting(1);
        p.size_degree = 2;
        assert_eq!(p.predicted_tuples(100), 10_000);
        p.size_degree = 6;
        assert_eq!(p.predicted_tuples(1_000_000), 1 << 20);
        p.guaranteed_terminating = false;
        p.step_budget = Some(500);
        assert_eq!(p.predicted_tuples(10), 500);
        p.step_budget = None;
        assert_eq!(p.predicted_tuples(10), 10);
    }
}
