//! Stage-parallel oblivious fixpoint chase, certified to be bit-identical
//! to the sequential engine in [`crate::fixpoint`].
//!
//! The engine executes a [`ParallelSchedule`]: the plan's firing order cut
//! into contiguous, conflict-free *stages*. Each round runs the stages in
//! order; within a stage, the statements' trigger enumeration — the hot
//! loop of the chase — runs concurrently on scoped worker threads
//! (`NDL_CHASE_THREADS`, the [`crate::config::ChaseConfig`] counterpart of
//! the hom engine's `NDL_HOM_THREADS`). Bit-identity with the sequential
//! engine (same NullIds, same rounds, same derived counts) falls out of
//! three invariants:
//!
//! 1. **The match phase is read-only.** Workers enumerate body matches
//!    against the round-start [`TupleIndex`] and evaluate equality gates
//!    through the non-interning `probe_term` — probe *equality* is
//!    independent of the null-factory state, so a stale snapshot decides
//!    every gate exactly as the sequential engine would.
//! 2. **Resolution replays sequentially.** Fired bindings are resolved —
//!    Skolem nulls interned, heads deduplicated, the budget enforced — on
//!    the calling thread, statement by statement in the exact firing
//!    order. Null interning order is therefore identical to the
//!    sequential engine's.
//! 3. **Stages are contiguous.** The concatenation of the stages *is* the
//!    firing order, so the replay in (2) visits fired triggers in the
//!    sequential order even across stage boundaries.
//!
//! The schedule is treated as an untrusted **certificate**: whether it
//! came from the static analyzer ([`ChasePlan::schedule`]) or from
//! [`derive_schedule`], the engine re-derives every statement's
//! read/write/Skolem footprint from the program itself and rejects
//! schedules whose stages are not conflict-free
//! ([`FixpointError::InvalidSchedule`]). In debug builds a runtime checker
//! additionally asserts that the statements of a stage derived into
//! pairwise-disjoint relations — i.e. that no concurrent posting-list
//! writes *would* have collided had the commit itself been sharded.
//!
//! Observable divergence from the sequential engine is confined to
//! statistics on a budget-cutoff round: the match phase enumerates every
//! trigger before resolution replays them, so `triggers_examined` /
//! `triggers_fired` on the cut-off round can exceed the sequential
//! engine's (which stops enumerating mid-statement). Progress, derived
//! counts, rounds and interned nulls are identical even on cutoff.

use crate::config::ChaseConfig;
use crate::fixpoint::{probe_term, resolve_value, FixpointChase, FixpointError, FixpointProgress};
use crate::null::NullFactory;
use crate::plan::{ChasePlan, ParallelSchedule};
use crate::trigger::{Binding, Matcher};
use ndl_core::prelude::*;
use ndl_obs::{ChaseObserver, NoopObserver, StmtRound};
use std::collections::BTreeSet;
use std::time::Instant;

/// The interference footprint of one statement (one [`SoTgd`]): which
/// relations its clause bodies read, which its heads write, and which
/// Skolem functions its terms intern nulls through.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StmtFootprint {
    /// Relations read by clause bodies.
    pub reads: BTreeSet<RelId>,
    /// Relations written by clause heads.
    pub writes: BTreeSet<RelId>,
    /// Skolem functions occurring in head or equality terms — shared
    /// functions mean shared null-factory interning entries.
    pub funcs: BTreeSet<FuncId>,
}

impl StmtFootprint {
    /// The footprint of one SO tgd. Functions are collected from the
    /// terms that actually occur (head and equality positions), not from
    /// the declared `funcs` list, so an unused declaration does not
    /// manufacture conflicts.
    pub fn of(tgd: &SoTgd) -> StmtFootprint {
        let mut fp = StmtFootprint::default();
        for clause in &tgd.clauses {
            for a in &clause.body {
                fp.reads.insert(a.rel);
            }
            for ta in &clause.head {
                fp.writes.insert(ta.rel);
                for t in &ta.args {
                    collect_funcs(t, &mut fp.funcs);
                }
            }
            for (l, r) in &clause.equalities {
                collect_funcs(l, &mut fp.funcs);
                collect_funcs(r, &mut fp.funcs);
            }
        }
        fp
    }

    /// Do two *distinct* statements interfere: write–write, read–write
    /// (either direction) or shared-Skolem-function (shared null-factory
    /// interning) overlap?
    pub fn conflicts_with(&self, other: &StmtFootprint) -> bool {
        !self.writes.is_disjoint(&other.writes)
            || !self.reads.is_disjoint(&other.writes)
            || !self.writes.is_disjoint(&other.reads)
            || !self.funcs.is_disjoint(&other.funcs)
    }

    /// Does the statement read a relation it also writes? Such a
    /// statement re-triggers on its own output and must run in a
    /// sequential (singleton) stage.
    pub fn self_interfering(&self) -> bool {
        !self.reads.is_disjoint(&self.writes)
    }
}

fn collect_funcs(t: &Term, out: &mut BTreeSet<FuncId>) {
    if let Term::App(f, args) = t {
        out.insert(*f);
        for a in args {
            collect_funcs(a, out);
        }
    }
}

/// The footprint of every statement of `tgds`, by statement index.
pub fn statement_footprints(tgds: &[SoTgd]) -> Vec<StmtFootprint> {
    tgds.iter().map(StmtFootprint::of).collect()
}

/// Cuts `order` (a firing order over `tgds`, e.g.
/// [`ChasePlan::firing_order`]) into contiguous conflict-free stages:
/// greedily extend the current stage while the next statement conflicts
/// with no stage member; a self-interfering statement always gets a
/// singleton stage. The result always passes [`verify_schedule`] for the
/// same `tgds` and `order`.
pub fn derive_schedule(tgds: &[SoTgd], order: &[usize]) -> ParallelSchedule {
    let fps = statement_footprints(tgds);
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for &si in order {
        let fp = &fps[si];
        let fits = !fp.self_interfering()
            && stages.last().is_some_and(|stage| {
                stage
                    .iter()
                    .all(|&sj| !fps[sj].self_interfering() && !fp.conflicts_with(&fps[sj]))
            });
        match stages.last_mut() {
            Some(stage) if fits => stage.push(si),
            _ => stages.push(vec![si]),
        }
    }
    ParallelSchedule { stages }
}

/// Checks `schedule` as a certificate against footprints recomputed from
/// `tgds` itself: the stage concatenation must equal `order` exactly
/// (contiguity — this is what makes the sequential resolution replay
/// order-identical), every stage must be non-empty, and within a
/// multi-statement stage no pair may conflict (write–write, read–write,
/// shared Skolem function) nor any member be self-interfering.
pub fn verify_schedule(
    tgds: &[SoTgd],
    order: &[usize],
    schedule: &ParallelSchedule,
) -> std::result::Result<(), FixpointError> {
    let invalid = |reason: String| Err(FixpointError::InvalidSchedule { reason });
    let flat = schedule.flattened();
    if flat != order {
        return invalid(format!(
            "stage concatenation {flat:?} does not equal the firing order {order:?}"
        ));
    }
    let fps = statement_footprints(tgds);
    for (k, stage) in schedule.stages.iter().enumerate() {
        if stage.is_empty() {
            return invalid(format!("stage {k} is empty"));
        }
        if stage.len() < 2 {
            continue;
        }
        for &si in stage {
            if fps[si].self_interfering() {
                return invalid(format!(
                    "statement {si} reads a relation it writes but shares \
                     stage {k} with {} other statement(s)",
                    stage.len() - 1
                ));
            }
        }
        for i in 0..stage.len() {
            for j in i + 1..stage.len() {
                let (a, b) = (stage[i], stage[j]);
                if let Some(reason) = conflict_reason(&fps[a], &fps[b]) {
                    return invalid(format!(
                        "statements {a} and {b} in stage {k} conflict: {reason}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Why two footprints conflict (for the certificate error message), or
/// `None` when they are independent.
fn conflict_reason(a: &StmtFootprint, b: &StmtFootprint) -> Option<String> {
    if let Some(r) = a.writes.intersection(&b.writes).next() {
        return Some(format!("both write relation {r:?}"));
    }
    if let Some(r) = a.reads.intersection(&b.writes).next() {
        return Some(format!("one reads relation {r:?} the other writes"));
    }
    if let Some(r) = a.writes.intersection(&b.reads).next() {
        return Some(format!("one reads relation {r:?} the other writes"));
    }
    if let Some(f) = a.funcs.intersection(&b.funcs).next() {
        return Some(format!("both intern nulls through Skolem function {f:?}"));
    }
    None
}

/// Everything the match phase learned about one statement in one round:
/// enumeration counters and, per clause, the fired bindings as flat value
/// rows in sorted-variable order (a [`Binding`] is a `BTreeMap`, so
/// iterating its values yields exactly that order).
struct StmtMatched {
    examined: u64,
    fired: u64,
    elapsed_ns: u64,
    /// Per clause: the values of each fired binding, sorted by variable.
    clauses: Vec<Vec<Vec<Value>>>,
}

/// Read-only trigger enumeration for one statement: every body match is
/// counted, equality gates are decided through non-interning probes, and
/// fired bindings are captured for the sequential resolution replay.
fn match_statement(
    matcher: &Matcher<'_>,
    tgd: &SoTgd,
    nulls: &NullFactory,
    timed: bool,
) -> StmtMatched {
    let t = timed.then(Instant::now);
    let mut out = StmtMatched {
        examined: 0,
        fired: 0,
        elapsed_ns: 0,
        clauses: Vec::with_capacity(tgd.clauses.len()),
    };
    for clause in &tgd.clauses {
        let mut fired: Vec<Vec<Value>> = Vec::new();
        matcher.for_each_match(&clause.body, &Binding::new(), |binding| {
            out.examined += 1;
            let eq_ok = clause
                .equalities
                .iter()
                .all(|(l, r)| probe_term(l, binding, nulls) == probe_term(r, binding, nulls));
            if eq_ok {
                out.fired += 1;
                fired.push(binding.values().copied().collect());
            }
        });
        out.clauses.push(fired);
    }
    if let Some(t) = t {
        out.elapsed_ns = t.elapsed().as_nanos() as u64;
    }
    out
}

/// Matches every statement of `stage` against `index`, striping the
/// statements across `workers` scoped threads (inline when `workers <= 1`).
/// Results come back in stage order regardless of which worker produced
/// them.
fn match_stage(
    index: &TupleIndex,
    tgds: &[SoTgd],
    stage: &[usize],
    nulls: &NullFactory,
    workers: usize,
    timed: bool,
) -> Vec<StmtMatched> {
    if workers <= 1 || stage.len() <= 1 {
        let matcher = Matcher::over(index);
        return stage
            .iter()
            .map(|&si| match_statement(&matcher, &tgds[si], nulls, timed))
            .collect();
    }
    let mut out: Vec<Option<StmtMatched>> = (0..stage.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let matcher = Matcher::over(index);
                    let mut mine = Vec::new();
                    let mut pos = w;
                    while pos < stage.len() {
                        mine.push((
                            pos,
                            match_statement(&matcher, &tgds[stage[pos]], nulls, timed),
                        ));
                        pos += workers;
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            for (pos, m) in h.join().expect("match worker panicked") {
                out[pos] = Some(m);
            }
        }
    });
    out.into_iter()
        .map(|m| m.expect("every stage statement is matched by exactly one worker"))
        .collect()
}

/// [`chase_fixpoint_parallel_with`] under the no-op observer.
///
/// # Panics
/// Panics if `source` is not ground (nulls created *during* the chase are
/// fine — they are resolved through `nulls`).
pub fn chase_fixpoint_parallel(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
) -> std::result::Result<FixpointChase, FixpointError> {
    chase_fixpoint_parallel_with(source, tgds, plan, nulls, &mut NoopObserver)
}

/// The stage-parallel counterpart of
/// [`crate::fixpoint::chase_fixpoint_with`]: same refusal and budget
/// semantics, same observer events plus one
/// [`ChaseObserver::stage_end`] per stage per round, and an output pinned
/// bit-identical to the sequential engine (see the module docs for why).
///
/// Uses [`ChasePlan::schedule`] when present, else derives one with
/// [`derive_schedule`]; either way the schedule is verified against the
/// program first and an invalid one is rejected with
/// [`FixpointError::InvalidSchedule`] before any fact is derived.
pub fn chase_fixpoint_parallel_with<O: ChaseObserver>(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
    obs: &mut O,
) -> std::result::Result<FixpointChase, FixpointError> {
    assert!(source.is_ground(), "source instance must be ground");
    obs.chase_start(tgds.len(), source.len());
    if !plan.guaranteed_terminating && plan.step_budget.is_none() {
        obs.chase_end(0, 0, "refused");
        return Err(FixpointError::NonTerminating {
            diagnosis: plan.diagnosis.clone(),
        });
    }
    let order = plan.firing_order(tgds.len());
    let schedule = match &plan.schedule {
        Some(s) => s.clone(),
        None => derive_schedule(tgds, &order),
    };
    if let Err(e) = verify_schedule(tgds, &order, &schedule) {
        obs.chase_end(0, 0, "refused");
        return Err(e);
    }
    // The dataflow certificate is checked after the schedule and against
    // the *original* stages; only then are verified-dead statements
    // filtered out. A stage emptied by the filter is skipped outright (no
    // `stage_end`), but surviving stages keep their original indices.
    let mut dead = BTreeSet::new();
    if let Some(cert) = &plan.cert {
        if let Err(e) = crate::cert::verify_dataflow_cert(source, tgds, cert) {
            obs.chase_end(0, 0, "refused");
            return Err(e);
        }
        obs.dataflow_cert(cert.dead.len(), cert.ground.len());
        dead = cert.dead.clone();
    }
    let live_stages: Vec<Vec<usize>> = schedule
        .stages
        .iter()
        .map(|stage| {
            stage
                .iter()
                .copied()
                .filter(|si| !dead.contains(si))
                .collect()
        })
        .collect();

    let cfg = ChaseConfig::global();
    let cap = plan.predicted_tuples(source.len());
    let mut index = TupleIndex::with_capacity(cap, cap.saturating_mul(2));
    for f in source.facts() {
        index.insert(f.rel, f.args);
    }
    let mut committed = source.len();

    let mut rounds = 0usize;
    let mut derived = 0usize;
    loop {
        rounds += 1;
        obs.round_start(rounds);
        let round_t = O::ENABLED.then(Instant::now);
        // Same dedup discipline as the sequential engine: fresh facts of
        // the round, ordered, committed only at round end.
        let mut fresh: BTreeSet<Fact> = BTreeSet::new();
        let mut head_buf: Vec<Value> = Vec::new();
        for (stage_idx, stage) in live_stages.iter().enumerate() {
            if !dead.is_empty() {
                for &si in &schedule.stages[stage_idx] {
                    if dead.contains(&si) {
                        obs.statement_skipped(rounds, si);
                    }
                }
            }
            if stage.is_empty() {
                continue;
            }
            let stage_t = O::ENABLED.then(Instant::now);
            let workers = cfg.effective_threads(stage.len(), committed);
            // Phase 1 — concurrent, read-only: enumerate and gate every
            // trigger of the stage against the round-start index.
            let matched = match_stage(&index, tgds, stage, nulls, workers, O::ENABLED);
            // Phase 2 — sequential resolution replay, in firing order:
            // intern nulls, deduplicate heads, enforce the budget. Track
            // which relations each statement actually derived into so the
            // debug checker can assert the certificate's no-collision
            // claim against reality.
            let mut stage_writes: Vec<BTreeSet<RelId>> = Vec::new();
            for (pos, &si) in stage.iter().enumerate() {
                let m = &matched[pos];
                let mut sr = StmtRound {
                    round: rounds,
                    stmt: si,
                    examined: m.examined,
                    fired: m.fired,
                    ..StmtRound::default()
                };
                let stmt_t = O::ENABLED.then(Instant::now);
                let nulls_before = nulls.len();
                let mut written: BTreeSet<RelId> = BTreeSet::new();
                let mut budget_hit = false;
                'stmt: for (ci, clause) in tgds[si].clauses.iter().enumerate() {
                    // A binding's values come back in sorted-variable
                    // order (BTreeMap iteration); zipping the sorted
                    // distinct body variables back over them rebuilds the
                    // exact binding the worker saw.
                    let mut vars: Vec<VarId> = clause
                        .body
                        .iter()
                        .flat_map(|a| a.args.iter().copied())
                        .collect();
                    vars.sort_unstable();
                    vars.dedup();
                    for vals in &m.clauses[ci] {
                        let binding: Binding =
                            vars.iter().copied().zip(vals.iter().copied()).collect();
                        for ta in &clause.head {
                            head_buf.clear();
                            for t in &ta.args {
                                head_buf.push(resolve_value(t, &binding, nulls));
                            }
                            if index.contains(ta.rel, &head_buf) {
                                sr.dedup_hits += 1;
                            } else if fresh.insert(Fact::new(ta.rel, head_buf.clone())) {
                                sr.derived += 1;
                                if cfg!(debug_assertions) {
                                    written.insert(ta.rel);
                                }
                                if let Some(budget) = plan.step_budget {
                                    if derived + fresh.len() > budget {
                                        budget_hit = true;
                                        break 'stmt;
                                    }
                                }
                            } else {
                                sr.dedup_hits += 1;
                            }
                        }
                    }
                }
                sr.nulls_interned = (nulls.len() - nulls_before) as u64;
                if let Some(t) = stmt_t {
                    sr.elapsed_ns = m.elapsed_ns + t.elapsed().as_nanos() as u64;
                }
                obs.statement(&sr);
                if budget_hit {
                    let cut = derived + fresh.len();
                    obs.round_end(
                        rounds,
                        fresh.len() as u64,
                        round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    );
                    obs.store(&index.store().counters());
                    obs.chase_end(rounds, cut as u64, "budget-exhausted");
                    let budget = plan.step_budget.expect("budget hit implies a budget");
                    return Err(FixpointError::BudgetExhausted {
                        budget,
                        diagnosis: plan.diagnosis.clone(),
                        progress: FixpointProgress {
                            rounds,
                            derived: cut,
                        },
                    });
                }
                stage_writes.push(written);
            }
            if cfg!(debug_assertions) && stage.len() > 1 {
                for i in 0..stage_writes.len() {
                    for j in i + 1..stage_writes.len() {
                        debug_assert!(
                            stage_writes[i].is_disjoint(&stage_writes[j]),
                            "schedule certificate violated at runtime: statements {} and {} \
                             of stage {stage_idx} both derived into relation(s) {:?}",
                            stage[i],
                            stage[j],
                            stage_writes[i]
                                .intersection(&stage_writes[j])
                                .collect::<Vec<_>>(),
                        );
                    }
                }
            }
            obs.stage_end(
                rounds,
                stage_idx,
                stage.len(),
                workers,
                stage_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
        }

        let mut added = 0u64;
        for f in fresh {
            if index.insert(f.rel, &f.args) {
                added += 1;
                derived += 1;
                committed += 1;
            }
        }
        obs.round_end(
            rounds,
            added,
            round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
        if added == 0 {
            break;
        }
    }
    obs.store(&index.store().counters());
    obs.chase_end(rounds, derived as u64, "fixpoint");
    Ok(FixpointChase {
        instance: index.into_instance(),
        rounds,
        derived,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::chase_fixpoint;

    fn consts(syms: &mut SymbolTable, names: &[&str]) -> Vec<Value> {
        names
            .iter()
            .map(|n| Value::Const(syms.constant(n)))
            .collect()
    }

    fn pipeline_program(syms: &mut SymbolTable) -> Vec<SoTgd> {
        vec![
            parse_so_tgd(syms, "exists f . S(x) -> T(f(x))").unwrap(),
            parse_so_tgd(syms, "exists g . U(x) -> V(g(x))").unwrap(),
            parse_so_tgd(syms, "T(x) -> W(x)").unwrap(),
        ]
    }

    #[test]
    fn footprints_capture_reads_writes_funcs() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . S(x) & T(x,y) -> U(f(x),y)").unwrap();
        let fp = StmtFootprint::of(&tgd);
        assert_eq!(fp.reads.len(), 2);
        assert_eq!(fp.writes.len(), 1);
        assert_eq!(fp.funcs.len(), 1);
        assert!(!fp.self_interfering());

        let tc = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
        let fp = StmtFootprint::of(&tc);
        assert!(fp.self_interfering());
        assert!(fp.funcs.is_empty());
    }

    #[test]
    fn derive_schedule_groups_independent_statements() {
        let mut syms = SymbolTable::new();
        let tgds = pipeline_program(&mut syms);
        // S->T(f) and U->V(g) are independent; T->W reads what 0 writes,
        // so it opens a new stage.
        let sched = derive_schedule(&tgds, &[0, 1, 2]);
        assert_eq!(sched.stages, vec![vec![0, 1], vec![2]]);
        assert_eq!(sched.flattened(), vec![0, 1, 2]);
        verify_schedule(&tgds, &[0, 1, 2], &sched).unwrap();
    }

    #[test]
    fn self_interfering_statement_gets_singleton_stage() {
        let mut syms = SymbolTable::new();
        let tgds = vec![
            parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap(),
            parse_so_tgd(&mut syms, "S(x) -> T(x)").unwrap(),
        ];
        let sched = derive_schedule(&tgds, &[0, 1]);
        assert_eq!(sched.stages, vec![vec![0], vec![1]]);
        // And the certificate rejects grouping them.
        let bad = ParallelSchedule {
            stages: vec![vec![0, 1]],
        };
        let err = verify_schedule(&tgds, &[0, 1], &bad).unwrap_err();
        assert!(
            err.to_string().contains("reads a relation it writes"),
            "{err}"
        );
    }

    #[test]
    fn verify_rejects_reordering_and_conflicts() {
        let mut syms = SymbolTable::new();
        let tgds = pipeline_program(&mut syms);
        // Reordering the firing order is rejected even if conflict-free.
        let reordered = ParallelSchedule {
            stages: vec![vec![1], vec![0], vec![2]],
        };
        let err = verify_schedule(&tgds, &[0, 1, 2], &reordered).unwrap_err();
        assert!(err.to_string().contains("firing order"), "{err}");
        // Grouping a read-write dependent pair is rejected with the
        // offending relation named.
        let conflicting = ParallelSchedule {
            stages: vec![vec![0], vec![1, 2]],
        };
        let ok = verify_schedule(&tgds, &[0, 1, 2], &conflicting);
        assert!(ok.is_ok(), "1 and 2 touch disjoint relations");
        let ww = ParallelSchedule {
            stages: vec![vec![0, 2], vec![1]],
        };
        let err = verify_schedule(&tgds, &[0, 2, 1], &ww).unwrap_err();
        assert!(err.to_string().contains("conflict"), "{err}");
    }

    #[test]
    fn shared_skolem_functions_conflict() {
        let mut syms = SymbolTable::new();
        let a = parse_so_tgd(&mut syms, "exists f . S(x) -> T(f(x))").unwrap();
        let mut b = parse_so_tgd(&mut syms, "exists g . U(x) -> V(g(x))").unwrap();
        // Make b intern through a's function.
        let f = a.funcs[0];
        b.funcs = vec![f];
        for c in &mut b.clauses {
            for ta in &mut c.head {
                for t in &mut ta.args {
                    if let Term::App(g, _) = t {
                        *g = f;
                    }
                }
            }
        }
        let tgds = vec![a, b];
        let fps = statement_footprints(&tgds);
        assert!(fps[0].conflicts_with(&fps[1]));
        assert_eq!(derive_schedule(&tgds, &[0, 1]).stages.len(), 2);
        let bad = ParallelSchedule {
            stages: vec![vec![0, 1]],
        };
        let err = verify_schedule(&tgds, &[0, 1], &bad).unwrap_err();
        assert!(err.to_string().contains("Skolem"), "{err}");
    }

    #[test]
    fn parallel_output_is_bit_identical_to_sequential() {
        let mut syms = SymbolTable::new();
        let tgds = pipeline_program(&mut syms);
        let s = syms.rel("S");
        let u = syms.rel("U");
        let v = consts(&mut syms, &["a", "b", "c"]);
        let source = Instance::from_facts([
            Fact::new(s, vec![v[0]]),
            Fact::new(s, vec![v[1]]),
            Fact::new(u, vec![v[2]]),
        ]);
        let plan = ChasePlan::trusting(3);
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let seq = chase_fixpoint(&source, &tgds, &plan, &mut n1).unwrap();
        let par = chase_fixpoint_parallel(&source, &tgds, &plan, &mut n2).unwrap();
        assert_eq!(seq.instance, par.instance);
        assert_eq!(seq.rounds, par.rounds);
        assert_eq!(seq.derived, par.derived);
        assert_eq!(n1.len(), n2.len());
    }

    #[test]
    fn parallel_respects_refusal_and_budget() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . T(x) -> T(f(x))").unwrap();
        let t = syms.rel("T");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(t, vec![v[0]])]);
        let plan = ChasePlan {
            guaranteed_terminating: false,
            ..ChasePlan::trusting(1)
        };
        let mut nulls = NullFactory::new();
        let err = chase_fixpoint_parallel(&source, std::slice::from_ref(&tgd), &plan, &mut nulls)
            .unwrap_err();
        assert!(matches!(err, FixpointError::NonTerminating { .. }));

        // Budget cutoff: progress identical to the sequential engine.
        let budgeted = ChasePlan {
            step_budget: Some(5),
            ..plan
        };
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let seq =
            chase_fixpoint(&source, std::slice::from_ref(&tgd), &budgeted, &mut n1).unwrap_err();
        let par = chase_fixpoint_parallel(&source, std::slice::from_ref(&tgd), &budgeted, &mut n2)
            .unwrap_err();
        let (
            FixpointError::BudgetExhausted { progress: ps, .. },
            FixpointError::BudgetExhausted { progress: pp, .. },
        ) = (&seq, &par)
        else {
            panic!("expected budget exhaustion from both engines");
        };
        assert_eq!(ps, pp);
        assert_eq!(n1.len(), n2.len());
    }

    #[test]
    fn invalid_plan_schedule_is_rejected() {
        let mut syms = SymbolTable::new();
        let tgds = pipeline_program(&mut syms);
        let s = syms.rel("S");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(s, vec![v[0]])]);
        let plan = ChasePlan {
            schedule: Some(ParallelSchedule {
                stages: vec![vec![0, 2], vec![1]],
            }),
            ..ChasePlan::trusting(3)
        };
        let mut nulls = NullFactory::new();
        let err = chase_fixpoint_parallel(&source, &tgds, &plan, &mut nulls).unwrap_err();
        assert!(matches!(err, FixpointError::InvalidSchedule { .. }));
    }
}
