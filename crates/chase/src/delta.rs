//! Semi-naive (delta) fixpoint chase: each round matches only triggers
//! that bind at least one tuple committed by the *previous* round, instead
//! of rescanning the whole instance — while staying **bit-identical** to
//! the naive engine in [`crate::fixpoint`] (same `NullId`s, same rounds,
//! same derived counts, same budget-cutoff point).
//!
//! Classic semi-naive evaluation rewrites each rule into per-atom delta
//! rules, which permutes the match order — and with Skolem functions in
//! heads, match order *is* null-interning order, so the rewrite would
//! break bit-identity. This engine instead keeps the naive engine's exact
//! recursive join and prunes inside it
//! ([`Matcher::try_for_each_delta_match`]): the enumeration it produces is
//! precisely the delta-touching *subsequence* of the naive enumeration, in
//! naive order. Identity then follows from two facts:
//!
//! 1. **Skipped matches derive nothing.** A match whose atoms all bind
//!    below the frontier watermark was enumerated (with the same binding)
//!    in an earlier round: equality gates are decided by non-interning
//!    probes whose *equality* is independent of factory state, so it fired
//!    then iff it would fire now, and firing it again only re-resolves
//!    heads to already-interned nulls and already-committed facts.
//! 2. **The frontier is a `FactId` suffix.** The chase never retracts, so
//!    the store's watermark ([`TupleIndex::mark_frontier`], taken just
//!    before each round's commit) splits every posting list into an
//!    old prefix and a delta suffix — frontier membership is one integer
//!    compare, and frontier suffixes are found by binary search, never by
//!    rescanning.
//!
//! Consequently each round's fresh-fact stream — and hence null interning,
//! budget cutoffs, round counts and the final instance — is identical to
//! the naive engine's; only the *statistics* differ (`triggers_examined`
//! drops to the delta matches, and [`StmtRound::touched`] counts the
//! candidate tuples the pruned join actually iterated).
//!
//! [`chase_fixpoint_delta_parallel`] additionally shards each statement's
//! match phase: `Matcher::delta_root` plans the root candidate list once,
//! the engine cuts it into contiguous chunks
//! ([`ChaseConfig::effective_shards`], `NDL_CHASE_SHARDS`), scoped worker
//! threads enumerate the chunks concurrently (read-only, like
//! [`crate::parallel`]'s match phase), and chunk results are concatenated
//! in chunk order — reproducing the sequential enumeration exactly —
//! before resolution replays sequentially in plan order. The plan's stage
//! schedule is still verified as a certificate, and statements of a stage
//! are still matched against the same round-start index.

use crate::config::ChaseConfig;
use crate::fixpoint::{probe_term, resolve_value, FixpointChase, FixpointError, FixpointProgress};
use crate::null::NullFactory;
use crate::parallel::{derive_schedule, verify_schedule};
use crate::plan::ChasePlan;
use crate::trigger::{Binding, Matcher};
use ndl_core::prelude::*;
use ndl_obs::{ChaseObserver, NoopObserver, StmtRound};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::time::Instant;

/// [`chase_fixpoint_delta_with`] under the no-op observer.
///
/// Produces output bit-identical to [`crate::fixpoint::chase_fixpoint`]:
/// same instance (same `NullId`s), same rounds, same derived count, same
/// refusal and budget behavior.
///
/// # Panics
/// Panics if `source` is not ground (nulls created *during* the chase are
/// fine — they are resolved through `nulls`).
pub fn chase_fixpoint_delta(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
) -> std::result::Result<FixpointChase, FixpointError> {
    chase_fixpoint_delta_with(source, tgds, plan, nulls, &mut NoopObserver)
}

/// The semi-naive counterpart of
/// [`crate::fixpoint::chase_fixpoint_with`]: same refusal and budget
/// semantics and the same observer events, plus one
/// [`ChaseObserver::round_delta`] per round reporting the frontier size.
/// [`StmtRound::examined`] counts only the delta matches enumerated and
/// [`StmtRound::touched`] the candidate tuples the pruned join iterated —
/// an empty frontier costs a few binary searches per statement, not a
/// rescan.
pub fn chase_fixpoint_delta_with<O: ChaseObserver>(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
    obs: &mut O,
) -> std::result::Result<FixpointChase, FixpointError> {
    assert!(source.is_ground(), "source instance must be ground");
    obs.chase_start(tgds.len(), source.len());
    if !plan.guaranteed_terminating && plan.step_budget.is_none() {
        obs.chase_end(0, 0, "refused");
        return Err(FixpointError::NonTerminating {
            diagnosis: plan.diagnosis.clone(),
        });
    }
    // Dataflow certificate: re-verified before it is believed (see
    // `crate::cert`); verified-dead statements are skipped each round.
    let mut dead = BTreeSet::new();
    if let Some(cert) = &plan.cert {
        if let Err(e) = crate::cert::verify_dataflow_cert(source, tgds, cert) {
            obs.chase_end(0, 0, "refused");
            return Err(e);
        }
        obs.dataflow_cert(cert.dead.len(), cert.ground.len());
        dead = cert.dead.clone();
    }
    // Dense skip mask: probed once per statement per round, so it must be
    // O(1) — a dead-heavy program would otherwise spend its savings on
    // `BTreeSet` lookups.
    let dead_mask: Vec<bool> = (0..tgds.len()).map(|i| dead.contains(&i)).collect();

    // Same growing state as the naive engine, pre-sized from the plan's
    // chase-size prediction. The watermark starts at 0, so round one is
    // the full enumeration — exactly the naive engine's round one.
    let cap = plan.predicted_tuples(source.len());
    let mut index = TupleIndex::with_capacity(cap, cap.saturating_mul(2));
    for f in source.facts() {
        index.insert(f.rel, f.args);
    }

    let order = plan.firing_order(tgds.len());
    let mut rounds = 0usize;
    let mut derived = 0usize;
    loop {
        rounds += 1;
        obs.round_start(rounds);
        obs.round_delta(
            rounds,
            (index.store().rows() - index.frontier_start() as usize) as u64,
        );
        let round_t = O::ENABLED.then(Instant::now);
        let mut fresh: BTreeSet<Fact> = BTreeSet::new();
        let mut head_buf: Vec<Value> = Vec::new();
        let matcher = Matcher::over(&index);
        for &si in &order {
            if dead_mask[si] {
                obs.statement_skipped(rounds, si);
                continue;
            }
            let mut sr = StmtRound {
                round: rounds,
                stmt: si,
                ..StmtRound::default()
            };
            let stmt_t = O::ENABLED.then(Instant::now);
            let nulls_before = nulls.len();
            let mut budget_hit = false;
            for clause in &tgds[si].clauses {
                // The stream below is the delta-touching subsequence of
                // the naive engine's stream for this clause, in the same
                // order — so the fresh-fact insertions (and the budget
                // check they drive) happen in the naive order too.
                let flow = matcher.try_for_each_delta_match(
                    &clause.body,
                    &Binding::new(),
                    &mut sr.touched,
                    |binding| {
                        sr.examined += 1;
                        let eq_ok = clause.equalities.iter().all(|(l, r)| {
                            probe_term(l, binding, nulls) == probe_term(r, binding, nulls)
                        });
                        if !eq_ok {
                            return ControlFlow::Continue(());
                        }
                        sr.fired += 1;
                        for ta in &clause.head {
                            head_buf.clear();
                            for t in &ta.args {
                                head_buf.push(resolve_value(t, binding, nulls));
                            }
                            if index.contains(ta.rel, &head_buf) {
                                sr.dedup_hits += 1;
                            } else if fresh.insert(Fact::new(ta.rel, head_buf.clone())) {
                                sr.derived += 1;
                                if let Some(budget) = plan.step_budget {
                                    if derived + fresh.len() > budget {
                                        budget_hit = true;
                                        return ControlFlow::Break(());
                                    }
                                }
                            } else {
                                sr.dedup_hits += 1;
                            }
                        }
                        ControlFlow::Continue(())
                    },
                );
                debug_assert_eq!(flow.is_break(), budget_hit);
                if budget_hit {
                    sr.nulls_interned = (nulls.len() - nulls_before) as u64;
                    if let Some(t) = stmt_t {
                        sr.elapsed_ns = t.elapsed().as_nanos() as u64;
                    }
                    obs.statement(&sr);
                    let cut = derived + fresh.len();
                    obs.round_end(
                        rounds,
                        fresh.len() as u64,
                        round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    );
                    obs.store(&index.store().counters());
                    obs.chase_end(rounds, cut as u64, "budget-exhausted");
                    let budget = plan.step_budget.expect("budget hit implies a budget");
                    return Err(FixpointError::BudgetExhausted {
                        budget,
                        diagnosis: plan.diagnosis.clone(),
                        progress: FixpointProgress {
                            rounds,
                            derived: cut,
                        },
                    });
                }
            }
            sr.nulls_interned = (nulls.len() - nulls_before) as u64;
            if let Some(t) = stmt_t {
                sr.elapsed_ns = t.elapsed().as_nanos() as u64;
            }
            obs.statement(&sr);
        }
        drop(matcher);

        // Advance the watermark *before* committing: everything this
        // round derived becomes the next round's frontier, everything
        // older falls below it.
        index.mark_frontier();
        let mut added = 0u64;
        for f in fresh {
            if index.insert(f.rel, &f.args) {
                added += 1;
                derived += 1;
            }
        }
        obs.round_end(
            rounds,
            added,
            round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
        if added == 0 {
            break;
        }
    }
    obs.store(&index.store().counters());
    obs.chase_end(rounds, derived as u64, "fixpoint");
    Ok(FixpointChase {
        instance: index.into_instance(),
        rounds,
        derived,
    })
}

/// One contiguous chunk of one clause's root-candidate list: the unit of
/// work the sharded match phase hands to a worker.
struct ShardTask<'i> {
    /// Position of the owning statement within its stage.
    pos: usize,
    /// Clause index within the statement.
    clause: usize,
    /// Chunk order within the clause (concatenation key).
    chunk: usize,
    /// The root atom index planned by [`Matcher::delta_root`].
    root: usize,
    /// The chunk of the planner's candidate slice.
    ids: &'i [TupleId],
}

/// What one worker learned from one chunk.
struct ChunkOut {
    examined: u64,
    fired: u64,
    touched: u64,
    elapsed_ns: u64,
    /// Fired bindings as flat value rows in sorted-variable order.
    rows: Vec<Vec<Value>>,
}

/// Everything the sharded match phase learned about one statement in one
/// round, chunk results already concatenated back into sequential order.
struct DeltaStmtMatched {
    examined: u64,
    fired: u64,
    elapsed_ns: u64,
    /// Per clause: fired binding value rows, in sequential delta order.
    clauses: Vec<Vec<Vec<Value>>>,
    /// Candidate tuples iterated, by shard index (chunk `c` of every
    /// clause adds to entry `c`) — the shard-balance statistic. Length 1
    /// means the statement was not actually sharded.
    shard_touched: Vec<u64>,
}

impl DeltaStmtMatched {
    fn new(clauses: usize) -> DeltaStmtMatched {
        DeltaStmtMatched {
            examined: 0,
            fired: 0,
            elapsed_ns: 0,
            clauses: (0..clauses).map(|_| Vec::new()).collect(),
            shard_touched: Vec::new(),
        }
    }

    fn touched(&self) -> u64 {
        self.shard_touched.iter().sum()
    }

    fn add_shard_touched(&mut self, chunk: usize, touched: u64) {
        if self.shard_touched.len() <= chunk {
            self.shard_touched.resize(chunk + 1, 0);
        }
        self.shard_touched[chunk] += touched;
    }
}

/// Enumerates one chunk: the delta matches of `clause` whose root atom
/// binds a tuple of `ids`, gated through non-interning probes, fired
/// bindings captured for the replay.
fn run_chunk(
    matcher: &Matcher<'_>,
    clause: &SoClause,
    root: usize,
    ids: &[TupleId],
    nulls: &NullFactory,
    timed: bool,
) -> ChunkOut {
    let t = timed.then(Instant::now);
    let mut out = ChunkOut {
        examined: 0,
        fired: 0,
        touched: 0,
        elapsed_ns: 0,
        rows: Vec::new(),
    };
    let _ = matcher.run_delta_root(
        &clause.body,
        &Binding::new(),
        root,
        ids,
        &mut out.touched,
        &mut |binding| {
            out.examined += 1;
            let eq_ok = clause
                .equalities
                .iter()
                .all(|(l, r)| probe_term(l, binding, nulls) == probe_term(r, binding, nulls));
            if eq_ok {
                out.fired += 1;
                out.rows.push(binding.values().copied().collect());
            }
            ControlFlow::Continue(())
        },
    );
    if let Some(t) = t {
        out.elapsed_ns = t.elapsed().as_nanos() as u64;
    }
    out
}

/// The sharded delta match phase for one stage: plans every clause's root
/// candidates, cuts them into contiguous chunks, enumerates the chunks
/// across `workers` scoped threads (inline when 1), and concatenates
/// chunk results in chunk order — so every statement's fired-binding
/// stream equals the sequential delta enumeration. Returns the matched
/// statements in stage order plus the worker count used.
fn match_stage_delta(
    index: &TupleIndex,
    tgds: &[SoTgd],
    stage: &[usize],
    nulls: &NullFactory,
    cfg: &ChaseConfig,
    committed: usize,
    timed: bool,
) -> (Vec<DeltaStmtMatched>, usize) {
    let mut out: Vec<DeltaStmtMatched> = stage
        .iter()
        .map(|&si| DeltaStmtMatched::new(tgds[si].clauses.len()))
        .collect();
    let planner = Matcher::over(index);
    let mut tasks: Vec<ShardTask<'_>> = Vec::new();
    for (pos, &si) in stage.iter().enumerate() {
        for (ci, clause) in tgds[si].clauses.iter().enumerate() {
            if clause.body.is_empty() {
                // The empty conjunction is a delta match only in round
                // one (watermark 0); it touches no tuple and needs no
                // worker.
                if index.frontier_start() == 0 {
                    let m = &mut out[pos];
                    m.examined += 1;
                    let empty = Binding::new();
                    let eq_ok = clause
                        .equalities
                        .iter()
                        .all(|(l, r)| probe_term(l, &empty, nulls) == probe_term(r, &empty, nulls));
                    if eq_ok {
                        m.fired += 1;
                        m.clauses[ci].push(Vec::new());
                    }
                }
                continue;
            }
            let Some((root, ids)) = planner.delta_root(&clause.body, &Binding::new()) else {
                continue; // provably no delta matches for this clause
            };
            let shards = cfg.effective_shards(ids.len());
            let base = ids.len() / shards;
            let rem = ids.len() % shards;
            let mut start = 0;
            for chunk in 0..shards {
                let len = base + usize::from(chunk < rem);
                tasks.push(ShardTask {
                    pos,
                    clause: ci,
                    chunk,
                    root,
                    ids: &ids[start..start + len],
                });
                start += len;
            }
        }
    }

    let workers = cfg.effective_threads(tasks.len(), committed);
    let chunk_outs: Vec<ChunkOut> = if workers <= 1 {
        tasks
            .iter()
            .map(|t| {
                run_chunk(
                    &planner,
                    &tgds[stage[t.pos]].clauses[t.clause],
                    t.root,
                    t.ids,
                    nulls,
                    timed,
                )
            })
            .collect()
    } else {
        let mut slots: Vec<Option<ChunkOut>> = (0..tasks.len()).map(|_| None).collect();
        let tasks = &tasks;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let matcher = Matcher::over(index);
                        let mut mine = Vec::new();
                        let mut i = w;
                        while i < tasks.len() {
                            let t = &tasks[i];
                            mine.push((
                                i,
                                run_chunk(
                                    &matcher,
                                    &tgds[stage[t.pos]].clauses[t.clause],
                                    t.root,
                                    t.ids,
                                    nulls,
                                    timed,
                                ),
                            ));
                            i += workers;
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (i, c) in h.join().expect("shard worker panicked") {
                    slots[i] = Some(c);
                }
            }
        });
        slots
            .into_iter()
            .map(|c| c.expect("every chunk is enumerated by exactly one worker"))
            .collect()
    };

    // Tasks were generated in (statement, clause, chunk) order, so a
    // simple in-order append concatenates each clause's chunks back into
    // the sequential delta enumeration.
    for (t, c) in tasks.iter().zip(chunk_outs) {
        let m = &mut out[t.pos];
        m.examined += c.examined;
        m.fired += c.fired;
        m.elapsed_ns += c.elapsed_ns;
        m.add_shard_touched(t.chunk, c.touched);
        m.clauses[t.clause].extend(c.rows);
    }
    (out, workers)
}

/// [`chase_fixpoint_delta_parallel_with`] under the no-op observer.
///
/// # Panics
/// Panics if `source` is not ground (nulls created *during* the chase are
/// fine — they are resolved through `nulls`).
pub fn chase_fixpoint_delta_parallel(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
) -> std::result::Result<FixpointChase, FixpointError> {
    chase_fixpoint_delta_parallel_with(source, tgds, plan, nulls, &mut NoopObserver)
}

/// The sharded, stage-parallel semi-naive chase: delta matching as in
/// [`chase_fixpoint_delta_with`], with each statement's root-candidate
/// scan cut into contiguous chunks enumerated on scoped worker threads,
/// and resolution replayed sequentially in plan order — bit-identical to
/// [`crate::fixpoint::chase_fixpoint`] (see the module docs).
///
/// Uses [`ChasePlan::schedule`] when present, else derives one with
/// [`derive_schedule`]; either way the schedule is verified against the
/// program first ([`FixpointError::InvalidSchedule`]). Emits
/// [`ChaseObserver::round_delta`] per round,
/// [`ChaseObserver::statement_shards`] for statements whose match phase
/// actually split, and [`ChaseObserver::stage_end`] per stage.
///
/// As with [`crate::parallel`], statistics on a budget-cutoff round can
/// exceed the sequential engine's (the match phase enumerates every delta
/// trigger before resolution replays them); progress, derived counts,
/// rounds and interned nulls are identical even on cutoff.
pub fn chase_fixpoint_delta_parallel_with<O: ChaseObserver>(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
    obs: &mut O,
) -> std::result::Result<FixpointChase, FixpointError> {
    assert!(source.is_ground(), "source instance must be ground");
    obs.chase_start(tgds.len(), source.len());
    if !plan.guaranteed_terminating && plan.step_budget.is_none() {
        obs.chase_end(0, 0, "refused");
        return Err(FixpointError::NonTerminating {
            diagnosis: plan.diagnosis.clone(),
        });
    }
    let order = plan.firing_order(tgds.len());
    let schedule = match &plan.schedule {
        Some(s) => s.clone(),
        None => derive_schedule(tgds, &order),
    };
    if let Err(e) = verify_schedule(tgds, &order, &schedule) {
        obs.chase_end(0, 0, "refused");
        return Err(e);
    }
    // Dataflow certificate: checked after the schedule and against the
    // *original* stages; verified-dead statements are then filtered out.
    // A stage emptied by the filter is skipped outright (no `stage_end`),
    // but surviving stages keep their original indices.
    let mut dead = BTreeSet::new();
    if let Some(cert) = &plan.cert {
        if let Err(e) = crate::cert::verify_dataflow_cert(source, tgds, cert) {
            obs.chase_end(0, 0, "refused");
            return Err(e);
        }
        obs.dataflow_cert(cert.dead.len(), cert.ground.len());
        dead = cert.dead.clone();
    }
    let live_stages: Vec<Vec<usize>> = schedule
        .stages
        .iter()
        .map(|stage| {
            stage
                .iter()
                .copied()
                .filter(|si| !dead.contains(si))
                .collect()
        })
        .collect();

    let cfg = ChaseConfig::global();
    let cap = plan.predicted_tuples(source.len());
    let mut index = TupleIndex::with_capacity(cap, cap.saturating_mul(2));
    for f in source.facts() {
        index.insert(f.rel, f.args);
    }
    let mut committed = source.len();

    let mut rounds = 0usize;
    let mut derived = 0usize;
    loop {
        rounds += 1;
        obs.round_start(rounds);
        obs.round_delta(
            rounds,
            (index.store().rows() - index.frontier_start() as usize) as u64,
        );
        let round_t = O::ENABLED.then(Instant::now);
        let mut fresh: BTreeSet<Fact> = BTreeSet::new();
        let mut head_buf: Vec<Value> = Vec::new();
        for (stage_idx, stage) in live_stages.iter().enumerate() {
            if !dead.is_empty() {
                for &si in &schedule.stages[stage_idx] {
                    if dead.contains(&si) {
                        obs.statement_skipped(rounds, si);
                    }
                }
            }
            if stage.is_empty() {
                continue;
            }
            let stage_t = O::ENABLED.then(Instant::now);
            // Phase 1 — concurrent, read-only: the sharded delta match.
            let (matched, workers) =
                match_stage_delta(&index, tgds, stage, nulls, &cfg, committed, O::ENABLED);
            // Phase 2 — sequential resolution replay, in firing order
            // (chunk concatenation already restored the sequential delta
            // order within each clause).
            let mut stage_writes: Vec<BTreeSet<RelId>> = Vec::new();
            for (pos, &si) in stage.iter().enumerate() {
                let m = &matched[pos];
                if m.shard_touched.len() > 1 {
                    obs.statement_shards(rounds, si, &m.shard_touched);
                }
                let mut sr = StmtRound {
                    round: rounds,
                    stmt: si,
                    examined: m.examined,
                    fired: m.fired,
                    touched: m.touched(),
                    ..StmtRound::default()
                };
                let stmt_t = O::ENABLED.then(Instant::now);
                let nulls_before = nulls.len();
                let mut written: BTreeSet<RelId> = BTreeSet::new();
                let mut budget_hit = false;
                'stmt: for (ci, clause) in tgds[si].clauses.iter().enumerate() {
                    let mut vars: Vec<VarId> = clause
                        .body
                        .iter()
                        .flat_map(|a| a.args.iter().copied())
                        .collect();
                    vars.sort_unstable();
                    vars.dedup();
                    for vals in &m.clauses[ci] {
                        let binding: Binding =
                            vars.iter().copied().zip(vals.iter().copied()).collect();
                        for ta in &clause.head {
                            head_buf.clear();
                            for t in &ta.args {
                                head_buf.push(resolve_value(t, &binding, nulls));
                            }
                            if index.contains(ta.rel, &head_buf) {
                                sr.dedup_hits += 1;
                            } else if fresh.insert(Fact::new(ta.rel, head_buf.clone())) {
                                sr.derived += 1;
                                if cfg!(debug_assertions) {
                                    written.insert(ta.rel);
                                }
                                if let Some(budget) = plan.step_budget {
                                    if derived + fresh.len() > budget {
                                        budget_hit = true;
                                        break 'stmt;
                                    }
                                }
                            } else {
                                sr.dedup_hits += 1;
                            }
                        }
                    }
                }
                sr.nulls_interned = (nulls.len() - nulls_before) as u64;
                if let Some(t) = stmt_t {
                    sr.elapsed_ns = m.elapsed_ns + t.elapsed().as_nanos() as u64;
                }
                obs.statement(&sr);
                if budget_hit {
                    let cut = derived + fresh.len();
                    obs.round_end(
                        rounds,
                        fresh.len() as u64,
                        round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    );
                    obs.store(&index.store().counters());
                    obs.chase_end(rounds, cut as u64, "budget-exhausted");
                    let budget = plan.step_budget.expect("budget hit implies a budget");
                    return Err(FixpointError::BudgetExhausted {
                        budget,
                        diagnosis: plan.diagnosis.clone(),
                        progress: FixpointProgress {
                            rounds,
                            derived: cut,
                        },
                    });
                }
                stage_writes.push(written);
            }
            if cfg!(debug_assertions) && stage.len() > 1 {
                for i in 0..stage_writes.len() {
                    for j in i + 1..stage_writes.len() {
                        debug_assert!(
                            stage_writes[i].is_disjoint(&stage_writes[j]),
                            "schedule certificate violated at runtime: statements {} and {} \
                             of stage {stage_idx} both derived into relation(s) {:?}",
                            stage[i],
                            stage[j],
                            stage_writes[i]
                                .intersection(&stage_writes[j])
                                .collect::<Vec<_>>(),
                        );
                    }
                }
            }
            obs.stage_end(
                rounds,
                stage_idx,
                stage.len(),
                workers,
                stage_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
        }

        index.mark_frontier();
        let mut added = 0u64;
        for f in fresh {
            if index.insert(f.rel, &f.args) {
                added += 1;
                derived += 1;
                committed += 1;
            }
        }
        obs.round_end(
            rounds,
            added,
            round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
        if added == 0 {
            break;
        }
    }
    obs.store(&index.store().counters());
    obs.chase_end(rounds, derived as u64, "fixpoint");
    Ok(FixpointChase {
        instance: index.into_instance(),
        rounds,
        derived,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::chase_fixpoint;
    use ndl_obs::ChaseStats;

    fn consts(syms: &mut SymbolTable, names: &[&str]) -> Vec<Value> {
        names
            .iter()
            .map(|n| Value::Const(syms.constant(n)))
            .collect()
    }

    /// Chain of `n` edges for transitive closure.
    fn tc_source(syms: &mut SymbolTable, n: usize) -> (RelId, Instance) {
        let e = syms.rel("E");
        let vals: Vec<Value> = (0..=n)
            .map(|i| Value::Const(syms.constant(&format!("v{i}"))))
            .collect();
        let source = Instance::from_facts((0..n).map(|i| Fact::new(e, vec![vals[i], vals[i + 1]])));
        (e, source)
    }

    fn assert_same(
        a: &std::result::Result<FixpointChase, FixpointError>,
        b: &std::result::Result<FixpointChase, FixpointError>,
    ) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.instance, y.instance);
                assert_eq!(x.rounds, y.rounds);
                assert_eq!(x.derived, y.derived);
            }
            (
                Err(FixpointError::BudgetExhausted { progress: p, .. }),
                Err(FixpointError::BudgetExhausted { progress: q, .. }),
            ) => assert_eq!(p, q),
            (x, y) => panic!("engines disagree: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn delta_tc_is_bit_identical_to_naive() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
        let (_, source) = tc_source(&mut syms, 8);
        let plan = ChasePlan::trusting(1);
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let naive = chase_fixpoint(&source, std::slice::from_ref(&tgd), &plan, &mut n1);
        let delta = chase_fixpoint_delta(&source, std::slice::from_ref(&tgd), &plan, &mut n2);
        assert_same(&naive, &delta);
        assert_eq!(n1.len(), n2.len());
    }

    #[test]
    fn delta_skolem_program_interns_identical_nulls() {
        let mut syms = SymbolTable::new();
        let tgds = vec![
            parse_so_tgd(&mut syms, "exists f . S(x) -> T(x,f(x))").unwrap(),
            parse_so_tgd(&mut syms, "T(x,y) -> U(y)").unwrap(),
        ];
        let s = syms.rel("S");
        let v = consts(&mut syms, &["a", "b", "c"]);
        let source = Instance::from_facts(v.iter().map(|&c| Fact::new(s, vec![c])));
        let plan = ChasePlan::trusting(2);
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let naive = chase_fixpoint(&source, &tgds, &plan, &mut n1).unwrap();
        let delta = chase_fixpoint_delta(&source, &tgds, &plan, &mut n2).unwrap();
        // Instance equality compares NullIds directly — interning order
        // must match, not just structure.
        assert_eq!(naive.instance, delta.instance);
        assert_eq!(n1.len(), n2.len());
        assert_eq!(n1.len(), 3);
    }

    #[test]
    fn delta_budget_cutoff_matches_naive_progress() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . T(x) -> T(f(x))").unwrap();
        let t = syms.rel("T");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(t, vec![v[0]])]);
        let plan = ChasePlan {
            guaranteed_terminating: false,
            step_budget: Some(7),
            ..ChasePlan::trusting(1)
        };
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let naive = chase_fixpoint(&source, std::slice::from_ref(&tgd), &plan, &mut n1);
        let delta = chase_fixpoint_delta(&source, std::slice::from_ref(&tgd), &plan, &mut n2);
        assert_same(&naive, &delta);
        assert_eq!(n1.len(), n2.len());
    }

    #[test]
    fn delta_refuses_like_naive() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . T(x) -> T(f(x))").unwrap();
        let t = syms.rel("T");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(t, vec![v[0]])]);
        let plan = ChasePlan {
            guaranteed_terminating: false,
            ..ChasePlan::trusting(1)
        };
        let mut nulls = NullFactory::new();
        let err = chase_fixpoint_delta(&source, &[tgd], &plan, &mut nulls).unwrap_err();
        assert!(matches!(err, FixpointError::NonTerminating { .. }));
    }

    #[test]
    fn later_rounds_examine_only_delta_matches() {
        // TC of an 8-chain: the naive engine re-examines every E×E pair
        // each round; the delta engine's examined counts must be strictly
        // smaller in total, and its final (empty) round must touch only
        // frontier-reachable candidates — not rescan the instance.
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
        let (_, source) = tc_source(&mut syms, 8);
        let plan = ChasePlan::trusting(1);

        let mut n1 = NullFactory::new();
        let mut naive_stats = ChaseStats::new();
        let naive = crate::fixpoint::chase_fixpoint_with(
            &source,
            std::slice::from_ref(&tgd),
            &plan,
            &mut n1,
            &mut naive_stats,
        )
        .unwrap();
        let mut n2 = NullFactory::new();
        let mut delta_stats = ChaseStats::new();
        let delta = chase_fixpoint_delta_with(
            &source,
            std::slice::from_ref(&tgd),
            &plan,
            &mut n2,
            &mut delta_stats,
        )
        .unwrap();
        assert_eq!(naive.instance, delta.instance);
        assert_eq!(naive.rounds, delta.rounds);
        assert!(
            delta_stats.triggers_examined < naive_stats.triggers_examined,
            "delta {} !< naive {}",
            delta_stats.triggers_examined,
            naive_stats.triggers_examined
        );
        // Every round's frontier was reported; round one is the source.
        assert_eq!(delta_stats.round_delta.len(), delta.rounds);
        assert_eq!(delta_stats.round_delta[0] as usize, source.len());
        // The final round's frontier is the previous round's commit.
        assert_eq!(
            delta_stats.round_delta[delta.rounds - 1],
            delta_stats.round_fresh[delta.rounds - 2]
        );
    }

    #[test]
    fn delta_parallel_is_bit_identical_and_shards() {
        // Enough root candidates to shard (cutoff 1 forced via a local
        // config is not possible — the global config may already be set —
        // so rely on the default: with few facts the engine runs
        // single-shard, which must still be bit-identical).
        let mut syms = SymbolTable::new();
        let tgds = vec![
            parse_so_tgd(&mut syms, "exists f . S(x) -> T(x,f(x))").unwrap(),
            parse_so_tgd(&mut syms, "T(x,y) -> U(y)").unwrap(),
            parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap(),
        ];
        let s = syms.rel("S");
        let (_, mut source) = tc_source(&mut syms, 6);
        let v = consts(&mut syms, &["a", "b"]);
        for &c in &v {
            source.insert(Fact::new(s, vec![c]));
        }
        let plan = ChasePlan::trusting(3);
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let naive = chase_fixpoint(&source, &tgds, &plan, &mut n1);
        let par = chase_fixpoint_delta_parallel(&source, &tgds, &plan, &mut n2);
        assert_same(&naive, &par);
        assert_eq!(n1.len(), n2.len());
    }

    #[test]
    fn certified_dead_skipping_is_bit_identical_across_all_engines() {
        // S is populated; Z is not and nothing writes it, so Z->W is
        // provably dead. The certified plan must produce exactly the
        // uncertified output on all four engines — and the stats must
        // show the skips.
        let mut syms = SymbolTable::new();
        let tgds = vec![
            parse_so_tgd(&mut syms, "exists f . S(x) -> T(x,f(x))").unwrap(),
            parse_so_tgd(&mut syms, "Z(x) -> W(x)").unwrap(),
            parse_so_tgd(&mut syms, "T(x,y) -> U(y)").unwrap(),
        ];
        let s = syms.rel("S");
        let z = syms.rel("Z");
        let v = consts(&mut syms, &["a", "b"]);
        let source = Instance::from_facts(v.iter().map(|&c| Fact::new(s, vec![c])));
        let plain = ChasePlan::trusting(3);
        let certified = ChasePlan {
            cert: Some(crate::cert::DataflowCert {
                dead: BTreeSet::from([1]),
                ground: BTreeSet::from([s, z]),
            }),
            ..ChasePlan::trusting(3)
        };
        let mut n0 = NullFactory::new();
        let baseline = chase_fixpoint(&source, &tgds, &plain, &mut n0);
        type Engine = fn(
            &Instance,
            &[SoTgd],
            &ChasePlan,
            &mut NullFactory,
        ) -> std::result::Result<FixpointChase, FixpointError>;
        let engines: [Engine; 4] = [
            chase_fixpoint,
            crate::parallel::chase_fixpoint_parallel,
            chase_fixpoint_delta,
            chase_fixpoint_delta_parallel,
        ];
        for run in engines {
            let mut n = NullFactory::new();
            let out = run(&source, &tgds, &certified, &mut n);
            assert_same(&baseline, &out);
            assert_eq!(n.len(), n0.len());
        }
        // The stats observer sees the certificate and one skip per round.
        let mut stats = ChaseStats::new();
        let mut n = NullFactory::new();
        let out =
            chase_fixpoint_delta_with(&source, &tgds, &certified, &mut n, &mut stats).unwrap();
        assert_eq!(stats.dead_statements, 1);
        assert_eq!(stats.ground_relations, 2);
        assert_eq!(stats.skipped_firings as usize, out.rounds);
    }

    #[test]
    fn invalid_cert_is_rejected_by_all_engines() {
        let mut syms = SymbolTable::new();
        let tgds = vec![parse_so_tgd(&mut syms, "exists f . S(x) -> T(x,f(x))").unwrap()];
        let s = syms.rel("S");
        let t = syms.rel("T");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(s, vec![v[0]])]);
        // The lone statement fires, and T holds nulls: both claims lie.
        for cert in [
            crate::cert::DataflowCert {
                dead: BTreeSet::from([0]),
                ground: BTreeSet::new(),
            },
            crate::cert::DataflowCert {
                dead: BTreeSet::new(),
                ground: BTreeSet::from([t]),
            },
        ] {
            let plan = ChasePlan {
                cert: Some(cert),
                ..ChasePlan::trusting(1)
            };
            let mut n = NullFactory::new();
            for err in [
                chase_fixpoint(&source, &tgds, &plan, &mut n).unwrap_err(),
                crate::parallel::chase_fixpoint_parallel(&source, &tgds, &plan, &mut n)
                    .unwrap_err(),
                chase_fixpoint_delta(&source, &tgds, &plan, &mut n).unwrap_err(),
                chase_fixpoint_delta_parallel(&source, &tgds, &plan, &mut n).unwrap_err(),
            ] {
                assert!(matches!(err, FixpointError::InvalidCert { .. }), "{err}");
            }
            assert_eq!(n.len(), 0, "no null may be interned before rejection");
        }
    }

    #[test]
    fn empty_body_statement_fires_once_under_delta() {
        // A bodiless clause (a fact-producing statement) matches exactly
        // once, in round one — the delta engines must not re-fire or drop
        // it.
        let mut syms = SymbolTable::new();
        // The parser requires a body, so the bodiless statement
        // `exists c . -> P(c())` is built directly.
        let p = syms.rel("P");
        let c = syms.func("c");
        let bodiless = SoTgd::new(
            vec![c],
            vec![SoClause::new(
                Vec::new(),
                Vec::new(),
                vec![TermAtom::new(p, vec![Term::App(c, Vec::new())])],
            )],
        );
        let tgds = vec![bodiless, parse_so_tgd(&mut syms, "P(x) -> Q(x)").unwrap()];
        let source = Instance::new();
        let plan = ChasePlan::trusting(2);
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let mut n3 = NullFactory::new();
        let naive = chase_fixpoint(&source, &tgds, &plan, &mut n1);
        let delta = chase_fixpoint_delta(&source, &tgds, &plan, &mut n2);
        let par = chase_fixpoint_delta_parallel(&source, &tgds, &plan, &mut n3);
        assert_same(&naive, &delta);
        assert_same(&naive, &par);
    }
}
