//! The chase for nested tgds as a sequence of **recursive triggerings**
//! building the **chase forest** (paper, Section 3).
//!
//! Each triggering is associated with a part σᵢ and an assignment to its
//! own universal variables; its parent triggering bound the ancestor
//! variables. Root triggerings belong to top-level parts; the triggerings
//! recursively reached from one root triggering form a **chase tree**.
//! Facts produced in distinct chase trees share no nulls.

use crate::null::NullFactory;
use crate::so::ground_term;
use crate::trigger::{Binding, Matcher};
use ndl_core::prelude::*;

/// A nested tgd paired with its Skolem assignment, ready to be chased.
/// Preparing with the same [`SymbolTable`] guarantees distinct Skolem
/// function symbols across tgds, so nulls never collide.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The nested tgd.
    pub tgd: NestedTgd,
    /// Its Skolem assignment (existential variable ↦ function + args).
    pub info: SkolemInfo,
}

impl Prepared {
    /// Prepares a nested tgd for chasing.
    pub fn new(tgd: NestedTgd, syms: &mut SymbolTable) -> Self {
        let info = SkolemInfo::for_nested(&tgd, syms);
        Prepared { tgd, info }
    }

    /// Prepares a whole mapping.
    pub fn mapping(m: &NestedMapping, syms: &mut SymbolTable) -> Vec<Prepared> {
        m.tgds
            .iter()
            .map(|t| Prepared::new(t.clone(), syms))
            .collect()
    }
}

/// Index of a triggering in the chase forest.
pub type TrigId = usize;

/// One triggering of a part (paper, Section 3, "Chase Forest").
#[derive(Clone, Debug)]
pub struct Triggering {
    /// Which tgd of the chased set this triggering belongs to.
    pub tgd_idx: usize,
    /// The triggered part σᵢ.
    pub part: PartId,
    /// The parent triggering (None for root triggerings).
    pub parent: Option<TrigId>,
    /// The full assignment of the part's visible universal variables
    /// (input assignment ∪ own assignment).
    pub binding: Binding,
    /// The facts produced by this triggering (instantiated head atoms).
    pub facts: Vec<Fact>,
    /// Triggerings of child parts recursively activated from this one.
    pub children: Vec<TrigId>,
}

/// The chase forest: all triggerings, with `roots` indexing the root
/// triggerings (one chase tree per root).
#[derive(Clone, Debug, Default)]
pub struct ChaseForest {
    /// All triggerings, parents before children.
    pub nodes: Vec<Triggering>,
    /// Root triggerings.
    pub roots: Vec<TrigId>,
}

impl ChaseForest {
    /// `rec(t)`: the triggerings recursively called from `t`, including `t`.
    pub fn subtree(&self, t: TrigId) -> Vec<TrigId> {
        let mut out = vec![t];
        let mut stack = self.nodes[t].children.clone();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.nodes[n].children.iter().copied());
        }
        out
    }

    /// All facts produced within the chase tree rooted at `t`.
    pub fn tree_facts(&self, t: TrigId) -> Instance {
        Instance::from_facts(
            self.subtree(t)
                .into_iter()
                .flat_map(|n| self.nodes[n].facts.iter().cloned()),
        )
    }
}

/// Result of chasing a source instance with nested tgds.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The canonical universal solution `chase(I, Σ)`.
    pub target: Instance,
    /// The chase forest recording every triggering.
    pub forest: ChaseForest,
}

/// Chases a ground source instance with a set of prepared nested tgds,
/// allocating nulls in `nulls`.
pub fn chase_nested(source: &Instance, tgds: &[Prepared], nulls: &mut NullFactory) -> ChaseResult {
    assert!(source.is_ground(), "source instance must be ground");
    let matcher = Matcher::new(source);
    let mut forest = ChaseForest::default();
    let mut target = Instance::new();
    for (idx, prep) in tgds.iter().enumerate() {
        let root = prep.tgd.root();
        for binding in matcher.all_matches(&prep.tgd.part(root).body, &Binding::new()) {
            let t = fire(
                &matcher,
                prep,
                idx,
                root,
                binding,
                None,
                nulls,
                &mut forest,
                &mut target,
            );
            forest.roots.push(t);
        }
    }
    ChaseResult { target, forest }
}

/// Chases with a [`ChasePlan`](crate::plan::ChasePlan): statements fire in
/// the planned order (TrigId numbering and the forest follow that order;
/// `tgd_idx` still refers to positions in `tgds`), and the trigger index
/// over the source is pre-sized from the plan's prediction.
///
/// The single-pass nested chase always terminates, so — unlike the
/// fixpoint engine — this never refuses a plan; the plan's termination
/// verdict concerns the recursive/fixpoint semantics only.
pub fn chase_nested_planned(
    source: &Instance,
    tgds: &[Prepared],
    plan: &crate::plan::ChasePlan,
    nulls: &mut NullFactory,
) -> ChaseResult {
    assert!(source.is_ground(), "source instance must be ground");
    let cells: usize = source.facts_unordered().map(|f| f.args.len()).sum();
    let mut index = TupleIndex::with_capacity(source.len(), cells);
    for f in source.facts() {
        index.insert(f.rel, f.args);
    }
    let matcher = Matcher::over(&index);
    let mut forest = ChaseForest::default();
    let mut target = Instance::new();
    for idx in plan.firing_order(tgds.len()) {
        let prep = &tgds[idx];
        let root = prep.tgd.root();
        for binding in matcher.all_matches(&prep.tgd.part(root).body, &Binding::new()) {
            let t = fire(
                &matcher,
                prep,
                idx,
                root,
                binding,
                None,
                nulls,
                &mut forest,
                &mut target,
            );
            forest.roots.push(t);
        }
    }
    ChaseResult { target, forest }
}

/// Convenience: prepares and chases a whole nested GLAV mapping.
pub fn chase_mapping(
    source: &Instance,
    mapping: &NestedMapping,
    syms: &mut SymbolTable,
) -> (ChaseResult, NullFactory) {
    let prepared = Prepared::mapping(mapping, syms);
    let mut nulls = NullFactory::new();
    let result = chase_nested(source, &prepared, &mut nulls);
    (result, nulls)
}

#[allow(clippy::too_many_arguments)]
fn fire(
    matcher: &Matcher<'_>,
    prep: &Prepared,
    tgd_idx: usize,
    part: PartId,
    binding: Binding,
    parent: Option<TrigId>,
    nulls: &mut NullFactory,
    forest: &mut ChaseForest,
    target: &mut Instance,
) -> TrigId {
    // Instantiate the head atoms: universal variables from the binding,
    // existential variables as Skolem-term nulls.
    let facts: Vec<Fact> = prep
        .tgd
        .part(part)
        .head
        .iter()
        .map(|atom| {
            let args: Vec<Value> = atom
                .args
                .iter()
                .map(|v| match binding.get(v) {
                    Some(&val) => val,
                    None => {
                        let term = prep
                            .info
                            .term_for(*v)
                            .expect("head variable neither universal nor existential");
                        nulls.value_of(&ground_term(&term, &binding))
                    }
                })
                .collect();
            Fact::new(atom.rel, args)
        })
        .collect();
    for f in &facts {
        target.insert(f.clone());
    }
    let id = forest.nodes.len();
    forest.nodes.push(Triggering {
        tgd_idx,
        part,
        parent,
        binding: binding.clone(),
        facts,
        children: vec![],
    });
    // Recursively trigger child parts under the extended assignment.
    for &child in prep.tgd.children(part) {
        for child_binding in matcher.all_matches(&prep.tgd.part(child).body, &binding) {
            let c = fire(
                matcher,
                prep,
                tgd_idx,
                child,
                child_binding,
                Some(id),
                nulls,
                forest,
                target,
            );
            forest.nodes[id].children.push(c);
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The intro nested tgd: ∀x1x2 (S(x1,x2) → ∃y (R(y,x2) ∧ ∀x3 (S(x1,x3) → R(y,x3)))).
    fn intro_tgd(syms: &mut SymbolTable) -> NestedTgd {
        parse_nested_tgd(
            syms,
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
        )
        .unwrap()
    }

    #[test]
    fn chase_builds_forest_with_nested_triggerings() {
        let mut syms = SymbolTable::new();
        let tgd = intro_tgd(&mut syms);
        let prep = Prepared::new(tgd, &mut syms);
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        // S(a,b), S(a,c): two root triggerings, each with two nested ones.
        let source = Instance::from_facts([Fact::new(s, vec![a, b]), Fact::new(s, vec![a, c])]);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &[prep], &mut nulls);
        assert_eq!(res.forest.roots.len(), 2);
        for &r in &res.forest.roots {
            assert_eq!(res.forest.nodes[r].children.len(), 2);
        }
        // Nulls: one per root triggering, shared with nested triggerings:
        // f(a,b) and f(a,c).
        assert_eq!(nulls.len(), 2);
        // Facts: R(f(a,b),b), R(f(a,b),c), R(f(a,c),b), R(f(a,c),c).
        let r = syms.rel("R");
        assert_eq!(res.target.rel_len(r), 4);
    }

    #[test]
    fn distinct_chase_trees_share_no_nulls() {
        let mut syms = SymbolTable::new();
        let tgd = intro_tgd(&mut syms);
        let prep = Prepared::new(tgd, &mut syms);
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, a]), Fact::new(s, vec![b, b])]);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &[prep], &mut nulls);
        assert_eq!(res.forest.roots.len(), 2);
        let t0 = res.forest.tree_facts(res.forest.roots[0]);
        let t1 = res.forest.tree_facts(res.forest.roots[1]);
        assert!(t0.nulls().is_disjoint(&t1.nulls()));
    }

    #[test]
    fn unquantified_nested_part_fires_once() {
        // Example 3.4: ∀x1 S1(x1) → ((S2(x1) → T2(x1))): the nested part's
        // variable is bound by the root triggering, so at most one nested
        // triggering per root.
        let mut syms = SymbolTable::new();
        let tgd =
            parse_nested_tgd(&mut syms, "forall x1 (S1(x1) -> ((S2(x1) -> T2(x1))))").unwrap();
        let prep = Prepared::new(tgd, &mut syms);
        let s1 = syms.rel("S1");
        let s2 = syms.rel("S2");
        let t2 = syms.rel("T2");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([
            Fact::new(s1, vec![a]),
            Fact::new(s2, vec![a]),
            Fact::new(s2, vec![b]),
        ]);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &[prep], &mut nulls);
        assert_eq!(res.forest.roots.len(), 1);
        assert_eq!(res.forest.nodes[res.forest.roots[0]].children.len(), 1);
        assert!(res.target.contains_tuple(t2, &[a]));
        assert_eq!(res.target.len(), 1);
    }

    #[test]
    fn chase_agrees_with_skolemized_so_chase() {
        // chase(I, σ) and chase(I, Skolemize(σ)) coincide up to null
        // renaming; with a shared SkolemInfo they coincide exactly.
        let mut syms = SymbolTable::new();
        let tgd = intro_tgd(&mut syms);
        let prep = Prepared::new(tgd.clone(), &mut syms);
        let so = skolemize_with(&tgd, &prep.info);
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([
            Fact::new(s, vec![a, b]),
            Fact::new(s, vec![b, a]),
            Fact::new(s, vec![a, a]),
        ]);
        let mut n1 = NullFactory::new();
        let nested_result = chase_nested(&source, &[prep], &mut n1);
        let mut n2 = NullFactory::new();
        let so_result = crate::so::chase_so(&source, &so, &mut n2);
        assert_eq!(nested_result.target, so_result);
    }

    #[test]
    fn empty_source_chases_to_empty_target() {
        let mut syms = SymbolTable::new();
        let tgd = intro_tgd(&mut syms);
        let prep = Prepared::new(tgd, &mut syms);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&Instance::new(), &[prep], &mut nulls);
        assert!(res.target.is_empty());
        assert!(res.forest.roots.is_empty());
    }
}
