//! Oblivious fixpoint chase for (recursive) SO-tgd programs.
//!
//! Unlike the single-pass engines in [`crate::so`] and [`crate::nested`] —
//! which fire every dependency once against a *fixed* source and are
//! therefore trivially terminating — this engine chases a **combined**
//! instance to a fixpoint: derived facts are added back to the instance and
//! may re-trigger any clause. That is the semantics under which the
//! termination classes of the static analyzer are meaningful: the chase of
//! a *richly acyclic* program always reaches a fixpoint, a weakly-acyclic
//! but not richly acyclic program may diverge obliviously, and a cyclic
//! program can diverge outright.
//!
//! The engine therefore takes a [`ChasePlan`]: it refuses programs the plan
//! marks non-terminating (unless a step budget is supplied), fires clauses
//! in the planned statement order, and pre-sizes its trigger index from the
//! plan's chase-size degree.
//!
//! The engine is instrumented through [`ChaseObserver`]
//! ([`chase_fixpoint_with`]): triggers examined vs. fired per statement,
//! facts derived, dedup hits, nulls interned, and per-round /
//! per-statement wall time. [`chase_fixpoint`] runs with the no-op sink,
//! which monomorphizes the instrumentation away.

use crate::null::NullFactory;
use crate::plan::ChasePlan;
use crate::trigger::{Binding, Matcher};
use ndl_core::prelude::*;
use ndl_obs::{ChaseObserver, NoopObserver, StmtRound};
use std::fmt;
use std::time::Instant;

/// How far a cut-off chase got before the budget ran out — carried inside
/// [`FixpointError::BudgetExhausted`] so callers (and `ndl chase --stats`)
/// can report partial progress instead of losing it on the error path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointProgress {
    /// Rounds started (the cut-off round included).
    pub rounds: usize,
    /// Facts derived beyond the source, the uncommitted fresh facts of the
    /// cut-off round included — this is exactly the count the budget
    /// bounds, so `derived > budget` by exactly one on cutoff.
    pub derived: usize,
}

/// Why a fixpoint chase did not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixpointError {
    /// The plan says the chase is not guaranteed to terminate and no step
    /// budget was provided, so the engine refused to start. Carries the
    /// analyzer's diagnosis (the NDL020/NDL021 finding) when available.
    NonTerminating {
        /// The analyzer's explanation, e.g. the special-edge cycle.
        diagnosis: Option<String>,
    },
    /// The chase derived more than `budget` new facts without reaching a
    /// fixpoint and was cut off.
    BudgetExhausted {
        /// The step budget that was exhausted.
        budget: usize,
        /// The analyzer's explanation, when available.
        diagnosis: Option<String>,
        /// How far the chase got before the cutoff.
        progress: FixpointProgress,
    },
    /// The parallel engine rejected the plan's stage schedule: it failed
    /// certificate verification against footprints recomputed from the
    /// program itself (stages must partition the firing order contiguously
    /// and be free of write–write, read–write and shared-Skolem-function
    /// conflicts).
    InvalidSchedule {
        /// Which certificate check failed, e.g. the conflicting statement
        /// pair and the relation or function they share.
        reason: String,
    },
    /// The engine rejected the plan's dataflow certificate: a statement
    /// claimed dead can fire from the populated relations, or a relation
    /// claimed ground can receive a null (both recomputed from the actual
    /// source instance and tgd list — see [`crate::cert`]).
    InvalidCert {
        /// Which claim failed verification.
        reason: String,
    },
}

impl fmt::Display for FixpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpointError::NonTerminating { diagnosis } => {
                write!(f, "chase is not guaranteed to terminate")?;
                if let Some(d) = diagnosis {
                    write!(f, ": {d}")?;
                }
                Ok(())
            }
            FixpointError::BudgetExhausted {
                budget,
                diagnosis,
                progress,
            } => {
                write!(
                    f,
                    "chase exhausted its step budget of {budget} facts \
                     after deriving {} facts in {} rounds",
                    progress.derived, progress.rounds
                )?;
                if let Some(d) = diagnosis {
                    write!(f, " ({d})")?;
                }
                Ok(())
            }
            FixpointError::InvalidSchedule { reason } => {
                write!(f, "invalid parallel schedule: {reason}")
            }
            FixpointError::InvalidCert { reason } => {
                write!(f, "invalid dataflow certificate: {reason}")
            }
        }
    }
}

impl std::error::Error for FixpointError {}

/// The result of a completed fixpoint chase.
#[derive(Clone, Debug)]
pub struct FixpointChase {
    /// The combined instance at fixpoint (source facts included).
    pub instance: Instance,
    /// Number of rounds until the fixpoint (the final, empty round
    /// included).
    pub rounds: usize,
    /// Number of facts derived beyond the source.
    pub derived: usize,
}

/// Chases `source` with the program `tgds` (one SO tgd per statement) to a
/// fixpoint, firing statements in the order given by `plan` and allocating
/// nulls in `nulls`. Equivalent to [`chase_fixpoint_with`] under the no-op
/// observer.
///
/// Returns an error without chasing if `plan` marks the program
/// non-terminating and provides no step budget; returns
/// [`FixpointError::BudgetExhausted`] if a budget is set and more than that
/// many facts are derived.
///
/// # Panics
/// Panics if `source` is not ground (nulls created *during* the chase are
/// fine — they are resolved through `nulls`).
pub fn chase_fixpoint(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
) -> std::result::Result<FixpointChase, FixpointError> {
    chase_fixpoint_with(source, tgds, plan, nulls, &mut NoopObserver)
}

/// [`chase_fixpoint`] reporting its work to a [`ChaseObserver`]: one
/// [`StmtRound`] aggregate per statement per round, round boundaries with
/// commit counts, and a final outcome event (also emitted on refusal and
/// budget exhaustion, so stats survive the error paths).
pub fn chase_fixpoint_with<O: ChaseObserver>(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
    obs: &mut O,
) -> std::result::Result<FixpointChase, FixpointError> {
    assert!(source.is_ground(), "source instance must be ground");
    obs.chase_start(tgds.len(), source.len());
    if !plan.guaranteed_terminating && plan.step_budget.is_none() {
        obs.chase_end(0, 0, "refused");
        return Err(FixpointError::NonTerminating {
            diagnosis: plan.diagnosis.clone(),
        });
    }
    // Dataflow certificate: re-verified against the actual source and tgd
    // list before it is believed (see `crate::cert`). A verified dead
    // statement can never match, so skipping it each round is exact.
    let mut dead = std::collections::BTreeSet::new();
    if let Some(cert) = &plan.cert {
        if let Err(e) = crate::cert::verify_dataflow_cert(source, tgds, cert) {
            obs.chase_end(0, 0, "refused");
            return Err(e);
        }
        obs.dataflow_cert(cert.dead.len(), cert.ground.len());
        dead = cert.dead.clone();
    }
    // Dense skip mask: the round loop probes it once per statement, so
    // the probe must be O(1) — a dead-heavy program would otherwise spend
    // its savings on `BTreeSet` lookups.
    let dead_mask: Vec<bool> = (0..tgds.len()).map(|i| dead.contains(&i)).collect();

    // The single growing state of the chase: one tuple index whose store
    // holds every committed fact. Dedup, the budget check and the final
    // instance all come from it — no shadow `Instance` is maintained.
    // Pre-sized from the plan's chase-size prediction, the index grows
    // incrementally instead of being rebuilt per round.
    let cap = plan.predicted_tuples(source.len());
    let mut index = TupleIndex::with_capacity(cap, cap.saturating_mul(2));
    for f in source.facts() {
        index.insert(f.rel, f.args);
    }

    let order = plan.firing_order(tgds.len());
    let mut rounds = 0usize;
    let mut derived = 0usize;
    loop {
        rounds += 1;
        obs.round_start(rounds);
        let round_t = O::ENABLED.then(Instant::now);
        // Fresh facts of this round, deduplicated against the committed
        // facts (O(1) store probe) and each other as they are produced, so
        // the budget bounds the *work* of a round — one wide join must not
        // materialize millions of facts before an after-the-fact check
        // sees them. The `BTreeSet` keeps the commit order (and hence
        // `FactId` assignment) deterministic and sorted.
        let mut fresh: std::collections::BTreeSet<Fact> = std::collections::BTreeSet::new();
        let mut head_buf: Vec<Value> = Vec::new();
        let matcher = Matcher::over(&index);
        for &si in &order {
            if dead_mask[si] {
                obs.statement_skipped(rounds, si);
                continue;
            }
            let mut sr = StmtRound {
                round: rounds,
                stmt: si,
                ..StmtRound::default()
            };
            let stmt_t = O::ENABLED.then(Instant::now);
            let nulls_before = nulls.len();
            let mut budget_hit = false;
            for clause in &tgds[si].clauses {
                // Matches are streamed, not collected: nothing is cloned
                // per match, and head tuples are resolved into a reused
                // buffer — a `Fact` is only allocated for candidates that
                // are not already committed (the store probe is O(1) on
                // the borrowed buffer).
                let flow = matcher.try_for_each_match(&clause.body, &Binding::new(), |binding| {
                    sr.examined += 1;
                    // Equalities gate the clause and must be side-effect
                    // free: they are evaluated through non-interning probes
                    // so a failing equality never allocates Skolem nulls
                    // for a clause that does not fire.
                    let eq_ok = clause.equalities.iter().all(|(l, r)| {
                        probe_term(l, binding, nulls) == probe_term(r, binding, nulls)
                    });
                    if !eq_ok {
                        return std::ops::ControlFlow::Continue(());
                    }
                    sr.fired += 1;
                    for ta in &clause.head {
                        head_buf.clear();
                        for t in &ta.args {
                            head_buf.push(resolve_value(t, binding, nulls));
                        }
                        if index.contains(ta.rel, &head_buf) {
                            sr.dedup_hits += 1;
                        } else if fresh.insert(Fact::new(ta.rel, head_buf.clone())) {
                            sr.derived += 1;
                            if let Some(budget) = plan.step_budget {
                                if derived + fresh.len() > budget {
                                    budget_hit = true;
                                    return std::ops::ControlFlow::Break(());
                                }
                            }
                        } else {
                            sr.dedup_hits += 1;
                        }
                    }
                    std::ops::ControlFlow::Continue(())
                });
                debug_assert_eq!(flow.is_break(), budget_hit);
                if budget_hit {
                    // Keep the partial aggregates: flush the cut-off
                    // statement's counters and close the run before
                    // erroring out.
                    sr.nulls_interned = (nulls.len() - nulls_before) as u64;
                    if let Some(t) = stmt_t {
                        sr.elapsed_ns = t.elapsed().as_nanos() as u64;
                    }
                    obs.statement(&sr);
                    let cut = derived + fresh.len();
                    obs.round_end(
                        rounds,
                        fresh.len() as u64,
                        round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    );
                    obs.store(&index.store().counters());
                    obs.chase_end(rounds, cut as u64, "budget-exhausted");
                    let budget = plan.step_budget.expect("budget hit implies a budget");
                    return Err(FixpointError::BudgetExhausted {
                        budget,
                        diagnosis: plan.diagnosis.clone(),
                        progress: FixpointProgress {
                            rounds,
                            derived: cut,
                        },
                    });
                }
            }
            sr.nulls_interned = (nulls.len() - nulls_before) as u64;
            if let Some(t) = stmt_t {
                sr.elapsed_ns = t.elapsed().as_nanos() as u64;
            }
            obs.statement(&sr);
        }
        drop(matcher);

        let mut added = 0u64;
        for f in fresh {
            if index.insert(f.rel, &f.args) {
                added += 1;
                derived += 1;
            }
        }
        obs.round_end(
            rounds,
            added,
            round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
        if added == 0 {
            break;
        }
    }
    obs.store(&index.store().counters());
    obs.chase_end(rounds, derived as u64, "fixpoint");
    // The chase never retracts, so the store has no tombstones: hand it to
    // the instance wholesale instead of re-inserting every fact.
    Ok(FixpointChase {
        instance: index.into_instance(),
        rounds,
        derived,
    })
}

/// Grounds a term under a binding directly to a value: variables take
/// their bound value, function applications intern a null for the
/// application over their argument *values* ([`NullFactory::null_for_app`]).
/// The Herbrand interpretation stays consistent across rounds (re-deriving
/// the same term yields the same null) without ever expanding a null into
/// its structural Skolem term — nested terms grow exponentially in rank,
/// the hash-consed values do not.
pub(crate) fn resolve_value(t: &Term, binding: &Binding, nulls: &mut NullFactory) -> Value {
    match t {
        Term::Var(v) => *binding
            .get(v)
            .expect("unbound variable while grounding term"),
        Term::App(f, args) => {
            // Argument values land in a stack buffer for the usual small
            // arities; the interning probe borrows it, so re-deriving a
            // known application allocates nothing.
            let mut stack = [Value::Null(NullId(0)); 8];
            if args.len() <= stack.len() {
                for (slot, a) in stack.iter_mut().zip(args) {
                    *slot = resolve_value(a, binding, nulls);
                }
                Value::Null(nulls.null_for_app_slice(*f, &stack[..args.len()]))
            } else {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| resolve_value(a, binding, nulls))
                    .collect();
                Value::Null(nulls.null_for_app_slice(*f, &vals))
            }
        }
    }
}

/// The canonical, non-interning form of a ground term under a binding:
/// subterms already interned by `nulls` collapse (bottom-up) to their null
/// values, un-interned applications stay structural. Within one factory
/// state, two ground terms are equal in the Herbrand interpretation iff
/// their probes are equal — interned subtrees meet as identical `Value`s,
/// un-interned ones as identical structure, and the two kinds never
/// coincide (an interned null's defining application is interned, so a
/// structurally equal term would have collapsed too).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ProbeTerm {
    /// A constant, or an application already interned as a null.
    Value(Value),
    /// An application not (yet) interned.
    App(FuncId, Vec<ProbeTerm>),
}

pub(crate) fn probe_term(t: &Term, binding: &Binding, nulls: &NullFactory) -> ProbeTerm {
    match t {
        Term::Var(v) => {
            ProbeTerm::Value(*binding.get(v).expect("unbound variable while probing term"))
        }
        Term::App(f, args) => {
            let probes: Vec<ProbeTerm> =
                args.iter().map(|a| probe_term(a, binding, nulls)).collect();
            let vals: Option<Vec<Value>> = probes
                .iter()
                .map(|p| match p {
                    ProbeTerm::Value(v) => Some(*v),
                    ProbeTerm::App(..) => None,
                })
                .collect();
            if let Some(vals) = vals {
                if let Some(id) = nulls.lookup_app(*f, &vals) {
                    return ProbeTerm::Value(Value::Null(id));
                }
            }
            ProbeTerm::App(*f, probes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndl_obs::ChaseStats;

    fn consts(syms: &mut SymbolTable, names: &[&str]) -> Vec<Value> {
        names
            .iter()
            .map(|n| Value::Const(syms.constant(n)))
            .collect()
    }

    #[test]
    fn transitive_closure_reaches_fixpoint() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
        let e = syms.rel("E");
        let v = consts(&mut syms, &["a", "b", "c", "d"]);
        let source = Instance::from_facts([
            Fact::new(e, vec![v[0], v[1]]),
            Fact::new(e, vec![v[1], v[2]]),
            Fact::new(e, vec![v[2], v[3]]),
        ]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &[tgd], &ChasePlan::trusting(1), &mut nulls).unwrap();
        // TC of a 4-path has 3+2+1 = 6 edges.
        assert_eq!(out.instance.rel_len(e), 6);
        assert_eq!(out.derived, 3);
        assert!(out.rounds >= 2);
        assert!(nulls.is_empty());
    }

    #[test]
    fn richly_acyclic_program_with_nulls_terminates() {
        let mut syms = SymbolTable::new();
        let program = vec![
            parse_so_tgd(&mut syms, "exists f . S(x) -> T(f(x))").unwrap(),
            parse_so_tgd(&mut syms, "T(x) -> U(x)").unwrap(),
        ];
        let s = syms.rel("S");
        let t = syms.rel("T");
        let u = syms.rel("U");
        let v = consts(&mut syms, &["a", "b"]);
        let source = Instance::from_facts([Fact::new(s, vec![v[0]]), Fact::new(s, vec![v[1]])]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &program, &ChasePlan::trusting(2), &mut nulls).unwrap();
        assert_eq!(out.instance.rel_len(t), 2);
        assert_eq!(out.instance.rel_len(u), 2);
        assert_eq!(nulls.len(), 2);
        // Idempotent: re-firing T(f(a)) -> U(f(a)) reuses the same null, so
        // the fixpoint is reached without budget pressure.
        assert_eq!(out.derived, 4);
    }

    #[test]
    fn refuses_unplanned_divergence() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . T(x) -> T(f(x))").unwrap();
        let t = syms.rel("T");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(t, vec![v[0]])]);
        let plan = ChasePlan {
            guaranteed_terminating: false,
            diagnosis: Some("special-edge cycle T.1 -> T.1".into()),
            ..ChasePlan::trusting(1)
        };
        let mut nulls = NullFactory::new();
        let err =
            chase_fixpoint(&source, std::slice::from_ref(&tgd), &plan, &mut nulls).unwrap_err();
        assert!(matches!(err, FixpointError::NonTerminating { .. }));
        assert!(err.to_string().contains("special-edge cycle"));

        // With a budget the chase runs but is cut off.
        let budgeted = ChasePlan {
            step_budget: Some(10),
            ..plan
        };
        let err = chase_fixpoint(&source, &[tgd], &budgeted, &mut nulls).unwrap_err();
        let FixpointError::BudgetExhausted {
            budget,
            diagnosis,
            progress,
        } = &err
        else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(*budget, 10);
        assert_eq!(diagnosis.as_deref(), Some("special-edge cycle T.1 -> T.1"));
        // Partial progress survives the error path: the cutoff happens on
        // the first fact past the budget.
        assert_eq!(progress.derived, 11);
        assert!(progress.rounds >= 1);
        // The budget bounded the work: at most budget + 1 facts derived.
        assert!(nulls.len() <= 11);
    }

    #[test]
    fn plan_order_is_respected_but_result_is_confluent() {
        let mut syms = SymbolTable::new();
        let program = vec![
            parse_so_tgd(&mut syms, "P(x) -> Q(x)").unwrap(),
            parse_so_tgd(&mut syms, "Q(x) -> R(x)").unwrap(),
        ];
        let p = syms.rel("P");
        let r = syms.rel("R");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(p, vec![v[0]])]);
        let forward = ChasePlan::trusting(2);
        let backward = ChasePlan {
            order: vec![1, 0],
            ..ChasePlan::trusting(2)
        };
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let a = chase_fixpoint(&source, &program, &forward, &mut n1).unwrap();
        let b = chase_fixpoint(&source, &program, &backward, &mut n2).unwrap();
        assert_eq!(a.instance.rel_len(r), 1);
        // Firing order changes the round count, not the fixpoint.
        assert!(a.rounds <= b.rounds);
        assert!(a.instance.is_subinstance_of(&b.instance));
        assert!(b.instance.is_subinstance_of(&a.instance));
    }

    #[test]
    fn equalities_gate_recursive_clauses() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "S(x,y) & x = y -> D(x)").unwrap();
        let s = syms.rel("S");
        let d = syms.rel("D");
        let v = consts(&mut syms, &["a", "b"]);
        let source = Instance::from_facts([
            Fact::new(s, vec![v[0], v[0]]),
            Fact::new(s, vec![v[0], v[1]]),
        ]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &[tgd], &ChasePlan::trusting(1), &mut nulls).unwrap();
        assert_eq!(out.instance.rel_len(d), 1);
    }

    #[test]
    fn failing_equalities_do_not_intern_nulls() {
        // Regression test for the equality-gate null leak: evaluating
        // `f(x) = f(y)` used to intern f(a) and f(b) even though the
        // equality fails and the clause never fires. The factory must stay
        // empty.
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . S(x,y) & f(x) = f(y) -> D(x)").unwrap();
        let s = syms.rel("S");
        let d = syms.rel("D");
        let v = consts(&mut syms, &["a", "b"]);
        let source = Instance::from_facts([Fact::new(s, vec![v[0], v[1]])]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &[tgd], &ChasePlan::trusting(1), &mut nulls).unwrap();
        assert_eq!(out.instance.rel_len(d), 0);
        assert_eq!(out.derived, 0);
        assert_eq!(
            nulls.len(),
            0,
            "failing equality gates must not intern Skolem nulls"
        );
    }

    #[test]
    fn passing_function_equalities_still_fire() {
        // The probe path must agree with the interning path on success:
        // S(a,a) satisfies f(x) = f(y), and repeated-variable bodies
        // satisfy it trivially across rounds.
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . S(x,y) & f(x) = f(y) -> D(x,f(x))").unwrap();
        let s = syms.rel("S");
        let d = syms.rel("D");
        let v = consts(&mut syms, &["a", "b"]);
        let source = Instance::from_facts([
            Fact::new(s, vec![v[0], v[0]]),
            Fact::new(s, vec![v[0], v[1]]),
        ]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &[tgd], &ChasePlan::trusting(1), &mut nulls).unwrap();
        // Only S(a,a) passes the gate; its head interns exactly f(a).
        assert_eq!(out.instance.rel_len(d), 1);
        assert_eq!(nulls.len(), 1);
    }

    #[test]
    fn probe_matches_interned_subterms_across_rounds() {
        // Once a null is interned by a fired head, a later equality over
        // the same term must see it through the probe: T(f(x)) facts from
        // round one satisfy `z = f(x)` when z is bound to the interned
        // null in round two.
        let mut syms = SymbolTable::new();
        let program = [
            parse_so_tgd(&mut syms, "exists f . S(x) -> T(x,f(x))").unwrap(),
            parse_so_tgd(&mut syms, "exists f . S(x) & T(x,z) & z = f(x) -> U(x)").unwrap(),
        ];
        // The two statements must share the Skolem function symbol for the
        // equality to refer to statement one's nulls.
        let f1 = program[0].funcs[0];
        let mut second = program[1].clone();
        rename_funcs(&mut second, f1);
        let program = vec![program[0].clone(), second];
        let s = syms.rel("S");
        let u = syms.rel("U");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(s, vec![v[0]])]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &program, &ChasePlan::trusting(2), &mut nulls).unwrap();
        assert_eq!(out.instance.rel_len(u), 1);
        assert_eq!(nulls.len(), 1);
    }

    /// Rewrites every function symbol of `tgd` to `f` (test helper for
    /// sharing Skolem functions across independently parsed statements).
    fn rename_funcs(tgd: &mut SoTgd, f: FuncId) {
        fn rec(t: &mut Term, f: FuncId) {
            if let Term::App(g, args) = t {
                *g = f;
                for a in args {
                    rec(a, f);
                }
            }
        }
        tgd.funcs = vec![f];
        for c in &mut tgd.clauses {
            for (l, r) in &mut c.equalities {
                rec(l, f);
                rec(r, f);
            }
            for ta in &mut c.head {
                for a in &mut ta.args {
                    rec(a, f);
                }
            }
        }
    }

    #[test]
    fn observer_sees_the_whole_run() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
        let e = syms.rel("E");
        let v = consts(&mut syms, &["a", "b", "c", "d"]);
        let source = Instance::from_facts([
            Fact::new(e, vec![v[0], v[1]]),
            Fact::new(e, vec![v[1], v[2]]),
            Fact::new(e, vec![v[2], v[3]]),
        ]);
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let plain = chase_fixpoint(
            &source,
            std::slice::from_ref(&tgd),
            &ChasePlan::trusting(1),
            &mut n1,
        )
        .unwrap();
        let mut stats = ChaseStats::new();
        let observed = chase_fixpoint_with(
            &source,
            std::slice::from_ref(&tgd),
            &ChasePlan::trusting(1),
            &mut n2,
            &mut stats,
        )
        .unwrap();
        // Instrumentation is observation only: results are identical.
        assert_eq!(plain.instance, observed.instance);
        assert_eq!(plain.rounds, observed.rounds);
        assert_eq!(plain.derived, observed.derived);
        // And the aggregates are consistent.
        assert_eq!(stats.outcome, "fixpoint");
        assert_eq!(stats.rounds, observed.rounds);
        assert_eq!(stats.derived as usize, observed.derived);
        assert_eq!(stats.source_facts as usize, source.len());
        assert!(stats.triggers_fired <= stats.triggers_examined);
        assert_eq!(
            stats.statements.iter().map(|s| s.derived).sum::<u64>(),
            stats.derived
        );
        assert_eq!(stats.round_fresh.len(), stats.rounds);
        assert_eq!(stats.round_fresh.iter().sum::<u64>(), stats.derived);
        assert!(stats.elapsed_ns > 0, "enabled observers are timed");
        assert_eq!(stats.nulls_interned, 0);
        // Store counters cover source inserts plus every committed
        // derivation; the fixpoint chase never tombstones or compacts.
        assert_eq!(
            stats.store.inserts,
            stats.source_facts + stats.derived,
            "every committed fact is one store insert"
        );
        assert_eq!(stats.store.tombstones, 0);
        assert_eq!(stats.store.compactions, 0);
    }

    #[test]
    fn budget_exhaustion_reports_partial_stats() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . T(x) -> T(f(x))").unwrap();
        let t = syms.rel("T");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(t, vec![v[0]])]);
        let plan = ChasePlan {
            guaranteed_terminating: false,
            step_budget: Some(5),
            ..ChasePlan::trusting(1)
        };
        let mut nulls = NullFactory::new();
        let mut stats = ChaseStats::new();
        let err = chase_fixpoint_with(&source, &[tgd], &plan, &mut nulls, &mut stats).unwrap_err();
        let FixpointError::BudgetExhausted { progress, .. } = err else {
            panic!("expected budget exhaustion");
        };
        assert_eq!(stats.outcome, "budget-exhausted");
        assert_eq!(stats.derived as usize, progress.derived);
        assert_eq!(stats.rounds, progress.rounds);
        assert_eq!(progress.derived, 6);
        // The cut-off statement's partial counters were flushed.
        assert_eq!(
            stats.statements.iter().map(|s| s.derived).sum::<u64>(),
            stats.derived
        );
        assert!(stats.nulls_interned >= 1);
    }
}
