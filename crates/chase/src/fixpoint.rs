//! Oblivious fixpoint chase for (recursive) SO-tgd programs.
//!
//! Unlike the single-pass engines in [`crate::so`] and [`crate::nested`] —
//! which fire every dependency once against a *fixed* source and are
//! therefore trivially terminating — this engine chases a **combined**
//! instance to a fixpoint: derived facts are added back to the instance and
//! may re-trigger any clause. That is the semantics under which the
//! termination classes of the static analyzer are meaningful: the chase of
//! a *richly acyclic* program always reaches a fixpoint, a weakly-acyclic
//! but not richly acyclic program may diverge obliviously, and a cyclic
//! program can diverge outright.
//!
//! The engine therefore takes a [`ChasePlan`]: it refuses programs the plan
//! marks non-terminating (unless a step budget is supplied), fires clauses
//! in the planned statement order, and pre-sizes its trigger index from the
//! plan's chase-size degree.

use crate::null::NullFactory;
use crate::plan::ChasePlan;
use crate::trigger::{Binding, Matcher};
use ndl_core::prelude::*;
use std::fmt;

/// Why a fixpoint chase did not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixpointError {
    /// The plan says the chase is not guaranteed to terminate and no step
    /// budget was provided, so the engine refused to start. Carries the
    /// analyzer's diagnosis (the NDL020/NDL021 finding) when available.
    NonTerminating {
        /// The analyzer's explanation, e.g. the special-edge cycle.
        diagnosis: Option<String>,
    },
    /// The chase derived more than `budget` new facts without reaching a
    /// fixpoint and was cut off.
    BudgetExhausted {
        /// The step budget that was exhausted.
        budget: usize,
        /// The analyzer's explanation, when available.
        diagnosis: Option<String>,
    },
}

impl fmt::Display for FixpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpointError::NonTerminating { diagnosis } => {
                write!(f, "chase is not guaranteed to terminate")?;
                if let Some(d) = diagnosis {
                    write!(f, ": {d}")?;
                }
                Ok(())
            }
            FixpointError::BudgetExhausted { budget, diagnosis } => {
                write!(f, "chase exhausted its step budget of {budget} facts")?;
                if let Some(d) = diagnosis {
                    write!(f, " ({d})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FixpointError {}

/// The result of a completed fixpoint chase.
#[derive(Clone, Debug)]
pub struct FixpointChase {
    /// The combined instance at fixpoint (source facts included).
    pub instance: Instance,
    /// Number of rounds until the fixpoint (the final, empty round
    /// included).
    pub rounds: usize,
    /// Number of facts derived beyond the source.
    pub derived: usize,
}

/// Chases `source` with the program `tgds` (one SO tgd per statement) to a
/// fixpoint, firing statements in the order given by `plan` and allocating
/// nulls in `nulls`.
///
/// Returns an error without chasing if `plan` marks the program
/// non-terminating and provides no step budget; returns
/// [`FixpointError::BudgetExhausted`] if a budget is set and more than that
/// many facts are derived.
///
/// # Panics
/// Panics if `source` is not ground (nulls created *during* the chase are
/// fine — they are resolved through `nulls`).
pub fn chase_fixpoint(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
) -> std::result::Result<FixpointChase, FixpointError> {
    assert!(source.is_ground(), "source instance must be ground");
    if !plan.guaranteed_terminating && plan.step_budget.is_none() {
        return Err(FixpointError::NonTerminating {
            diagnosis: plan.diagnosis.clone(),
        });
    }

    let mut instance = source.clone();
    // Pre-size the trigger index from the plan's chase-size prediction; the
    // index then grows incrementally instead of being rebuilt per round.
    let cap = plan.predicted_tuples(source.len());
    let mut index = TupleIndex::with_capacity(cap, cap.saturating_mul(2));
    for f in instance.facts() {
        index.insert(f.rel, f.args);
    }

    let order = plan.firing_order(tgds.len());
    let mut rounds = 0usize;
    let mut derived = 0usize;
    loop {
        rounds += 1;
        // Fresh facts of this round, deduplicated against the instance and
        // each other as they are produced, so the budget bounds the *work*
        // of a round — one wide join must not materialize millions of
        // facts before an after-the-fact check sees them.
        let mut fresh: std::collections::BTreeSet<Fact> = std::collections::BTreeSet::new();
        let matcher = Matcher::from_index(&instance, index);
        for &si in &order {
            for clause in &tgds[si].clauses {
                for binding in matcher.all_matches(&clause.body, &Binding::new()) {
                    let eq_ok = clause.equalities.iter().all(|(l, r)| {
                        resolve_value(l, &binding, nulls) == resolve_value(r, &binding, nulls)
                    });
                    if !eq_ok {
                        continue;
                    }
                    for ta in &clause.head {
                        let args: Vec<Value> = ta
                            .args
                            .iter()
                            .map(|t| resolve_value(t, &binding, nulls))
                            .collect();
                        let fact = Fact::new(ta.rel, args);
                        if !instance.contains(&fact) && fresh.insert(fact) {
                            if let Some(budget) = plan.step_budget {
                                if derived + fresh.len() > budget {
                                    return Err(FixpointError::BudgetExhausted {
                                        budget,
                                        diagnosis: plan.diagnosis.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        index = matcher.into_index();

        let mut added = false;
        for f in fresh {
            if index.insert(f.rel, f.args.clone()) {
                instance.insert(f);
                added = true;
                derived += 1;
            }
        }
        if !added {
            break;
        }
    }
    Ok(FixpointChase {
        instance,
        rounds,
        derived,
    })
}

/// Grounds a term under a binding directly to a value: variables take
/// their bound value, function applications intern a null for the
/// application over their argument *values* ([`NullFactory::null_for_app`]).
/// The Herbrand interpretation stays consistent across rounds (re-deriving
/// the same term yields the same null) without ever expanding a null into
/// its structural Skolem term — nested terms grow exponentially in rank,
/// the hash-consed values do not.
fn resolve_value(t: &Term, binding: &Binding, nulls: &mut NullFactory) -> Value {
    match t {
        Term::Var(v) => *binding
            .get(v)
            .expect("unbound variable while grounding term"),
        Term::App(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| resolve_value(a, binding, nulls))
                .collect();
            Value::Null(nulls.null_for_app(*f, vals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts(syms: &mut SymbolTable, names: &[&str]) -> Vec<Value> {
        names
            .iter()
            .map(|n| Value::Const(syms.constant(n)))
            .collect()
    }

    #[test]
    fn transitive_closure_reaches_fixpoint() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
        let e = syms.rel("E");
        let v = consts(&mut syms, &["a", "b", "c", "d"]);
        let source = Instance::from_facts([
            Fact::new(e, vec![v[0], v[1]]),
            Fact::new(e, vec![v[1], v[2]]),
            Fact::new(e, vec![v[2], v[3]]),
        ]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &[tgd], &ChasePlan::trusting(1), &mut nulls).unwrap();
        // TC of a 4-path has 3+2+1 = 6 edges.
        assert_eq!(out.instance.rel_len(e), 6);
        assert_eq!(out.derived, 3);
        assert!(out.rounds >= 2);
        assert!(nulls.is_empty());
    }

    #[test]
    fn richly_acyclic_program_with_nulls_terminates() {
        let mut syms = SymbolTable::new();
        let program = vec![
            parse_so_tgd(&mut syms, "exists f . S(x) -> T(f(x))").unwrap(),
            parse_so_tgd(&mut syms, "T(x) -> U(x)").unwrap(),
        ];
        let s = syms.rel("S");
        let t = syms.rel("T");
        let u = syms.rel("U");
        let v = consts(&mut syms, &["a", "b"]);
        let source = Instance::from_facts([Fact::new(s, vec![v[0]]), Fact::new(s, vec![v[1]])]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &program, &ChasePlan::trusting(2), &mut nulls).unwrap();
        assert_eq!(out.instance.rel_len(t), 2);
        assert_eq!(out.instance.rel_len(u), 2);
        assert_eq!(nulls.len(), 2);
        // Idempotent: re-firing T(f(a)) -> U(f(a)) reuses the same null, so
        // the fixpoint is reached without budget pressure.
        assert_eq!(out.derived, 4);
    }

    #[test]
    fn refuses_unplanned_divergence() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . T(x) -> T(f(x))").unwrap();
        let t = syms.rel("T");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(t, vec![v[0]])]);
        let plan = ChasePlan {
            guaranteed_terminating: false,
            diagnosis: Some("special-edge cycle T.1 -> T.1".into()),
            ..ChasePlan::trusting(1)
        };
        let mut nulls = NullFactory::new();
        let err =
            chase_fixpoint(&source, std::slice::from_ref(&tgd), &plan, &mut nulls).unwrap_err();
        assert!(matches!(err, FixpointError::NonTerminating { .. }));
        assert!(err.to_string().contains("special-edge cycle"));

        // With a budget the chase runs but is cut off.
        let budgeted = ChasePlan {
            step_budget: Some(10),
            ..plan
        };
        let err = chase_fixpoint(&source, &[tgd], &budgeted, &mut nulls).unwrap_err();
        assert_eq!(
            err,
            FixpointError::BudgetExhausted {
                budget: 10,
                diagnosis: Some("special-edge cycle T.1 -> T.1".into()),
            }
        );
        // The budget bounded the work: at most budget + 1 facts derived.
        assert!(nulls.len() <= 11);
    }

    #[test]
    fn plan_order_is_respected_but_result_is_confluent() {
        let mut syms = SymbolTable::new();
        let program = vec![
            parse_so_tgd(&mut syms, "P(x) -> Q(x)").unwrap(),
            parse_so_tgd(&mut syms, "Q(x) -> R(x)").unwrap(),
        ];
        let p = syms.rel("P");
        let r = syms.rel("R");
        let v = consts(&mut syms, &["a"]);
        let source = Instance::from_facts([Fact::new(p, vec![v[0]])]);
        let forward = ChasePlan::trusting(2);
        let backward = ChasePlan {
            order: vec![1, 0],
            ..ChasePlan::trusting(2)
        };
        let mut n1 = NullFactory::new();
        let mut n2 = NullFactory::new();
        let a = chase_fixpoint(&source, &program, &forward, &mut n1).unwrap();
        let b = chase_fixpoint(&source, &program, &backward, &mut n2).unwrap();
        assert_eq!(a.instance.rel_len(r), 1);
        // Firing order changes the round count, not the fixpoint.
        assert!(a.rounds <= b.rounds);
        assert!(a.instance.is_subinstance_of(&b.instance));
        assert!(b.instance.is_subinstance_of(&a.instance));
    }

    #[test]
    fn equalities_gate_recursive_clauses() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "S(x,y) & x = y -> D(x)").unwrap();
        let s = syms.rel("S");
        let d = syms.rel("D");
        let v = consts(&mut syms, &["a", "b"]);
        let source = Instance::from_facts([
            Fact::new(s, vec![v[0], v[0]]),
            Fact::new(s, vec![v[0], v[1]]),
        ]);
        let mut nulls = NullFactory::new();
        let out = chase_fixpoint(&source, &[tgd], &ChasePlan::trusting(1), &mut nulls).unwrap();
        assert_eq!(out.instance.rel_len(d), 1);
    }
}
