//! The chase for SO tgds (paper, Section 2): given a ground source
//! instance `I` and an SO tgd σ, `chase(I, σ)` is a canonical universal
//! solution for `I` w.r.t. σ.
//!
//! Skolem functions are interpreted over the Herbrand term universe: an
//! instantiated function application denotes the labeled null registered
//! for that ground term, and an equality `t = t'` holds iff the two ground
//! terms are syntactically identical.

use crate::null::NullFactory;
use crate::trigger::{Binding, Matcher};
use ndl_core::prelude::*;

/// Grounds a term under a binding of variables to constant values.
///
/// # Panics
/// Panics if a variable is unbound or bound to a null (the chase is only
/// applied to ground source instances).
pub fn ground_term(t: &Term, binding: &Binding) -> GroundTerm {
    t.ground(&|v| match binding.get(&v) {
        Some(Value::Const(c)) => Some(*c),
        Some(Value::Null(_)) => panic!("chase over non-ground source instance"),
        None => None,
    })
    .expect("unbound variable while grounding term")
}

/// Chases a ground source instance with an SO tgd, allocating nulls in
/// `nulls`. Returns the canonical universal solution.
///
/// Handles full SO tgds: equalities in premises are evaluated under the
/// Herbrand interpretation (syntactic identity of ground terms), and
/// nested terms denote nulls labeled by nested ground terms.
pub fn chase_so(source: &Instance, tgd: &SoTgd, nulls: &mut NullFactory) -> Instance {
    chase_so_set(source, std::slice::from_ref(tgd), nulls)
}

/// Chases with a set of SO tgds sharing one null factory. The source is
/// indexed once and every derived fact is inserted straight into one
/// target — no per-tgd intermediate instance, no merge pass.
pub fn chase_so_set(source: &Instance, tgds: &[SoTgd], nulls: &mut NullFactory) -> Instance {
    assert!(source.is_ground(), "source instance must be ground");
    let matcher = Matcher::new(source);
    let mut target = Instance::new();
    for tgd in tgds {
        chase_so_into(&matcher, tgd, nulls, &mut target);
    }
    target
}

/// Fires one SO tgd against an already-indexed source, inserting the
/// derived facts into `target`.
fn chase_so_into(
    matcher: &Matcher<'_>,
    tgd: &SoTgd,
    nulls: &mut NullFactory,
    target: &mut Instance,
) {
    for clause in &tgd.clauses {
        for binding in matcher.all_matches(&clause.body, &Binding::new()) {
            let eq_ok = clause
                .equalities
                .iter()
                .all(|(l, r)| ground_term(l, &binding) == ground_term(r, &binding));
            if !eq_ok {
                continue;
            }
            for ta in &clause.head {
                let args: Vec<Value> = ta
                    .args
                    .iter()
                    .map(|t| nulls.value_of(&ground_term(t, &binding)))
                    .collect();
                target.insert_tuple(ta.rel, args);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `∃f ∀x∀y (S(x,y) → R(f(x),f(y)))` on a 2-cycle.
    #[test]
    fn chase_identifies_equal_skolem_terms() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))").unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, b]), Fact::new(s, vec![b, a])]);
        let mut nulls = NullFactory::new();
        let target = chase_so(&source, &tgd, &mut nulls);
        // Exactly two nulls f(a), f(b), and two R-facts.
        assert_eq!(nulls.len(), 2);
        assert_eq!(target.len(), 2);
        assert_eq!(target.nulls().len(), 2);
    }

    #[test]
    fn equalities_gate_clauses() {
        // Emp/Mgr/SelfMgr example of Section 2: e = f(e) never holds under
        // the Herbrand interpretation, so SelfMgr stays empty.
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(
            &mut syms,
            "exists f . Emp(e) -> Mgr(e,f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)",
        )
        .unwrap();
        let emp = syms.rel("Emp");
        let mgr = syms.rel("Mgr");
        let selfm = syms.rel("SelfMgr");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(emp, vec![a])]);
        let mut nulls = NullFactory::new();
        let target = chase_so(&source, &tgd, &mut nulls);
        assert_eq!(target.rel_len(mgr), 1);
        assert_eq!(target.rel_len(selfm), 0);
    }

    #[test]
    fn trivial_equalities_pass() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . P(x) & f(x) = f(x) -> T(x)").unwrap();
        let p = syms.rel("P");
        let t = syms.rel("T");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(p, vec![a])]);
        let mut nulls = NullFactory::new();
        let target = chase_so(&source, &tgd, &mut nulls);
        assert_eq!(target.rel_len(t), 1);
    }

    #[test]
    fn variable_equalities_compare_constants() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "S(x,y) & x = y -> T(x)").unwrap();
        let s = syms.rel("S");
        let t = syms.rel("T");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, a]), Fact::new(s, vec![a, b])]);
        let mut nulls = NullFactory::new();
        let target = chase_so(&source, &tgd, &mut nulls);
        assert_eq!(target.rel_len(t), 1);
        assert!(target.contains_tuple(t, &[a]));
    }

    #[test]
    fn nested_terms_label_nested_nulls() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f,g . P(x) -> T(g(f(x)))").unwrap();
        let p = syms.rel("P");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(p, vec![a])]);
        let mut nulls = NullFactory::new();
        let target = chase_so(&source, &tgd, &mut nulls);
        assert_eq!(target.len(), 1);
        let n = target.nulls().into_iter().next().unwrap();
        assert_eq!(nulls.term(n).unwrap().display(&syms).to_string(), "g(f(a))");
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn rejects_non_ground_source() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))").unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(s, vec![a, Value::Null(NullId(0))])]);
        let mut nulls = NullFactory::new();
        let _ = chase_so(&source, &tgd, &mut nulls);
    }
}
