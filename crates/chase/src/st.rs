//! The oblivious chase for s-t tgds (GLAV mappings), as in \[5\] of the
//! paper: whenever the antecedent of an s-t tgd becomes true, fresh nulls
//! are introduced so that the conclusion becomes true.
//!
//! Implemented as the single-part special case of the nested chase, so the
//! three engines (s-t / nested / SO) are guaranteed to agree.

use crate::nested::{chase_nested, ChaseResult, Prepared};
use crate::null::NullFactory;
use ndl_core::prelude::*;

/// Chases a ground source instance with a set of s-t tgds.
pub fn chase_st(
    source: &Instance,
    tgds: &[StTgd],
    syms: &mut SymbolTable,
    nulls: &mut NullFactory,
) -> Instance {
    let prepared: Vec<Prepared> = tgds
        .iter()
        .map(|t| Prepared::new(NestedTgd::from(t.clone()), syms))
        .collect();
    chase_nested(source, &prepared, nulls).target
}

/// Chases with s-t tgds and also returns the (flat) chase forest.
pub fn chase_st_with_forest(
    source: &Instance,
    tgds: &[StTgd],
    syms: &mut SymbolTable,
    nulls: &mut NullFactory,
) -> ChaseResult {
    let prepared: Vec<Prepared> = tgds
        .iter()
        .map(|t| Prepared::new(NestedTgd::from(t.clone()), syms))
        .collect();
    chase_nested(source, &prepared, nulls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_chase_introduces_fresh_nulls_per_trigger() {
        // τ' of Example 3.10: S2(x2) → ∃z R(x2,z).
        let mut syms = SymbolTable::new();
        let tgd = parse_st_tgd(&mut syms, "S2(x2) -> exists z R(x2,z)").unwrap();
        let s2 = syms.rel("S2");
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a2"));
        let b = Value::Const(syms.constant("a2p"));
        let source = Instance::from_facts([Fact::new(s2, vec![a]), Fact::new(s2, vec![b])]);
        let mut nulls = NullFactory::new();
        let target = chase_st(&source, &[tgd], &mut syms, &mut nulls);
        assert_eq!(target.rel_len(r), 2);
        // Distinct nulls g(a2), g(a2') — per the paper's J_{τ'}.
        assert_eq!(target.nulls().len(), 2);
    }

    #[test]
    fn full_tgd_chase_creates_no_nulls() {
        // τ'' of Example 3.10: S1(x1) ∧ S2(x2) → R(x2,x1).
        let mut syms = SymbolTable::new();
        let tgd = parse_st_tgd(&mut syms, "S1(x1) & S2(x2) -> R(x2,x1)").unwrap();
        let s1 = syms.rel("S1");
        let s2 = syms.rel("S2");
        let r = syms.rel("R");
        let a1 = Value::Const(syms.constant("a1"));
        let a2 = Value::Const(syms.constant("a2"));
        let a2p = Value::Const(syms.constant("a2p"));
        let source = Instance::from_facts([
            Fact::new(s1, vec![a1]),
            Fact::new(s2, vec![a2]),
            Fact::new(s2, vec![a2p]),
        ]);
        let mut nulls = NullFactory::new();
        let target = chase_st(&source, &[tgd], &mut syms, &mut nulls);
        assert_eq!(target.rel_len(r), 2);
        assert!(target.contains_tuple(r, &[a2, a1]));
        assert!(target.contains_tuple(r, &[a2p, a1]));
        assert!(target.nulls().is_empty());
    }

    #[test]
    fn forest_variant_records_flat_trees() {
        let mut syms = SymbolTable::new();
        let tgd = parse_st_tgd(&mut syms, "S(x) -> exists y R(x,y)").unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a]), Fact::new(s, vec![b])]);
        let mut nulls = NullFactory::new();
        let res = chase_st_with_forest(&source, std::slice::from_ref(&tgd), &mut syms, &mut nulls);
        assert_eq!(res.forest.roots.len(), 2);
        for &r in &res.forest.roots {
            assert!(res.forest.nodes[r].children.is_empty());
            assert_eq!(res.forest.nodes[r].facts.len(), 1);
        }
    }

    #[test]
    fn multiple_tgds_share_a_null_factory_without_collisions() {
        let mut syms = SymbolTable::new();
        let t1 = parse_st_tgd(&mut syms, "P(x) -> exists y R(x,y)").unwrap();
        let t2 = parse_st_tgd(&mut syms, "P(x) -> exists y T(x,y)").unwrap();
        let p = syms.rel("P");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(p, vec![a])]);
        let mut nulls = NullFactory::new();
        let target = chase_st(&source, &[t1, t2], &mut syms, &mut nulls);
        // Two distinct nulls even though both tgds "look" the same.
        assert_eq!(target.nulls().len(), 2);
    }
}
