//! Parallel-chase tuning knobs: worker-thread cap and the sequential
//! cutoff below which stage-parallel matching is never worth its setup
//! cost.
//!
//! Mirrors the `NDL_HOM_THREADS` pattern of `ndl-hom`. The process-wide
//! configuration is resolved once, on first use, from the environment:
//!
//! - `NDL_CHASE_THREADS` — maximum worker threads for the per-stage match
//!   phase of [`crate::parallel::chase_fixpoint_parallel`] (`1` forces the
//!   sequential path; unset defaults to
//!   [`std::thread::available_parallelism`]);
//! - `NDL_CHASE_SEQUENTIAL_CUTOFF` — minimum number of facts in the
//!   instance before threads are spawned (default
//!   [`ChaseConfig::DEFAULT_SEQUENTIAL_CUTOFF`]).
//!
//! Programmatic override: call [`ChaseConfig::set_global`] before any
//! engine entry point. See `docs/performance.md` for guidance.

use std::sync::OnceLock;

/// Tuning knobs of the parallel chase engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaseConfig {
    /// Maximum worker threads for a stage's match phase (1 = sequential).
    pub threads: usize,
    /// Minimum instance fact count before spawning worker threads.
    pub sequential_cutoff: usize,
}

static GLOBAL: OnceLock<ChaseConfig> = OnceLock::new();

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sequential_cutoff: Self::DEFAULT_SEQUENTIAL_CUTOFF,
        }
    }
}

impl ChaseConfig {
    /// Default sequential cutoff: below this many facts, thread spawn and
    /// join overhead (~10µs each) exceeds the matching work saved.
    pub const DEFAULT_SEQUENTIAL_CUTOFF: usize = 512;

    /// The defaults with any `NDL_CHASE_THREADS` /
    /// `NDL_CHASE_SEQUENTIAL_CUTOFF` environment overrides applied.
    /// Unparsable or zero values fall back to the defaults **and report a
    /// one-time warning** through [`ndl_obs::warn_once`] — a typo'd
    /// override must not be silently ignored (front ends surface the
    /// warning, e.g. the `ndl` CLI on stderr).
    pub fn from_env() -> Self {
        Self::from_env_with(&|key| std::env::var(key).ok())
    }

    /// [`Self::from_env`] over an injected variable source — the testable
    /// entry point (process environment mutation is racy under the
    /// multi-threaded test harness).
    pub fn from_env_with(get: &dyn Fn(&str) -> Option<String>) -> Self {
        let mut cfg = ChaseConfig::default();
        if let Some(t) = parse_override("NDL_CHASE_THREADS", get) {
            cfg.threads = t;
        }
        if let Some(c) = parse_override("NDL_CHASE_SEQUENTIAL_CUTOFF", get) {
            cfg.sequential_cutoff = c;
        }
        cfg
    }

    /// The process-wide configuration (resolved from the environment on
    /// first use).
    pub fn global() -> ChaseConfig {
        *GLOBAL.get_or_init(ChaseConfig::from_env)
    }

    /// Installs `cfg` as the process-wide configuration. Returns `false`
    /// if a configuration was already resolved (first caller wins).
    pub fn set_global(cfg: ChaseConfig) -> bool {
        GLOBAL.set(cfg).is_ok()
    }

    /// How many workers to use for a stage of `work_items` statements over
    /// an instance of `target_facts` facts: 1 below the cutoff, otherwise
    /// capped by the thread budget and the work available.
    pub fn effective_threads(&self, work_items: usize, target_facts: usize) -> usize {
        if target_facts < self.sequential_cutoff || work_items <= 1 {
            1
        } else {
            self.threads.min(work_items).max(1)
        }
    }
}

fn parse_override(key: &str, get: &dyn Fn(&str) -> Option<String>) -> Option<usize> {
    let raw = get(key)?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            ndl_obs::warn_once(
                key,
                format!("ignoring {key}={raw:?}: expected a positive integer, using the default"),
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_positive_threads() {
        let cfg = ChaseConfig::default();
        assert!(cfg.threads >= 1);
        assert_eq!(
            cfg.sequential_cutoff,
            ChaseConfig::DEFAULT_SEQUENTIAL_CUTOFF
        );
    }

    #[test]
    fn effective_threads_respects_cutoff_and_cap() {
        let cfg = ChaseConfig {
            threads: 4,
            sequential_cutoff: 100,
        };
        assert_eq!(cfg.effective_threads(8, 99), 1);
        assert_eq!(cfg.effective_threads(8, 1000), 4);
        assert_eq!(cfg.effective_threads(2, 1000), 2);
        assert_eq!(cfg.effective_threads(0, 1000), 1);
        assert_eq!(cfg.effective_threads(1, 1000), 1);
    }

    #[test]
    fn env_overrides_apply_and_bad_values_warn() {
        let good = ChaseConfig::from_env_with(&|key| match key {
            "NDL_CHASE_THREADS" => Some("3".to_string()),
            "NDL_CHASE_SEQUENTIAL_CUTOFF" => Some(" 64 ".to_string()),
            _ => None,
        });
        assert_eq!(good.threads, 3);
        assert_eq!(good.sequential_cutoff, 64);

        // Unparsable and zero values fall back to the defaults — and are
        // reported, not swallowed.
        let bad = ChaseConfig::from_env_with(&|key| match key {
            "NDL_CHASE_THREADS" => Some("many".to_string()),
            "NDL_CHASE_SEQUENTIAL_CUTOFF" => Some("0".to_string()),
            _ => None,
        });
        assert_eq!(bad, ChaseConfig::default());
        let warned: Vec<String> = ndl_obs::warnings().into_iter().map(|w| w.key).collect();
        assert!(warned.iter().any(|k| k == "NDL_CHASE_THREADS"));
        assert!(warned.iter().any(|k| k == "NDL_CHASE_SEQUENTIAL_CUTOFF"));
    }
}
