//! Parallel-chase tuning knobs: worker-thread cap and the sequential
//! cutoff below which stage-parallel matching is never worth its setup
//! cost.
//!
//! Mirrors the `NDL_HOM_THREADS` pattern of `ndl-hom`. The process-wide
//! configuration is resolved once, on first use, from the environment:
//!
//! - `NDL_CHASE_THREADS` — maximum worker threads for the per-stage match
//!   phase of [`crate::parallel::chase_fixpoint_parallel`] (`1` forces the
//!   sequential path; unset defaults to
//!   [`std::thread::available_parallelism`]);
//! - `NDL_CHASE_SEQUENTIAL_CUTOFF` — minimum number of facts in the
//!   instance before threads are spawned (default
//!   [`ChaseConfig::DEFAULT_SEQUENTIAL_CUTOFF`]);
//! - `NDL_CHASE_DELTA` — whether front ends default to the semi-naive
//!   delta engine ([`crate::delta::chase_fixpoint_delta`]); `0`/`false`/
//!   `off` selects the naive rescan engine (default on);
//! - `NDL_CHASE_SHARDS` — how many contiguous root-candidate chunks the
//!   delta-parallel engine splits a statement's match phase into (unset
//!   defaults to the thread count).
//!
//! Programmatic override: call [`ChaseConfig::set_global`] before any
//! engine entry point. See `docs/performance.md` for guidance.

use std::sync::OnceLock;

/// Tuning knobs of the parallel chase engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaseConfig {
    /// Maximum worker threads for a stage's match phase (1 = sequential).
    pub threads: usize,
    /// Minimum instance fact count before spawning worker threads.
    pub sequential_cutoff: usize,
    /// Do front ends default to the semi-naive delta engine? Engines are
    /// selected by function, so this gates defaults (the `ndl chase` CLI),
    /// not library calls.
    pub delta: bool,
    /// Contiguous root-candidate chunks per statement in the
    /// delta-parallel engine (`None` = one per worker thread).
    pub shards: Option<usize>,
}

static GLOBAL: OnceLock<ChaseConfig> = OnceLock::new();

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sequential_cutoff: Self::DEFAULT_SEQUENTIAL_CUTOFF,
            delta: true,
            shards: None,
        }
    }
}

impl ChaseConfig {
    /// Default sequential cutoff: below this many facts, thread spawn and
    /// join overhead (~10µs each) exceeds the matching work saved.
    pub const DEFAULT_SEQUENTIAL_CUTOFF: usize = 512;

    /// The defaults with any `NDL_CHASE_THREADS` /
    /// `NDL_CHASE_SEQUENTIAL_CUTOFF` environment overrides applied.
    /// Unparsable or zero values fall back to the defaults **and report a
    /// one-time warning** through [`ndl_obs::warn_once`] — a typo'd
    /// override must not be silently ignored (front ends surface the
    /// warning, e.g. the `ndl` CLI on stderr).
    pub fn from_env() -> Self {
        Self::from_env_with(&|key| std::env::var(key).ok())
    }

    /// [`Self::from_env`] over an injected variable source — the testable
    /// entry point (process environment mutation is racy under the
    /// multi-threaded test harness).
    pub fn from_env_with(get: &dyn Fn(&str) -> Option<String>) -> Self {
        let mut cfg = ChaseConfig::default();
        if let Some(t) = parse_override("NDL_CHASE_THREADS", get) {
            cfg.threads = t;
        }
        if let Some(c) = parse_override("NDL_CHASE_SEQUENTIAL_CUTOFF", get) {
            cfg.sequential_cutoff = c;
        }
        if let Some(d) = parse_bool_override("NDL_CHASE_DELTA", get) {
            cfg.delta = d;
        }
        if let Some(s) = parse_override("NDL_CHASE_SHARDS", get) {
            cfg.shards = Some(s);
        }
        cfg
    }

    /// The process-wide configuration (resolved from the environment on
    /// first use).
    pub fn global() -> ChaseConfig {
        *GLOBAL.get_or_init(ChaseConfig::from_env)
    }

    /// Installs `cfg` as the process-wide configuration. Returns `false`
    /// if a configuration was already resolved (first caller wins).
    pub fn set_global(cfg: ChaseConfig) -> bool {
        GLOBAL.set(cfg).is_ok()
    }

    /// How many workers to use for a stage of `work_items` statements over
    /// an instance of `target_facts` facts: 1 below the cutoff, otherwise
    /// capped by the thread budget and the work available.
    pub fn effective_threads(&self, work_items: usize, target_facts: usize) -> usize {
        if target_facts < self.sequential_cutoff || work_items <= 1 {
            1
        } else {
            self.threads.min(work_items).max(1)
        }
    }

    /// How many contiguous root-candidate chunks the delta-parallel engine
    /// splits a statement with `root_candidates` into: 1 below the
    /// sequential cutoff (sharding tiny scans is pure overhead), otherwise
    /// the configured shard count (default: the thread count), never more
    /// than the candidates available.
    pub fn effective_shards(&self, root_candidates: usize) -> usize {
        if root_candidates < self.sequential_cutoff {
            1
        } else {
            self.shards
                .unwrap_or(self.threads)
                .min(root_candidates)
                .max(1)
        }
    }
}

fn parse_override(key: &str, get: &dyn Fn(&str) -> Option<String>) -> Option<usize> {
    let raw = get(key)?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            ndl_obs::warn_once(
                key,
                format!("ignoring {key}={raw:?}: expected a positive integer, using the default"),
            );
            None
        }
    }
}

fn parse_bool_override(key: &str, get: &dyn Fn(&str) -> Option<String>) -> Option<bool> {
    let raw = get(key)?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => {
            ndl_obs::warn_once(
                key,
                format!("ignoring {key}={raw:?}: expected a boolean (0/1), using the default"),
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_positive_threads() {
        let cfg = ChaseConfig::default();
        assert!(cfg.threads >= 1);
        assert_eq!(
            cfg.sequential_cutoff,
            ChaseConfig::DEFAULT_SEQUENTIAL_CUTOFF
        );
    }

    #[test]
    fn effective_threads_respects_cutoff_and_cap() {
        let cfg = ChaseConfig {
            threads: 4,
            sequential_cutoff: 100,
            ..ChaseConfig::default()
        };
        assert_eq!(cfg.effective_threads(8, 99), 1);
        assert_eq!(cfg.effective_threads(8, 1000), 4);
        assert_eq!(cfg.effective_threads(2, 1000), 2);
        assert_eq!(cfg.effective_threads(0, 1000), 1);
        assert_eq!(cfg.effective_threads(1, 1000), 1);
    }

    #[test]
    fn effective_shards_respects_cutoff_and_candidates() {
        let cfg = ChaseConfig {
            threads: 4,
            sequential_cutoff: 100,
            delta: true,
            shards: None,
        };
        // Below the cutoff sharding is pure overhead.
        assert_eq!(cfg.effective_shards(99), 1);
        // Unset shard count follows the thread budget.
        assert_eq!(cfg.effective_shards(1000), 4);
        // An explicit shard count wins, capped by the candidates.
        let explicit = ChaseConfig {
            shards: Some(8),
            ..cfg
        };
        assert_eq!(explicit.effective_shards(1000), 8);
        assert_eq!(
            explicit.effective_shards(explicit.sequential_cutoff + 2),
            8.min(explicit.sequential_cutoff + 2)
        );
    }

    #[test]
    fn env_overrides_apply_and_bad_values_warn() {
        let good = ChaseConfig::from_env_with(&|key| match key {
            "NDL_CHASE_THREADS" => Some("3".to_string()),
            "NDL_CHASE_SEQUENTIAL_CUTOFF" => Some(" 64 ".to_string()),
            "NDL_CHASE_DELTA" => Some("off".to_string()),
            "NDL_CHASE_SHARDS" => Some("6".to_string()),
            _ => None,
        });
        assert_eq!(good.threads, 3);
        assert_eq!(good.sequential_cutoff, 64);
        assert!(!good.delta);
        assert_eq!(good.shards, Some(6));

        // Unparsable and zero values fall back to the defaults — and are
        // reported, not swallowed.
        let bad = ChaseConfig::from_env_with(&|key| match key {
            "NDL_CHASE_THREADS" => Some("many".to_string()),
            "NDL_CHASE_SEQUENTIAL_CUTOFF" => Some("0".to_string()),
            "NDL_CHASE_DELTA" => Some("maybe".to_string()),
            "NDL_CHASE_SHARDS" => Some("0".to_string()),
            _ => None,
        });
        assert_eq!(bad, ChaseConfig::default());
        let warned: Vec<String> = ndl_obs::warnings().into_iter().map(|w| w.key).collect();
        assert!(warned.iter().any(|k| k == "NDL_CHASE_THREADS"));
        assert!(warned.iter().any(|k| k == "NDL_CHASE_SEQUENTIAL_CUTOFF"));
        assert!(warned.iter().any(|k| k == "NDL_CHASE_DELTA"));
        assert!(warned.iter().any(|k| k == "NDL_CHASE_SHARDS"));
    }
}
