//! Bit-identity of the semi-naive delta chase — sequential and
//! sharded-parallel — against the naive sequential engine, end to end
//! through the analyzer: same instance (same `NullId`s, not just
//! isomorphic), same round count, same derived count, same error behavior
//! — over the committed example programs and seeded random programs from
//! `ndl-gen`.
//!
//! The container running CI may expose a single CPU, and the engine's
//! sequential cutoff would keep every small test instance on one thread
//! and one shard — so the tests pin an aggressive global [`ChaseConfig`]
//! (3 workers, 4 shards, cutoff 1) to force the scoped-thread sharded
//! match path. First set wins process-wide, which is exactly what a test
//! binary wants.

use ndl_analyze::ChaseAnalysis;
use ndl_chase::{
    chase_fixpoint, chase_fixpoint_delta, chase_fixpoint_delta_parallel, chase_fixpoint_delta_with,
    ChaseConfig, ChasePlan, FixpointChase, FixpointError, NullFactory,
};
use ndl_core::prelude::*;
use ndl_gen::{random_program, ProgramGenOptions};
use ndl_obs::ChaseStats;
use proptest::prelude::*;

/// Forces worker threads and multi-way sharding even for tiny instances
/// on 1-CPU machines.
fn force_sharded_config() {
    ChaseConfig::set_global(ChaseConfig {
        threads: 3,
        sequential_cutoff: 1,
        shards: Some(4),
        ..ChaseConfig::default()
    });
}

type ChaseOutcome = std::result::Result<FixpointChase, FixpointError>;

/// Chases `src` with the naive, delta, and delta-parallel engines under
/// the same budget; returns the three outcomes plus their null counts.
fn chase_three(src: &str, budget: Option<usize>) -> ([ChaseOutcome; 3], [usize; 3]) {
    force_sharded_config();
    let mut syms = SymbolTable::new();
    let (stmts, _) = ndl_analyze::parse_program(&mut syms, src);
    let analysis = ChaseAnalysis::analyze(&mut syms, &stmts);
    let mut source = Instance::new();
    for s in &stmts {
        if let Some(ndl_analyze::StmtAst::Fact(f)) = &s.ast {
            source.insert(f.clone());
        }
    }
    let tgds: Vec<SoTgd> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let plan = analysis.tgd_plan(budget);
    let mut nulls = [NullFactory::new(), NullFactory::new(), NullFactory::new()];
    let naive = chase_fixpoint(&source, &tgds, &plan, &mut nulls[0]);
    let delta = chase_fixpoint_delta(&source, &tgds, &plan, &mut nulls[1]);
    let par = chase_fixpoint_delta_parallel(&source, &tgds, &plan, &mut nulls[2]);
    (
        [naive, delta, par],
        [nulls[0].len(), nulls[1].len(), nulls[2].len()],
    )
}

/// Asserts all three outcomes are bit-identical (instance equality
/// compares `NullId`s directly — interning order must match, not just
/// structure).
fn assert_identical(src: &str, budget: Option<usize>) {
    let ([naive, delta, par], nulls) = chase_three(src, budget);
    for (name, other, n) in [
        ("delta", &delta, nulls[1]),
        ("delta-parallel", &par, nulls[2]),
    ] {
        match (&naive, other) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.instance, p.instance,
                    "{name} instance differs for:\n{src}"
                );
                assert_eq!(s.rounds, p.rounds, "{name} rounds differ for:\n{src}");
                assert_eq!(s.derived, p.derived, "{name} derived differs for:\n{src}");
                assert_eq!(nulls[0], n, "{name} null count differs for:\n{src}");
            }
            (
                Err(FixpointError::BudgetExhausted {
                    budget: b1,
                    progress: p1,
                    ..
                }),
                Err(FixpointError::BudgetExhausted {
                    budget: b2,
                    progress: p2,
                    ..
                }),
            ) => {
                assert_eq!(b1, b2, "{name} budget differs for:\n{src}");
                assert_eq!(p1, p2, "{name} cutoff progress differs for:\n{src}");
            }
            (
                Err(FixpointError::NonTerminating { .. }),
                Err(FixpointError::NonTerminating { .. }),
            ) => {}
            (s, p) => {
                panic!("engines disagree on outcome for:\n{src}\nnaive: {s:?}\n{name}: {p:?}")
            }
        }
    }
}

fn example(name: &str) -> String {
    let path = format!(
        "{}/../../examples/programs/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn example_programs_are_bit_identical() {
    for name in ["running.ndl", "pipeline.ndl"] {
        assert_identical(&example(name), None);
    }
}

#[test]
fn recursive_example_refusal_and_budget_parity() {
    let src = example("recursive.ndl");
    // Without a budget all engines refuse; with one, all cut off at the
    // same round with the same progress.
    assert_identical(&src, None);
    assert_identical(&src, Some(5));
    assert_identical(&src, Some(100));
}

#[test]
fn empty_delta_round_does_not_rescan() {
    // Regression test for the semi-naive work bound: once the chase
    // derives nothing, the final round must prune at the planning stage —
    // candidate tuples touched in that round stay far below one rescan of
    // the instance (the naive engine re-examines all |E|² pairs).
    force_sharded_config();
    let mut syms = SymbolTable::new();
    let tgd = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
    let e = syms.rel("E");
    let n = 24usize;
    let vals: Vec<Value> = (0..=n)
        .map(|i| Value::Const(syms.constant(&format!("v{i}"))))
        .collect();
    let source = Instance::from_facts((0..n).map(|i| Fact::new(e, vec![vals[i], vals[i + 1]])));
    let mut nulls = NullFactory::new();
    let mut stats = ChaseStats::new();
    let out = chase_fixpoint_delta_with(
        &source,
        std::slice::from_ref(&tgd),
        &ChasePlan::trusting(1),
        &mut nulls,
        &mut stats,
    )
    .unwrap();
    // The last round committed nothing...
    assert_eq!(*stats.round_fresh.last().unwrap(), 0);
    // ...but its frontier was the previous round's fresh facts, so the
    // join only probed candidates reachable from them: the statement's
    // total touched across ALL rounds stays below one naive round's
    // examined count (|E_final|² pairs via the index is ≥ |E_final|
    // candidates per root tuple).
    let edges = out.instance.rel_len(e) as u64;
    let touched: u64 = stats.statements.iter().map(|s| s.touched).sum();
    assert!(
        touched < edges * edges,
        "semi-naive join touched {touched} candidates, not obviously \
         better than one naive rescan of {edges}² pairs"
    );
    // And the delta frontier of the final round matches the previous
    // round's commit exactly.
    assert_eq!(
        *stats.round_delta.last().unwrap(),
        stats.round_fresh[stats.round_fresh.len() - 2]
    );
}

#[test]
fn presized_plan_avoids_store_rehashes() {
    // The engines pre-size the store and posting map from the plan's
    // chase-size degree bound; when the prediction covers the actual
    // chase, the store must never rehash its dedup table nor regrow its
    // row arena — the counters prove it.
    force_sharded_config();
    let mut syms = SymbolTable::new();
    let tgd = parse_so_tgd(&mut syms, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
    let e = syms.rel("E");
    let vals: Vec<Value> = (0..=10)
        .map(|i| Value::Const(syms.constant(&format!("v{i}"))))
        .collect();
    let source = Instance::from_facts((0..10).map(|i| Fact::new(e, vec![vals[i], vals[i + 1]])));
    // Size degree 2 (the analyzer's bound for binary TC) predicts
    // 10² = 100 tuples; the TC of a 10-chain is 55 edges, well under it.
    let plan = ChasePlan {
        size_degree: 2,
        ..ChasePlan::trusting(1)
    };
    let mut nulls = NullFactory::new();
    let mut stats = ChaseStats::new();
    chase_fixpoint_delta_with(
        &source,
        std::slice::from_ref(&tgd),
        &plan,
        &mut nulls,
        &mut stats,
    )
    .unwrap();
    assert_eq!(
        stats.store.rehashes, 0,
        "store dedup table rehashed despite plan pre-sizing"
    );
    assert_eq!(
        stats.store.regrows, 0,
        "store row arena regrew despite plan pre-sizing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random generated programs (tgds, SO tgds, facts, recursion,
    /// comments) chase bit-identically under a budget across all three
    /// engines: identical instances/rounds/derived on success, identical
    /// progress on a cutoff, identical refusal otherwise.
    #[test]
    fn random_programs_are_bit_identical(seed in 0u64..500, statements in 2usize..10, recursion in 0usize..2) {
        let src = random_program(&ProgramGenOptions {
            statements,
            relations: 5,
            recursion_prob: 0.3 * recursion as f64,
            comment_prob: 0.1,
            fact_prob: 0.35,
            seed,
        });
        assert_identical(&src, Some(300));
    }

    /// Refusal parity without a budget: either every engine runs to the
    /// same fixpoint or every engine refuses the unguaranteed program.
    #[test]
    fn random_programs_agree_without_budget(seed in 0u64..200) {
        let src = random_program(&ProgramGenOptions {
            statements: 6,
            relations: 4,
            recursion_prob: 0.4,
            comment_prob: 0.0,
            fact_prob: 0.3,
            seed,
        });
        assert_identical(&src, None);
    }
}
