//! Bit-identity of the stage-parallel fixpoint chase against the
//! sequential engine, end to end through the analyzer: same instance
//! (same `NullId`s, not just isomorphic), same round count, same derived
//! count, same error behavior — over the committed example programs and
//! seeded random programs from `ndl-gen`.
//!
//! The container running CI may expose a single CPU, and the engine's
//! sequential cutoff would keep every small test instance on one thread —
//! so the tests pin an aggressive global [`ChaseConfig`] (3 workers,
//! cutoff 1) to force the scoped-thread match path. First set wins
//! process-wide, which is exactly what a test binary wants.

use ndl_analyze::ChaseAnalysis;
use ndl_chase::{
    chase_fixpoint, chase_fixpoint_parallel, verify_schedule, ChaseConfig, FixpointChase,
    FixpointError, NullFactory,
};
use ndl_core::prelude::*;
use ndl_gen::{random_program, ProgramGenOptions};
use proptest::prelude::*;

/// Forces worker threads even for tiny instances on 1-CPU machines.
fn force_parallel_config() {
    ChaseConfig::set_global(ChaseConfig {
        threads: 3,
        sequential_cutoff: 1,
        ..ChaseConfig::default()
    });
}

/// Chases `src` with both engines and the same budget; returns both
/// outcomes plus the null counts.
#[allow(clippy::type_complexity)]
fn chase_both(
    src: &str,
    budget: Option<usize>,
) -> (
    std::result::Result<FixpointChase, FixpointError>,
    std::result::Result<FixpointChase, FixpointError>,
    usize,
    usize,
) {
    force_parallel_config();
    let mut syms = SymbolTable::new();
    let (stmts, _) = ndl_analyze::parse_program(&mut syms, src);
    let analysis = ChaseAnalysis::analyze(&mut syms, &stmts);
    let mut source = Instance::new();
    for s in &stmts {
        if let Some(ndl_analyze::StmtAst::Fact(f)) = &s.ast {
            source.insert(f.clone());
        }
    }
    let tgds: Vec<SoTgd> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let plan = analysis.tgd_plan(budget);
    let mut n_seq = NullFactory::new();
    let seq = chase_fixpoint(&source, &tgds, &plan, &mut n_seq);
    let mut n_par = NullFactory::new();
    let par = chase_fixpoint_parallel(&source, &tgds, &plan, &mut n_par);
    (seq, par, n_seq.len(), n_par.len())
}

/// Asserts the two outcomes are bit-identical (instance equality compares
/// `NullId`s directly — interning order must match, not just structure).
fn assert_identical(src: &str, budget: Option<usize>) {
    let (seq, par, nulls_seq, nulls_par) = chase_both(src, budget);
    match (seq, par) {
        (Ok(s), Ok(p)) => {
            assert_eq!(s.instance, p.instance, "instances differ for:\n{src}");
            assert_eq!(s.rounds, p.rounds, "round counts differ for:\n{src}");
            assert_eq!(s.derived, p.derived, "derived counts differ for:\n{src}");
            assert_eq!(nulls_seq, nulls_par, "null counts differ for:\n{src}");
        }
        (
            Err(FixpointError::BudgetExhausted {
                budget: b1,
                progress: p1,
                ..
            }),
            Err(FixpointError::BudgetExhausted {
                budget: b2,
                progress: p2,
                ..
            }),
        ) => {
            assert_eq!(b1, b2);
            assert_eq!(p1.rounds, p2.rounds, "cutoff rounds differ for:\n{src}");
            assert_eq!(p1.derived, p2.derived, "cutoff derived differ for:\n{src}");
        }
        (Err(FixpointError::NonTerminating { .. }), Err(FixpointError::NonTerminating { .. })) => {}
        (s, p) => panic!("engines disagree on outcome for:\n{src}\nseq: {s:?}\npar: {p:?}"),
    }
}

fn example(name: &str) -> String {
    let path = format!(
        "{}/../../examples/programs/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn example_programs_are_bit_identical() {
    for name in ["running.ndl", "pipeline.ndl"] {
        assert_identical(&example(name), None);
    }
}

#[test]
fn recursive_example_refusal_and_budget_parity() {
    let src = example("recursive.ndl");
    // Without a budget both engines refuse; with one, both cut off at the
    // same round with the same progress.
    assert_identical(&src, None);
    assert_identical(&src, Some(5));
    assert_identical(&src, Some(100));
}

#[test]
fn analyzer_schedule_passes_the_engine_certificate_check() {
    for name in ["running.ndl", "pipeline.ndl", "recursive.ndl"] {
        let mut syms = SymbolTable::new();
        let (analysis, _) = ChaseAnalysis::analyze_source(&mut syms, &example(name));
        let tgds: Vec<SoTgd> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
        let plan = analysis.tgd_plan(Some(10));
        let schedule = plan
            .schedule
            .as_ref()
            .expect("tgd_plan attaches a schedule");
        verify_schedule(&tgds, &plan.order, schedule)
            .unwrap_or_else(|e| panic!("{name}: analyzer schedule rejected: {e}"));
    }
}

#[test]
fn wide_independent_program_schedules_in_one_stage_and_matches() {
    // Eight pairwise-independent statements: the schedule is one stage of
    // width 8, exercising multi-statement stages on the worker pool.
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("S{i}(x) -> exists y T{i}(x,y)\n"));
        src.push_str(&format!("fact: S{i}(a{i})\n"));
        src.push_str(&format!("fact: S{i}(b{i})\n"));
    }
    let mut syms = SymbolTable::new();
    let (analysis, _) = ChaseAnalysis::analyze_source(&mut syms, &src);
    assert_eq!(analysis.schedule.width(), 8, "{:?}", analysis.schedule);
    assert_identical(&src, None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random generated programs (tgds, SO tgds, facts, recursion,
    /// comments) chase bit-identically under a budget: identical
    /// instances/rounds/derived on success, identical progress on a
    /// cutoff, identical refusal otherwise.
    #[test]
    fn random_programs_are_bit_identical(seed in 0u64..500, statements in 2usize..10, recursion in 0usize..2) {
        let src = random_program(&ProgramGenOptions {
            statements,
            relations: 5,
            recursion_prob: 0.3 * recursion as f64,
            comment_prob: 0.1,
            fact_prob: 0.35,
            seed,
        });
        assert_identical(&src, Some(300));
    }

    /// Refusal parity without a budget: either both engines run to the
    /// same fixpoint or both refuse the unguaranteed program.
    #[test]
    fn random_programs_agree_without_budget(seed in 0u64..200) {
        let src = random_program(&ProgramGenOptions {
            statements: 6,
            relations: 4,
            recursion_prob: 0.4,
            comment_prob: 0.0,
            fact_prob: 0.3,
            seed,
        });
        assert_identical(&src, None);
    }
}
