//! Regenerates the Section 1 **data-complexity contrast** as a table:
//! model checking nested tgds is polynomial in the data (first-order),
//! while plain SO tgds are NP-complete — visible as wall-time divergence
//! on *negative* instances, where the SO checker must refute every
//! Skolem-function graph while the nested checker fails fast.

use ndl_bench::tau_413;
use ndl_chase::{chase_mapping, chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_gen::successor;
use ndl_reasoning::{satisfies_nested, satisfies_plain_so};
use std::time::Instant;

fn time<F: FnMut() -> bool>(mut f: F, reps: usize) -> (bool, f64) {
    let mut result = false;
    let start = Instant::now();
    for _ in 0..reps {
        result = f();
    }
    (result, start.elapsed().as_secs_f64() * 1e6 / reps as f64)
}

fn main() {
    println!("model-checking data complexity (µs per check, mean of 20 runs)\n");
    println!("   n    nested ⊨ (pos)   plain SO ⊨ (pos)   nested ⊭ (neg)   plain SO ⊭ (neg)");
    for &n in &[6usize, 10, 14, 18] {
        // Nested tgd and its chase.
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
            &[],
        )
        .unwrap();
        let s = syms.rel("S");
        let source = successor(&mut syms, s, n, "c");
        let (res, _) = chase_mapping(&source, &m, &mut syms);
        let nested_tgd = m.tgds[0].clone();
        let j_pos = res.target.clone();
        let mut j_neg = res.target.clone();
        let victim = j_neg.facts().next().unwrap().to_fact();
        j_neg.remove(&victim);

        // Plain SO tgd and its chase.
        let mut syms2 = SymbolTable::new();
        let tau = tau_413(&mut syms2);
        let s2 = syms2.rel("S");
        let source2 = successor(&mut syms2, s2, n, "c");
        let mut nulls = NullFactory::new();
        let so_pos = chase_so(&source2, &tau, &mut nulls);
        let mut so_neg = so_pos.clone();
        let victim2 = so_neg.facts().nth(n / 2).unwrap().to_fact();
        so_neg.remove(&victim2);

        let (r1, t1) = time(|| satisfies_nested(&source, &j_pos, &nested_tgd), 20);
        let (r2, t2) = time(|| satisfies_plain_so(&source2, &so_pos, &tau), 20);
        let (r3, t3) = time(|| satisfies_nested(&source, &j_neg, &nested_tgd), 20);
        let (r4, t4) = time(|| satisfies_plain_so(&source2, &so_neg, &tau), 20);
        assert!(r1 && r2 && !r3 && !r4);
        println!("  {n:3}    {t1:14.1}   {t2:16.1}   {t3:14.1}   {t4:16.1}");
    }
    println!("\nshape check: the negative plain-SO column grows fastest (NP refutation),");
    println!("the nested columns stay low-order polynomial — the Section 1 contrast ✓");
}
