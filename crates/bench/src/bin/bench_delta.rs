//! Measures the semi-naive delta chase (sequential and sharded-parallel)
//! against the naive rescan engine on closure and pipeline workloads in
//! the 10⁵–10⁶ fact range. **Output identity is asserted before any
//! timing**: all three engines must produce the same instance, bit for
//! bit (`NullId`s included), the same round count and the same derived
//! count, or the run fails. The results land in `BENCH_delta.json`
//! (committed under `experiments/`; see `docs/performance.md`).
//!
//! The gate: on every workload marked `gate_5x`, the sequential delta
//! engine must beat the naive engine by ≥ 5×, and the record's `passed`
//! flag carries the verdict. Workloads:
//!
//! - `tc/<n>` — linear transitive closure `E(x,y) & P(y,z) -> P(x,z)`
//!   over an `n`-edge chain, `P` seeded with `E`: ~n²/2 final facts over
//!   ~n rounds. The naive engine rescans the ever-growing `P` every
//!   round (Θ(n·|P|) total work); the delta engine touches each new `P`
//!   fact once plus the root scan — the textbook semi-naive win.
//! - `pipeline/<d>x<m>` — a depth-`d` existential pipeline over `m`
//!   disjoint seed pairs: d·m derived facts in d+1 rounds. The naive
//!   engine rescans every completed stage each round (Θ(d²·m) matches
//!   vs the delta engine's Θ(d·m)), so the win scales with depth. At
//!   48 × 21 000 the chase crosses 10⁶ facts and still completes under
//!   the default (no) budget — the plan is guaranteed terminating.
//!
//! Sources are built programmatically (`ndl_gen::{successor,
//! disjoint_pairs}`) so the parser never sees 10⁵ `fact:` lines; the
//! small program text still goes through the analyzer for the real plan.
//!
//! Speedups are honest about hardware: `threads_available` is recorded
//! in every row, and on a 1-CPU host the sharded-parallel column is
//! expected to trail the sequential delta engine slightly.
//!
//! Pass an output directory as the first argument to write elsewhere
//! (e.g. `bench_delta target/experiments` for a throwaway run).

use ndl_analyze::{parse_program, ChaseAnalysis};
use ndl_bench::ExperimentRecord;
use ndl_chase::{
    chase_fixpoint, chase_fixpoint_delta, chase_fixpoint_delta_parallel, ChaseConfig, ChasePlan,
    NullFactory,
};
use ndl_core::prelude::*;
use ndl_gen::{disjoint_pairs, successor};
use std::fmt::Write as _;
use std::time::Instant;

/// Mean seconds per call over `reps` calls (plus one warm-up).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// One bench workload: a parsed program (for the analyzer's plan) over a
/// programmatically built source.
struct Workload {
    name: String,
    source: Instance,
    tgds: Vec<SoTgd>,
    plan: ChasePlan,
    reps: u32,
    /// Is this row subject to the ≥ 5× sequential-delta gate?
    gate_5x: bool,
}

/// Pairs a programmatically built `source` with an empty program; the
/// caller fills `tgds` and `plan` via [`analyze_into`].
fn prepare(name: &str, source: Instance, reps: u32, gate_5x: bool) -> Workload {
    Workload {
        name: name.to_string(),
        source,
        tgds: Vec::new(),
        plan: ChasePlan::trusting(0),
        reps,
        gate_5x,
    }
}

/// Linear transitive closure over an `edges`-edge chain.
fn tc_workload(syms: &mut SymbolTable, edges: usize, reps: u32) -> Workload {
    let text = "E(x,y) & P(y,z) -> P(x,z)";
    let e = syms.rel("E");
    let p = syms.rel("P");
    let mut source = successor(syms, e, edges + 1, "n");
    for f in successor(syms, p, edges + 1, "n").facts() {
        source.insert(f.to_fact());
    }
    let mut w = prepare(&format!("tc/{edges}"), source, reps, true);
    analyze_into(syms, text, &mut w);
    w
}

/// A depth-`depth` existential pipeline over `seeds` disjoint pairs.
fn pipeline_workload(syms: &mut SymbolTable, depth: usize, seeds: usize, reps: u32) -> Workload {
    let mut text = String::new();
    for i in 0..depth {
        let _ = writeln!(text, "S{i}(x,y) -> exists z S{}(y,z)", i + 1);
    }
    let s0 = syms.rel("S0");
    let source = disjoint_pairs(syms, s0, seeds, "p");
    let mut w = prepare(&format!("pipeline/{depth}x{seeds}"), source, reps, true);
    analyze_into(syms, &text, &mut w);
    w
}

/// Runs the analyzer over `text` and installs the grouped SO tgds and the
/// plan (schedule attached, no step budget — every workload here is
/// guaranteed terminating) into `w`.
fn analyze_into(syms: &mut SymbolTable, text: &str, w: &mut Workload) {
    let (stmts, errs) = parse_program(syms, text);
    assert!(errs.is_empty(), "{}: program parses", w.name);
    let analysis = ChaseAnalysis::analyze(syms, &stmts);
    w.tgds = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    w.plan = analysis.tgd_plan(None);
    assert!(
        w.plan.guaranteed_terminating,
        "{}: bench workloads must complete under the default (no) budget",
        w.name
    );
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "experiments".into());
    let cfg = ChaseConfig::global();
    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut record = ExperimentRecord::new(
        "BENCH_delta",
        "semi-naive delta chase (sequential and sharded-parallel) vs the naive rescan \
         engine on 10^5-10^6 fact closure and pipeline workloads",
        "output identity (instance, NullIds, rounds, derived) is asserted for all three \
         engines before any timing; the gate requires sequential delta >= 5x naive on \
         gated workloads; threads_available records the hardware the parallel column ran on",
    );

    let mut syms = SymbolTable::new();
    let workloads = vec![
        tc_workload(&mut syms, 450, 2),
        pipeline_workload(&mut syms, 48, 2_500, 3),
        pipeline_workload(&mut syms, 48, 21_000, 1),
    ];

    println!(
        "semi-naive delta chase, {} worker thread(s), {} shard(s), {} CPU(s) (mean ms per run)\n",
        cfg.threads,
        cfg.shards.map_or("auto".to_string(), |s| s.to_string()),
        threads_available
    );
    println!(
        "  workload            facts  derived  rounds   naive ms   delta ms  dpar ms  speedup"
    );
    let mut all_pass = true;
    for w in &workloads {
        // Output identity first: an engine that changes one NullId or
        // round count disqualifies the workload from timing at all.
        let mut n_naive = NullFactory::new();
        let naive =
            chase_fixpoint(&w.source, &w.tgds, &w.plan, &mut n_naive).expect("workload terminates");
        let mut n_delta = NullFactory::new();
        let delta = chase_fixpoint_delta(&w.source, &w.tgds, &w.plan, &mut n_delta)
            .expect("workload terminates");
        let mut n_dpar = NullFactory::new();
        let dpar = chase_fixpoint_delta_parallel(&w.source, &w.tgds, &w.plan, &mut n_dpar)
            .expect("workload terminates");
        let identical = naive.instance == delta.instance
            && naive.instance == dpar.instance
            && naive.rounds == delta.rounds
            && naive.rounds == dpar.rounds
            && naive.derived == delta.derived
            && naive.derived == dpar.derived
            && n_naive.len() == n_delta.len()
            && n_naive.len() == n_dpar.len();
        assert!(identical, "{}: delta output diverged from naive", w.name);

        let naive_secs = time(w.reps, || {
            let mut nulls = NullFactory::new();
            chase_fixpoint(&w.source, &w.tgds, &w.plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        });
        let delta_secs = time(w.reps, || {
            let mut nulls = NullFactory::new();
            chase_fixpoint_delta(&w.source, &w.tgds, &w.plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        });
        let dpar_secs = time(w.reps, || {
            let mut nulls = NullFactory::new();
            chase_fixpoint_delta_parallel(&w.source, &w.tgds, &w.plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        });
        let speedup = naive_secs / delta_secs;
        let gate_ok = !w.gate_5x || speedup >= 5.0;
        all_pass &= gate_ok;
        println!(
            "  {:<18} {:>7}  {:>7}  {:>6}  {:>9.1}  {:>9.1}  {:>7.1}  {:>6.1}x{}",
            w.name,
            naive.instance.len(),
            naive.derived,
            naive.rounds,
            naive_secs * 1e3,
            delta_secs * 1e3,
            dpar_secs * 1e3,
            speedup,
            if gate_ok { "" } else { "  << below 5x gate" }
        );
        record.row(&[
            ("workload", w.name.clone()),
            ("facts", naive.instance.len().to_string()),
            ("derived", naive.derived.to_string()),
            ("rounds", naive.rounds.to_string()),
            ("identical", identical.to_string()),
            ("naive_ms", format!("{:.3}", naive_secs * 1e3)),
            ("delta_ms", format!("{:.3}", delta_secs * 1e3)),
            ("delta_parallel_ms", format!("{:.3}", dpar_secs * 1e3)),
            ("speedup_delta", format!("{speedup:.2}")),
            (
                "speedup_delta_parallel",
                format!("{:.2}", naive_secs / dpar_secs),
            ),
            ("gate_5x", w.gate_5x.to_string()),
            ("gate_ok", gate_ok.to_string()),
            ("workers", cfg.threads.to_string()),
            (
                "shards",
                cfg.shards.map_or("auto".to_string(), |s| s.to_string()),
            ),
            ("threads_available", threads_available.to_string()),
        ]);
    }

    println!(
        "\n=> identity asserted on every workload; 5x gate: {}",
        if all_pass { "pass" } else { "FAIL" }
    );
    record.passed = all_pass;
    let path = record
        .write_to(std::path::Path::new(&out_dir))
        .expect("record written");
    println!("record: {}", path.display());
    if !all_pass {
        std::process::exit(1);
    }
}
