//! Quantifies the columnar [`FactStore`]
//! refactor: the current engines (arena-backed columns, stable `FactId`s,
//! O(1) hash dedup, borrowed tuple views) against the pre-refactor replica
//! preserved in [`ndl_bench::baseline`] (`BTreeMap`-of-`BTreeSet` instances,
//! owned-tuple index entries, per-boundary `Fact` clones). Same algorithms
//! on both sides — planned fixpoint chase and the incremental core engine —
//! so every speedup measured here is the storage representation's.
//!
//! Outputs are double-checked before timing: the old and new engines must
//! produce identical facts (including `NullId`s) on every workload.
//! The results land in `BENCH_store.json` (committed under `experiments/`;
//! see `docs/architecture.md` and `docs/performance.md`).
//!
//! Pass an output directory as the first argument to write elsewhere
//! (e.g. `bench_store target/experiments` for a throwaway run).

use ndl_analyze::{parse_program, ChaseAnalysis, StmtAst};
use ndl_bench::{baseline, ExperimentRecord};
use ndl_chase::{ChasePlan, NullFactory};
use ndl_core::btree::BTreeInstance;
use ndl_core::prelude::*;
use ndl_gen::{random_target_instance, TargetGenOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Mean seconds per call over `reps` calls (plus one warm-up).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// A path of `n` edges closed under transitivity: n(n+1)/2 derived
/// reachability pairs, so trigger matching and deduplication dominate.
fn tc_path(n: usize) -> String {
    let mut text = String::from("E(x,y) & E(y,z) -> E(x,z)\n");
    for i in 0..n {
        let _ = writeln!(text, "fact: E(v{i}, v{})", i + 1);
    }
    text
}

/// A `depth`-stage existential pipeline seeded with `seeds` facts: one
/// null-interning firing per chain per round, `depth * seeds` derivations.
fn pipeline_chain(depth: usize, seeds: usize) -> String {
    let mut text = String::new();
    for i in 0..depth {
        let _ = writeln!(text, "S{i}(x,y) -> exists z S{}(y,z)", i + 1);
    }
    for j in 0..seeds {
        let _ = writeln!(text, "fact: S0(c{j}, d{j})");
    }
    text
}

/// Parses a workload program into source instance, SO tgds and the
/// analyzer's plan — the same pipeline the `ndl chase` subcommand runs.
fn prepare(text: &str) -> (Instance, Vec<SoTgd>, ChasePlan) {
    let mut syms = SymbolTable::new();
    let (stmts, errs) = parse_program(&mut syms, text);
    assert!(errs.is_empty(), "workload programs parse");
    let analysis = ChaseAnalysis::analyze(&mut syms, &stmts);
    let mut source = Instance::new();
    for s in &stmts {
        if let Some(StmtAst::Fact(f)) = &s.ast {
            source.insert(f.clone());
        }
    }
    let tgds = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let plan = analysis.tgd_plan(Some(10_000_000));
    (source, tgds, plan)
}

/// The old engines run over `BTreeInstance`s; replicate fact-for-fact.
fn to_btree(inst: &Instance) -> BTreeInstance {
    BTreeInstance::from_facts(inst.facts().map(|f| f.to_fact()))
}

struct Row {
    workload: String,
    facts: usize,
    old_ms: f64,
    new_ms: f64,
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "experiments".into());
    let mut rows: Vec<Row> = Vec::new();

    // Chase: the old engine clones the source instance, pays O(log n)
    // BTree dedup per candidate fact and re-materializes owned tuples at
    // every boundary; the new engine runs entirely inside one TupleIndex
    // over the columnar store.
    let chase_workloads: Vec<(String, String, u32)> = vec![
        ("chase/tc-path/45".into(), tc_path(45), 20),
        ("chase/tc-path/140".into(), tc_path(140), 3),
        ("chase/pipeline/40x100".into(), pipeline_chain(40, 100), 10),
    ];
    for (name, text, reps) in &chase_workloads {
        let (source, tgds, plan) = prepare(text);
        let old_source = to_btree(&source);
        // Equivalence gate: identical facts, same NullIds, same counts.
        let mut n_new = NullFactory::new();
        let new_res = ndl_chase::chase_fixpoint(&source, &tgds, &plan, &mut n_new)
            .expect("workload terminates");
        let mut n_old = NullFactory::new();
        let old_res = baseline::chase_fixpoint(&old_source, &tgds, &plan, &mut n_old)
            .expect("workload terminates");
        assert_eq!(
            new_res
                .instance
                .facts()
                .map(|f| f.to_fact())
                .collect::<Vec<_>>(),
            old_res.instance.facts().collect::<Vec<_>>(),
            "engines disagree on {name}"
        );
        assert_eq!(new_res.derived, old_res.derived);
        let facts = new_res.instance.len();
        eprintln!("{name} ({facts} facts)...");
        let old_secs = time(*reps, || {
            let mut nulls = NullFactory::new();
            baseline::chase_fixpoint(&old_source, &tgds, &plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        });
        let new_secs = time(*reps, || {
            let mut nulls = NullFactory::new();
            ndl_chase::chase_fixpoint(&source, &tgds, &plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        });
        rows.push(Row {
            workload: name.clone(),
            facts,
            old_ms: old_secs * 1e3,
            new_ms: new_secs * 1e3,
        });
    }

    // Core: retraction probing is index-heavy — every candidate fold is
    // checked against the live fact set, where the old engine pays owned
    // tuple comparisons and the new one probes hashed columns.
    for &facts in &[1_000usize, 10_000] {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let inst = random_target_instance(
            &mut syms,
            &[(s, 2), (q, 3)],
            &TargetGenOptions {
                facts,
                domain: (facts / 5).max(4),
                redundant_nulls: (facts / 10).min(50),
                seed: 7,
            },
        );
        let old_inst = to_btree(&inst);
        let new_core = ndl_hom::core_of(&inst);
        let old_core = baseline::core_of(&old_inst);
        assert_eq!(
            new_core.facts().map(|f| f.to_fact()).collect::<Vec<_>>(),
            old_core.facts().collect::<Vec<_>>(),
            "engines disagree on core/random {facts}"
        );
        let name = format!("core/random/{facts}");
        eprintln!("{name}...");
        let reps = if facts >= 10_000 { 3 } else { 10 };
        let old_secs = time(reps, || baseline::core_of(&old_inst).len());
        let new_secs = time(reps, || ndl_hom::core_of(&inst).len());
        rows.push(Row {
            workload: name,
            facts: inst.len(),
            old_ms: old_secs * 1e3,
            new_ms: new_secs * 1e3,
        });
    }

    println!("columnar FactStore vs pre-refactor BTree engines (mean ms per run)\n");
    println!("  workload                 facts     old ms     new ms   speedup");
    for r in &rows {
        println!(
            "  {:<22} {:>7}  {:>9.3}  {:>9.3}  {:>6.1}x",
            r.workload,
            r.facts,
            r.old_ms,
            r.new_ms,
            r.old_ms / r.new_ms
        );
    }

    // Acceptance: ≥2x on every 10³–10⁴-fact chase and core workload.
    let passed = rows.iter().all(|r| r.old_ms / r.new_ms >= 2.0);
    println!(
        "\n=> >=2x speedup on all chase and core workloads: {}",
        if passed { "pass" } else { "FAIL" }
    );

    let mut record = ExperimentRecord::new(
        "BENCH_store",
        "arena-backed columnar FactStore engines vs pre-refactor BTree replica \
         (identical algorithms, old storage) on chase and core workloads",
        "engine optimization (no paper claim); acceptance: >=2x on 10^3-10^4-fact \
         chase and core workloads, outputs bit-identical",
    );
    for r in &rows {
        record.row(&[
            ("workload", r.workload.clone()),
            ("facts", r.facts.to_string()),
            ("old_ms", format!("{:.3}", r.old_ms)),
            ("new_ms", format!("{:.3}", r.new_ms)),
            ("speedup", format!("{:.1}", r.old_ms / r.new_ms)),
        ]);
    }
    record.passed = passed;
    let path = record
        .write_to(std::path::Path::new(&out_dir))
        .expect("record written");
    println!("record: {}", path.display());
    if !passed {
        std::process::exit(1);
    }
}
