//! Regenerates **Figure 4 / Example 3.10**: the complete IMPLIES runs
//! testing τ' ⊨ τ (answer: no, with k = 2) and τ'' ⊨ τ (answer: yes, with
//! k = 3 and the pattern set {p', p'', p''₂, p''₃}), including the
//! canonical instances and homomorphism check for p''₂.

use ndl_bench::tau_310;
use ndl_chase::{chase_st, NullFactory};
use ndl_core::prelude::*;
use ndl_hom::{find_homomorphism, homomorphic};
use ndl_reasoning::{canonical_instances, implies_tgd, k_patterns, ImpliesOptions, Pattern};

fn main() {
    let mut syms = SymbolTable::new();
    let tau = tau_310(&mut syms);
    println!("τ   = {}", tau.display(&syms));
    let tau_p = NestedMapping::parse(&mut syms, &["S2(x2) -> exists z R(x2,z)"], &[]).unwrap();
    let tau_pp = NestedMapping::parse(&mut syms, &["S1(x1) & S2(x2) -> R(x2,x1)"], &[]).unwrap();
    println!("τ'  = {}", tau_p.tgds[0].display(&syms));
    println!("τ'' = {}", tau_pp.tgds[0].display(&syms));
    let opts = ImpliesOptions::default();

    // --- Figure 4: the pattern sets --------------------------------------
    let p2 = k_patterns(&tau, 2, 10_000).unwrap();
    let p3 = k_patterns(&tau, 3, 10_000).unwrap();
    println!(
        "\nP_2(τ) (for τ' ⊨ τ, k = 2):  {:?}",
        p2.iter().map(Pattern::display).collect::<Vec<_>>()
    );
    println!(
        "P_3(τ) (for τ'' ⊨ τ, k = 3): {:?}",
        p3.iter().map(Pattern::display).collect::<Vec<_>>()
    );
    assert_eq!(p2.len(), 3); // p', p'', p''_2
    assert_eq!(p3.len(), 4); // p', p'', p''_2, p''_3

    // --- the p''₂ check spelled out --------------------------------------
    let info = SkolemInfo::for_nested(&tau, &mut syms);
    let mut p2_pattern = Pattern::root_only(0);
    p2_pattern.add_child(0, 1);
    p2_pattern.add_child(0, 1);
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(&tau, &info, &p2_pattern, &mut syms, &mut nulls);
    println!("\np''₂ canonical instances:");
    println!("  I = {}", pair.source.display(&syms));
    println!("  J = {}", nulls.display_instance(&pair.target, &syms));

    let mut n1 = NullFactory::new();
    let st_p = tau_p.to_st_tgds().unwrap();
    let chased_p = chase_st(&pair.source, &st_p, &mut syms, &mut n1);
    println!(
        "\n  chase(I, τ')  = {}",
        n1.display_instance(&chased_p, &syms)
    );
    println!(
        "  J → chase(I, τ')?  {}",
        homomorphic(&pair.target, &chased_p)
    );
    assert!(!homomorphic(&pair.target, &chased_p));

    let mut n2 = NullFactory::new();
    let st_pp = tau_pp.to_st_tgds().unwrap();
    let chased_pp = chase_st(&pair.source, &st_pp, &mut syms, &mut n2);
    println!(
        "\n  chase(I, τ'') = {}",
        n2.display_instance(&chased_pp, &syms)
    );
    let h = find_homomorphism(&pair.target, &chased_pp);
    println!(
        "  J → chase(I, τ'')? {} (the paper's [f(a1) ↦ a1])",
        h.is_some()
    );
    assert!(h.is_some());

    // --- the full IMPLIES verdicts ----------------------------------------
    let r1 = implies_tgd(&tau_p, &tau, &mut syms, &opts).unwrap();
    let r2 = implies_tgd(&tau_pp, &tau, &mut syms, &opts).unwrap();
    println!(
        "\nIMPLIES({{τ'}}, τ)  = {}   (v = {}, w = {}, k = {})",
        r1.holds, r1.v, r1.w, r1.k
    );
    println!(
        "IMPLIES({{τ''}}, τ) = {}   (v = {}, w = {}, k = {}, {} patterns checked)",
        r2.holds, r2.v, r2.w, r2.k, r2.patterns_checked
    );
    assert!(!r1.holds && r1.k == 2);
    assert!(r2.holds && r2.k == 3 && r2.patterns_checked == 4);
    println!("\nmatches Example 3.10 ✓");
}
