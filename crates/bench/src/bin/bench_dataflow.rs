//! Measures certified dead-code elimination in the chase and the
//! ground-relation fast path in the hom engines. **Output identity is
//! asserted before any timing**: on every workload the certified run of
//! all four engines must be bit-identical (`NullId`s included, same round
//! and derived counts) to the uncertified sequential baseline, and the
//! hinted hom entry points must return exactly what the unhinted ones
//! do, or the run fails. The results land in `BENCH_dataflow.json`
//! (committed under `experiments/`; see `docs/performance.md`).
//!
//! The gate: on every workload marked `gate_1p5x`, the certified delta
//! chase must beat the uncertified delta chase by ≥ 1.5×, and the
//! record's `passed` flag carries the verdict. Workloads:
//!
//! - `dead/<n>+<k>` — linear transitive closure over an `n`-edge chain
//!   with `k` provably dead statements riding along, each reading the
//!   growing closure relation `P` twice before a relation `Z{i}` nothing
//!   populates. Every engine dismisses a dead statement quickly (its
//!   empty body relation zeroes the candidate scan), but not for free:
//!   the per-statement round setup and candidate/frontier probes recur
//!   every round. A dead-heavy program — hundreds of dead statements
//!   against a small live core, the shape a generated or
//!   machine-translated mapping produces — pays that constant `k·rounds`
//!   times, and the certificate removes the whole term. The `dead/220+8`
//!   row is the honest converse: with few dead statements the overhead
//!   is noise, so it is reported ungated.
//! - `ground/<k>x<m>` — the hom side: a chase target of `k·m` facts
//!   across `k` certified-ground copy relations plus an `m`-fact nullable
//!   fringe. `null_blocks_with_ground` and `core_of_assuming_ground`
//!   dismiss the ground bulk by relation id instead of scanning every
//!   argument for nulls; speedups are reported, not gated — the win is a
//!   constant factor on the scan, not an asymptotic term.
//!
//! Pass an output directory as the first argument to write elsewhere
//! (e.g. `bench_dataflow target/experiments` for a throwaway run).

use ndl_analyze::{parse_program, ChaseAnalysis};
use ndl_bench::ExperimentRecord;
use ndl_chase::{
    chase_fixpoint, chase_fixpoint_delta, chase_fixpoint_delta_parallel, chase_fixpoint_parallel,
    ChasePlan, FixpointChase, FixpointError, NullFactory,
};
use ndl_core::prelude::*;
use ndl_gen::{disjoint_pairs, successor};
use ndl_hom::{core_of, core_of_assuming_ground, null_blocks, null_blocks_with_ground};
use std::fmt::Write as _;
use std::time::Instant;

/// Mean seconds per call over `reps` calls (plus one warm-up).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

type Engine = fn(
    &Instance,
    &[SoTgd],
    &ChasePlan,
    &mut NullFactory,
) -> std::result::Result<FixpointChase, FixpointError>;

/// Transitive closure over an `edges`-edge chain plus `dead` statements
/// the dataflow pass proves can never fire.
fn dead_workload(
    syms: &mut SymbolTable,
    edges: usize,
    dead: usize,
) -> (String, Instance, Vec<SoTgd>, ChasePlan) {
    let mut text = "E(x,y) & P(y,z) -> P(x,z)\n".to_string();
    for i in 0..dead {
        // A join chain over the growing closure relation before the
        // orphan Z{i}: the matcher's candidate scan walks the body in
        // order every round until the empty relation zeroes it, so each
        // dead statement costs a per-round constant proportional to its
        // body length unless it is skipped.
        let mut body = String::new();
        for j in 0..7 {
            let _ = write!(body, "P(x{j},x{}) & ", j + 1);
        }
        let _ = writeln!(text, "{body}Z{i}(x7,x8) -> D{i}(x0,x8)");
    }
    let e = syms.rel("E");
    let p = syms.rel("P");
    let mut source = successor(syms, e, edges + 1, "n");
    for f in successor(syms, p, edges + 1, "n").facts() {
        source.insert(f.to_fact());
    }
    let (tgds, plan) = analyze(syms, &text, &source);
    assert_eq!(
        plan.cert.as_ref().map(|c| c.dead.len()),
        Some(dead),
        "analyzer proves every seeded statement dead"
    );
    (format!("dead/{edges}+{dead}"), source, tgds, plan)
}

/// A `facts`-sourced program whose chase target is `copies` ground copy
/// relations plus one nullable fringe relation.
fn ground_workload(
    syms: &mut SymbolTable,
    copies: usize,
    seeds: usize,
) -> (String, Instance, Vec<SoTgd>, ChasePlan) {
    let mut text = String::new();
    for i in 0..copies {
        // Wide (arity-6) targets: the unhinted null scan walks every
        // argument of every ground fact, the hinted one probes one mask.
        let _ = writeln!(text, "S(x,y) -> T{i}(y,x,y,x,y,x)");
    }
    text.push_str("S(x,y) -> exists z N(y,z)\n");
    let s = syms.rel("S");
    let source = disjoint_pairs(syms, s, seeds, "p");
    let (tgds, plan) = analyze(syms, &text, &source);
    (format!("ground/{copies}x{seeds}"), source, tgds, plan)
}

/// Runs the analyzer over `text` with the declared facts of `source` so
/// its dataflow pass sees the real source relations, and returns the
/// grouped SO tgds and the certified plan.
fn analyze(syms: &mut SymbolTable, text: &str, source: &Instance) -> (Vec<SoTgd>, ChasePlan) {
    // Declare the populated relations as facts so the dataflow pass works
    // from known sources (one representative fact per relation is enough
    // for relation-level reachability).
    let mut full = text.to_string();
    let mut seen = std::collections::BTreeSet::new();
    for f in source.facts() {
        if seen.insert(f.rel) {
            let args: Vec<&str> = f.args.iter().map(|_| "c0").collect();
            let _ = writeln!(full, "fact: {}({})", syms.rel_name(f.rel), args.join(", "));
        }
    }
    let (stmts, errs) = parse_program(syms, &full);
    assert!(errs.is_empty(), "bench program parses");
    let analysis = ChaseAnalysis::analyze(syms, &stmts);
    let tgds: Vec<SoTgd> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let plan = analysis.tgd_plan(None);
    assert!(plan.guaranteed_terminating, "bench workloads terminate");
    assert!(plan.cert.is_some(), "tgd_plan attaches the certificate");
    (tgds, plan)
}

/// Asserts all four engines, certified and uncertified, agree bit for bit
/// with the uncertified sequential baseline; returns the baseline.
fn assert_identity(
    name: &str,
    source: &Instance,
    tgds: &[SoTgd],
    certified: &ChasePlan,
    uncertified: &ChasePlan,
) -> FixpointChase {
    let engines: [(&str, Engine); 4] = [
        ("fixpoint", chase_fixpoint),
        ("parallel", chase_fixpoint_parallel),
        ("delta", chase_fixpoint_delta),
        ("delta-parallel", chase_fixpoint_delta_parallel),
    ];
    let mut base_nulls = NullFactory::new();
    let base =
        chase_fixpoint(source, tgds, uncertified, &mut base_nulls).expect("workload terminates");
    for (engine_name, engine) in engines {
        for (mode, plan) in [("certified", certified), ("uncertified", uncertified)] {
            let mut nulls = NullFactory::new();
            let out = engine(source, tgds, plan, &mut nulls).expect("workload terminates");
            assert!(
                out.instance == base.instance
                    && out.rounds == base.rounds
                    && out.derived == base.derived
                    && nulls.len() == base_nulls.len(),
                "{name}: {engine_name} ({mode}) diverged from the uncertified baseline"
            );
        }
    }
    base
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "experiments".into());
    let mut record = ExperimentRecord::new(
        "BENCH_dataflow",
        "certified dead-statement skipping in the chase (delta engine gated) and the \
         ground-relation fast path in null_blocks/core_of on a mostly-ground target",
        "output identity (instance, NullIds, rounds, derived; hom results) is asserted \
         for every engine and entry point before any timing; the gate requires the \
         certified delta chase >= 1.5x the uncertified one on dead-heavy workloads",
    );
    let mut all_pass = true;

    // --- Dead-heavy: certified vs uncertified chase. -------------------
    println!("certified dead-code elimination (mean ms per run)\n");
    println!("  workload        facts  rounds  naive ms  naive* ms  delta ms  delta* ms  speedup");
    let mut syms = SymbolTable::new();
    for (edges, dead, reps, gated) in [
        (64usize, 1024usize, 5u32, true),
        (64, 2048, 5, true),
        (220, 8, 3, false),
    ] {
        let (name, source, tgds, certified) = dead_workload(&mut syms, edges, dead);
        let uncertified = ChasePlan {
            cert: None,
            ..certified.clone()
        };
        let base = assert_identity(&name, &source, &tgds, &certified, &uncertified);
        let run = |engine: Engine, plan: &ChasePlan| {
            let mut nulls = NullFactory::new();
            engine(&source, &tgds, plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        };
        let naive_secs = time(reps, || run(chase_fixpoint, &uncertified));
        let naive_cert_secs = time(reps, || run(chase_fixpoint, &certified));
        let delta_secs = time(reps, || run(chase_fixpoint_delta, &uncertified));
        let delta_cert_secs = time(reps, || run(chase_fixpoint_delta, &certified));
        let speedup = delta_secs / delta_cert_secs;
        let gate_ok = !gated || speedup >= 1.5;
        all_pass &= gate_ok;
        println!(
            "  {:<14} {:>6}  {:>6}  {:>8.1}  {:>9.1}  {:>8.1}  {:>9.1}  {:>6.2}x{}",
            name,
            base.instance.len(),
            base.rounds,
            naive_secs * 1e3,
            naive_cert_secs * 1e3,
            delta_secs * 1e3,
            delta_cert_secs * 1e3,
            speedup,
            if gate_ok {
                if gated {
                    ""
                } else {
                    "  (ungated)"
                }
            } else {
                "  << below 1.5x gate"
            }
        );
        record.row(&[
            ("workload", name),
            ("facts", base.instance.len().to_string()),
            ("rounds", base.rounds.to_string()),
            ("dead_statements", dead.to_string()),
            ("identical", "true".to_string()),
            ("naive_ms", format!("{:.3}", naive_secs * 1e3)),
            (
                "naive_certified_ms",
                format!("{:.3}", naive_cert_secs * 1e3),
            ),
            ("delta_ms", format!("{:.3}", delta_secs * 1e3)),
            (
                "delta_certified_ms",
                format!("{:.3}", delta_cert_secs * 1e3),
            ),
            ("speedup_delta_certified", format!("{speedup:.2}")),
            (
                "speedup_naive_certified",
                format!("{:.2}", naive_secs / naive_cert_secs),
            ),
            ("gate_1p5x", gated.to_string()),
            ("gate_ok", gate_ok.to_string()),
        ]);
    }

    // --- Ground-heavy: hinted vs unhinted hom entry points. ------------
    println!("\nground-relation fast path in the hom engines (mean ms per run)\n");
    println!("  workload        facts  ground rels  blocks ms  blocks* ms  core ms  core* ms");
    for (copies, seeds, reps) in [(12usize, 9_000usize, 5u32), (4, 24_000, 5)] {
        let (name, source, tgds, plan) = ground_workload(&mut syms, copies, seeds);
        let mut nulls = NullFactory::new();
        let chased =
            chase_fixpoint_delta(&source, &tgds, &plan, &mut nulls).expect("workload terminates");
        let target = chased.instance;
        let ground = plan.cert.as_ref().expect("certified plan").ground.clone();
        // Identity first: the hint must not change a single block or fact.
        assert_eq!(
            null_blocks_with_ground(&target, &ground),
            null_blocks(&target),
            "{name}: ground hint changed the blocks"
        );
        assert_eq!(
            core_of_assuming_ground(&target, &ground),
            core_of(&target),
            "{name}: ground hint changed the core"
        );
        let blocks_secs = time(reps, || null_blocks(&target).len());
        let blocks_hint_secs = time(reps, || null_blocks_with_ground(&target, &ground).len());
        let core_secs = time(reps, || core_of(&target).len());
        let core_hint_secs = time(reps, || core_of_assuming_ground(&target, &ground).len());
        println!(
            "  {:<14} {:>6}  {:>11}  {:>9.1}  {:>10.1}  {:>7.1}  {:>8.1}",
            name,
            target.len(),
            ground.len(),
            blocks_secs * 1e3,
            blocks_hint_secs * 1e3,
            core_secs * 1e3,
            core_hint_secs * 1e3,
        );
        record.row(&[
            ("workload", name),
            ("facts", target.len().to_string()),
            ("ground_relations", ground.len().to_string()),
            ("identical", "true".to_string()),
            ("null_blocks_ms", format!("{:.3}", blocks_secs * 1e3)),
            (
                "null_blocks_ground_ms",
                format!("{:.3}", blocks_hint_secs * 1e3),
            ),
            ("core_of_ms", format!("{:.3}", core_secs * 1e3)),
            ("core_of_ground_ms", format!("{:.3}", core_hint_secs * 1e3)),
            (
                "speedup_null_blocks",
                format!("{:.2}", blocks_secs / blocks_hint_secs),
            ),
            ("speedup_core", format!("{:.2}", core_secs / core_hint_secs)),
            ("gate_1p5x", "false".to_string()),
            ("gate_ok", "true".to_string()),
        ]);
    }

    println!(
        "\n=> identity asserted on every workload; 1.5x gate: {}",
        if all_pass { "pass" } else { "FAIL" }
    );
    record.passed = all_pass;
    let path = record
        .write_to(std::path::Path::new(&out_dir))
        .expect("record written");
    println!("record: {}", path.display());
    if !all_pass {
        std::process::exit(1);
    }
}
