//! Regenerates **Figure 8 / Theorem 5.1**: the triangular time × tape
//! enumeration materialized in the target by the Turing-machine reduction,
//! and the theorem's observable — the core f-block size (the anchored
//! enumeration chain) is bounded in the source size iff the machine halts.

use ndl_core::prelude::*;
use ndl_turing::{build_reduction, busy_halter, delete_row, forever_right, measure, sweep};

fn main() {
    // The reduction SO tgd for a halting machine.
    let mut syms = SymbolTable::new();
    let halter = busy_halter(3);
    let red = build_reduction(&halter, &mut syms);
    println!("plain SO tgd of the reduction (navigation ←, ↘, anchor, trap):");
    println!("  {}", red.tgd.display(&syms));
    println!("single source key dependency: {}", red.key.display(&syms));
    assert!(red.tgd.is_plain());

    // Draw the Figure 8 enumeration for n = 5 on a non-halting machine.
    let mut syms2 = SymbolTable::new();
    let runner = forever_right();
    let red2 = build_reduction(&runner, &mut syms2);
    let o = measure(&runner, &red2, 5, &mut syms2, "v_", |e| e);
    println!("\nFigure 8 enumeration for n = 5 (non-halting machine):");
    println!("  good triangle rows: {}", o.good_rows);
    println!(
        "  anchored chain (core f-block) size: {}",
        o.anchored_block_size
    );
    assert_eq!(o.good_rows, 5);
    assert!(o.anchored_block_size >= 14); // visits all 15 triangle cells

    // The observable: plateau for halting, growth for non-halting.
    println!("\nhalting machine busy_halter(3):");
    println!("   n   good rows   anchored block");
    let outs = sweep(&halter, &red, &[5, 7, 9, 11], &mut syms);
    for o in &outs {
        println!(
            "  {:2}   {:9}   {:14}",
            o.n, o.good_rows, o.anchored_block_size
        );
    }
    assert!(outs
        .windows(2)
        .all(|w| w[0].anchored_block_size == w[1].anchored_block_size));
    println!("  => bounded (the machine halts) ✓");

    println!("\nnon-halting machine forever_right():");
    println!("   n   good rows   anchored block   f-degree");
    let outs2 = sweep(&runner, &red2, &[5, 7, 9, 11], &mut syms2);
    for o in &outs2 {
        println!(
            "  {:2}   {:9}   {:14}   {:8}",
            o.n, o.good_rows, o.anchored_block_size, o.core_fdegree
        );
    }
    assert!(outs2
        .windows(2)
        .all(|w| w[1].anchored_block_size > w[0].anchored_block_size));
    println!("  => unbounded (the machine does not halt) ✓");
    println!("  => f-degree bounded while blocks grow: by Thm 4.12 this plain SO tgd");
    println!("     is not equivalent to any nested GLAV mapping either (Thm 5.2).");

    // Missing information breaks the enumeration (the construction's
    // robustness requirement).
    let mut syms3 = SymbolTable::new();
    let red3 = build_reduction(&runner, &mut syms3);
    let schema = red3.schema.clone();
    let full = measure(&runner, &red3, 8, &mut syms3, "f_", |e| e);
    let gutted = measure(&runner, &red3, 8, &mut syms3, "g_", move |e| {
        delete_row(&e, &schema, 5)
    });
    println!(
        "\nmissing information (row 5 deleted): anchored block {} -> {}",
        full.anchored_block_size, gutted.anchored_block_size
    );
    assert!(gutted.anchored_block_size < full.anchored_block_size);
    println!("matches the Theorem 5.1 construction's behaviour ✓");
}
