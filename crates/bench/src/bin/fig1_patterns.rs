//! Regenerates **Figure 1**: the eight 1-patterns of the running example
//! σ (Section 2, (*)), as enumerated by Proposition 3.5.

use ndl_bench::running_sigma;
use ndl_core::prelude::*;
use ndl_reasoning::{k_patterns, Pattern};

fn main() {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    println!("σ = {}\n", sigma.display(&syms));
    let mut patterns = k_patterns(&sigma, 1, 100_000).expect("enumeration fits the budget");
    patterns.sort_by_key(|p| (p.len(), p.display()));
    println!("P_1(σ) — the 1-patterns of σ (Figure 1):");
    for (i, p) in patterns.iter().enumerate() {
        println!("  p{} = {}", i + 1, p.display());
        assert!(p.is_valid_for(&sigma));
        assert!(p.max_clone_multiplicity() <= 1);
    }
    assert_eq!(patterns.len(), 8, "the paper's Figure 1 shows 8 patterns");
    // Sanity: the figure's p8 = σ1(σ2 σ3(σ4)) is among them.
    let mut p8 = Pattern::root_only(0);
    p8.add_child(0, 1);
    let s3 = p8.add_child(0, 2);
    p8.add_child(s3, 3);
    assert!(patterns.contains(&p8));
    println!("\n|P_1(σ)| = {} ✓ (paper: 8)", patterns.len());
}
