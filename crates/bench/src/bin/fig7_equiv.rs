//! Regenerates **Figure 7 / Example 4.15**: σ' = S(x,y) ∧ Q(z) →
//! R(f(z,x,y),g(z),x) has the same clique fact graphs as Example 4.14's σ
//! on successor sources, *yet* is logically equivalent to a nested tgd —
//! its null graph has bounded path length, and we machine-check the
//! equivalence via chase-core homomorphic equivalence on a family.

use ndl_bench::{nested_415, sigma_415, successor_family};
use ndl_chase::{chase_mapping, chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_hom::{core_of, hom_equivalent, null_path_length, FactGraph};
use ndl_reasoning::sweep_so;

fn main() {
    let mut syms = SymbolTable::new();
    let sigma = sigma_415(&mut syms);
    let nested = nested_415(&mut syms);
    println!("σ'     = {}", sigma.display(&syms));
    println!(
        "nested = {}   (the displayed equivalent)\n",
        nested.tgds[0].display(&syms)
    );

    // Figure 7 for successor length 5: clique fact graph, short null paths.
    let family5 = successor_family(&mut syms, true, &[5]);
    let mut nulls = NullFactory::new();
    let core = core_of(&chase_so(&family5[0], &sigma, &mut nulls));
    let fg = FactGraph::of(&core);
    println!("core for successor length 5: {} facts", core.len());
    assert_eq!(
        fg.max_degree(),
        fg.len() - 1,
        "fact graph is a clique (like Fig. 6)"
    );
    let pl = null_path_length(&core, 64).unwrap();
    println!("fact graph: clique ✓;  null-graph longest simple path = {pl}");
    assert!(pl <= 2, "Figure 7's null graph is a star: path length ≤ 2");

    // No separation on the sweep...
    let family = successor_family(&mut syms, true, &[4, 6, 8]);
    let report = sweep_so(&sigma, &family);
    assert_eq!(report.verdict, None);
    println!("\nseparation sweep verdict: none (consistent with nested-expressibility)");

    // ...and a direct machine check of σ' ≡ nested on the family: the
    // canonical universal solutions are homomorphically equivalent, which
    // for mappings closed under target homomorphisms decides agreement on
    // each instance.
    println!("\nchase-core equivalence checks:");
    for inst in &family {
        let mut n = NullFactory::new();
        let so_chase = chase_so(inst, &sigma, &mut n);
        let (nested_chase, _) = chase_mapping(inst, &nested, &mut syms);
        let ok = hom_equivalent(&so_chase, &nested_chase.target);
        println!(
            "  |I| = {:2}: chase(I,σ') ↔ chase(I,nested)  {}",
            inst.len(),
            ok
        );
        assert!(ok);
    }
    println!("\nmatches Example 4.15 / Figure 7 ✓");
}
