//! Measures the indexed, incremental, parallel homomorphism/core engine
//! against the preserved scan engine (`ndl_hom::scan`) on grid and random
//! workloads of 10² – 10⁴ facts, and records the speedups as
//! `BENCH_hom.json` (committed under `experiments/`; see
//! `docs/performance.md`).
//!
//! Pass an output directory as the first argument to write elsewhere
//! (e.g. `bench_hom target/experiments` for a throwaway run).

use ndl_bench::ExperimentRecord;
use ndl_core::prelude::*;
use ndl_gen::{abstract_subpattern, grid, random_target_instance, TargetGenOptions};
use ndl_hom::scan::{core_of_scan, find_homomorphism_scan};
use ndl_hom::{core_of, find_homomorphism_into, HomMap};
use std::path::Path;
use std::time::Instant;

/// Mean seconds per call over `reps` calls (plus one warm-up).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// Repetitions scaled to workload size so the slow baseline stays tractable.
fn reps_for(facts: usize) -> u32 {
    match facts {
        0..=300 => 50,
        301..=3_000 => 10,
        _ => 2,
    }
}

struct Row {
    workload: &'static str,
    facts: usize,
    scan_ms: f64,
    indexed_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scan_ms / self.indexed_ms
    }
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "experiments".into());
    let mut rows: Vec<Row> = Vec::new();

    // Homomorphism search: 20 patterns into one target per call — the
    // IMPLIES / core-probe access pattern the engine is built for. The
    // indexed side pays one `TupleIndex` build per call plus 20 indexed
    // searches (via `find_homomorphism_into`).
    let pattern_batch = |target: &Instance, k: usize| -> Vec<Instance> {
        (0..20u64)
            .map(|i| abstract_subpattern(target, k, 100 + i))
            .collect()
    };
    let run_batch = |target: &Instance, patterns: &[Instance], reps: u32| -> (f64, f64) {
        if std::env::var("BENCH_HOM_PROBE").is_ok() {
            for (i, p) in patterns.iter().enumerate() {
                let t = Instant::now();
                let ok = find_homomorphism_scan(p, target).is_some();
                eprintln!(
                    "  pattern {i}: {:.1} ms (len {}, hom={ok})",
                    t.elapsed().as_secs_f64() * 1e3,
                    p.len()
                );
            }
        }
        let scan = time(reps, || {
            patterns
                .iter()
                .filter(|p| find_homomorphism_scan(p, target).is_some())
                .count()
        });
        let indexed = time(reps, || {
            let index = TupleIndex::from_instance(target);
            patterns
                .iter()
                .filter(|p| {
                    find_homomorphism_into(p, &index, &HomMap::new(), &|_, _| false).is_some()
                })
                .count()
        });
        let index = TupleIndex::from_instance(target);
        for p in patterns {
            assert_eq!(
                find_homomorphism_scan(p, target).is_some(),
                find_homomorphism_into(p, &index, &HomMap::new(), &|_, _| false).is_some(),
                "engines disagree"
            );
        }
        (scan, indexed)
    };

    for &w in &[8usize, 23, 71] {
        let mut syms = SymbolTable::new();
        let h = syms.rel("H");
        let v = syms.rel("V");
        let target = grid(&mut syms, h, v, w, w, "g");
        let patterns = pattern_batch(&target, 8);
        let facts = target.len();
        let reps = reps_for(facts);
        eprintln!("hom/grid {facts}...");
        let (scan, indexed) = run_batch(&target, &patterns, reps);
        rows.push(Row {
            workload: "hom/grid",
            facts,
            scan_ms: scan * 1e3,
            indexed_ms: indexed * 1e3,
        });
    }

    for &facts in &[100usize, 1_000, 10_000] {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let target = random_target_instance(
            &mut syms,
            &[(s, 2), (q, 3)],
            &TargetGenOptions {
                facts,
                // Medium density (domain ~ facts/2): patterns stay
                // nontrivial, while the scan baseline, which explodes on
                // dense targets, stays measurable.
                domain: (facts / 2).max(8),
                redundant_nulls: 0,
                seed: 7,
            },
        );
        // 6-fact patterns: at 8 facts the scan baseline degenerates into
        // minutes-long exponential searches on some seeds.
        let patterns = pattern_batch(&target, 6);
        let reps = reps_for(facts);
        eprintln!("hom/random {facts}...");
        let (scan, indexed) = run_batch(&target, &patterns, reps);
        rows.push(Row {
            workload: "hom/random",
            facts: target.len(),
            scan_ms: scan * 1e3,
            indexed_ms: indexed * 1e3,
        });
    }

    // Core computation: random targets with redundant null blocks.
    for &facts in &[100usize, 1_000, 10_000] {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let inst = random_target_instance(
            &mut syms,
            &[(s, 2), (q, 3)],
            &TargetGenOptions {
                facts,
                domain: (facts / 5).max(4),
                redundant_nulls: (facts / 10).min(50),
                seed: 7,
            },
        );
        let reps = reps_for(facts).min(5);
        eprintln!("core/random {facts}...");
        let scan = time(reps, || core_of_scan(&inst).len());
        let indexed = time(reps, || core_of(&inst).len());
        assert_eq!(
            core_of_scan(&inst),
            core_of(&inst),
            "engines disagree on core/random {facts}"
        );
        rows.push(Row {
            workload: "core/random",
            facts: inst.len(),
            scan_ms: scan * 1e3,
            indexed_ms: indexed * 1e3,
        });
    }

    println!("indexed engine vs scan baseline (mean ms per call)\n");
    println!("  workload      facts     scan ms   indexed ms   speedup");
    for r in &rows {
        println!(
            "  {:<11} {:>7}   {:>9.3}   {:>10.3}   {:>6.1}x",
            r.workload,
            r.facts,
            r.scan_ms,
            r.indexed_ms,
            r.speedup()
        );
    }

    // Acceptance: ≥ 2x on every 10³–10⁴-fact workload.
    let passed = rows
        .iter()
        .filter(|r| r.facts >= 900)
        .all(|r| r.speedup() >= 2.0);
    println!(
        "\n=> ≥2x speedup on all 10³–10⁴-fact workloads: {}",
        if passed { "yes ✓" } else { "NO" }
    );

    let mut record = ExperimentRecord::new(
        "BENCH_hom",
        "indexed/incremental/parallel hom+core engine vs the preserved scan engine",
        "engine optimization (no paper claim); acceptance: >=2x on 10^3-10^4-fact workloads",
    );
    record.passed = passed;
    for r in &rows {
        record.row(&[
            ("workload", r.workload.to_string()),
            ("facts", r.facts.to_string()),
            ("scan_ms", format!("{:.3}", r.scan_ms)),
            ("indexed_ms", format!("{:.3}", r.indexed_ms)),
            ("speedup", format!("{:.1}", r.speedup())),
        ]);
    }
    match record.write_to(Path::new(&out_dir)) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
