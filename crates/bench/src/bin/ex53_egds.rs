//! Regenerates **Example 5.3**: with source egds, naive cloning of
//! canonical source instances violates Σs; *legal* canonical instances
//! (Definition 5.4) repair the clone by replaying the egd-chase merges —
//! the key tool behind Theorems 5.5–5.7.

use ndl_chase::{satisfies_egds, NullFactory};
use ndl_core::prelude::*;
use ndl_reasoning::{canonical_instances, glav_equivalent, legalize, FblockOptions, Pattern};

fn main() {
    let mut syms = SymbolTable::new();
    let sigma = parse_nested_tgd(
        &mut syms,
        "forall z (Q(z) -> exists y (forall x1,x2 (P1(z,x1) & P2(z,x2) -> R(y,x1,x2))))",
    )
    .unwrap();
    let egd = parse_egd(&mut syms, "P1(z,w1) & P1(z,w2) -> w1 = w2").unwrap();
    println!("σ  = {}", sigma.display(&syms));
    println!("Σs = {}\n", egd.display(&syms));

    let info = SkolemInfo::for_nested(&sigma, &mut syms);
    let mut pattern = Pattern::root_only(0);
    pattern.add_child(0, 1);
    pattern.add_child(0, 1); // the clone of the example
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(&sigma, &info, &pattern, &mut syms, &mut nulls);
    println!("cloned canonical source (the example's I ∪ I[b ↦ d]):");
    println!("  {}", pair.source.display(&syms));
    let sat = satisfies_egds(&pair.source, std::slice::from_ref(&egd));
    println!("  satisfies Σs? {sat}");
    assert!(!sat);

    let legal = legalize(&pair, std::slice::from_ref(&egd), &mut nulls);
    println!("\nlegal canonical source (Definition 5.4):");
    println!("  {}", legal.source.display(&syms));
    println!("legal canonical target:");
    println!("  {}", nulls.display_instance(&legal.target, &syms));
    assert!(satisfies_egds(&legal.source, std::slice::from_ref(&egd)));

    // The Section 5 contrast for nested tgds: the x1-growth variant is
    // GLAV-equivalent exactly when the key egd is present.
    let tgds = &["forall z (Q(z) -> exists y (forall x1 (P1(z,x1) -> R2(y,x1))))"];
    let free = NestedMapping::parse(&mut syms, tgds, &[]).unwrap();
    let keyed = NestedMapping::parse(&mut syms, tgds, &["P1(z,u1) & P1(z,u2) -> u1 = u2"]).unwrap();
    let opts = FblockOptions::default();
    let d_free = glav_equivalent(&free, &mut syms, &opts).unwrap();
    let d_keyed = glav_equivalent(&keyed, &mut syms, &opts).unwrap();
    println!("\nGLAV-equivalence of the x1-growth variant:");
    println!("  without Σs: {}", d_free.witness.is_some());
    println!("  with Σs:    {}", d_keyed.witness.is_some());
    assert!(d_free.witness.is_none());
    let witness = d_keyed.witness.expect("witness exists under the key egd");
    println!("  verified GLAV witness under Σs:");
    for t in &witness.tgds {
        println!("    {}", t.display(&syms));
    }
    println!("\nmatches Example 5.3 / Theorems 5.5–5.6 ✓");
}
