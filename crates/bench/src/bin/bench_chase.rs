//! Measures the planned fixpoint chase on structured workloads —
//! transitive-closure paths (quadratic fact growth, no nulls) and
//! existential pipeline chains (null-producing, one stage per round) —
//! and quantifies the cost of the observability layer by running every
//! workload twice: once with the no-op observer and once collecting
//! [`ChaseStats`]. The results land in `BENCH_chase.json` (committed
//! under `experiments/`; see `docs/performance.md` and
//! `docs/observability.md`).
//!
//! Pass an output directory as the first argument to write elsewhere
//! (e.g. `bench_chase target/experiments` for a throwaway run).

use ndl_analyze::{parse_program, ChaseAnalysis, StmtAst};
use ndl_bench::ExperimentRecord;
use ndl_chase::{chase_fixpoint_with, ChasePlan, NullFactory};
use ndl_core::prelude::*;
use ndl_obs::{ChaseStats, NoopObserver};
use std::fmt::Write as _;
use std::time::Instant;

/// Mean seconds per call over `reps` calls (plus one warm-up).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// A path of `n` edges closed under transitivity: the chase derives all
/// n(n+1)/2 reachability pairs with no nulls, so trigger matching and
/// deduplication dominate.
fn tc_path(n: usize) -> String {
    let mut text = String::from("E(x,y) & E(y,z) -> E(x,z)\n");
    for i in 0..n {
        let _ = writeln!(text, "fact: E(v{i}, v{})", i + 1);
    }
    text
}

/// A `depth`-stage existential pipeline seeded with `seeds` facts: each
/// round pushes every chain one stage forward and interns one null per
/// firing, so null interning and per-round bookkeeping dominate.
fn pipeline_chain(depth: usize, seeds: usize) -> String {
    let mut text = String::new();
    for i in 0..depth {
        let _ = writeln!(text, "S{i}(x,y) -> exists z S{}(y,z)", i + 1);
    }
    for j in 0..seeds {
        let _ = writeln!(text, "fact: S0(c{j}, d{j})");
    }
    text
}

/// Parses a workload program and derives source instance, grouped SO
/// tgds and the analyzer's chase plan — the same pipeline the
/// `ndl chase <file>` subcommand runs.
fn prepare(text: &str) -> (Instance, Vec<SoTgd>, ChasePlan) {
    let mut syms = SymbolTable::new();
    let (stmts, errs) = parse_program(&mut syms, text);
    assert!(errs.is_empty(), "workload programs parse");
    let analysis = ChaseAnalysis::analyze(&mut syms, &stmts);
    let mut source = Instance::new();
    for s in &stmts {
        if let Some(StmtAst::Fact(f)) = &s.ast {
            source.insert(f.clone());
        }
    }
    let tgds = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let plan = analysis.tgd_plan(Some(10_000_000));
    (source, tgds, plan)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "experiments".into());
    let mut record = ExperimentRecord::new(
        "BENCH_chase",
        "planned fixpoint chase on TC paths and pipeline chains, no-op observer vs. ChaseStats",
        "observability must be pay-as-you-go: the stats sink adds only per-statement \
         clock reads and counter bumps on top of the no-op run",
    );

    let workloads: Vec<(String, String, u32)> = vec![
        ("tc-path/60".into(), tc_path(60), 20),
        ("tc-path/120".into(), tc_path(120), 10),
        ("tc-path/240".into(), tc_path(240), 5),
        ("pipeline/24x16".into(), pipeline_chain(24, 16), 20),
    ];

    println!("planned fixpoint chase (mean ms per run)\n");
    println!("  workload          facts  derived  rounds   noop ms  stats ms  overhead");
    let mut max_overhead = 0.0f64;
    for (name, text, reps) in &workloads {
        let (source, tgds, plan) = prepare(text);
        let run_noop = || {
            let mut nulls = NullFactory::new();
            let mut obs = NoopObserver;
            chase_fixpoint_with(&source, &tgds, &plan, &mut nulls, &mut obs)
                .expect("workload terminates")
                .instance
                .len()
        };
        let noop_secs = time(*reps, run_noop);
        let facts = run_noop();
        let mut stats = ChaseStats::new();
        let stats_secs = time(*reps, || {
            stats = ChaseStats::new();
            let mut nulls = NullFactory::new();
            chase_fixpoint_with(&source, &tgds, &plan, &mut nulls, &mut stats)
                .expect("workload terminates")
                .instance
                .len()
        });
        let overhead = (stats_secs - noop_secs) / noop_secs * 100.0;
        max_overhead = max_overhead.max(overhead);
        println!(
            "  {:<16} {:>6}  {:>7}  {:>6}  {:>8.3}  {:>8.3}  {:>7.1}%",
            name,
            facts,
            stats.derived,
            stats.rounds,
            noop_secs * 1e3,
            stats_secs * 1e3,
            overhead
        );
        record.row(&[
            ("workload", name.clone()),
            ("facts", facts.to_string()),
            ("derived", stats.derived.to_string()),
            ("rounds", stats.rounds.to_string()),
            ("triggers_examined", stats.triggers_examined.to_string()),
            ("noop_ms", format!("{:.3}", noop_secs * 1e3)),
            ("stats_ms", format!("{:.3}", stats_secs * 1e3)),
            ("overhead_pct", format!("{overhead:.1}")),
        ]);
    }

    // Acceptance: the stats sink stays within noise of the no-op run.
    // Clock reads are per statement per round, so the bound is loose
    // enough to survive a busy CI container but catches accidental
    // per-trigger work sneaking into the hot loop.
    let passed = max_overhead < 50.0;
    println!(
        "\n=> stats-sink overhead within noise (max {:.1}% < 50%): {}",
        max_overhead,
        if passed { "pass" } else { "FAIL" }
    );
    record.passed = passed;
    let path = record
        .write_to(std::path::Path::new(&out_dir))
        .expect("record written");
    println!("record: {}", path.display());
    if !passed {
        std::process::exit(1);
    }
}
