//! Regenerates the **Theorem 4.2** decision suite: for a portfolio of
//! nested GLAV mappings, decide GLAV-equivalence; print the unboundedness
//! certificate (Theorem 4.4's cloning ladder) or the verified GLAV witness.

use ndl_core::prelude::*;
use ndl_reasoning::{equivalent, glav_equivalent, FblockOptions, ImpliesOptions};

fn main() {
    let mut syms = SymbolTable::new();
    let opts = FblockOptions::default();
    let suite: &[(&str, &str, bool)] = &[
        (
            "intro nested tgd",
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
            false,
        ),
        (
            "classic group-by tgd",
            "forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> T(y,x2))))",
            false,
        ),
        (
            "vacuous nesting (existential unused)",
            "forall x1 (P(x1) -> exists y (forall x2 (Q(x2) -> U(x2,x2))))",
            true,
        ),
        (
            "plain s-t tgd",
            "A(x,y) -> exists z (B(x,z) & B(z,y))",
            true,
        ),
        (
            "nesting over a bounded inner domain (Example 3.4 style)",
            "forall x1 (C(x1) -> ((D(x1) -> E(x1))))",
            true,
        ),
        (
            "Example 4.15's nested tgd",
            "forall z (Qq(z) -> exists u (forall x,y (Ss(x,y) -> exists v Rr(v,u,x))))",
            false,
        ),
    ];
    let mut rows = Vec::new();
    for &(name, text, expect_glav) in suite {
        let m = NestedMapping::parse(&mut syms, &[text], &[]).unwrap();
        let d = glav_equivalent(&m, &mut syms, &opts).unwrap();
        assert_eq!(d.witness.is_some(), expect_glav, "{name}");
        let detail = match (&d.witness, &d.analysis.evidence) {
            (Some(w), _) => {
                // Double-check the witness independently.
                assert!(equivalent(&m, w, &mut syms, &ImpliesOptions::default()).unwrap());
                format!(
                    "witness: {}",
                    w.tgds
                        .iter()
                        .map(|t| t.display(&syms))
                        .collect::<Vec<_>>()
                        .join("  ;  ")
                )
            }
            (None, Some(e)) => format!("ladder: {:?}", e.ladder_sizes),
            _ => unreachable!("unbounded without evidence"),
        };
        rows.push((name, d.analysis.bounded, detail));
    }
    println!("Theorem 4.2 — \"is this nested GLAV mapping equivalent to a GLAV mapping?\"\n");
    for (name, bounded, detail) in rows {
        println!("  {name}");
        println!("    f-block size bounded: {bounded}");
        println!("    {detail}\n");
    }
    println!("all verdicts verified ✓");
}
