//! Regenerates **Figure 2**: the canonical source instance I_{p8} and the
//! canonical target instance J_{p8} of the 1-pattern p8 (Definition 3.7,
//! Example 3.8).

use ndl_bench::running_sigma;
use ndl_chase::NullFactory;
use ndl_core::prelude::*;
use ndl_reasoning::{canonical_instances, Pattern};

fn main() {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    let info = SkolemInfo::for_nested(&sigma, &mut syms);
    // p8 = σ1(σ2 σ3(σ4)).
    let mut p8 = Pattern::root_only(0);
    p8.add_child(0, 1);
    let s3 = p8.add_child(0, 2);
    p8.add_child(s3, 3);
    println!("pattern p8 = {}\n", p8.display());
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(&sigma, &info, &p8, &mut syms, &mut nulls);
    println!("I_p8 (canonical source): {}", pair.source.display(&syms));
    println!(
        "J_p8 (canonical target): {}",
        nulls.display_instance(&pair.target, &syms)
    );
    assert_eq!(
        pair.source.display(&syms),
        "S1(a1), S2(a2), S3(a1,a3), S4(a3,a4)"
    );
    assert_eq!(
        nulls.display_instance(&pair.target, &syms),
        "R2(f(a1),a2), R3(f(a1),a3), R4(g(a1,a3,a4),a4)"
    );
    println!("\nmatches the paper's Figure 2 ✓");
}
