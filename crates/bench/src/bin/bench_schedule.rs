//! Measures the stage-parallel fixpoint chase against the sequential
//! engine on structured workloads in the 10³–10⁴ fact range — wide
//! fan-out programs whose schedule packs many independent statements into
//! one stage (the parallel engine's best case) and chain/closure programs
//! whose schedule is width 1 (its overhead case). **Output identity is
//! asserted before any timing**: both engines must produce the same
//! instance, bit for bit (`NullId`s included), the same round count and
//! the same derived count, or the run fails. The results land in
//! `BENCH_schedule.json` (committed under `experiments/`; see
//! `docs/performance.md`).
//!
//! Worker count follows `NDL_CHASE_THREADS` (default: available
//! parallelism); on a single-CPU host the scheduled run degrades to the
//! sequential path plus schedule bookkeeping, so speedup ≈ 1.
//!
//! Pass an output directory as the first argument to write elsewhere
//! (e.g. `bench_schedule target/experiments` for a throwaway run).

use ndl_analyze::{parse_program, ChaseAnalysis, StmtAst};
use ndl_bench::ExperimentRecord;
use ndl_chase::{chase_fixpoint, chase_fixpoint_parallel, ChaseConfig, ChasePlan, NullFactory};
use ndl_core::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// Mean seconds per call over `reps` calls (plus one warm-up).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// `width` pairwise-independent existential statements over disjoint
/// relations, `seeds` facts each: the whole program schedules as one
/// stage of that width.
fn fanout(width: usize, seeds: usize) -> String {
    let mut text = String::new();
    for i in 0..width {
        let _ = writeln!(text, "S{i}(x,y) -> exists z T{i}(x,z)");
    }
    for i in 0..width {
        for j in 0..seeds {
            let _ = writeln!(text, "fact: S{i}(a{j}, b{j})");
        }
    }
    text
}

/// A `depth`-stage existential pipeline seeded with `seeds` facts: every
/// statement conflicts with its neighbor, so the schedule is width 1 and
/// the parallel engine pays pure bookkeeping.
fn pipeline_chain(depth: usize, seeds: usize) -> String {
    let mut text = String::new();
    for i in 0..depth {
        let _ = writeln!(text, "S{i}(x,y) -> exists z S{}(y,z)", i + 1);
    }
    for j in 0..seeds {
        let _ = writeln!(text, "fact: S0(c{j}, d{j})");
    }
    text
}

/// Parses a workload and derives source, grouped SO tgds and the
/// analyzer's plan — schedule attached — exactly as `ndl chase` does.
fn prepare(text: &str) -> (Instance, Vec<SoTgd>, ChasePlan) {
    let mut syms = SymbolTable::new();
    let (stmts, errs) = parse_program(&mut syms, text);
    assert!(errs.is_empty(), "workload programs parse");
    let analysis = ChaseAnalysis::analyze(&mut syms, &stmts);
    let mut source = Instance::new();
    for s in &stmts {
        if let Some(StmtAst::Fact(f)) = &s.ast {
            source.insert(f.clone());
        }
    }
    let tgds = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
    let plan = analysis.tgd_plan(Some(10_000_000));
    (source, tgds, plan)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "experiments".into());
    let threads = ChaseConfig::global().threads;
    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut record = ExperimentRecord::new(
        "BENCH_schedule",
        "stage-parallel vs sequential fixpoint chase on fan-out and chain workloads",
        "the schedule is a certificate: scheduled output is asserted bit-identical \
         (instance, NullIds, rounds, derived) before any timing is recorded",
    );

    let workloads: Vec<(String, String, u32)> = vec![
        ("fanout/8x150".into(), fanout(8, 150), 10),
        ("fanout/8x1200".into(), fanout(8, 1200), 5),
        ("fanout/16x600".into(), fanout(16, 600), 5),
        ("pipeline/10x900".into(), pipeline_chain(10, 900), 5),
    ];

    println!("stage-parallel fixpoint chase, {threads} worker thread(s) (mean ms per run)\n");
    println!("  workload          facts  derived  rounds  width    seq ms    par ms   speedup");
    let mut all_identical = true;
    for (name, text, reps) in &workloads {
        let (source, tgds, plan) = prepare(text);
        let width = plan.schedule.as_ref().map(|s| s.width()).unwrap_or(1);

        // Output identity first: a schedule that changes one NullId or
        // round count disqualifies the workload from timing at all.
        let mut n_seq = NullFactory::new();
        let seq = chase_fixpoint(&source, &tgds, &plan, &mut n_seq).expect("workload terminates");
        let mut n_par = NullFactory::new();
        let par =
            chase_fixpoint_parallel(&source, &tgds, &plan, &mut n_par).expect("schedule verifies");
        let identical = seq.instance == par.instance
            && seq.rounds == par.rounds
            && seq.derived == par.derived
            && n_seq.len() == n_par.len();
        assert!(
            identical,
            "{name}: scheduled output diverged from sequential"
        );
        all_identical &= identical;

        let seq_secs = time(*reps, || {
            let mut nulls = NullFactory::new();
            chase_fixpoint(&source, &tgds, &plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        });
        let par_secs = time(*reps, || {
            let mut nulls = NullFactory::new();
            chase_fixpoint_parallel(&source, &tgds, &plan, &mut nulls)
                .expect("workload terminates")
                .instance
                .len()
        });
        let speedup = seq_secs / par_secs;
        println!(
            "  {:<16} {:>6}  {:>7}  {:>6}  {:>5}  {:>8.3}  {:>8.3}  {:>7.2}x",
            name,
            seq.instance.len(),
            seq.derived,
            seq.rounds,
            width,
            seq_secs * 1e3,
            par_secs * 1e3,
            speedup
        );
        record.row(&[
            ("workload", name.clone()),
            ("facts", seq.instance.len().to_string()),
            ("derived", seq.derived.to_string()),
            ("rounds", seq.rounds.to_string()),
            ("schedule_width", width.to_string()),
            ("workers", threads.to_string()),
            ("identical", identical.to_string()),
            ("seq_ms", format!("{:.3}", seq_secs * 1e3)),
            ("par_ms", format!("{:.3}", par_secs * 1e3)),
            ("speedup", format!("{speedup:.2}")),
            ("threads_available", threads_available.to_string()),
        ]);
    }

    println!(
        "\n=> scheduled output bit-identical to sequential on every workload: {}",
        if all_identical { "pass" } else { "FAIL" }
    );
    record.passed = all_identical;
    let path = record
        .write_to(std::path::Path::new(&out_dir))
        .expect("record written");
    println!("record: {}", path.display());
    if !all_identical {
        std::process::exit(1);
    }
}
