//! Regenerates **Proposition 4.13**: τ = S(x,y) → R(f(x),f(y)) on
//! successor relations has unbounded f-block size but f-degree 2 — the
//! easy-to-use f-degree tool (Theorem 4.12) separating plain SO tgds from
//! nested GLAV mappings.

use ndl_bench::{successor_family, tau_413, ExperimentRecord};
use ndl_core::prelude::*;
use ndl_reasoning::{sweep_so, NotNestedReason};

fn main() {
    let mut syms = SymbolTable::new();
    let tau = tau_413(&mut syms);
    println!(
        "τ = {}   (Section 1 / Proposition 4.13)\n",
        tau.display(&syms)
    );
    let family = successor_family(&mut syms, false, &[4, 6, 8, 10, 12]);
    let report = sweep_so(&tau, &family);
    println!("  |I|   core f-block size   core f-degree");
    for p in &report.points {
        println!(
            "  {:3}   {:17}   {:13}",
            p.source_size, p.fblock_size, p.fdegree
        );
    }
    // Unbounded f-block size...
    assert!(report
        .points
        .windows(2)
        .all(|w| w[1].fblock_size > w[0].fblock_size));
    // ...with f-degree exactly 2 everywhere.
    assert!(report.points.iter().all(|p| p.fdegree == 2));
    assert_eq!(report.verdict, Some(NotNestedReason::FdegreeGap));
    println!("\n=> f-block size unbounded, f-degree ≡ 2:");
    println!("   τ is NOT logically equivalent to any nested GLAV mapping (Thm 4.12) ✓");

    // Persist the machine-readable record.
    let mut record = ExperimentRecord::new(
        "P4.13",
        "f-degree gap sweep for τ = S(x,y) → R(f(x),f(y)) on successor relations",
        "unbounded f-block size, f-degree 2 (Proposition 4.13)",
    );
    for p in &report.points {
        record.row(&[
            ("source_size", p.source_size.to_string()),
            ("fblock_size", p.fblock_size.to_string()),
            ("fdegree", p.fdegree.to_string()),
        ]);
    }
    match record.write_to(&ExperimentRecord::default_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
