//! Measures the semantic-analysis pipeline (parse → position/Skolem
//! graphs → termination class → cost bounds) on generated dependency
//! programs of 10¹ – 10³ statements, and records the throughput as
//! `BENCH_analyze.json` (committed under `experiments/`; see
//! `docs/performance.md`).
//!
//! Pass an output directory as the first argument to write elsewhere
//! (e.g. `bench_analyze target/experiments` for a throwaway run).

use ndl_analyze::ChaseAnalysis;
use ndl_bench::ExperimentRecord;
use ndl_core::prelude::*;
use ndl_gen::{random_program, ProgramGenOptions};
use std::path::Path;
use std::time::Instant;

/// Mean seconds per call over `reps` calls (plus one warm-up).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "experiments".into());
    let mut record = ExperimentRecord::new(
        "BENCH_analyze",
        "semantic analysis (graphs + termination class + cost bounds) on generated programs",
        "static analysis should stay near-linear up to 10^3-statement programs",
    );

    println!("semantic analysis throughput (mean ms per run)\n");
    println!("  statements   positions   class            ms    stmts/s");
    let mut ms_per_stmt = Vec::new();
    for &n in &[10usize, 100, 1_000] {
        let text = random_program(&ProgramGenOptions {
            statements: n,
            relations: (n / 4).max(4),
            seed: 42,
            ..Default::default()
        });
        let reps = if n <= 100 { 200 } else { 20 };
        let secs = time(reps, || {
            let mut syms = SymbolTable::new();
            let (a, _) = ChaseAnalysis::analyze_source(&mut syms, &text);
            a.termination.class
        });
        let mut syms = SymbolTable::new();
        let (analysis, _) = ChaseAnalysis::analyze_source(&mut syms, &text);
        let report = analysis.report(&syms);
        let ms = secs * 1e3;
        ms_per_stmt.push(ms / n as f64);
        println!(
            "  {:>10}   {:>9}   {:<14} {:>6.3}   {:>8.0}",
            n,
            report.positions,
            report.class,
            ms,
            n as f64 / secs
        );
        record.row(&[
            ("statements", n.to_string()),
            ("positions", report.positions.to_string()),
            ("clauses", report.clauses.to_string()),
            ("class", report.class.clone()),
            ("ms", format!("{ms:.3}")),
            ("stmts_per_sec", format!("{:.0}", n as f64 / secs)),
        ]);
    }

    // Acceptance: scaling stays near-linear — the per-statement cost at
    // 10³ statements is within 20x of the cost at 10 statements.
    let passed = ms_per_stmt[2] <= ms_per_stmt[0] * 20.0;
    println!(
        "\n=> near-linear scaling to 10^3 statements: {}",
        if passed { "yes ✓" } else { "NO" }
    );
    record.passed = passed;
    match record.write_to(Path::new(&out_dir)) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
