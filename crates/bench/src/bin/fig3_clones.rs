//! Regenerates **Figure 3**: a 3-pattern built from p8 by adding one clone
//! of the σ2 node and two clones of the σ4 node, with the facts of its
//! canonical source instance (Example 3.9).

use ndl_bench::running_sigma;
use ndl_chase::NullFactory;
use ndl_core::prelude::*;
use ndl_reasoning::{canonical_instances, Pattern};

fn main() {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    let info = SkolemInfo::for_nested(&sigma, &mut syms);
    let mut p = Pattern::root_only(0);
    let s2 = p.add_child(0, 1);
    let s3 = p.add_child(0, 2);
    let s4 = p.add_child(s3, 3);
    p.clone_subtree(s2);
    p.clone_subtree(s4);
    p.clone_subtree(s4);
    println!(
        "3-pattern (p8 + one σ2 clone + two σ4 clones): {}",
        p.display()
    );
    assert_eq!(p.max_clone_multiplicity(), 3);
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(&sigma, &info, &p, &mut syms, &mut nulls);
    println!("\ncanonical source instance ({} facts):", pair.source.len());
    println!("  {}", pair.source.display(&syms));
    println!("\ncanonical target instance ({} facts):", pair.target.len());
    println!("  {}", nulls.display_instance(&pair.target, &syms));
    // Figure 3's source: S1(a1); S2(a2), S2(a2'); S3(a1,a3);
    // S4(a3,a4), S4(a3,a4'), S4(a3,a4'').
    assert_eq!(pair.source.len(), 7);
    let s2_rel = syms.rel("S2");
    let s4_rel = syms.rel("S4");
    assert_eq!(pair.source.rel_len(s2_rel), 2);
    assert_eq!(pair.source.rel_len(s4_rel), 3);
    println!("\nmatches the paper's Figure 3 ✓ (7 source facts: 1×S1, 2×S2, 1×S3, 3×S4)");
}
