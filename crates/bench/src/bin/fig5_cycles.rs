//! Regenerates **Figure 5 / Example 4.8**: chase of directed cycles under
//! σ = S(x,y) → R(f(x),f(y)) ∧ R(f(y),f(x)); for odd n the core is the
//! full undirected n-cycle, and the bounded-anchor phenomenon: no proper
//! subinstance of I_n anchors a large block, but the *external* I₃ does.

use ndl_bench::sigma_48;
use ndl_chase::{chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_gen::{cycle, successor};
use ndl_hom::{core_of, f_block_size};

fn main() {
    let mut syms = SymbolTable::new();
    let sigma = sigma_48(&mut syms);
    println!("σ = {}\n", sigma.display(&syms));
    let s = syms.rel("S");

    println!("  n   |chase|  |core|  core f-block size   (odd cycles stay whole)");
    for n in [3usize, 5, 7, 9] {
        let source = cycle(&mut syms, s, n, &format!("n{n}_"));
        let mut nulls = NullFactory::new();
        let chased = chase_so(&source, &sigma, &mut nulls);
        let core = core_of(&chased);
        println!(
            "  {n}   {:7}  {:6}  {:18}",
            chased.len(),
            core.len(),
            f_block_size(&core)
        );
        assert_eq!(core.len(), 2 * n, "odd cycle core is the whole cycle");
    }
    for n in [4usize, 6, 8] {
        let source = cycle(&mut syms, s, n, &format!("e{n}_"));
        let mut nulls = NullFactory::new();
        let core = core_of(&chase_so(&source, &sigma, &mut nulls));
        assert_eq!(core.len(), 2, "even cycles collapse to one undirected edge");
    }
    println!("  (even cycles collapse to a single undirected edge ✓)");

    // The bounded-anchor counterexample: a proper subinstance of I₇ (a
    // directed path) yields only an edge, but the non-subinstance I₃
    // yields the triangle — which is how Definition 4.6 must be met.
    let path = successor(&mut syms, s, 7, "p_");
    let mut n1 = NullFactory::new();
    let path_core = core_of(&chase_so(&path, &sigma, &mut n1));
    let i3 = cycle(&mut syms, s, 3, "t_");
    let mut n2 = NullFactory::new();
    let tri_core = core_of(&chase_so(&i3, &sigma, &mut n2));
    println!("\nbounded anchor (Example 4.8):");
    println!(
        "  core(chase(path ⊂ I_7)) size = {} (just an undirected edge)",
        path_core.len()
    );
    println!(
        "  core(chase(I_3 ⊄ I_7))  size = {} (the triangle)",
        tri_core.len()
    );
    assert_eq!(path_core.len(), 2);
    assert_eq!(tri_core.len(), 6);
    println!("\nmatches Example 4.8 / Figure 5 ✓");
}
