//! Regenerates **Figure 6 / Example 4.14**: the Gaifman graph of facts
//! (a clique) and the Gaifman graph of nulls (containing a long simple
//! path) of core(chase(I, σ)) for σ = S(x,y) ∧ Q(z) → R(f(z,x),f(z,y),g(z))
//! on successor-plus-singleton sources — the case where only the
//! path-length tool (Theorem 4.16) separates σ from nested GLAV mappings.

use ndl_bench::{sigma_414, successor_family};
use ndl_chase::{chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_hom::{core_of, null_path_length, FactGraph, NullGraph};
use ndl_reasoning::{sweep_so, NotNestedReason};

fn main() {
    let mut syms = SymbolTable::new();
    let sigma = sigma_414(&mut syms);
    println!("σ = {}  (Example 4.14)\n", sigma.display(&syms));

    // Figure 6 is drawn for a successor relation of length 5.
    let family = successor_family(&mut syms, true, &[5]);
    let mut nulls = NullFactory::new();
    let core = core_of(&chase_so(&family[0], &sigma, &mut nulls));
    let fg = FactGraph::of(&core);
    let ng = NullGraph::of(&core);
    println!("core(chase(I, σ)) for successor length 5:");
    println!("  {}", nulls.display_instance(&core, &syms));
    println!(
        "\nGaifman graph of facts: {} nodes, max degree {}",
        fg.len(),
        fg.max_degree()
    );
    // Every f-block is a clique: each fact contains g(z), so all facts of
    // a block pairwise share it.
    assert_eq!(fg.max_degree(), fg.len() - 1, "the fact graph is a clique");
    println!("  => a clique (as in the top of Figure 6): f-degree grows with block size,");
    println!("     so Theorem 4.12 CANNOT separate σ from nested GLAV mappings.");
    println!(
        "\nGaifman graph of nulls: {} nodes, longest simple path = {}",
        ng.len(),
        null_path_length(&core, 64).unwrap()
    );
    assert!(
        null_path_length(&core, 64).unwrap() >= 4,
        "Figure 6 shows a path of length 4"
    );

    // The sweep: growing path length => not nested (Theorem 4.16).
    let family = successor_family(&mut syms, true, &[4, 6, 8]);
    let report = sweep_so(&sigma, &family);
    println!("\nsweep over successor lengths 4, 6, 8:");
    println!("  |I|   f-block  f-degree  path-length");
    for p in &report.points {
        println!(
            "  {:3}   {:7}  {:8}  {}",
            p.source_size,
            p.fblock_size,
            p.fdegree,
            p.path_length.map_or("-".into(), |l| l.to_string())
        );
    }
    assert_eq!(report.verdict, Some(NotNestedReason::UnboundedPathLength));
    println!("\n=> σ is NOT logically equivalent to any nested GLAV mapping (Thm 4.16) ✓");
}
