//! # ndl-bench
//!
//! Regenerators for every figure and worked example of the paper
//! (binaries under `src/bin`, one per artifact — see DESIGN.md §3 for the
//! index), plus Criterion performance benchmarks (under `benches/`).
//!
//! Shared fixtures live here so that the regenerators, benches and tests
//! all work from identical objects.

#![warn(missing_docs)]

pub mod baseline;
pub mod record;

pub use record::ExperimentRecord;

use ndl_core::prelude::*;

/// The running example σ of Section 2 (marked (*)), with parts σ1–σ4.
pub fn running_sigma(syms: &mut SymbolTable) -> NestedTgd {
    parse_nested_tgd(
        syms,
        "forall x1 (S1(x1) -> exists y1 (\
           forall x2 (S2(x2) -> R2(y1,x2)) & \
           forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
             forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
    )
    .expect("running example parses")
}

/// τ of Example 3.10: ∀x1 (S1(x1) → ∃y (∀x2 S2(x2) → R(x2,y))).
pub fn tau_310(syms: &mut SymbolTable) -> NestedTgd {
    parse_nested_tgd(
        syms,
        "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
    )
    .expect("τ parses")
}

/// The intro nested tgd, not equivalent to any finite set of s-t tgds.
pub fn intro_nested(syms: &mut SymbolTable) -> NestedMapping {
    NestedMapping::parse(
        syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .expect("intro tgd parses")
}

/// σ of Example 4.8: S(x,y) → R(f(x),f(y)) ∧ R(f(y),f(x)).
pub fn sigma_48(syms: &mut SymbolTable) -> SoTgd {
    parse_so_tgd(syms, "exists f . S(x,y) -> R(f(x),f(y)) & R(f(y),f(x))").expect("σ parses")
}

/// τ of Proposition 4.13 / Section 1: S(x,y) → R(f(x),f(y)).
pub fn tau_413(syms: &mut SymbolTable) -> SoTgd {
    parse_so_tgd(syms, "exists f . S(x,y) -> R(f(x),f(y))").expect("τ parses")
}

/// σ of Example 4.14: S(x,y) ∧ Q(z) → R(f(z,x),f(z,y),g(z)).
pub fn sigma_414(syms: &mut SymbolTable) -> SoTgd {
    parse_so_tgd(syms, "exists f,g . S(x,y) & Q(z) -> R(f(z,x),f(z,y),g(z))").expect("σ parses")
}

/// σ' of Example 4.15: S(x,y) ∧ Q(z) → R(f(z,x,y),g(z),x).
pub fn sigma_415(syms: &mut SymbolTable) -> SoTgd {
    parse_so_tgd(syms, "exists f,g . S(x,y) & Q(z) -> R(f(z,x,y),g(z),x)").expect("σ' parses")
}

/// The nested tgd displayed in Example 4.15, logically equivalent to σ'.
pub fn nested_415(syms: &mut SymbolTable) -> NestedMapping {
    NestedMapping::parse(
        syms,
        &["forall z (Q(z) -> exists u (forall x,y (S(x,y) -> exists v R(v,u,x))))"],
        &[],
    )
    .expect("nested 4.15 parses")
}

/// A successor family with an optional `Q(o)` singleton, shared by the
/// Section 4.2 sweeps.
pub fn successor_family(syms: &mut SymbolTable, with_q: bool, ns: &[usize]) -> Vec<Instance> {
    let s = syms.rel("S");
    let q = syms.rel("Q");
    ns.iter()
        .map(|&n| {
            let mut inst = ndl_gen::successor(syms, s, n, &format!("c{n}_"));
            if with_q {
                let o = Value::Const(syms.constant("o"));
                inst.insert(Fact::new(q, vec![o]));
            }
            inst
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_parse_and_validate() {
        let mut syms = SymbolTable::new();
        let mut schema = Schema::new();
        running_sigma(&mut syms).validate(&mut schema).unwrap();
        let mut schema = Schema::new();
        tau_310(&mut syms).validate(&mut schema).unwrap();
        assert!(!intro_nested(&mut syms).is_glav());
        assert!(sigma_48(&mut syms).is_plain());
        assert!(tau_413(&mut syms).is_plain());
        assert!(sigma_414(&mut syms).is_plain());
        assert!(sigma_415(&mut syms).is_plain());
        let _ = nested_415(&mut syms);
        assert_eq!(successor_family(&mut syms, true, &[4, 6]).len(), 2);
    }
}
