//! Machine-readable experiment records (JSON), so that figure regenerators
//! can persist what they measured next to what the paper states —
//! EXPERIMENTS.md is the human-readable digest of these records.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One experiment record: the paper artifact id, a description, and the
/// measured rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Artifact id, e.g. `"F4"` or `"P4.13"` (see DESIGN.md §3).
    pub id: String,
    /// What was regenerated.
    pub description: String,
    /// The paper's stated expectation, in prose.
    pub paper: String,
    /// Measured rows: free-form label/value pairs, one map per row.
    pub rows: Vec<Vec<(String, String)>>,
    /// Did all assertions pass?
    pub passed: bool,
}

impl ExperimentRecord {
    /// Creates a record.
    pub fn new(id: &str, description: &str, paper: &str) -> Self {
        ExperimentRecord {
            id: id.to_string(),
            description: description.to_string(),
            paper: paper.to_string(),
            rows: Vec::new(),
            passed: true,
        }
    }

    /// Appends a measured row.
    pub fn row(&mut self, pairs: &[(&str, String)]) -> &mut Self {
        self.rows.push(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        );
        self
    }

    /// The default output directory: `target/experiments`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/experiments")
    }

    /// Writes the record as pretty JSON to `<dir>/<id>.json`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(
            serde_json::to_string_pretty(self)
                .expect("serializes")
                .as_bytes(),
        )?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let mut r = ExperimentRecord::new("F4", "IMPLIES runs", "τ' ⊭ τ, τ'' ⊨ τ");
        r.row(&[("check", "τ' ⊨ τ".into()), ("holds", "false".into())]);
        r.row(&[("check", "τ'' ⊨ τ".into()), ("holds", "true".into())]);
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), 2);
        assert!(back.passed);
    }

    #[test]
    fn record_writes_to_disk() {
        let dir = std::env::temp_dir().join("ndl_record_test");
        let r = ExperimentRecord::new("TEST", "smoke", "n/a");
        let path = r.write_to(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"id\": \"TEST\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
