//! Conjunctive-query matching: enumerate the assignments under which a
//! conjunction of atoms holds in an instance, extending a partial binding.
//!
//! This is the trigger-finding primitive shared by all chase engines and by
//! the model checkers in `ndl-reasoning`.

use super::index::{TupleId, TupleIndex};
use ndl_core::btree::BTreeInstance as Instance;
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// A (partial) variable assignment.
pub type Binding = BTreeMap<VarId, Value>;

/// An indexed matcher over one instance: a shared [`TupleIndex`]
/// (`(rel, pos, value) → tuples`) accelerates trigger enumeration when the
/// same instance is matched against many times (every chase engine does
/// this — one triggering per body match, thousands of matches per chase).
///
/// One-shot callers can keep using the free functions, which scan.
pub struct Matcher<'a> {
    instance: &'a Instance,
    index: TupleIndex,
}

impl<'a> Matcher<'a> {
    /// Builds the index (O(total tuple cells)).
    pub fn new(instance: &'a Instance) -> Self {
        Matcher {
            instance,
            index: TupleIndex::from_instance(instance),
        }
    }

    /// Wraps an already-built index of `instance`, avoiding a rebuild when
    /// the caller (e.g. the homomorphism engine) extracted one earlier.
    pub fn from_index(instance: &'a Instance, index: TupleIndex) -> Self {
        debug_assert_eq!(index.len(), instance.len());
        Matcher { instance, index }
    }

    /// The instance this matcher indexes.
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// Consumes the matcher, handing the index back for reuse.
    pub fn into_index(self) -> TupleIndex {
        self.index
    }

    /// Enumerates all extensions of `partial` satisfying every atom.
    pub fn all_matches(&self, atoms: &[Atom], partial: &Binding) -> Vec<Binding> {
        let mut results = Vec::new();
        let mut binding = partial.clone();
        let mut remaining: Vec<&Atom> = atoms.iter().collect();
        self.match_indexed(&mut remaining, &mut binding, &mut results);
        results
    }

    /// Recursive join with dynamic atom selection: always match next the
    /// atom with the smallest candidate list under the current binding.
    fn match_indexed(
        &self,
        remaining: &mut Vec<&Atom>,
        binding: &mut Binding,
        out: &mut Vec<Binding>,
    ) {
        if remaining.is_empty() {
            out.push(binding.clone());
            return;
        }
        // Pick the most selective atom.
        let (best, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, atom)| (i, self.candidate_count(atom, binding)))
            .min_by_key(|&(_, c)| c)
            .expect("nonempty");
        let atom = remaining.swap_remove(best);
        for &id in self.candidates(atom, binding) {
            if !self.index.is_live(id) {
                continue;
            }
            if let Some(newly) = try_extend(atom, self.index.tuple(id), binding) {
                self.match_indexed(remaining, binding, out);
                for v in newly {
                    binding.remove(&v);
                }
            }
        }
        // Restore the removed atom (order within `remaining` is irrelevant).
        remaining.push(atom);
    }

    fn candidate_count(&self, atom: &Atom, binding: &Binding) -> usize {
        self.candidates(atom, binding).len()
    }

    /// The tightest available candidate list: the shortest posting list
    /// over the atom's bound positions, or the whole relation if none is
    /// bound.
    fn candidates(&self, atom: &Atom, binding: &Binding) -> &[TupleId] {
        let mut best: Option<&[TupleId]> = None;
        for (pos, var) in atom.args.iter().enumerate() {
            if let Some(&val) = binding.get(var) {
                let ts = self.index.posting(atom.rel, pos as u32, val);
                if ts.is_empty() {
                    return &[]; // no tuple matches
                }
                if best.is_none_or(|b: &[TupleId]| ts.len() < b.len()) {
                    best = Some(ts);
                }
            }
        }
        best.unwrap_or_else(|| self.index.rel_ids(atom.rel))
    }
}

/// Enumerates all extensions of `partial` under which every atom of `atoms`
/// holds in `instance`. Atoms are matched in an order that prefers atoms
/// with many already-bound variables (cheap greedy join ordering).
pub fn all_matches(instance: &Instance, atoms: &[Atom], partial: &Binding) -> Vec<Binding> {
    let mut order: Vec<&Atom> = atoms.iter().collect();
    let mut results = Vec::new();
    let mut binding = partial.clone();
    // Greedy static order: most constants-bound-first is dynamic; a simple
    // heuristic is to sort by (unbound var count under the initial binding,
    // relation size), which already avoids the worst cartesian blowups.
    order.sort_by_key(|a| {
        let unbound = a
            .args
            .iter()
            .filter(|v| !partial.contains_key(v))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        (unbound, instance.rel_len(a.rel))
    });
    match_rec(instance, &order, 0, &mut binding, &mut results);
    results
}

/// Does at least one extension of `partial` satisfy all atoms?
pub fn has_match(instance: &Instance, atoms: &[Atom], partial: &Binding) -> bool {
    // Cheap short-circuiting variant.
    let mut order: Vec<&Atom> = atoms.iter().collect();
    order.sort_by_key(|a| instance.rel_len(a.rel));
    let mut binding = partial.clone();
    exists_rec(instance, &order, 0, &mut binding)
}

fn match_rec(
    instance: &Instance,
    atoms: &[&Atom],
    i: usize,
    binding: &mut Binding,
    out: &mut Vec<Binding>,
) {
    if i == atoms.len() {
        out.push(binding.clone());
        return;
    }
    let atom = atoms[i];
    for tuple in instance.tuples(atom.rel) {
        if let Some(newly_bound) = try_extend(atom, tuple, binding) {
            match_rec(instance, atoms, i + 1, binding, out);
            for v in newly_bound {
                binding.remove(&v);
            }
        }
    }
}

fn exists_rec(instance: &Instance, atoms: &[&Atom], i: usize, binding: &mut Binding) -> bool {
    if i == atoms.len() {
        return true;
    }
    let atom = atoms[i];
    for tuple in instance.tuples(atom.rel) {
        if let Some(newly_bound) = try_extend(atom, tuple, binding) {
            if exists_rec(instance, atoms, i + 1, binding) {
                for v in newly_bound {
                    binding.remove(&v);
                }
                return true;
            }
            for v in newly_bound {
                binding.remove(&v);
            }
        }
    }
    false
}

/// Tries to unify `atom` with `tuple` under `binding`. On success, extends
/// `binding` in place and returns the variables newly bound (for rollback);
/// on failure, leaves `binding` untouched and returns `None`.
fn try_extend(atom: &Atom, tuple: &[Value], binding: &mut Binding) -> Option<Vec<VarId>> {
    debug_assert_eq!(atom.args.len(), tuple.len());
    let mut newly = Vec::new();
    for (&var, &val) in atom.args.iter().zip(tuple.iter()) {
        match binding.get(&var) {
            Some(&bound) => {
                if bound != val {
                    for v in newly {
                        binding.remove(&v);
                    }
                    return None;
                }
            }
            None => {
                binding.insert(var, val);
                newly.push(var);
            }
        }
    }
    Some(newly)
}
