//! Oblivious fixpoint chase for (recursive) SO-tgd programs.
//!
//! Unlike the single-pass engines in `ndl_chase`'s `so` and `nested` —
//! which fire every dependency once against a *fixed* source and are
//! therefore trivially terminating — this engine chases a **combined**
//! instance to a fixpoint: derived facts are added back to the instance and
//! may re-trigger any clause. That is the semantics under which the
//! termination classes of the static analyzer are meaningful: the chase of
//! a *richly acyclic* program always reaches a fixpoint, a weakly-acyclic
//! but not richly acyclic program may diverge obliviously, and a cyclic
//! program can diverge outright.
//!
//! The engine therefore takes a [`ChasePlan`]: it refuses programs the plan
//! marks non-terminating (unless a step budget is supplied), fires clauses
//! in the planned statement order, and pre-sizes its trigger index from the
//! plan's chase-size degree.
//!
//! The engine is instrumented through [`ChaseObserver`]
//! ([`chase_fixpoint_with`]): triggers examined vs. fired per statement,
//! facts derived, dedup hits, nulls interned, and per-round /
//! per-statement wall time. [`chase_fixpoint`] runs with the no-op sink,
//! which monomorphizes the instrumentation away.

use super::index::TupleIndex;
use super::trigger::{Binding, Matcher};
use ndl_chase::{ChasePlan, NullFactory};
use ndl_core::btree::BTreeInstance as Instance;
use ndl_core::prelude::*;
use ndl_obs::{ChaseObserver, NoopObserver, StmtRound};
use std::fmt;
use std::time::Instant;

/// How far a cut-off chase got before the budget ran out — carried inside
/// [`FixpointError::BudgetExhausted`] so callers (and `ndl chase --stats`)
/// can report partial progress instead of losing it on the error path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointProgress {
    /// Rounds started (the cut-off round included).
    pub rounds: usize,
    /// Facts derived beyond the source, the uncommitted fresh facts of the
    /// cut-off round included — this is exactly the count the budget
    /// bounds, so `derived > budget` by exactly one on cutoff.
    pub derived: usize,
}

/// Why a fixpoint chase did not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixpointError {
    /// The plan says the chase is not guaranteed to terminate and no step
    /// budget was provided, so the engine refused to start. Carries the
    /// analyzer's diagnosis (the NDL020/NDL021 finding) when available.
    NonTerminating {
        /// The analyzer's explanation, e.g. the special-edge cycle.
        diagnosis: Option<String>,
    },
    /// The chase derived more than `budget` new facts without reaching a
    /// fixpoint and was cut off.
    BudgetExhausted {
        /// The step budget that was exhausted.
        budget: usize,
        /// The analyzer's explanation, when available.
        diagnosis: Option<String>,
        /// How far the chase got before the cutoff.
        progress: FixpointProgress,
    },
}

impl fmt::Display for FixpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpointError::NonTerminating { diagnosis } => {
                write!(f, "chase is not guaranteed to terminate")?;
                if let Some(d) = diagnosis {
                    write!(f, ": {d}")?;
                }
                Ok(())
            }
            FixpointError::BudgetExhausted {
                budget,
                diagnosis,
                progress,
            } => {
                write!(
                    f,
                    "chase exhausted its step budget of {budget} facts \
                     after deriving {} facts in {} rounds",
                    progress.derived, progress.rounds
                )?;
                if let Some(d) = diagnosis {
                    write!(f, " ({d})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FixpointError {}

/// The result of a completed fixpoint chase.
#[derive(Clone, Debug)]
pub struct FixpointChase {
    /// The combined instance at fixpoint (source facts included).
    pub instance: Instance,
    /// Number of rounds until the fixpoint (the final, empty round
    /// included).
    pub rounds: usize,
    /// Number of facts derived beyond the source.
    pub derived: usize,
}

/// Chases `source` with the program `tgds` (one SO tgd per statement) to a
/// fixpoint, firing statements in the order given by `plan` and allocating
/// nulls in `nulls`. Equivalent to [`chase_fixpoint_with`] under the no-op
/// observer.
///
/// Returns an error without chasing if `plan` marks the program
/// non-terminating and provides no step budget; returns
/// [`FixpointError::BudgetExhausted`] if a budget is set and more than that
/// many facts are derived.
///
/// # Panics
/// Panics if `source` is not ground (nulls created *during* the chase are
/// fine — they are resolved through `nulls`).
pub fn chase_fixpoint(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
) -> std::result::Result<FixpointChase, FixpointError> {
    chase_fixpoint_with(source, tgds, plan, nulls, &mut NoopObserver)
}

/// [`chase_fixpoint`] reporting its work to a [`ChaseObserver`]: one
/// [`StmtRound`] aggregate per statement per round, round boundaries with
/// commit counts, and a final outcome event (also emitted on refusal and
/// budget exhaustion, so stats survive the error paths).
pub fn chase_fixpoint_with<O: ChaseObserver>(
    source: &Instance,
    tgds: &[SoTgd],
    plan: &ChasePlan,
    nulls: &mut NullFactory,
    obs: &mut O,
) -> std::result::Result<FixpointChase, FixpointError> {
    assert!(source.is_ground(), "source instance must be ground");
    obs.chase_start(tgds.len(), source.len());
    if !plan.guaranteed_terminating && plan.step_budget.is_none() {
        obs.chase_end(0, 0, "refused");
        return Err(FixpointError::NonTerminating {
            diagnosis: plan.diagnosis.clone(),
        });
    }

    let mut instance = source.clone();
    // Pre-size the trigger index from the plan's chase-size prediction; the
    // index then grows incrementally instead of being rebuilt per round.
    let cap = plan.predicted_tuples(source.len());
    let mut index = TupleIndex::with_capacity(cap, cap.saturating_mul(2));
    for f in instance.facts() {
        index.insert(f.rel, f.args);
    }

    let order = plan.firing_order(tgds.len());
    let mut rounds = 0usize;
    let mut derived = 0usize;
    loop {
        rounds += 1;
        obs.round_start(rounds);
        let round_t = O::ENABLED.then(Instant::now);
        // Fresh facts of this round, deduplicated against the instance and
        // each other as they are produced, so the budget bounds the *work*
        // of a round — one wide join must not materialize millions of
        // facts before an after-the-fact check sees them.
        let mut fresh: std::collections::BTreeSet<Fact> = std::collections::BTreeSet::new();
        let matcher = Matcher::from_index(&instance, index);
        for &si in &order {
            let mut sr = StmtRound {
                round: rounds,
                stmt: si,
                ..StmtRound::default()
            };
            let stmt_t = O::ENABLED.then(Instant::now);
            let nulls_before = nulls.len();
            for clause in &tgds[si].clauses {
                for binding in matcher.all_matches(&clause.body, &Binding::new()) {
                    sr.examined += 1;
                    // Equalities gate the clause and must be side-effect
                    // free: they are evaluated through non-interning probes
                    // so a failing equality never allocates Skolem nulls
                    // for a clause that does not fire.
                    let eq_ok = clause.equalities.iter().all(|(l, r)| {
                        probe_term(l, &binding, nulls) == probe_term(r, &binding, nulls)
                    });
                    if !eq_ok {
                        continue;
                    }
                    sr.fired += 1;
                    for ta in &clause.head {
                        let args: Vec<Value> = ta
                            .args
                            .iter()
                            .map(|t| resolve_value(t, &binding, nulls))
                            .collect();
                        let fact = Fact::new(ta.rel, args);
                        if !instance.contains(&fact) && fresh.insert(fact) {
                            sr.derived += 1;
                            if let Some(budget) = plan.step_budget {
                                if derived + fresh.len() > budget {
                                    // Keep the partial aggregates: flush the
                                    // cut-off statement's counters and close
                                    // the run before erroring out.
                                    sr.nulls_interned = (nulls.len() - nulls_before) as u64;
                                    if let Some(t) = stmt_t {
                                        sr.elapsed_ns = t.elapsed().as_nanos() as u64;
                                    }
                                    obs.statement(&sr);
                                    let cut = derived + fresh.len();
                                    obs.round_end(
                                        rounds,
                                        fresh.len() as u64,
                                        round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
                                    );
                                    obs.chase_end(rounds, cut as u64, "budget-exhausted");
                                    return Err(FixpointError::BudgetExhausted {
                                        budget,
                                        diagnosis: plan.diagnosis.clone(),
                                        progress: FixpointProgress {
                                            rounds,
                                            derived: cut,
                                        },
                                    });
                                }
                            }
                        } else {
                            sr.dedup_hits += 1;
                        }
                    }
                }
            }
            sr.nulls_interned = (nulls.len() - nulls_before) as u64;
            if let Some(t) = stmt_t {
                sr.elapsed_ns = t.elapsed().as_nanos() as u64;
            }
            obs.statement(&sr);
        }
        index = matcher.into_index();

        let mut added = 0u64;
        for f in fresh {
            if index.insert(f.rel, f.args.clone()) {
                instance.insert(f);
                added += 1;
                derived += 1;
            }
        }
        obs.round_end(
            rounds,
            added,
            round_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
        if added == 0 {
            break;
        }
    }
    obs.chase_end(rounds, derived as u64, "fixpoint");
    Ok(FixpointChase {
        instance,
        rounds,
        derived,
    })
}

/// Grounds a term under a binding directly to a value: variables take
/// their bound value, function applications intern a null for the
/// application over their argument *values* ([`NullFactory::null_for_app`]).
/// The Herbrand interpretation stays consistent across rounds (re-deriving
/// the same term yields the same null) without ever expanding a null into
/// its structural Skolem term — nested terms grow exponentially in rank,
/// the hash-consed values do not.
fn resolve_value(t: &Term, binding: &Binding, nulls: &mut NullFactory) -> Value {
    match t {
        Term::Var(v) => *binding
            .get(v)
            .expect("unbound variable while grounding term"),
        Term::App(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| resolve_value(a, binding, nulls))
                .collect();
            Value::Null(nulls.null_for_app(*f, vals))
        }
    }
}

/// The canonical, non-interning form of a ground term under a binding:
/// subterms already interned by `nulls` collapse (bottom-up) to their null
/// values, un-interned applications stay structural. Within one factory
/// state, two ground terms are equal in the Herbrand interpretation iff
/// their probes are equal — interned subtrees meet as identical `Value`s,
/// un-interned ones as identical structure, and the two kinds never
/// coincide (an interned null's defining application is interned, so a
/// structurally equal term would have collapsed too).
#[derive(Clone, Debug, PartialEq, Eq)]
enum ProbeTerm {
    /// A constant, or an application already interned as a null.
    Value(Value),
    /// An application not (yet) interned.
    App(FuncId, Vec<ProbeTerm>),
}

fn probe_term(t: &Term, binding: &Binding, nulls: &NullFactory) -> ProbeTerm {
    match t {
        Term::Var(v) => {
            ProbeTerm::Value(*binding.get(v).expect("unbound variable while probing term"))
        }
        Term::App(f, args) => {
            let probes: Vec<ProbeTerm> =
                args.iter().map(|a| probe_term(a, binding, nulls)).collect();
            let vals: Option<Vec<Value>> = probes
                .iter()
                .map(|p| match p {
                    ProbeTerm::Value(v) => Some(*v),
                    ProbeTerm::App(..) => None,
                })
                .collect();
            if let Some(vals) = vals {
                if let Some(id) = nulls.lookup_app(*f, &vals) {
                    return ProbeTerm::Value(Value::Null(id));
                }
            }
            ProbeTerm::App(*f, probes)
        }
    }
}
