//! Shared tuple index: the `(rel, pos, value) → tuples` hash index that
//! accelerates every matching problem in the workspace — trigger
//! enumeration in `ndl-chase` and homomorphism/core search in `ndl-hom`.
//!
//! The index is **updatable in place**: facts can be inserted and removed
//! without rebuilding, which the incremental core engine relies on (each
//! retraction removes a handful of facts from a large instance). Removal
//! marks entries dead and filters them at read time; posting lists keep
//! their build order, which is the deterministic `Instance` iteration
//! order — all consumers therefore enumerate candidates in the same order
//! as a sorted full scan would, keeping results reproducible.
//!
//! Hashing uses a hand-rolled Fx-style multiply-xor hasher ([`FxHasher`]):
//! the keys are tiny (ids and small tuples), where SipHash's
//! per-finalization cost dominates; Fx is the standard fix (rustc uses the
//! same scheme) and keeps the workspace free of external dependencies.

use ndl_core::btree::BTreeInstance as Instance;
use ndl_core::prelude::{Fact, RelId, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic hasher for small keys (ids, short tuples),
/// after the `rustc-hash` / FxHash scheme: rotate, xor, multiply.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The odd constant of the Fx multiply step (π's fractional bits).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

impl std::fmt::Debug for FxHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FxHasher({:#x})", self.hash)
    }
}

/// Builds [`FxHasher`]s for the std hash containers.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` keyed with the fast [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with the fast [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Dense id of a tuple inside a [`TupleIndex`]. Ids are assigned in
/// insertion order and never reused, so iterating a posting list visits
/// tuples in the deterministic order they were indexed.
pub type TupleId = u32;

/// An updatable `(rel, pos, value) → tuples` hash index over a set of
/// facts.
///
/// Supports the two access paths every search engine here needs:
/// - [`TupleIndex::posting`]: all tuples with `value` at `pos` of `rel`
///   (the candidate set for a partially bound atom or fact), and
/// - [`TupleIndex::rel_ids`]: all tuples of a relation (the scan fallback
///   when nothing is bound).
///
/// Removal is O(1) (a dead mark); posting lists are filtered through
/// [`TupleIndex::is_live`] at read time.
#[derive(Clone, Debug, Default)]
pub struct TupleIndex {
    /// Tuple store; `TupleId`s index into it. Dead entries stay in place.
    entries: Vec<(RelId, Vec<Value>)>,
    /// Liveness flags parallel to `entries`.
    live_flags: Vec<bool>,
    /// `(rel, pos, value) → ids` posting lists, in insertion order.
    posting: FxHashMap<(RelId, u32, Value), Vec<TupleId>>,
    /// `rel → ids` in insertion order (deterministic relation iteration).
    by_rel: BTreeMap<RelId, Vec<TupleId>>,
    /// `rel → live tuple count`.
    live_by_rel: BTreeMap<RelId, usize>,
    /// Exact-fact lookup for containment and removal.
    id_of: FxHashMap<(RelId, Vec<Value>), TupleId>,
    /// Total live tuples.
    live: usize,
}

impl TupleIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index pre-sized for roughly `tuples` facts of
    /// `cells` total tuple cells — the chase planner passes its predicted
    /// chase size here so hot loops avoid rehash-and-grow cycles.
    pub fn with_capacity(tuples: usize, cells: usize) -> Self {
        TupleIndex {
            entries: Vec::with_capacity(tuples),
            live_flags: Vec::with_capacity(tuples),
            posting: FxHashMap::with_capacity_and_hasher(cells, FxBuildHasher::default()),
            id_of: FxHashMap::with_capacity_and_hasher(tuples, FxBuildHasher::default()),
            ..Self::default()
        }
    }

    /// Builds the index of an instance (O(total tuple cells)), indexing
    /// facts in the instance's deterministic iteration order.
    pub fn from_instance(inst: &Instance) -> Self {
        let mut idx = TupleIndex::new();
        for rel in inst.active_relations() {
            for tuple in inst.tuples(rel) {
                idx.insert(rel, tuple.clone());
            }
        }
        idx
    }

    /// Inserts a tuple; returns `true` if it was not already live.
    pub fn insert(&mut self, rel: RelId, args: Vec<Value>) -> bool {
        if self.id_of.contains_key(&(rel, args.clone())) {
            return false;
        }
        let id = self.entries.len() as TupleId;
        for (pos, &v) in args.iter().enumerate() {
            self.posting
                .entry((rel, pos as u32, v))
                .or_default()
                .push(id);
        }
        self.by_rel.entry(rel).or_default().push(id);
        *self.live_by_rel.entry(rel).or_default() += 1;
        self.id_of.insert((rel, args.clone()), id);
        self.entries.push((rel, args));
        self.live_flags.push(true);
        self.live += 1;
        true
    }

    /// Removes a fact; returns `true` if it was live. The entry is marked
    /// dead; posting lists are filtered lazily.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        match self.id_of.remove(&(fact.rel, fact.args.clone())) {
            None => false,
            Some(id) => {
                self.live_flags[id as usize] = false;
                self.live -= 1;
                *self.live_by_rel.get_mut(&fact.rel).expect("live rel") -= 1;
                true
            }
        }
    }

    /// Is the fact live in the index?
    pub fn contains(&self, rel: RelId, args: &[Value]) -> bool {
        // Keyed lookup without allocating: scan the shortest posting.
        match args.first() {
            None => self
                .by_rel
                .get(&rel)
                .is_some_and(|ids| ids.iter().any(|&id| self.is_live(id))),
            Some(&v) => self.posting.get(&(rel, 0, v)).is_some_and(|ids| {
                ids.iter()
                    .any(|&id| self.is_live(id) && self.tuple(id) == args)
            }),
        }
    }

    /// Total number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the index empty (no live tuples)?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of live tuples of `rel`.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.live_by_rel.get(&rel).copied().unwrap_or(0)
    }

    /// Is the tuple id live?
    #[inline]
    pub fn is_live(&self, id: TupleId) -> bool {
        self.live_flags[id as usize]
    }

    /// The tuple stored under `id` (live or dead).
    #[inline]
    pub fn tuple(&self, id: TupleId) -> &[Value] {
        &self.entries[id as usize].1
    }

    /// The posting list of `(rel, pos, value)`: ids of tuples with `value`
    /// at position `pos`, in insertion order. May contain dead ids — filter
    /// with [`TupleIndex::is_live`]. Empty when no tuple matches.
    pub fn posting(&self, rel: RelId, pos: u32, value: Value) -> &[TupleId] {
        self.posting
            .get(&(rel, pos, value))
            .map_or(&[][..], Vec::as_slice)
    }

    /// Upper bound on the length of [`TupleIndex::posting`] (counts dead
    /// ids too) — the selectivity estimate used for join/MRV ordering.
    pub fn posting_len(&self, rel: RelId, pos: u32, value: Value) -> usize {
        self.posting.get(&(rel, pos, value)).map_or(0, Vec::len)
    }

    /// All tuple ids of `rel` in insertion order (may contain dead ids).
    pub fn rel_ids(&self, rel: RelId) -> &[TupleId] {
        self.by_rel.get(&rel).map_or(&[][..], Vec::as_slice)
    }

    /// The live relations (those with at least one live tuple).
    pub fn active_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.live_by_rel
            .iter()
            .filter(|&(_, &n)| n > 0)
            .map(|(&rel, _)| rel)
    }

    /// Rebuilds an [`Instance`] from the live tuples.
    pub fn to_instance(&self) -> Instance {
        let mut inst = Instance::new();
        for (&rel, ids) in &self.by_rel {
            for &id in ids {
                if self.is_live(id) {
                    inst.insert_tuple(rel, self.tuple(id).to_vec());
                }
            }
        }
        inst
    }
}
