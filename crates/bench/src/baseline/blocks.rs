//! Fact blocks (f-blocks) of a target instance: the connected components of
//! the Gaifman graph of facts (paper, Section 2), and the structural
//! measures built on them — **f-block size** and **f-degree** (Section 4).

use super::graph::FactGraph;
use ndl_core::btree::BTreeInstance as Instance;
use ndl_core::prelude::*;

/// The f-blocks of `inst`: connected components of its fact graph, as
/// subinstances. Ground facts form singleton blocks.
pub fn f_blocks(inst: &Instance) -> Vec<Instance> {
    let g = FactGraph::of(inst);
    g.components()
        .into_iter()
        .map(|comp| Instance::from_facts(comp.into_iter().map(|i| g.facts[i].clone())))
        .collect()
}

/// The f-block size of `inst`: the maximum cardinality of its f-blocks
/// (0 for the empty instance).
pub fn f_block_size(inst: &Instance) -> usize {
    let g = FactGraph::of(inst);
    g.components()
        .into_iter()
        .map(|c| c.len())
        .max()
        .unwrap_or(0)
}

/// The f-degree of `inst`: the maximum degree of its fact graph
/// (Section 4.2). The degree of a fact is the number of facts it shares a
/// null with.
pub fn f_degree(inst: &Instance) -> usize {
    FactGraph::of(inst).max_degree()
}

/// The f-block of `inst` containing the null `n`, if any.
pub fn block_of_null(inst: &Instance, n: NullId) -> Option<Instance> {
    f_blocks(inst).into_iter().find(|b| b.nulls().contains(&n))
}
