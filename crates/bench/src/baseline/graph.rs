//! The two Gaifman graphs of a target instance (paper, Sections 2 and 4.2):
//!
//! - the **Gaifman graph of facts** (fact graph): nodes are facts, with an
//!   edge between two facts that share a null;
//! - the **Gaifman graph of nulls** (null graph): nodes are nulls, with an
//!   edge between two nulls that occur in the same fact.

use ndl_core::btree::BTreeInstance as Instance;
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// The Gaifman graph of facts of an instance.
#[derive(Clone, Debug)]
pub struct FactGraph {
    /// The facts (graph nodes), in the instance's deterministic order.
    pub facts: Vec<Fact>,
    /// Adjacency lists over fact indexes (no self-loops, deduplicated).
    pub adj: Vec<Vec<usize>>,
}

impl FactGraph {
    /// Builds the fact graph of `inst`.
    pub fn of(inst: &Instance) -> FactGraph {
        let facts: Vec<Fact> = inst.facts().collect();
        let mut by_null: BTreeMap<NullId, Vec<usize>> = BTreeMap::new();
        for (i, f) in facts.iter().enumerate() {
            for n in f.nulls() {
                by_null.entry(n).or_default().push(i);
            }
        }
        let mut adj = vec![std::collections::BTreeSet::new(); facts.len()];
        for members in by_null.values() {
            for (k, &i) in members.iter().enumerate() {
                for &j in &members[k + 1..] {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
        FactGraph {
            facts,
            adj: adj.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The maximum node degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Connected components as lists of fact indexes (each component is an
    /// f-block; isolated facts form singleton blocks).
    pub fn components(&self) -> Vec<Vec<usize>> {
        components_of(&self.adj)
    }

    /// Is the instance connected (paper, Section 2)?
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }
}

/// The Gaifman graph of nulls of an instance.
#[derive(Clone, Debug)]
pub struct NullGraph {
    /// The nulls (graph nodes), ordered.
    pub nulls: Vec<NullId>,
    /// Adjacency lists over null indexes (no self-loops, deduplicated).
    pub adj: Vec<Vec<usize>>,
}

impl NullGraph {
    /// Builds the null graph of `inst`.
    pub fn of(inst: &Instance) -> NullGraph {
        let nulls: Vec<NullId> = inst.nulls().into_iter().collect();
        let index: BTreeMap<NullId, usize> =
            nulls.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut adj = vec![std::collections::BTreeSet::new(); nulls.len()];
        for fact in inst.facts() {
            let fact_nulls: Vec<usize> = fact.nulls().into_iter().map(|n| index[&n]).collect();
            for (k, &i) in fact_nulls.iter().enumerate() {
                for &j in &fact_nulls[k + 1..] {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
        NullGraph {
            nulls,
            adj: adj.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// The maximum node degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Is every pair of distinct nulls adjacent (a clique)?
    pub fn is_clique(&self) -> bool {
        let n = self.len();
        self.adj.iter().all(|a| a.len() == n - 1) || n <= 1
    }
}

impl FactGraph {
    /// Renders the fact graph in Graphviz DOT format (undirected), with
    /// facts as node labels — used by the Figure 6/7 tooling.
    pub fn to_dot(&self, syms: &SymbolTable) -> String {
        let mut out = String::from("graph fact_graph {\n  node [shape=box];\n");
        for (i, f) in self.facts.iter().enumerate() {
            out.push_str(&format!("  n{i} [label=\"{}\"];\n", f.display(syms)));
        }
        for (i, nbrs) in self.adj.iter().enumerate() {
            for &j in nbrs {
                if i < j {
                    out.push_str(&format!("  n{i} -- n{j};\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl NullGraph {
    /// Renders the null graph in Graphviz DOT format (undirected).
    pub fn to_dot(&self, syms: &SymbolTable) -> String {
        let _ = syms;
        let mut out = String::from("graph null_graph {\n");
        for (i, n) in self.nulls.iter().enumerate() {
            out.push_str(&format!("  n{i} [label=\"_N{}\"];\n", n.0));
        }
        for (i, nbrs) in self.adj.iter().enumerate() {
            for &j in nbrs {
                if i < j {
                    out.push_str(&format!("  n{i} -- n{j};\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The bipartite incidence graph of a target instance: fact nodes on one
/// side, null nodes on the other, an edge when the null occurs in the fact.
///
/// Viewing facts as hyperedges over their nulls, a cycle in this graph is
/// exactly a Berge cycle of the hypergraph: either two facts sharing two
/// nulls, or a longer alternating fact/null cycle. A single fact with many
/// nulls is a star — acyclic — which makes this strictly finer than asking
/// for a cycle in [`NullGraph`] (where any 3-null fact forms a triangle).
#[derive(Clone, Debug)]
pub struct IncidenceGraph {
    /// The facts (nodes `0..facts.len()`).
    pub facts: Vec<Fact>,
    /// The nulls (nodes `facts.len()..`), ordered.
    pub nulls: Vec<NullId>,
    /// Adjacency lists over the combined node indexing.
    pub adj: Vec<Vec<usize>>,
}

impl IncidenceGraph {
    /// Builds the incidence graph of `inst`.
    pub fn of(inst: &Instance) -> IncidenceGraph {
        let facts: Vec<Fact> = inst.facts().collect();
        let nulls: Vec<NullId> = inst.nulls().into_iter().collect();
        let base = facts.len();
        let index: BTreeMap<NullId, usize> = nulls
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, base + i))
            .collect();
        let mut adj = vec![Vec::new(); base + nulls.len()];
        for (i, f) in facts.iter().enumerate() {
            let mut seen = std::collections::BTreeSet::new();
            for n in f.nulls() {
                if seen.insert(n) {
                    let j = index[&n];
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        IncidenceGraph { facts, nulls, adj }
    }

    /// Connected components over the combined fact/null node indexing.
    pub fn components(&self) -> Vec<Vec<usize>> {
        components_of(&self.adj)
    }

    /// The nulls of every component containing a cycle (a connected
    /// component with `edges >= nodes`). Empty iff the instance's facts
    /// form a Berge-acyclic hypergraph over its nulls.
    pub fn cyclic_components(&self) -> Vec<Vec<NullId>> {
        let base = self.facts.len();
        let mut out = Vec::new();
        for comp in self.components() {
            let nodes = comp.len();
            let edges: usize = comp.iter().map(|&v| self.adj[v].len()).sum::<usize>() / 2;
            if edges >= nodes {
                out.push(
                    comp.iter()
                        .filter(|&&v| v >= base)
                        .map(|&v| self.nulls[v - base])
                        .collect(),
                );
            }
        }
        out
    }

    /// Is the null-occurrence structure Berge-acyclic?
    pub fn is_acyclic(&self) -> bool {
        self.cyclic_components().is_empty()
    }
}

/// Connected components of an undirected adjacency structure.
pub(crate) fn components_of(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = vec![];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            comp.push(u);
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}
