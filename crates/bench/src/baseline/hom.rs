//! Homomorphism search between target instances.
//!
//! A homomorphism `h : J1 → J2` is the identity on constants and maps every
//! fact of `J1` to a fact of `J2` (paper, Section 2). Since distinct
//! f-blocks share no nulls, `J1 → J2` holds iff every f-block of `J1` maps
//! into `J2` independently — the decomposition used both for correctness in
//! the IMPLIES procedure and as the main performance lever here.
//!
//! The engine (rebuilt for scale — the original scan engine survives as
//! `ndl_hom::scan` for reference and benchmarking):
//!
//! - **Indexed candidates.** The target is consulted through a shared
//!   [`TupleIndex`]: a fact with any bound position draws its candidate
//!   tuples from the shortest matching posting list instead of scanning
//!   the whole relation. Posting lists preserve the deterministic
//!   `Instance` order, so the search visits candidates in exactly the
//!   order the old full scan did (filtered), keeping found homomorphisms
//!   reproducible.
//! - **True MRV.** The next fact to match is the one with the fewest
//!   remaining candidate tuples under the current assignment (ties to the
//!   lowest fact index), not merely the fewest unassigned nulls.
//! - **Undo-trail assignment.** One flat `FxHashMap` assignment per block
//!   with a trail of newly bound nulls, unwound on backtrack — no
//!   `BTreeMap` clone per block.
//! - **Parallel blocks.** Independent f-blocks are searched on
//!   `std::thread::scope` workers (capped by [`HomConfig`], sequential
//!   below its cutoff), with a shared failure flag for early exit.

use super::blocks::f_blocks;
use super::index::{TupleId, TupleIndex};
use ndl_core::btree::BTreeInstance as Instance;
use ndl_core::prelude::*;
use ndl_hom::HomConfig;
use ndl_obs::{HomObserver, NoopObserver};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A homomorphism represented by its action on nulls (identity on
/// constants).
pub type HomMap = BTreeMap<NullId, Value>;

/// A constraint on null assignments: `forbid(n, v)` blocks `h(n) = v`.
/// `Sync` so independent block searches can share it across workers.
pub type Forbid<'a> = &'a (dyn Fn(NullId, Value) -> bool + Sync);

/// Applies a homomorphism to a value.
pub fn apply_value(h: &HomMap, v: Value) -> Value {
    match v {
        Value::Const(_) => v,
        Value::Null(n) => h.get(&n).copied().unwrap_or(v),
    }
}

/// Applies a homomorphism to an instance, producing its image `h(J)`.
pub fn apply(h: &HomMap, inst: &Instance) -> Instance {
    inst.map_values(&|v| apply_value(h, v))
}

/// Checks that `h` is a homomorphism from `from` into `to`.
pub fn is_homomorphism(h: &HomMap, from: &Instance, to: &Instance) -> bool {
    apply(h, from).is_subinstance_of(to)
}

/// Finds a homomorphism from `from` into `to`, if one exists.
pub fn find_homomorphism(from: &Instance, to: &Instance) -> Option<HomMap> {
    find_homomorphism_constrained(from, to, &HomMap::new(), &|_, _| false)
}

/// Does a homomorphism from `from` into `to` exist?
pub fn homomorphic(from: &Instance, to: &Instance) -> bool {
    find_homomorphism(from, to).is_some()
}

/// Are the two instances homomorphically equivalent (`J1 ↔ J2`)?
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    homomorphic(a, b) && homomorphic(b, a)
}

/// Finds a homomorphism from `from` into `to` extending `fixed` and never
/// assigning `h(n) = v` when `forbid(n, v)` holds. The constraint hooks
/// support core computation (find an endomorphism avoiding a given null).
///
/// Builds a [`TupleIndex`] over `to`; callers testing many sources against
/// one target should build the index once and use
/// [`find_homomorphism_into`].
pub fn find_homomorphism_constrained(
    from: &Instance,
    to: &Instance,
    fixed: &HomMap,
    forbid: Forbid<'_>,
) -> Option<HomMap> {
    let index = TupleIndex::from_instance(to);
    find_homomorphism_into(from, &index, fixed, forbid)
}

/// Finds a homomorphism from `from` into the indexed target `to`,
/// extending `fixed` under `forbid` — the reuse-friendly entry point: the
/// caller keeps one [`TupleIndex`] across many searches (the core engine
/// updates one in place across retractions).
pub fn find_homomorphism_into(
    from: &Instance,
    to: &TupleIndex,
    fixed: &HomMap,
    forbid: Forbid<'_>,
) -> Option<HomMap> {
    find_homomorphism_into_observed(from, to, fixed, forbid, &NoopObserver)
}

/// [`find_homomorphism_into`] reporting its work to a [`HomObserver`]:
/// MRV decisions, posting-list probes, backtracks, block searches and
/// worker dispatches. With [`NoopObserver`] this compiles to the
/// uninstrumented search.
pub fn find_homomorphism_into_observed<O: HomObserver>(
    from: &Instance,
    to: &TupleIndex,
    fixed: &HomMap,
    forbid: Forbid<'_>,
    obs: &O,
) -> Option<HomMap> {
    let blocks = f_blocks(from);
    let mut total = fixed.clone();
    total.extend(solve_blocks(&blocks, to, fixed, forbid, obs)?);
    Some(total)
}

/// Solves every block independently (in parallel above the configured
/// cutoff) and returns the union of their assignments. Blocks share no
/// free nulls, so the union is well defined and independent of execution
/// order.
pub(crate) fn solve_blocks<O: HomObserver>(
    blocks: &[Instance],
    to: &TupleIndex,
    fixed: &HomMap,
    forbid: Forbid<'_>,
    obs: &O,
) -> Option<Vec<(NullId, Value)>> {
    let workers = HomConfig::global().effective_threads(blocks.len(), to.len());
    if workers <= 1 {
        let mut out = Vec::new();
        for block in blocks {
            out.extend(solve_block(block, to, fixed, forbid, obs)?);
        }
        return Some(out);
    }
    obs.threads_dispatched(workers);
    let failed = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let results: Vec<OnceLock<Vec<(NullId, Value)>>> =
        (0..blocks.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= blocks.len() {
                    return;
                }
                match solve_block(&blocks[i], to, fixed, forbid, obs) {
                    Some(solution) => {
                        let _ = results[i].set(solution);
                    }
                    None => {
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if failed.load(Ordering::Relaxed) {
        return None;
    }
    let mut out = Vec::new();
    for cell in results {
        out.extend(cell.into_inner().expect("every block solved"));
    }
    Some(out)
}

/// Backtracking search for one (connected) f-block against the indexed
/// target. Returns the assignments made for this block's nulls, or `None`
/// if the block does not map.
pub(crate) fn solve_block<O: HomObserver>(
    block: &Instance,
    to: &TupleIndex,
    fixed: &HomMap,
    forbid: Forbid<'_>,
    obs: &O,
) -> Option<Vec<(NullId, Value)>> {
    let facts: Vec<Fact> = block.facts().collect();
    let mut st = Trail::with_fixed(fixed);
    let mut done = vec![false; facts.len()];
    let solved = search(&facts, &mut done, to, &mut st, forbid, obs);
    obs.block_search(facts.len(), solved);
    if solved {
        Some(st.into_assignments())
    } else {
        None
    }
}

/// The search state: a flat assignment map plus the trail of nulls bound
/// during this block's search, unwound on backtrack.
struct Trail {
    map: FxHashMap<NullId, Value>,
    log: Vec<NullId>,
}

impl Trail {
    fn with_fixed(fixed: &HomMap) -> Trail {
        let mut map = FxHashMap::default();
        map.extend(fixed.iter().map(|(&n, &v)| (n, v)));
        Trail {
            map,
            log: Vec::new(),
        }
    }

    #[inline]
    fn bind(&mut self, n: NullId, v: Value) {
        self.map.insert(n, v);
        self.log.push(n);
    }

    #[inline]
    fn undo_to(&mut self, mark: usize) {
        for n in self.log.drain(mark..) {
            self.map.remove(&n);
        }
    }

    /// The block's own assignments: exactly the trail entries (pre-fixed
    /// nulls are in `map` but never logged).
    fn into_assignments(self) -> Vec<(NullId, Value)> {
        let Trail { map, log } = self;
        log.into_iter().map(|n| (n, map[&n])).collect()
    }
}

fn search<O: HomObserver>(
    facts: &[Fact],
    done: &mut [bool],
    to: &TupleIndex,
    st: &mut Trail,
    forbid: Forbid<'_>,
    obs: &O,
) -> bool {
    // True MRV: pick the unprocessed fact with the fewest candidate tuples
    // under the current assignment (ties to the lowest index). A zero count
    // is taken immediately — that fact fails and prunes the branch now.
    let mut best: Option<(usize, usize)> = None;
    let mut probes = 0u64;
    for i in 0..facts.len() {
        if done[i] {
            continue;
        }
        let count = candidate_count(&facts[i], to, st);
        probes += 1;
        if best.is_none_or(|(c, _)| count < c) {
            best = Some((count, i));
            if count == 0 {
                break;
            }
        }
    }
    if O::ENABLED && probes > 0 {
        obs.index_probes(probes);
    }
    let Some((_, i)) = best else { return true };
    obs.mrv_decision();
    done[i] = true;
    let fact = &facts[i];
    for &id in candidates(fact, to, st) {
        if !to.is_live(id) {
            continue;
        }
        let mark = st.log.len();
        if try_map(fact, to.tuple(id), st, forbid) {
            if search(facts, done, to, st, forbid, obs) {
                done[i] = false;
                return true;
            }
            st.undo_to(mark);
        }
    }
    obs.backtrack();
    done[i] = false;
    false
}

/// The value a fact position is bound to, if any: constants are rigid and
/// assigned nulls are pinned.
#[inline]
fn bound_value(arg: Value, st: &Trail) -> Option<Value> {
    match arg {
        Value::Const(_) => Some(arg),
        Value::Null(n) => st.map.get(&n).copied(),
    }
}

/// Upper bound on the number of candidate target tuples for `fact`: the
/// shortest posting list over its bound positions, or the relation size
/// when nothing is bound.
fn candidate_count(fact: &Fact, to: &TupleIndex, st: &Trail) -> usize {
    let mut best = usize::MAX;
    for (pos, &arg) in fact.args.iter().enumerate() {
        if let Some(v) = bound_value(arg, st) {
            best = best.min(to.posting_len(fact.rel, pos as u32, v));
            if best == 0 {
                return 0;
            }
        }
    }
    if best == usize::MAX {
        to.rel_len(fact.rel)
    } else {
        best
    }
}

/// The tightest candidate id list for `fact`: the shortest posting list
/// over its bound positions, or the whole relation when nothing is bound.
/// Ids come back in deterministic insertion order and may include dead
/// entries (filtered by the caller).
fn candidates<'a>(fact: &Fact, to: &'a TupleIndex, st: &Trail) -> &'a [TupleId] {
    let mut best: Option<&'a [TupleId]> = None;
    for (pos, &arg) in fact.args.iter().enumerate() {
        if let Some(v) = bound_value(arg, st) {
            let posting = to.posting(fact.rel, pos as u32, v);
            if posting.is_empty() {
                return &[];
            }
            if best.is_none_or(|b| posting.len() < b.len()) {
                best = Some(posting);
            }
        }
    }
    best.unwrap_or_else(|| to.rel_ids(fact.rel))
}

/// Tries to map `fact` onto `tuple`; on success extends the assignment (new
/// bindings logged on the trail), on failure leaves it untouched.
fn try_map(fact: &Fact, tuple: &[Value], st: &mut Trail, forbid: Forbid<'_>) -> bool {
    debug_assert_eq!(fact.args.len(), tuple.len());
    let mark = st.log.len();
    for (&src, &dst) in fact.args.iter().zip(tuple.iter()) {
        let ok = match src {
            Value::Const(_) => src == dst,
            Value::Null(n) => match st.map.get(&n) {
                Some(&bound) => bound == dst,
                None => {
                    if forbid(n, dst) {
                        false
                    } else {
                        st.bind(n, dst);
                        true
                    }
                }
            },
        };
        if !ok {
            st.undo_to(mark);
            return false;
        }
    }
    true
}
