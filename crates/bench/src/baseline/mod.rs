//! The pre-columnar engine stack, preserved as a benchmark baseline and
//! equivalence oracle.
//!
//! This module is a faithful replica of the workspace's storage layer and
//! engines as they stood **before** the arena-backed [`FactStore`](ndl_core::store::FactStore)
//! refactor (`ndl_core::store`): instances are
//! [`BTreeInstance`](ndl_core::btree::BTreeInstance)s
//! (`BTreeMap<RelId, BTreeSet<Vec<Value>>>`), the tuple index stores one
//! owned `Vec<Value>` per entry, and every crate boundary re-materializes
//! owned [`Fact`](ndl_core::prelude::Fact)s. The algorithms are identical
//! to the current engines — MRV homomorphism search, incremental core
//! engine, planned fixpoint chase — so any performance difference measured
//! by `bench_store` is attributable to the storage representation, and any
//! output difference caught by the equivalence tests is a bug.
//!
//! Nothing here is wired into the production crates; it exists for
//! `bench_store` (see `experiments/BENCH_store.json`) and the
//! old-vs-new proptests.

pub mod blocks;
pub mod core;
pub mod fixpoint;
pub mod graph;
pub mod hom;
pub mod index;
pub mod trigger;

pub use self::core::{core_of, core_of_observed};
pub use blocks::f_blocks;
pub use fixpoint::{chase_fixpoint, FixpointChase, FixpointError};
pub use hom::{find_homomorphism, homomorphic};
pub use index::TupleIndex;
pub use trigger::{all_matches, Matcher};
