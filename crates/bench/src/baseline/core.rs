//! Core computation (paper, Section 2): the core of an instance `J` is the
//! smallest subinstance homomorphically equivalent to `J`; it is unique up
//! to isomorphism [Hell & Nešetřil].
//!
//! Algorithm: iterated proper retractions. A proper retraction always
//! eliminates at least one null (an idempotent endomorphism whose image
//! contains every null fixes all of them and is the identity on facts), so
//! `J` is a core iff for every null `n` there is no endomorphism of `J`
//! avoiding `n`. Such an endomorphism exists iff the f-block of `n` maps
//! into `J` while avoiding `n` (nulls outside the block can stay fixed) —
//! so the search is block-local against the whole instance.
//!
//! The engine is **incremental**: a retraction through `h` only removes
//! the facts of one f-block that leave the image `h(B)` — every other fact
//! is untouched. So the engine keeps one [`TupleIndex`] updated in place
//! across retractions and re-probes only *dirty* nulls: a null whose probe
//! failed stays failed while its block is unchanged and the instance only
//! shrinks (homomorphisms into a shrinking target never appear), so only
//! the surviving nulls of the retracted block ever need rechecking. Probes
//! for distinct nulls are independent and run on `std::thread::scope`
//! workers above the configured cutoff (see [`HomConfig`]); retractions
//! are applied smallest-null-first, so results are identical to the
//! sequential engine.

use super::blocks::f_blocks;
use super::hom::{apply_value, homomorphic, solve_block, HomMap};
use super::index::TupleIndex;
use ndl_core::btree::BTreeInstance as Instance;
use ndl_core::prelude::*;
use ndl_hom::HomConfig;
use ndl_obs::{HomObserver, NoopObserver};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Computes the core of `inst`.
pub fn core_of(inst: &Instance) -> Instance {
    core_of_observed(inst, &NoopObserver)
}

/// [`core_of`] reporting its work to a [`HomObserver`] (retraction probes,
/// block searches, backtracks, worker dispatches). With [`NoopObserver`]
/// this compiles to the uninstrumented engine.
pub fn core_of_observed<O: HomObserver>(inst: &Instance, obs: &O) -> Instance {
    CoreEngine::new(inst, obs).run().0
}

/// Computes the core of `inst` together with its f-blocks, reusing the
/// engine's block bookkeeping instead of rebuilding the fact graph of the
/// result. The blocks equal `f_blocks(&core)` (same contents, same order).
pub fn core_and_blocks(inst: &Instance) -> (Instance, Vec<Instance>) {
    core_and_blocks_observed(inst, &NoopObserver)
}

/// [`core_and_blocks`] reporting its work to a [`HomObserver`].
pub fn core_and_blocks_observed<O: HomObserver>(
    inst: &Instance,
    obs: &O,
) -> (Instance, Vec<Instance>) {
    CoreEngine::new(inst, obs).run()
}

/// The f-block size of the core of `inst` (0 for the empty instance) —
/// the quantity the Section 4 boundedness ladders sample at every rung.
pub fn core_f_block_size(inst: &Instance) -> usize {
    core_and_blocks(inst)
        .1
        .iter()
        .map(Instance::len)
        .max()
        .unwrap_or(0)
}

/// Is `inst` a core (no proper retraction)? Probes all nulls, in parallel
/// above the configured cutoff.
pub fn is_core(inst: &Instance) -> bool {
    is_core_observed(inst, &NoopObserver)
}

/// [`is_core`] reporting its work to a [`HomObserver`].
pub fn is_core_observed<O: HomObserver>(inst: &Instance, obs: &O) -> bool {
    let index = TupleIndex::from_instance(inst);
    let blocks = f_blocks(inst);
    let block_of = null_block_map(&blocks);
    let nulls: Vec<NullId> = inst.nulls().into_iter().collect();
    let probe = |n: NullId| -> bool {
        // Does a retraction avoiding `n` exist?
        let retracted = endo_avoiding(&blocks[block_of[&n]], &index, n, obs).is_some();
        obs.retraction_probe(retracted);
        retracted
    };
    let workers = HomConfig::global().effective_threads(nulls.len(), index.len());
    if workers <= 1 {
        return !nulls.into_iter().any(probe);
    }
    obs.threads_dispatched(workers);
    let found = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&n) = nulls.get(i) else { return };
                if probe(n) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    });
    !found.load(Ordering::Relaxed)
}

/// Checks the defining property: `core` is a subinstance of `inst`,
/// homomorphically equivalent to it, and itself a core.
pub fn verify_core(core: &Instance, inst: &Instance) -> bool {
    core.is_subinstance_of(inst) && homomorphic(inst, core) && is_core(core)
}

/// Finds an endomorphism retracting `block` into the indexed instance
/// while avoiding the null `n` (identity outside the block), if one
/// exists.
fn endo_avoiding<O: HomObserver>(
    block: &Instance,
    index: &TupleIndex,
    n: NullId,
    obs: &O,
) -> Option<HomMap> {
    let assignments = solve_block(
        block,
        index,
        &HomMap::new(),
        &|_, v| v == Value::Null(n),
        obs,
    )?;
    Some(assignments.into_iter().collect())
}

/// `null → index of its block` over a block list.
fn null_block_map(blocks: &[Instance]) -> FxHashMap<NullId, usize> {
    let mut map = FxHashMap::default();
    for (i, b) in blocks.iter().enumerate() {
        for n in b.nulls() {
            map.insert(n, i);
        }
    }
    map
}

/// The incremental retraction engine.
struct CoreEngine<'o, O: HomObserver> {
    /// Index of the current instance, updated in place on retraction.
    index: TupleIndex,
    /// Live blocks (`None` once retracted/split); grows as blocks split.
    blocks: Vec<Option<Instance>>,
    /// `null → blocks index` for live nulls.
    block_of: FxHashMap<NullId, usize>,
    /// Nulls whose retraction probe must (re)run, in ascending order.
    dirty: BTreeSet<NullId>,
    /// Event sink shared with worker threads.
    obs: &'o O,
}

impl<'o, O: HomObserver> CoreEngine<'o, O> {
    fn new(inst: &Instance, obs: &'o O) -> CoreEngine<'o, O> {
        let index = TupleIndex::from_instance(inst);
        let mut engine = CoreEngine {
            index,
            blocks: Vec::new(),
            block_of: FxHashMap::default(),
            dirty: BTreeSet::new(),
            obs,
        };
        for block in f_blocks(inst) {
            engine.add_block(block);
        }
        engine
    }

    /// Registers a block, marking its nulls dirty.
    fn add_block(&mut self, block: Instance) {
        let idx = self.blocks.len();
        for n in block.nulls() {
            self.block_of.insert(n, idx);
            self.dirty.insert(n);
        }
        self.blocks.push(Some(block));
    }

    /// Runs retractions to a fixpoint; returns the core and its f-blocks
    /// (identical to `f_blocks` of the result, ordered by smallest fact).
    fn run(mut self) -> (Instance, Vec<Instance>) {
        while let Some((n, h)) = self.find_retraction() {
            self.retract(n, &h);
        }
        let core = self.index.to_instance();
        let mut live: Vec<Instance> = self.blocks.into_iter().flatten().collect();
        // `f_blocks` lists components by their smallest fact; match it so
        // the two APIs are interchangeable.
        live.sort_by_cached_key(|b| b.facts().next().expect("blocks are nonempty"));
        debug_assert_eq!(live.iter().map(Instance::len).sum::<usize>(), core.len());
        (core, live)
    }

    /// Probes a retraction avoiding `n` against the current index.
    fn probe(&self, n: NullId) -> Option<HomMap> {
        let block = self.blocks[self.block_of[&n]].as_ref().expect("live block");
        let found = endo_avoiding(block, &self.index, n, self.obs);
        self.obs.retraction_probe(found.is_some());
        found
    }

    /// Finds the smallest dirty null admitting a retraction, cleaning every
    /// probed-and-failed null along the way. Probes run in parallel chunks
    /// above the configured cutoff; the smallest-null-first retraction
    /// order (and hence the result) is independent of the worker count.
    fn find_retraction(&mut self) -> Option<(NullId, HomMap)> {
        let workers = HomConfig::global().effective_threads(self.dirty.len(), self.index.len());
        loop {
            let chunk: Vec<NullId> = self.dirty.iter().copied().take(workers.max(1)).collect();
            if chunk.is_empty() {
                return None;
            }
            if workers <= 1 {
                let n = chunk[0];
                match self.probe(n) {
                    Some(h) => return Some((n, h)),
                    None => {
                        self.dirty.remove(&n);
                        continue;
                    }
                }
            }
            // Parallel chunk: probe all, then commit the smallest success.
            // Failures are clean regardless of position — a failed probe
            // stays failed while the block is unchanged and the instance
            // shrinks; `retract` re-dirties any null whose block changes.
            self.obs.threads_dispatched(workers);
            let probes: Vec<OnceLock<Option<HomMap>>> =
                (0..chunk.len()).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&n) = chunk.get(i) else { return };
                        let _ = probes[i].set(self.probe(n));
                    });
                }
            });
            for (i, &n) in chunk.iter().enumerate() {
                match probes[i].get().expect("probed") {
                    Some(h) => return Some((n, h.clone())),
                    None => {
                        self.dirty.remove(&n);
                    }
                }
            }
        }
    }

    /// Applies the retraction `h` of the block of `n`: removes the block
    /// facts that leave the image `h(B)`, splits the survivors into their
    /// new sub-blocks and marks the surviving nulls dirty.
    fn retract(&mut self, n: NullId, h: &HomMap) {
        let idx = self.block_of[&n];
        let block = self.blocks[idx].take().expect("live block");
        let image: BTreeSet<Fact> = block
            .facts()
            .map(|f| {
                Fact::new(
                    f.rel,
                    f.args
                        .iter()
                        .map(|&v| apply_value(h, v))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut survivors = Instance::new();
        for f in block.facts() {
            if image.contains(&f) {
                survivors.insert(f);
            } else {
                self.index.remove(&f);
            }
        }
        for m in block.nulls() {
            self.block_of.remove(&m);
            self.dirty.remove(&m);
        }
        for sub in f_blocks(&survivors) {
            debug_assert!(!sub.nulls().contains(&n), "retraction must drop {n:?}");
            self.add_block(sub);
        }
    }
}
