//! k-pattern enumeration (Proposition 3.5): the combinatorial heart of
//! every decision procedure in the paper; non-elementary in the nesting
//! depth, so the scaling matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_bench::running_sigma;
use ndl_core::prelude::*;
use ndl_gen::{random_nested_tgd, TgdGenOptions};
use ndl_reasoning::k_patterns;

fn bench_running_example(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let sigma = running_sigma(&mut syms);
    let mut group = c.benchmark_group("patterns/running_sigma");
    for &k in &[1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| k_patterns(&sigma, k, 10_000_000).unwrap().len())
        });
    }
    group.finish();
}

fn bench_depth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("patterns/depth");
    for &depth in &[2usize, 3, 4] {
        let mut syms = SymbolTable::new();
        let tgd = random_nested_tgd(
            &mut syms,
            &format!("d{depth}"),
            &TgdGenOptions {
                max_depth: depth,
                max_children: 2,
                existential_prob: 0.7,
                seed: 1,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(depth), &tgd, |b, t| {
            b.iter(|| k_patterns(t, 2, 10_000_000).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_running_example, bench_depth_scaling);
criterion_main!(benches);
