//! Semantic-analysis throughput: position/Skolem graph construction,
//! termination classification and cost bounds over generated dependency
//! programs of 10¹ – 10³ statements (`analyze_large`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_analyze::ChaseAnalysis;
use ndl_core::prelude::*;
use ndl_gen::{random_program, ProgramGenOptions};

fn program(statements: usize) -> String {
    random_program(&ProgramGenOptions {
        statements,
        relations: (statements / 4).max(4),
        seed: 42,
        ..Default::default()
    })
}

fn bench_analyze_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_large");
    for &n in &[10usize, 100, 1_000] {
        let text = program(n);
        // The full pipeline: parse, Skolemize, both graphs, SCC-based
        // classification, ranks and the degree fixpoint.
        group.bench_with_input(BenchmarkId::new("pipeline", n), &text, |b, src| {
            b.iter(|| {
                let mut syms = SymbolTable::new();
                let (a, _) = ChaseAnalysis::analyze_source(&mut syms, src);
                (a.termination.class, a.graphs.positions.edges.len())
            })
        });
        // Graphs + classification alone, on pre-parsed statements.
        let mut syms = SymbolTable::new();
        let (stmts, _) = ndl_analyze::parse_program(&mut syms, &text);
        group.bench_with_input(
            BenchmarkId::new("classify", n),
            &(syms, stmts),
            |b, (syms, stmts)| {
                b.iter(|| {
                    let mut syms = syms.clone();
                    let a = ChaseAnalysis::analyze(&mut syms, stmts);
                    a.termination.class
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analyze_large);
criterion_main!(benches);
