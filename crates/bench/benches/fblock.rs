//! The Theorem 4.2 pipeline: f-block boundedness analysis (cloning
//! ladders, Theorem 4.4) and full GLAV-equivalence decisions with witness
//! construction and verification.

use criterion::{criterion_group, criterion_main, Criterion};
use ndl_core::prelude::*;
use ndl_reasoning::{glav_equivalent, has_bounded_fblock_size, FblockOptions};

fn bench_boundedness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fblock/boundedness");
    group.sample_size(10);
    let cases = [
        (
            "unbounded_intro",
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
        ),
        (
            "unbounded_groupby",
            "forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> T(y,x2))))",
        ),
        (
            "bounded_vacuous",
            "forall x1 (P(x1) -> exists y (forall x2 (Q(x2) -> U(x2,x2))))",
        ),
        ("bounded_st", "A(x,y) -> exists z (B(x,z) & B(z,y))"),
    ];
    for (name, text) in cases {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(&mut syms, &[text], &[]).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = syms.clone();
                has_bounded_fblock_size(&m, &mut s, &FblockOptions::default())
                    .unwrap()
                    .bounded
            })
        });
    }
    group.finish();
}

fn bench_glav_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("fblock/glav_equivalence");
    group.sample_size(10);
    let mut syms = SymbolTable::new();
    let vacuous = NestedMapping::parse(
        &mut syms,
        &["forall x1 (P(x1) -> exists y (forall x2 (Q(x2) -> U(x2,x2))))"],
        &[],
    )
    .unwrap();
    group.bench_function("positive_with_witness", |b| {
        b.iter(|| {
            let mut s = syms.clone();
            glav_equivalent(&vacuous, &mut s, &FblockOptions::default())
                .unwrap()
                .witness
                .is_some()
        })
    });
    let mut syms2 = SymbolTable::new();
    let keyed = NestedMapping::parse(
        &mut syms2,
        &["forall z (Q(z) -> exists y (forall x1 (P1(z,x1) -> R(y,x1))))"],
        &["P1(z,w1) & P1(z,w2) -> w1 = w2"],
    )
    .unwrap();
    group.bench_function("positive_with_egds", |b| {
        b.iter(|| {
            let mut s = syms2.clone();
            glav_equivalent(&keyed, &mut s, &FblockOptions::default())
                .unwrap()
                .witness
                .is_some()
        })
    });
    group.finish();
}

/// Ablation: the cloning-ladder boundedness test vs the literal
/// Theorem 4.10 exhaustive instance enumeration, on a tiny mapping where
/// both are feasible — quantifying why the ladder method is the default.
fn bench_ladder_vs_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("fblock/ablation");
    group.sample_size(10);
    let mut syms = SymbolTable::new();
    let m = NestedMapping::parse(&mut syms, &["S(x) -> exists y R(x,y)"], &[]).unwrap();
    group.bench_function("ladder", |b| {
        b.iter(|| {
            let mut s = syms.clone();
            has_bounded_fblock_size(&m, &mut s, &FblockOptions::default())
                .unwrap()
                .bounded
        })
    });
    group.bench_function("exhaustive_3_atoms", |b| {
        b.iter(|| {
            let mut s = syms.clone();
            ndl_reasoning::fblock_size_bounded_by_exhaustive(&m, 1, 3, &mut s)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_boundedness,
    bench_glav_equivalence,
    bench_ladder_vs_exhaustive
);
criterion_main!(benches);
