//! The data-complexity contrast of Section 1: model checking nested tgds
//! (first-order, polynomial data complexity) vs plain SO tgds
//! (NP-complete). Measured as wall time vs source size on matched
//! mapping/workload pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_bench::tau_413;
use ndl_chase::{chase_mapping, chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_gen::successor;
use ndl_reasoning::{satisfies_nested, satisfies_plain_so};

fn bench_nested_model_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_check/nested");
    for &n in &[10usize, 20, 40] {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
            &[],
        )
        .unwrap();
        let s = syms.rel("S");
        let source = successor(&mut syms, s, n, "c");
        let (res, _) = chase_mapping(&source, &m, &mut syms);
        let tgd = m.tgds[0].clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(source, res.target),
            |b, (i, j)| b.iter(|| satisfies_nested(i, j, &tgd)),
        );
    }
    group.finish();
}

fn bench_plain_so_model_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_check/plain_so");
    for &n in &[10usize, 20, 40] {
        let mut syms = SymbolTable::new();
        let tau = tau_413(&mut syms);
        let s = syms.rel("S");
        let source = successor(&mut syms, s, n, "c");
        let mut nulls = NullFactory::new();
        let target = chase_so(&source, &tau, &mut nulls);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(source, target),
            |b, (i, j)| b.iter(|| satisfies_plain_so(i, j, &tau)),
        );
    }
    group.finish();
}

/// The negative case is where NP search bites: a target that *almost*
/// satisfies the SO tgd forces exhaustive refutation.
fn bench_plain_so_negative(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_check/plain_so_negative");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let mut syms = SymbolTable::new();
        let tau = tau_413(&mut syms);
        let s = syms.rel("S");
        let source = successor(&mut syms, s, n, "c");
        let mut nulls = NullFactory::new();
        let mut target = chase_so(&source, &tau, &mut nulls);
        // Remove one fact: no homomorphism remains, search must refute.
        let victim = target.facts().nth(n / 2).unwrap().to_fact();
        target.remove(&victim);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(source, target),
            |b, (i, j)| b.iter(|| !satisfies_plain_so(i, j, &tau)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_nested_model_check,
    bench_plain_so_model_check,
    bench_plain_so_negative
);
criterion_main!(benches);
