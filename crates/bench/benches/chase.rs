//! Chase throughput: the s-t, nested and SO chase engines over growing
//! source instances (random and structured workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_bench::{intro_nested, tau_413};
use ndl_chase::{chase_nested, chase_so, NullFactory, Prepared};
use ndl_core::prelude::*;
use ndl_gen::{random_instance, successor, InstanceGenOptions};

fn bench_nested_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/nested");
    for &facts in &[25usize, 50, 100, 200] {
        let mut syms = SymbolTable::new();
        let mapping = intro_nested(&mut syms);
        let prepared = Prepared::mapping(&mapping, &mut syms);
        let s = syms.rel("S");
        let source = random_instance(
            &mut syms,
            &[(s, 2)],
            &InstanceGenOptions {
                facts,
                domain: (facts / 4).max(2),
                seed: 42,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(facts), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                chase_nested(src, &prepared, &mut nulls).target.len()
            })
        });
    }
    group.finish();
}

fn bench_so_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/so");
    for &n in &[50usize, 100, 200, 400] {
        let mut syms = SymbolTable::new();
        let tau = tau_413(&mut syms);
        let s = syms.rel("S");
        let source = successor(&mut syms, s, n, "c");
        group.bench_with_input(BenchmarkId::from_parameter(n), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                chase_so(src, &tau, &mut nulls).len()
            })
        });
    }
    group.finish();
}

fn bench_st_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/st");
    for &facts in &[50usize, 100, 200] {
        let mut syms = SymbolTable::new();
        let mapping = NestedMapping::parse(
            &mut syms,
            &[
                "S(x,y) -> exists z (R(x,z) & R(z,y))",
                "S(x,y) & S(y,z) -> T(x,z)",
            ],
            &[],
        )
        .unwrap();
        let prepared = Prepared::mapping(&mapping, &mut syms);
        let s = syms.rel("S");
        let source = random_instance(
            &mut syms,
            &[(s, 2)],
            &InstanceGenOptions {
                facts,
                domain: (facts / 4).max(2),
                seed: 7,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(facts), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                chase_nested(src, &prepared, &mut nulls).target.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nested_chase, bench_so_chase, bench_st_chase);
criterion_main!(benches);
