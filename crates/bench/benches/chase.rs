//! Chase throughput: the s-t, nested and SO chase engines over growing
//! source instances (random and structured workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_analyze::{parse_program, ChaseAnalysis, StmtAst};
use ndl_bench::{intro_nested, tau_413};
use ndl_chase::{chase_fixpoint_with, chase_nested, chase_so, NullFactory, Prepared};
use ndl_core::prelude::*;
use ndl_gen::{random_instance, successor, InstanceGenOptions};
use ndl_obs::{ChaseStats, NoopObserver};
use std::fmt::Write as _;

fn bench_nested_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/nested");
    for &facts in &[25usize, 50, 100, 200] {
        let mut syms = SymbolTable::new();
        let mapping = intro_nested(&mut syms);
        let prepared = Prepared::mapping(&mapping, &mut syms);
        let s = syms.rel("S");
        let source = random_instance(
            &mut syms,
            &[(s, 2)],
            &InstanceGenOptions {
                facts,
                domain: (facts / 4).max(2),
                seed: 42,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(facts), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                chase_nested(src, &prepared, &mut nulls).target.len()
            })
        });
    }
    group.finish();
}

fn bench_so_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/so");
    for &n in &[50usize, 100, 200, 400] {
        let mut syms = SymbolTable::new();
        let tau = tau_413(&mut syms);
        let s = syms.rel("S");
        let source = successor(&mut syms, s, n, "c");
        group.bench_with_input(BenchmarkId::from_parameter(n), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                chase_so(src, &tau, &mut nulls).len()
            })
        });
    }
    group.finish();
}

fn bench_st_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/st");
    for &facts in &[50usize, 100, 200] {
        let mut syms = SymbolTable::new();
        let mapping = NestedMapping::parse(
            &mut syms,
            &[
                "S(x,y) -> exists z (R(x,z) & R(z,y))",
                "S(x,y) & S(y,z) -> T(x,z)",
            ],
            &[],
        )
        .unwrap();
        let prepared = Prepared::mapping(&mapping, &mut syms);
        let s = syms.rel("S");
        let source = random_instance(
            &mut syms,
            &[(s, 2)],
            &InstanceGenOptions {
                facts,
                domain: (facts / 4).max(2),
                seed: 7,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(facts), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                chase_nested(src, &prepared, &mut nulls).target.len()
            })
        });
    }
    group.finish();
}

fn bench_fixpoint_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/fixpoint");
    for &n in &[30usize, 60, 120] {
        // Transitive closure of a path: quadratic derived-fact growth,
        // the worst case for trigger matching and deduplication.
        let mut text = String::from("E(x,y) & E(y,z) -> E(x,z)\n");
        for i in 0..n {
            let _ = writeln!(text, "fact: E(v{i}, v{})", i + 1);
        }
        let mut syms = SymbolTable::new();
        let (stmts, errs) = parse_program(&mut syms, &text);
        assert!(errs.is_empty());
        let analysis = ChaseAnalysis::analyze(&mut syms, &stmts);
        let mut source = Instance::new();
        for s in &stmts {
            if let Some(StmtAst::Fact(f)) = &s.ast {
                source.insert(f.clone());
            }
        }
        let tgds: Vec<_> = analysis.so_tgds().into_iter().map(|(_, t)| t).collect();
        let plan = analysis.tgd_plan(Some(10_000_000));
        group.bench_with_input(BenchmarkId::new("noop", n), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                chase_fixpoint_with(src, &tgds, &plan, &mut nulls, &mut NoopObserver)
                    .expect("terminates")
                    .instance
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("stats", n), &source, |b, src| {
            b.iter(|| {
                let mut nulls = NullFactory::new();
                let mut stats = ChaseStats::new();
                chase_fixpoint_with(src, &tgds, &plan, &mut nulls, &mut stats)
                    .expect("terminates")
                    .instance
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_nested_chase,
    bench_so_chase,
    bench_st_chase,
    bench_fixpoint_chase
);
criterion_main!(benches);
