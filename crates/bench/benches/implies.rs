//! End-to-end IMPLIES runs (Theorem 3.1): the paper's Example 3.10 pair,
//! implications between nested tgds, and the source-egd variant
//! (Theorem 5.7).

use criterion::{criterion_group, criterion_main, Criterion};
use ndl_bench::tau_310;
use ndl_core::prelude::*;
use ndl_reasoning::{implies_tgd, ImpliesOptions};

fn bench_example_310(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let tau = tau_310(&mut syms);
    let tau_p = NestedMapping::parse(&mut syms, &["S2(x2) -> exists z R(x2,z)"], &[]).unwrap();
    let tau_pp = NestedMapping::parse(&mut syms, &["S1(x1) & S2(x2) -> R(x2,x1)"], &[]).unwrap();
    let opts = ImpliesOptions::default();
    c.bench_function("implies/ex310_negative", |b| {
        b.iter(|| {
            let mut s = syms.clone();
            implies_tgd(&tau_p, &tau, &mut s, &opts).unwrap().holds
        })
    });
    c.bench_function("implies/ex310_positive", |b| {
        b.iter(|| {
            let mut s = syms.clone();
            implies_tgd(&tau_pp, &tau, &mut s, &opts).unwrap().holds
        })
    });
}

fn bench_nested_premise(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let nested = NestedMapping::parse(
        &mut syms,
        &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        &[],
    )
    .unwrap();
    let weakening = parse_nested_tgd(
        &mut syms,
        "S(x1,x2) & S(x1,x3) -> exists y (R(y,x2) & R(y,x3))",
    )
    .unwrap();
    let opts = ImpliesOptions::default();
    c.bench_function("implies/nested_premise_glav_conclusion", |b| {
        b.iter(|| {
            let mut s = syms.clone();
            implies_tgd(&nested, &weakening, &mut s, &opts)
                .unwrap()
                .holds
        })
    });
}

fn bench_with_egds(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let premise = NestedMapping::parse(
        &mut syms,
        &["S(x,y) -> T(y,y)"],
        &["S(x,w1) & S(x,w2) -> w1 = w2"],
    )
    .unwrap();
    let sigma = parse_nested_tgd(&mut syms, "S(x,y) & S(x,z) -> T(y,z)").unwrap();
    let opts = ImpliesOptions::default();
    c.bench_function("implies/with_source_egds", |b| {
        b.iter(|| {
            let mut s = syms.clone();
            implies_tgd(&premise, &sigma, &mut s, &opts).unwrap().holds
        })
    });
}

criterion_group!(
    benches,
    bench_example_310,
    bench_nested_premise,
    bench_with_egds
);
criterion_main!(benches);
