//! The Theorem 5.1 reduction pipeline: encode + check + chase + core over
//! growing source sizes, for halting and non-halting machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_core::prelude::*;
use ndl_turing::{build_reduction, busy_halter, forever_right, measure};

fn bench_halting(c: &mut Criterion) {
    let mut group = c.benchmark_group("turing/halting");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut syms = SymbolTable::new();
                let m = busy_halter(3);
                let red = build_reduction(&m, &mut syms);
                measure(&m, &red, n, &mut syms, "h_", |e| e).anchored_block_size
            })
        });
    }
    group.finish();
}

fn bench_non_halting(c: &mut Criterion) {
    let mut group = c.benchmark_group("turing/non_halting");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut syms = SymbolTable::new();
                let m = forever_right();
                let red = build_reduction(&m, &mut syms);
                measure(&m, &red, n, &mut syms, "r_", |e| e).anchored_block_size
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_halting, bench_non_halting);
criterion_main!(benches);
