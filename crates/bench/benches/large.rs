//! Large-input homomorphism/core workloads (10² – 10⁴ facts) exercising
//! the indexed engine: grid and random targets from `ndl-gen`. The
//! scan-engine comparison (and the committed `BENCH_hom.json` numbers)
//! lives in the `bench_hom` binary; these groups track the production
//! engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_core::prelude::*;
use ndl_gen::{abstract_subpattern, grid, random_target_instance, TargetGenOptions};
use ndl_hom::{core_of, find_homomorphism};

/// Grid side lengths giving ~10², ~10³ and ~10⁴ facts
/// (a `w × w` grid has `2·w·(w-1)` edges).
const GRID_SIDES: [usize; 3] = [8, 23, 71];

fn bench_hom_large_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom_large/grid");
    group.sample_size(10);
    for &w in &GRID_SIDES {
        let mut syms = SymbolTable::new();
        let h = syms.rel("H");
        let v = syms.rel("V");
        let target = grid(&mut syms, h, v, w, w, "g");
        let pattern = abstract_subpattern(&target, 8, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(target.len()),
            &(pattern, target),
            |b, (p, t)| b.iter(|| find_homomorphism(p, t).is_some()),
        );
    }
    group.finish();
}

fn bench_hom_large_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom_large/random");
    group.sample_size(10);
    for &facts in &[100usize, 1_000, 10_000] {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let target = random_target_instance(
            &mut syms,
            &[(s, 2), (q, 3)],
            &TargetGenOptions {
                facts,
                // Medium density (domain ~ facts/2): the pattern stays
                // nontrivial, while the scan baseline, which explodes on
                // dense targets, stays measurable.
                domain: (facts / 2).max(8),
                redundant_nulls: 0,
                seed: 7,
            },
        );
        let pattern = abstract_subpattern(&target, 8, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(facts),
            &(pattern, target),
            |b, (p, t)| b.iter(|| find_homomorphism(p, t).is_some()),
        );
    }
    group.finish();
}

fn bench_core_large_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_large/random");
    group.sample_size(10);
    for &facts in &[100usize, 1_000, 10_000] {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let inst = random_target_instance(
            &mut syms,
            &[(s, 2), (q, 3)],
            &TargetGenOptions {
                facts,
                domain: (facts / 5).max(4),
                redundant_nulls: (facts / 10).min(50),
                seed: 7,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(facts), &inst, |b, j| {
            b.iter(|| core_of(j).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hom_large_grid,
    bench_hom_large_random,
    bench_core_large_random
);
criterion_main!(benches);
