//! Homomorphism search and core computation: the engine underneath both
//! IMPLIES and the structural analyses of Section 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndl_bench::sigma_48;
use ndl_chase::{chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_gen::cycle;
use ndl_hom::{core_of, find_homomorphism};

/// Core of odd-cycle chases (Example 4.8): the hardest shape for the
/// retraction search, since nothing folds.
fn bench_core_odd_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/odd_cycle");
    group.sample_size(10);
    for &n in &[5usize, 7, 9] {
        let mut syms = SymbolTable::new();
        let sigma = sigma_48(&mut syms);
        let s = syms.rel("S");
        let source = cycle(&mut syms, s, n, "c");
        let mut nulls = NullFactory::new();
        let chased = chase_so(&source, &sigma, &mut nulls);
        group.bench_with_input(BenchmarkId::from_parameter(n), &chased, |b, j| {
            b.iter(|| core_of(j).len())
        });
    }
    group.finish();
}

/// Core of even-cycle chases: everything folds to one edge.
fn bench_core_even_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/even_cycle");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let mut syms = SymbolTable::new();
        let sigma = sigma_48(&mut syms);
        let s = syms.rel("S");
        let source = cycle(&mut syms, s, n, "c");
        let mut nulls = NullFactory::new();
        let chased = chase_so(&source, &sigma, &mut nulls);
        group.bench_with_input(BenchmarkId::from_parameter(n), &chased, |b, j| {
            b.iter(|| core_of(j).len())
        });
    }
    group.finish();
}

/// Homomorphism search between star-shaped blocks (the IMPLIES inner
/// loop shape: canonical targets into chase results).
fn bench_hom_stars(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom/star_into_star");
    for &n in &[10usize, 20, 40, 80] {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let hub = Value::Null(NullId(0));
        let mut from = Instance::new();
        let mut to = Instance::new();
        for i in 0..n as u32 {
            let leaf = Value::Const(syms.constant(&format!("l{i}")));
            from.insert(Fact::new(r, vec![hub, leaf]));
            to.insert(Fact::new(r, vec![Value::Null(NullId(1)), leaf]));
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &(from, to), |b, (f, t)| {
            b.iter(|| find_homomorphism(f, t).is_some())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_core_odd_cycles,
    bench_core_even_cycles,
    bench_hom_stars
);
criterion_main!(benches);
