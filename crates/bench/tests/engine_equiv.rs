//! Old-engine vs new-engine equivalence: the pre-columnar replica in
//! [`ndl_bench::baseline`] must produce **bit-identical** results to the
//! production engines on generated workloads — same facts, same nulls
//! (same `NullId`s, not just isomorphic), same round/derivation counts.
//!
//! This is the strongest form of the refactor's contract: the columnar
//! [`FactStore`](ndl_core::store::FactStore) changed the representation
//! underneath the chase and the core engine without perturbing a single
//! enumeration order.

use ndl_bench::baseline;
use ndl_core::btree::BTreeInstance;
use ndl_core::prelude::*;
use ndl_gen::{random_instance, random_nested_tgd, InstanceGenOptions, TgdGenOptions};
use proptest::prelude::*;

/// A random s-t program (skolemized nested tgds) plus a random source
/// instance over its source relations — the same shape the workspace
/// property tests chase.
fn setup(seed: u64, depth: usize, facts: usize) -> (SymbolTable, Vec<SoTgd>, Instance) {
    let mut syms = SymbolTable::new();
    let tgd = random_nested_tgd(
        &mut syms,
        "p",
        &TgdGenOptions {
            max_depth: depth,
            max_children: 2,
            existential_prob: 0.7,
            seed,
        },
    );
    let mapping = NestedMapping::new(vec![tgd], vec![]).expect("generated tgd is valid");
    let rels: Vec<(RelId, usize)> = mapping
        .schema
        .relations()
        .filter(|&(_, _, s)| s == Side::Source)
        .map(|(r, a, _)| (r, a))
        .collect();
    let source = random_instance(
        &mut syms,
        &rels,
        &InstanceGenOptions {
            facts,
            domain: 4,
            seed: seed.wrapping_mul(31).wrapping_add(7),
        },
    );
    let tgds: Vec<SoTgd> = mapping
        .tgds
        .iter()
        .map(|t| skolemize(t, &mut syms).0)
        .collect();
    (syms, tgds, source)
}

/// The old engines run over [`BTreeInstance`]s; replicate the columnar
/// instance fact-for-fact.
fn to_btree(inst: &Instance) -> BTreeInstance {
    BTreeInstance::from_facts(inst.facts().map(|f| f.to_fact()))
}

/// Sorted owned facts — the common observation both instance types reduce
/// to. `NullId`s are compared verbatim: the engines must allocate nulls in
/// the same order, not merely isomorphically.
fn facts_of(inst: &Instance) -> Vec<Fact> {
    inst.facts().map(|f| f.to_fact()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `chase_fixpoint` is bit-identical pre/post refactor: same result
    /// facts with the same `NullId`s, same rounds, same derivation count,
    /// and the two `NullFactory`s interned the same Skolem terms.
    #[test]
    fn fixpoint_chase_is_bit_identical(seed in 0u64..10_000, depth in 1usize..4, facts in 0usize..12) {
        let (_syms, tgds, source) = setup(seed, depth, facts);
        let plan = ndl_chase::ChasePlan::trusting(tgds.len());
        let mut new_nulls = ndl_chase::NullFactory::new();
        let new = ndl_chase::chase_fixpoint(&source, &tgds, &plan, &mut new_nulls)
            .expect("trusting plan cannot refuse");
        let mut old_nulls = ndl_chase::NullFactory::new();
        let old = baseline::chase_fixpoint(&to_btree(&source), &tgds, &plan, &mut old_nulls)
            .expect("trusting plan cannot refuse");
        prop_assert_eq!(facts_of(&new.instance), old.instance.facts().collect::<Vec<_>>());
        prop_assert_eq!(new.rounds, old.rounds);
        prop_assert_eq!(new.derived, old.derived);
        prop_assert_eq!(new_nulls.len(), old_nulls.len());
    }

    /// `core_of` is bit-identical pre/post refactor on chased targets:
    /// both engines retract the same facts in the same order, keeping the
    /// same representative `NullId`s.
    #[test]
    fn core_is_bit_identical(seed in 0u64..10_000, facts in 0usize..10) {
        let (_syms, tgds, source) = setup(seed, 3, facts);
        let plan = ndl_chase::ChasePlan::trusting(tgds.len());
        let mut nulls = ndl_chase::NullFactory::new();
        let chased = ndl_chase::chase_fixpoint(&source, &tgds, &plan, &mut nulls)
            .expect("trusting plan cannot refuse")
            .instance;
        let new_core = ndl_hom::core_of(&chased);
        let old_core = baseline::core_of(&to_btree(&chased));
        prop_assert_eq!(facts_of(&new_core), old_core.facts().collect::<Vec<_>>());
    }

    /// The MRV homomorphism search agrees with its pre-columnar replica on
    /// existence, in both directions, between a chase result and its core.
    #[test]
    fn homomorphism_existence_agrees(seed in 0u64..10_000, facts in 0usize..10) {
        let (_syms, tgds, source) = setup(seed, 2, facts);
        let plan = ndl_chase::ChasePlan::trusting(tgds.len());
        let mut nulls = ndl_chase::NullFactory::new();
        let chased = ndl_chase::chase_fixpoint(&source, &tgds, &plan, &mut nulls)
            .expect("trusting plan cannot refuse")
            .instance;
        let core = ndl_hom::core_of(&chased);
        let (b_chased, b_core) = (to_btree(&chased), to_btree(&core));
        prop_assert_eq!(
            ndl_hom::homomorphic(&chased, &core),
            baseline::homomorphic(&b_chased, &b_core)
        );
        prop_assert_eq!(
            ndl_hom::homomorphic(&core, &chased),
            baseline::homomorphic(&b_core, &b_chased)
        );
        // And both directions in fact hold — the core is hom-equivalent.
        prop_assert!(ndl_hom::homomorphic(&chased, &core));
        prop_assert!(ndl_hom::homomorphic(&core, &chased));
    }
}
