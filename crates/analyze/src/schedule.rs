//! Parallel schedule construction: stratifies the statement conflict
//! graph of [`crate::interference`] into a
//! [`ndl_chase::plan::ParallelSchedule`] of conflict-free stages, and
//! renders the serializable [`ScheduleReport`] behind
//! `ndl analyze --schedule [--json]`.
//!
//! The stratification is **contiguous**: stages partition the firing
//! order into runs of consecutive statements, never reordering across a
//! stage boundary. Flattening the stages therefore reproduces the firing
//! order exactly, which is what lets the parallel engine resolve fired
//! bindings in the same sequence as the sequential engine and stay
//! bit-identical (same NullIds, same rounds, same derived counts). A
//! non-contiguous packing could build wider stages, but any reordering
//! would change null-interning order and break the certificate.
//!
//! The greedy rule mirrors `ndl_chase::parallel::derive_schedule`: walk
//! the firing order, extend the current stage while the next statement is
//! conflict-free against *every* statement already in it, otherwise start
//! a new stage. Self-interfering statements (NDL033) always form
//! singleton stages — within a round their own insertions are deferred to
//! the round commit, but the engine refuses to co-schedule them as a
//! defense-in-depth invariant, so the analyzer must not produce such
//! stages either. The chase verifies all of this again at run time
//! (`ndl_chase::parallel::verify_schedule`): the schedule is a
//! *certificate* to be checked, not a trusted input.

use crate::interference::InterferenceAnalysis;
use ndl_chase::plan::ParallelSchedule;
use ndl_core::prelude::*;
use serde::Serialize;

/// Builds the contiguous greedy schedule over the scheduled statements of
/// `inter`, taken in `firing_order` (statement indices; non-scheduled
/// entries — facts, egds, unparsed statements — are skipped).
pub fn build_schedule(inter: &InterferenceAnalysis, firing_order: &[usize]) -> ParallelSchedule {
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for &s in firing_order {
        if !inter.scheduled.contains(&s) {
            continue;
        }
        let solo = inter.footprints[&s].self_interfering();
        let fits = match stages.last() {
            Some(stage) if !solo => {
                // The open stage must not hold a self-interfering
                // statement, and `s` must be independent of all members.
                stage
                    .iter()
                    .all(|&t| !inter.footprints[&t].self_interfering() && inter.independent(s, t))
            }
            _ => false,
        };
        if fits {
            stages.last_mut().expect("nonempty").push(s);
        } else {
            stages.push(vec![s]);
        }
    }
    ParallelSchedule { stages }
}

/// One conflict edge of the report, with symbolic reasons.
#[derive(Clone, Debug, Serialize, PartialEq, Eq)]
pub struct ConflictReport {
    /// Smaller statement index.
    pub a: usize,
    /// Larger statement index.
    pub b: usize,
    /// Conflict kinds as stable labels (`write-write`, `read-write`,
    /// `shared-null-factory`).
    pub kinds: Vec<String>,
}

/// The JSON-facing schedule report of `ndl analyze --schedule --json`.
#[derive(Clone, Debug, Serialize, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Total statements in the program.
    pub statements: usize,
    /// Statements that entered the schedule (analyzable tgd statements).
    pub scheduled: usize,
    /// The stages, each a list of statement indices in firing order.
    pub stages: Vec<Vec<usize>>,
    /// Size of the widest stage (1 = fully sequential).
    pub width: usize,
    /// Conflict edges among scheduled statements.
    pub conflicts: Vec<ConflictReport>,
    /// Self-interfering statements (read a relation they write).
    pub self_interfering: Vec<usize>,
    /// Relation names written by some statement but read by none.
    pub write_only_relations: Vec<String>,
    /// Relation names read by some statement but written by none.
    pub read_only_relations: Vec<String>,
}

impl ScheduleReport {
    /// Assembles the report from an interference analysis and its
    /// schedule.
    pub fn of(
        syms: &SymbolTable,
        statements: usize,
        inter: &InterferenceAnalysis,
        schedule: &ParallelSchedule,
    ) -> ScheduleReport {
        ScheduleReport {
            statements,
            scheduled: inter.scheduled.len(),
            stages: schedule.stages.clone(),
            width: schedule.width(),
            conflicts: inter
                .edges
                .iter()
                .map(|e| ConflictReport {
                    a: e.a,
                    b: e.b,
                    kinds: e.kinds.iter().map(|k| k.label().to_string()).collect(),
                })
                .collect(),
            self_interfering: inter.self_interfering.clone(),
            write_only_relations: inter
                .write_only
                .iter()
                .map(|&r| syms.rel_name(r).to_string())
                .collect(),
            read_only_relations: inter
                .read_only
                .iter()
                .map(|&r| syms.rel_name(r).to_string())
                .collect(),
        }
    }

    /// Serializes to pretty JSON (golden-file friendly: trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Renders the human-readable summary of `ndl analyze --schedule`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "schedule: {} statement(s), {} scheduled, {} stage(s), width {}\n",
            self.statements,
            self.scheduled,
            self.stages.len(),
            self.width
        ));
        for (i, stage) in self.stages.iter().enumerate() {
            let members: Vec<String> = stage.iter().map(|s| format!("s{s}")).collect();
            let tag = if stage.len() > 1 { " [parallel]" } else { "" };
            out.push_str(&format!("  stage {}: {}{}\n", i, members.join(" "), tag));
        }
        for c in &self.conflicts {
            out.push_str(&format!(
                "  conflict s{} -- s{}: {}\n",
                c.a,
                c.b,
                c.kinds.join(", ")
            ));
        }
        if !self.self_interfering.is_empty() {
            let v: Vec<String> = self
                .self_interfering
                .iter()
                .map(|s| format!("s{s}"))
                .collect();
            out.push_str(&format!("  self-interfering: {}\n", v.join(" ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProgramGraphs;
    use crate::program::parse_program;

    fn analyze(src: &str) -> (SymbolTable, InterferenceAnalysis, Vec<usize>) {
        let mut syms = SymbolTable::new();
        let (stmts, errs) = parse_program(&mut syms, src);
        assert!(errs.is_empty(), "{errs:?}");
        let graphs = ProgramGraphs::build(&mut syms, &stmts);
        let inter = InterferenceAnalysis::of(&graphs, &stmts);
        let order: Vec<usize> = (0..stmts.len()).collect();
        (syms, inter, order)
    }

    #[test]
    fn independent_statements_share_a_stage() {
        let (_, inter, order) = analyze("S(x) -> R(x)\nT(x) -> U(x)\n");
        let sched = build_schedule(&inter, &order);
        assert_eq!(sched.stages, vec![vec![0, 1]]);
        assert_eq!(sched.width(), 2);
    }

    #[test]
    fn conflicting_statements_split_stages() {
        let (_, inter, order) = analyze("S(x) -> R(x)\nT(x) -> R(x)\n");
        let sched = build_schedule(&inter, &order);
        assert_eq!(sched.stages, vec![vec![0], vec![1]]);
        assert_eq!(sched.width(), 1);
    }

    #[test]
    fn self_interfering_statement_is_a_singleton_stage() {
        // Statements 0 and 2 are mutually independent, but 1 is
        // self-interfering (transitive closure) and must stand alone —
        // contiguity then forces 2 into its own stage too.
        let (_, inter, order) = analyze("S(x) -> R(x)\nV(x,y) & V(y,z) -> V(x,z)\nT(x) -> U(x)\n");
        let sched = build_schedule(&inter, &order);
        assert_eq!(sched.stages, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn facts_and_egds_are_skipped() {
        let (_, inter, order) = analyze("fact: S(a)\nS(x) -> R(x)\nT(x) -> U(x)\n");
        let sched = build_schedule(&inter, &order);
        assert_eq!(sched.stages, vec![vec![1, 2]]);
        assert_eq!(sched.flattened(), vec![1, 2]);
    }

    #[test]
    fn schedule_flattens_to_firing_order() {
        let (_, inter, order) = analyze("S(x) -> R(x)\nR(x) -> T(x)\nT(x) -> U(x)\nS(x) -> W(x)\n");
        let sched = build_schedule(&inter, &order);
        let flat = sched.flattened();
        let expect: Vec<usize> = order
            .iter()
            .copied()
            .filter(|s| inter.scheduled.contains(s))
            .collect();
        assert_eq!(flat, expect);
    }

    #[test]
    fn report_round_trips_names_and_width() {
        let (syms, inter, order) = analyze("S(x) -> R(x)\nT(x) -> U(x)\n");
        let sched = build_schedule(&inter, &order);
        let rep = ScheduleReport::of(&syms, 2, &inter, &sched);
        assert_eq!(rep.width, 2);
        assert_eq!(rep.scheduled, 2);
        assert_eq!(rep.read_only_relations, vec!["S", "T"]);
        assert_eq!(rep.write_only_relations, vec!["R", "U"]);
        let json = rep.to_json();
        assert!(json.contains("\"width\": 2"));
        let text = rep.render();
        assert!(text.contains("stage 0: s0 s1 [parallel]"));
    }
}
