//! Chase cost bounds and the [`ChaseAnalysis`] handed to `ndl-chase`.
//!
//! The cost model assigns every position a **value degree** `vdeg(p)`:
//! the chase can place at most `O(n^vdeg(p))` distinct values at position
//! `p` when the source has `n` facts. Source positions start at degree 1;
//! a head position copying variable `x` inherits the smallest degree among
//! `x`'s body positions; a Skolem-term position sums the degrees of the
//! variables inside the term (distinct argument tuples multiply, so
//! degrees add). The **trigger degree** of a clause sums the value degrees
//! of its distinct body variables, bounding its firings; the maximum over
//! all clauses bounds the chase size (and work) polynomial. The fixpoint
//! converges for richly acyclic programs; when it does not (degrees keep
//! growing through a special cycle), the bound is reported as `None`.

use crate::dataflow::{DataflowAnalysis, DataflowSummary};
use crate::graph::{ClauseView, ProgramGraphs};
use crate::interference::InterferenceAnalysis;
use crate::program::Statement;
use crate::schedule::ScheduleReport;
use crate::termination::{Termination, TerminationClass};
use ndl_chase::{ChasePlan, DataflowCert, ParallelSchedule};
use ndl_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Degrees never exceed this cap; hitting it means divergence.
const DEGREE_CAP: usize = 64;

/// Polynomial degree bounds for the chase of a program.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// `vdeg` per position of the position graph (meaningful only when
    /// `size_degree` is `Some`).
    pub position_degrees: Vec<usize>,
    /// Degree of the chase-size/work polynomial: `O(n^d)` for a source of
    /// `n` facts. `None` when the fixpoint diverged (the oblivious chase
    /// is not polynomially bounded).
    pub size_degree: Option<usize>,
    /// Widest clause body (number of atoms) — join width.
    pub max_body_atoms: usize,
}

impl CostModel {
    /// Computes the degree fixpoint over the program's clauses.
    pub fn of(graphs: &ProgramGraphs) -> CostModel {
        let pg = &graphs.positions;
        let ids: BTreeMap<(RelId, usize), usize> = pg
            .positions
            .iter()
            .enumerate()
            .map(|(i, &rp)| (rp, i))
            .collect();
        let n = pg.positions.len();
        let mut vdeg = vec![1usize; n];
        let max_body_atoms = graphs
            .clauses
            .iter()
            .map(|c| c.clause.body.len())
            .max()
            .unwrap_or(0);
        let rounds_cap = n + graphs.skolem.funcs.len() + 8;
        let mut converged = graphs.clauses.is_empty();
        // Variable-to-body-position maps are round-invariant; building them
        // once keeps the fixpoint linear in rounds × head positions.
        let clause_body_pos: Vec<_> = graphs
            .clauses
            .iter()
            .map(|cv| body_positions(cv, &ids))
            .collect();
        for _ in 0..rounds_cap {
            let mut changed = false;
            for (cv, body_pos) in graphs.clauses.iter().zip(&clause_body_pos) {
                let minv = |x: VarId, vdeg: &[usize]| {
                    body_pos
                        .get(&x)
                        .into_iter()
                        .flatten()
                        .map(|&p| vdeg[p])
                        .min()
                        .unwrap_or(1)
                };
                for ta in &cv.clause.head {
                    for (i, t) in ta.args.iter().enumerate() {
                        let Some(&q) = ids.get(&(ta.rel, i)) else {
                            continue;
                        };
                        let cand = match t {
                            Term::Var(x) => minv(*x, &vdeg),
                            t @ Term::App(..) => {
                                let mut funcs = BTreeSet::new();
                                let mut vars = BTreeSet::new();
                                collect(t, &mut funcs, &mut vars);
                                vars.iter().map(|&x| minv(x, &vdeg)).sum()
                            }
                        };
                        let cand = cand.min(DEGREE_CAP);
                        if cand > vdeg[q] {
                            vdeg[q] = cand;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        let size_degree = if converged && vdeg.iter().all(|&d| d < DEGREE_CAP) {
            let max_tdeg = graphs
                .clauses
                .iter()
                .map(|cv| {
                    let body_pos = body_positions(cv, &ids);
                    body_pos
                        .values()
                        .map(|ps| ps.iter().map(|&p| vdeg[p]).min().unwrap_or(1))
                        .sum::<usize>()
                })
                .max()
                .unwrap_or(0);
            Some(max_tdeg.max(1))
        } else {
            None
        };
        CostModel {
            position_degrees: vdeg,
            size_degree,
            max_body_atoms,
        }
    }
}

fn body_positions(
    cv: &ClauseView,
    ids: &BTreeMap<(RelId, usize), usize>,
) -> BTreeMap<VarId, BTreeSet<usize>> {
    let mut out: BTreeMap<VarId, BTreeSet<usize>> = BTreeMap::new();
    for a in &cv.clause.body {
        for (i, &v) in a.args.iter().enumerate() {
            if let Some(&p) = ids.get(&(a.rel, i)) {
                out.entry(v).or_default().insert(p);
            }
        }
    }
    out
}

fn collect(t: &Term, funcs: &mut BTreeSet<FuncId>, vars: &mut BTreeSet<VarId>) {
    match t {
        Term::Var(v) => {
            vars.insert(*v);
        }
        Term::App(f, args) => {
            funcs.insert(*f);
            for a in args {
                collect(a, funcs, vars);
            }
        }
    }
}

/// The complete semantic analysis of a program: graphs, termination class,
/// cost bounds and a statement firing order — everything the lint rules
/// and the chase engines consume.
#[derive(Debug)]
pub struct ChaseAnalysis {
    /// The dependency graphs and flattened clauses.
    pub graphs: ProgramGraphs,
    /// The termination verdict.
    pub termination: Termination,
    /// The cost bounds.
    pub cost: CostModel,
    /// Producer-before-consumer statement order (cycles broken by source
    /// order) — the chase plan's firing order.
    pub firing_order: Vec<usize>,
    /// Per-statement read/write/Skolem footprints and the statement
    /// conflict graph.
    pub interference: InterferenceAnalysis,
    /// Whole-mapping dataflow: reachability, liveness, groundness and
    /// position provenance — the source of the NDL040–NDL045 lints and
    /// the [`DataflowCert`] of [`Self::tgd_plan`].
    pub dataflow: DataflowAnalysis,
    /// The contiguous conflict-free stratification of the firing order,
    /// in **statement-index** space ([`Self::tgd_plan`] remaps it to tgd
    /// positions for the fixpoint engine).
    pub schedule: ParallelSchedule,
}

impl ChaseAnalysis {
    /// Analyzes parsed statements. Skolemization interns fresh function
    /// symbols into `syms`.
    pub fn analyze(syms: &mut SymbolTable, stmts: &[Statement]) -> ChaseAnalysis {
        let graphs = ProgramGraphs::build(syms, stmts);
        let termination = Termination::of(&graphs, syms);
        let cost = CostModel::of(&graphs);
        let firing_order = firing_order(&graphs);
        let interference = InterferenceAnalysis::of(&graphs, stmts);
        let schedule = crate::schedule::build_schedule(&interference, &firing_order);
        let dataflow = DataflowAnalysis::of(&graphs, stmts);
        ChaseAnalysis {
            graphs,
            termination,
            cost,
            firing_order,
            interference,
            dataflow,
            schedule,
        }
    }

    /// Convenience: parses and analyzes a program source. Parse errors are
    /// returned alongside (malformed statements are skipped, as in
    /// [`crate::lint_source`]).
    pub fn analyze_source(syms: &mut SymbolTable, src: &str) -> (ChaseAnalysis, usize) {
        let (stmts, errs) = crate::program::parse_program(syms, src);
        (ChaseAnalysis::analyze(syms, &stmts), errs.len())
    }

    /// Derives the [`ChasePlan`] for the chase engines: firing order from
    /// the analysis, termination guarantee iff the program is richly
    /// acyclic (the engines' fixpoint semantics is oblivious), the size
    /// degree for index pre-sizing, and `budget` as the step budget for
    /// programs without a guarantee.
    pub fn plan(&self, budget: Option<usize>) -> ChasePlan {
        let guaranteed = self.termination.class == TerminationClass::RichlyAcyclic;
        ChasePlan {
            order: self.firing_order.clone(),
            guaranteed_terminating: guaranteed,
            size_degree: self.cost.size_degree.unwrap_or(1),
            step_budget: if guaranteed { None } else { budget },
            diagnosis: self.termination.diagnosis(),
            schedule: None,
            cert: None,
        }
    }

    /// The program's tgd statements as SO tgds for the fixpoint chase,
    /// each paired with the index of the statement it came from. Reuses
    /// the analyzer's Skolemized clauses — re-Skolemizing the source would
    /// intern *fresh* function symbols, so the chase's nulls would no
    /// longer line up with the analyzer's Skolem graph. Non-tgd statements
    /// (facts, egds, parse failures) contribute nothing.
    pub fn so_tgds(&self) -> Vec<(usize, SoTgd)> {
        let mut by_stmt: BTreeMap<usize, Vec<SoClause>> = BTreeMap::new();
        for cv in &self.graphs.clauses {
            by_stmt.entry(cv.stmt).or_default().push(cv.clause.clone());
        }
        by_stmt
            .into_iter()
            .map(|(stmt, clauses)| {
                let mut funcs = BTreeSet::new();
                let mut vars = BTreeSet::new();
                for c in &clauses {
                    for (l, r) in &c.equalities {
                        collect(l, &mut funcs, &mut vars);
                        collect(r, &mut funcs, &mut vars);
                    }
                    for ta in &c.head {
                        for t in &ta.args {
                            collect(t, &mut funcs, &mut vars);
                        }
                    }
                }
                (
                    stmt,
                    SoTgd::new(funcs.into_iter().collect::<Vec<_>>(), clauses),
                )
            })
            .collect()
    }

    /// The [`ChasePlan`] for the tgd list of [`Self::so_tgds`]: like
    /// [`Self::plan`], but with the firing order remapped from statement
    /// indices to positions in that list (the fixpoint engine indexes its
    /// tgd slice, not the program's statements).
    pub fn tgd_plan(&self, budget: Option<usize>) -> ChasePlan {
        let stmts: BTreeSet<usize> = self.graphs.clauses.iter().map(|cv| cv.stmt).collect();
        let pos: BTreeMap<usize, usize> = stmts.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut plan = self.plan(budget);
        plan.order = self
            .firing_order
            .iter()
            .filter_map(|s| pos.get(s).copied())
            .collect();
        plan.schedule = Some(ParallelSchedule {
            stages: self
                .schedule
                .stages
                .iter()
                .map(|stage| stage.iter().filter_map(|s| pos.get(s).copied()).collect())
                .collect(),
        });
        plan.cert = Some(DataflowCert {
            dead: self
                .dataflow
                .dead
                .iter()
                .filter_map(|s| pos.get(s).copied())
                .collect(),
            ground: self.dataflow.ground.clone(),
        });
        plan
    }

    /// The schedule report of `ndl analyze --schedule`.
    pub fn schedule_report(&self, syms: &SymbolTable) -> ScheduleReport {
        ScheduleReport::of(
            syms,
            self.graphs.statements,
            &self.interference,
            &self.schedule,
        )
    }

    /// Graphviz DOT rendering of the statement conflict graph
    /// (`ndl analyze --dot=conflicts`).
    pub fn conflict_dot(&self, syms: &SymbolTable) -> String {
        self.interference.to_dot(syms)
    }

    /// The dataflow report of `ndl analyze --dataflow`.
    pub fn dataflow_summary(&self, syms: &SymbolTable) -> DataflowSummary {
        self.dataflow.summary(syms, &self.graphs)
    }

    /// Graphviz DOT rendering of the relation-level dataflow graph
    /// (`ndl analyze --dot=dataflow`).
    pub fn dataflow_dot(&self, syms: &SymbolTable) -> String {
        self.dataflow.to_dot(syms, &self.graphs)
    }

    /// The machine-readable report (`ndl analyze --json`), with all
    /// symbols resolved to names.
    pub fn report(&self, syms: &SymbolTable) -> AnalysisReport {
        let pg = &self.graphs.positions;
        AnalysisReport {
            statements: self.graphs.statements,
            analyzed_statements: self.graphs.analyzed.len(),
            clauses: self.graphs.clauses.len(),
            positions: pg.positions.len(),
            regular_edges: pg.edges.iter().filter(|e| !e.special).count(),
            special_edges_wa: pg.edges.iter().filter(|e| e.special && e.in_wa).count(),
            special_edges_ra: pg.edges.iter().filter(|e| e.special).count(),
            class: self.termination.class.as_str().to_string(),
            witness: self.termination.witness_rendered.clone(),
            max_rank: self.termination.max_rank,
            size_degree: self.cost.size_degree,
            max_body_atoms: self.cost.max_body_atoms,
            relation_depths: self
                .termination
                .relation_depths
                .iter()
                .map(|&(rel, depth)| RelationDepth {
                    relation: syms.rel_name(rel).to_string(),
                    depth,
                })
                .collect(),
            skolem_functions: self
                .graphs
                .skolem
                .funcs
                .iter()
                .map(|f| SkolemFunctionReport {
                    function: syms.func_name(f.func).to_string(),
                    statement: f.stmt,
                    fan_in: f.fan_in,
                    fan_out: f.fan_out,
                })
                .collect(),
            skolem_edges: self.graphs.skolem.edges.len(),
            firing_order: self.firing_order.clone(),
        }
    }

    /// Graphviz DOT rendering of both dependency graphs.
    pub fn to_dot(&self, syms: &SymbolTable) -> String {
        self.graphs.to_dot(syms)
    }
}

/// Producer-before-consumer order over all statements: statement `s`
/// precedes `t` when a head relation of `s` is read by `t`'s body. Kahn's
/// algorithm with smallest-index tie-breaking; cycles (recursive programs)
/// are broken at the smallest remaining index, so the order is total,
/// deterministic and stable for acyclic programs.
fn firing_order(graphs: &ProgramGraphs) -> Vec<usize> {
    let n = graphs.statements;
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut indeg = vec![0usize; n];
    for (&s, (_, heads)) in &graphs.stmt_rels {
        for (&t, (bodies, _)) in &graphs.stmt_rels {
            if s != t && heads.intersection(bodies).next().is_some() && succs[s].insert(t) {
                indeg[t] += 1;
            }
        }
    }
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .copied()
            .find(|&s| indeg[s] == 0)
            .unwrap_or_else(|| *remaining.iter().next().expect("nonempty"));
        remaining.remove(&next);
        order.push(next);
        for &t in &succs[next] {
            if remaining.contains(&t) {
                indeg[t] = indeg[t].saturating_sub(1);
            }
        }
    }
    order
}

/// Null-generation depth of one relation (see [`AnalysisReport`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationDepth {
    /// Relation name.
    pub relation: String,
    /// Maximum rank over the relation's positions.
    pub depth: usize,
}

/// Metrics of one Skolem function (see [`AnalysisReport`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkolemFunctionReport {
    /// Function name (as interned during Skolemization).
    pub function: String,
    /// Statement introducing the function (0-based).
    pub statement: usize,
    /// Distinct body positions feeding the function's arguments.
    pub fan_in: usize,
    /// Distinct positions its terms can reach.
    pub fan_out: usize,
}

impl AnalysisReport {
    /// Pretty-printed JSON (the `ndl analyze --json` output).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports serialize infallibly")
    }

    /// Parses a report back from [`AnalysisReport::to_json`] output.
    pub fn from_json(text: &str) -> std::result::Result<AnalysisReport, serde::Error> {
        serde_json::from_str(text)
    }
}

/// The serializable analysis report emitted by `ndl analyze --json`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Statements in the program.
    pub statements: usize,
    /// Statements that entered the analysis.
    pub analyzed_statements: usize,
    /// Skolemized clauses.
    pub clauses: usize,
    /// Position-graph nodes.
    pub positions: usize,
    /// Regular (value-copying) edges.
    pub regular_edges: usize,
    /// Special edges under the weak-acyclicity rule.
    pub special_edges_wa: usize,
    /// Special edges under the rich-acyclicity rule (a superset).
    pub special_edges_ra: usize,
    /// Termination class: `richly-acyclic`, `weakly-acyclic` or `cyclic`.
    pub class: String,
    /// Rendered special-edge cycle witnessing a negative verdict.
    pub witness: Vec<String>,
    /// Maximum position rank (`None` when cyclic).
    pub max_rank: Option<usize>,
    /// Chase-size polynomial degree (`None` when unbounded).
    pub size_degree: Option<usize>,
    /// Widest clause body.
    pub max_body_atoms: usize,
    /// Per-relation null-generation depths (positive only).
    pub relation_depths: Vec<RelationDepth>,
    /// Skolem functions with fan-in/fan-out.
    pub skolem_functions: Vec<SkolemFunctionReport>,
    /// Edges of the Skolem dependency graph.
    pub skolem_edges: usize,
    /// Producer-before-consumer statement order.
    pub firing_order: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (SymbolTable, ChaseAnalysis) {
        let mut syms = SymbolTable::new();
        let (a, _) = ChaseAnalysis::analyze_source(&mut syms, src);
        (syms, a)
    }

    #[test]
    fn copy_program_has_degree_one() {
        let (_syms, a) = analyze("S(x,y) -> R(x,y)\n");
        // One clause, two distinct body variables at degree 1 each: the
        // trigger polynomial is O(n^2), values stay degree 1.
        assert_eq!(a.cost.size_degree, Some(2));
        assert!(a.cost.position_degrees.iter().all(|&d| d == 1));
    }

    #[test]
    fn transitive_closure_degree() {
        let (_syms, a) = analyze("E(x,y) & E(y,z) -> E(x,z)\n");
        // Three body variables, each degree 1: O(n^3) triggers.
        assert_eq!(a.cost.size_degree, Some(3));
        assert_eq!(a.cost.max_body_atoms, 2);
    }

    #[test]
    fn skolem_degrees_add() {
        let (_syms, a) = analyze("S(x,y) -> exists z T(z)\nT(x) -> U(x)\n");
        // z Skolemizes to f(x,y): degree 1 + 1 = 2 distinct nulls at T.1,
        // copied to U.1.
        assert_eq!(a.cost.size_degree, Some(2));
        assert!(a.cost.position_degrees.contains(&2));
    }

    #[test]
    fn oblivious_divergence_has_no_degree() {
        let (_syms, a) = analyze("R(x,y) -> exists z R(x,z)\n");
        // Weakly acyclic, not richly: vdeg(R.2) grows through the Skolem
        // sum — no polynomial bound for the oblivious chase.
        assert_eq!(a.termination.class, TerminationClass::WeaklyAcyclic);
        assert_eq!(a.cost.size_degree, None);
    }

    #[test]
    fn firing_order_is_topological() {
        let (_syms, a) = analyze("T(x) -> U(x)\nS(x) -> T(x)\nP(x) -> S(x)\n");
        assert_eq!(a.firing_order, vec![2, 1, 0]);
    }

    #[test]
    fn firing_order_breaks_cycles_deterministically() {
        // Statements 0 and 1 feed each other; 2 is independent with no
        // incoming edges, so it goes first, then the cycle breaks at 0.
        let (_syms, a) = analyze("A(x) -> B(x)\nB(x) -> A(x)\nC(x) -> D(x)\n");
        assert_eq!(a.firing_order, vec![2, 0, 1]);
    }

    #[test]
    fn plan_reflects_class() {
        let (_syms, ra) = analyze("S(x) -> exists y T(x,y)\n");
        let p = ra.plan(Some(100));
        assert!(p.guaranteed_terminating);
        assert_eq!(p.step_budget, None);
        assert!(p.diagnosis.is_none());

        let (_syms, cyc) = analyze("E(x,y) -> exists z E(y,z)\n");
        let p = cyc.plan(Some(100));
        assert!(!p.guaranteed_terminating);
        assert_eq!(p.step_budget, Some(100));
        assert!(p.diagnosis.unwrap().contains("not weakly acyclic"));
    }

    #[test]
    fn so_tgds_and_tgd_plan_line_up() {
        let (_syms, a) = analyze("fact: S(a)\nT(x) -> exists z U(x,z)\nS(x) -> T(x)\n");
        let tgds = a.so_tgds();
        // Statements 1 and 2 are tgds; the fact contributes nothing.
        assert_eq!(tgds.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2]);
        // The Skolemized clause reuses the analyzer's function symbol.
        assert_eq!(tgds[0].1.funcs.len(), 1);
        assert_eq!(
            tgds[0].1.funcs[0], a.graphs.skolem.funcs[0].func,
            "so_tgds must not re-Skolemize"
        );
        // Statement firing order is producer-first (2 before 1); the tgd
        // plan remaps it to positions in the tgd list: [1, 0].
        assert_eq!(a.firing_order, vec![0, 2, 1]);
        let plan = a.tgd_plan(None);
        assert_eq!(plan.order, vec![1, 0]);
        assert!(plan.guaranteed_terminating);
    }

    #[test]
    fn tgd_plan_attaches_a_remapped_dataflow_cert() {
        let (_syms, a) = analyze("fact: S(a)\nZ(x) -> W(x)\nS(x) -> T(x)\n");
        assert_eq!(a.dataflow.dead, BTreeSet::from([1]));
        // Statement 1 is the first tgd in the so_tgds list: index 0.
        let plan = a.tgd_plan(None);
        let cert = plan.cert.expect("tgd_plan attaches the cert");
        assert_eq!(cert.dead, BTreeSet::from([0]));
        assert!(!cert.ground.is_empty(), "no nulls anywhere: all ground");
        // The statement-space plan stays cert-free (indices would not
        // line up with an engine's tgd slice).
        assert_eq!(a.plan(None).cert, None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let (syms, a) = analyze("S(x) -> exists y (R(x,y) & T(y,x))\nfact: S(a)\n");
        let report = a.report(&syms);
        assert_eq!(report.class, "richly-acyclic");
        assert_eq!(report.statements, 2);
        assert_eq!(report.skolem_functions.len(), 1);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
