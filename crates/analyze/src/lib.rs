//! # ndl-analyze
//!
//! Static analysis and linting for nested-dependency programs, built on the
//! dependency classes of *Nested Dependencies: Structure and Reasoning*
//! (PODS 2014):
//!
//! - [`diagnostic`] — spanned diagnostics with stable `NDL0xx` codes,
//!   severities, byte-span → line/column resolution and a rustc-like
//!   human renderer;
//! - [`program`] — line-oriented dependency programs: statement splitting,
//!   kind prefixes (`tgd:`, `so:`, `egd:`, `fact:`) and auto-detection;
//! - [`rules`] — the lint rules: every `ndl-core` validation error lifted
//!   to a spanned diagnostic, plus analyzer-only rules for unused
//!   existentials, non-normalized statements (Section 3 of the paper),
//!   nesting/Skolem-arity explosion and cyclic null structure of the
//!   critical-instance chase (Section 4);
//! - [`graph`] — the semantic layer's data structures: the position graph
//!   (regular and special edges under both the weak- and rich-acyclicity
//!   rules) and the Skolem dependency graph, with Graphviz DOT output;
//! - [`termination`] — the three-way chase-termination classification
//!   (richly acyclic / weakly acyclic / cyclic) with witness cycles,
//!   position ranks and per-relation null-generation depths;
//! - [`cost`] — polynomial chase-size bounds from a value-degree fixpoint,
//!   and [`ChaseAnalysis`]: the bundle of graphs, termination verdict,
//!   cost model and firing order consumed by the NDL020–NDL025 lints, the
//!   `ndl analyze` subcommand and the chase engines in `ndl-chase`;
//! - [`footprint`] — per-statement read/write/Skolem footprints, the
//!   shared vocabulary of the interference and dataflow passes;
//! - [`interference`] — the statement conflict graph over footprints
//!   (W–W, R–W and shared-null-factory edges), behind the NDL031–NDL033
//!   lints and `--dot=conflicts`;
//! - [`dataflow`] — whole-mapping dataflow: relation reachability from
//!   populated sources, statement liveness, relation groundness and
//!   position-level provenance, behind the NDL040–NDL045 lints,
//!   `ndl analyze --dataflow` / `--dot=dataflow` and the
//!   [`ndl_chase::DataflowCert`] the chase engines verify and exploit;
//! - [`schedule`] — contiguous conflict-free stratification of the firing
//!   order into a `ParallelSchedule` (the certificate checked and executed
//!   by `ndl-chase`'s stage-parallel engine) and the JSON
//!   [`ScheduleReport`] of `ndl analyze --schedule`.
//!
//! ## Quick example
//!
//! ```
//! use ndl_analyze::{lint_source, LintOptions, Severity};
//! use ndl_core::prelude::SymbolTable;
//!
//! let mut syms = SymbolTable::new();
//! let diags = lint_source(
//!     &mut syms,
//!     "forall x,z (S(x) -> R(x))\n",
//!     &LintOptions::default(),
//! );
//! assert_eq!(diags[0].code, "NDL002"); // unsafe variable z
//! assert_eq!(diags[0].severity, Severity::Error);
//! assert_eq!((diags[0].line, diags[0].col), (Some(1), Some(10)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod dataflow;
pub mod diagnostic;
pub mod footprint;
pub mod graph;
pub mod interference;
pub mod program;
pub mod rules;
pub mod schedule;
pub mod termination;

pub use cost::{AnalysisReport, ChaseAnalysis, CostModel};
pub use dataflow::{DataflowAnalysis, DataflowSummary};
pub use diagnostic::{render, summary, Diagnostic, LineIndex, Note, Severity};
pub use footprint::ProgramFootprints;
pub use graph::{PositionGraph, ProgramGraphs, SkolemGraph};
pub use interference::{ConflictEdge, ConflictKind, Footprint, InterferenceAnalysis};
pub use program::{parse_program, Statement, StmtAst};
pub use rules::{lint_source, LintOptions};
pub use schedule::{build_schedule, ConflictReport, ScheduleReport};
pub use termination::{Termination, TerminationClass};

/// Serializes diagnostics to pretty-printed JSON (an array of objects).
pub fn to_json(diags: &[Diagnostic]) -> String {
    serde_json::to_string_pretty(&diags.to_vec()).expect("diagnostics serialize infallibly")
}

/// Parses diagnostics back from [`to_json`] output.
pub fn from_json(text: &str) -> Result<Vec<Diagnostic>, serde::Error> {
    serde_json::from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndl_core::prelude::SymbolTable;

    #[test]
    fn json_round_trips() {
        let mut syms = SymbolTable::new();
        let diags = lint_source(
            &mut syms,
            "forall x,z (S(x) -> R(x))\nS(x) -> exists y R(x)\n",
            &LintOptions::default(),
        );
        assert!(!diags.is_empty());
        let json = to_json(&diags);
        assert!(json.contains("\"NDL002\""));
        assert!(json.contains("\"error\""));
        let back = from_json(&json).unwrap();
        assert_eq!(back, diags);
    }
}
