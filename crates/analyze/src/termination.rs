//! Chase-termination classes from the position graph.
//!
//! - **Richly acyclic** (Hernich–Schweikardt): no cycle through a special
//!   edge even when special edges start at *every* universal body
//!   position. The oblivious chase — including the fixpoint engine in
//!   `ndl-chase` — terminates on every instance, in polynomially many
//!   steps.
//! - **Weakly acyclic** (Fagin–Kolaitis–Miller–Popa): no special-edge
//!   cycle when special edges start only at body positions of universals
//!   that are copied to the head. The *restricted* chase terminates; the
//!   oblivious chase may diverge (e.g. `T(x) -> exists y T(y)`).
//! - **Cyclic**: a special-edge cycle exists even under the weak rule —
//!   no chase variant is guaranteed to terminate, and the cycle is
//!   reported as a witness (NDL020).
//!
//! Rich acyclicity implies weak acyclicity, so the classes are ordered.

use crate::graph::{PosEdge, ProgramGraphs};
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// The three-way termination classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TerminationClass {
    /// Every chase variant terminates (position graph richly acyclic).
    RichlyAcyclic,
    /// The restricted chase terminates; the oblivious chase may not.
    WeaklyAcyclic,
    /// Not weakly acyclic: termination is not guaranteed at all.
    Cyclic,
}

impl TerminationClass {
    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            TerminationClass::RichlyAcyclic => "richly-acyclic",
            TerminationClass::WeaklyAcyclic => "weakly-acyclic",
            TerminationClass::Cyclic => "cyclic",
        }
    }
}

/// The termination verdict for a program, with its witness when negative.
#[derive(Clone, Debug)]
pub struct Termination {
    /// The class.
    pub class: TerminationClass,
    /// For [`TerminationClass::Cyclic`], the special-edge cycle of the
    /// weak-acyclicity graph; for [`TerminationClass::WeaklyAcyclic`], the
    /// special-edge cycle of the rich-acyclicity graph that rules out
    /// rich acyclicity. Empty for richly acyclic programs. The first edge
    /// is the special one; the rest close the cycle.
    pub witness: Vec<PosEdge>,
    /// The same cycle rendered as `R.1 =f=> R.2 (statement 3)` strings.
    pub witness_rendered: Vec<String>,
    /// Maximum position rank — the deepest null-over-null creation chain.
    /// `None` when the program is cyclic (ranks are unbounded).
    pub max_rank: Option<usize>,
    /// Per-relation null-generation depth: the maximum rank over the
    /// relation's positions. Only relations with a positive depth appear.
    pub relation_depths: Vec<(RelId, usize)>,
}

impl Termination {
    /// Classifies the program behind `graphs`.
    pub fn of(graphs: &ProgramGraphs, syms: &SymbolTable) -> Termination {
        let pg = &graphs.positions;
        let (class, witness) = match pg.special_cycle(true) {
            Some(cycle) => (TerminationClass::Cyclic, cycle),
            None => match pg.special_cycle(false) {
                Some(cycle) => (TerminationClass::WeaklyAcyclic, cycle),
                None => (TerminationClass::RichlyAcyclic, Vec::new()),
            },
        };
        let witness_rendered = witness.iter().map(|e| pg.display_edge(syms, e)).collect();
        let witness: Vec<PosEdge> = witness.into_iter().cloned().collect();
        let (max_rank, relation_depths) = match pg.ranks() {
            None => (None, Vec::new()),
            Some(ranks) => {
                let mut depths: BTreeMap<RelId, usize> = BTreeMap::new();
                for (p, &(rel, _)) in pg.positions.iter().enumerate() {
                    let d = depths.entry(rel).or_insert(0);
                    *d = (*d).max(ranks[p]);
                }
                (
                    Some(ranks.iter().copied().max().unwrap_or(0)),
                    depths.into_iter().filter(|&(_, d)| d > 0).collect(),
                )
            }
        };
        Termination {
            class,
            witness,
            witness_rendered,
            max_rank,
            relation_depths,
        }
    }

    /// One-line explanation of a negative verdict (used as the chase
    /// plan's diagnosis and in NDL020/NDL021 messages); `None` when the
    /// program is richly acyclic.
    pub fn diagnosis(&self) -> Option<String> {
        let cycle = self.witness_rendered.join(", ");
        match self.class {
            TerminationClass::RichlyAcyclic => None,
            TerminationClass::WeaklyAcyclic => Some(format!(
                "weakly but not richly acyclic: the oblivious chase may diverge \
                 (special-edge cycle {cycle})"
            )),
            TerminationClass::Cyclic => Some(format!(
                "not weakly acyclic: chase termination is not guaranteed \
                 (special-edge cycle {cycle})"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parse_program;

    fn classify(src: &str) -> Termination {
        let mut syms = SymbolTable::new();
        let (stmts, _) = parse_program(&mut syms, src);
        let g = ProgramGraphs::build(&mut syms, &stmts);
        Termination::of(&g, &syms)
    }

    #[test]
    fn source_to_target_programs_are_richly_acyclic() {
        let t = classify("S(x,y) -> exists z (R(x,z) & T(z,y))\nfact: S(a,b)\n");
        assert_eq!(t.class, TerminationClass::RichlyAcyclic);
        assert!(t.witness.is_empty());
        assert_eq!(t.max_rank, Some(1));
        assert!(t.diagnosis().is_none());
    }

    #[test]
    fn blind_recursion_is_weakly_acyclic_only() {
        let t = classify("T(x) -> exists y T(y)\n");
        assert_eq!(t.class, TerminationClass::WeaklyAcyclic);
        assert!(!t.witness.is_empty());
        assert!(t.diagnosis().unwrap().contains("oblivious"));
        assert_eq!(t.max_rank, Some(0));
    }

    #[test]
    fn propagating_recursion_is_cyclic() {
        let t = classify("E(x,y) -> exists z E(y,z)\n");
        assert_eq!(t.class, TerminationClass::Cyclic);
        assert!(t.witness[0].special);
        assert_eq!(t.max_rank, None);
        let d = t.diagnosis().unwrap();
        assert!(d.contains("not weakly acyclic"), "{d}");
        assert!(d.contains("E.2"), "{d}");
    }

    #[test]
    fn two_statement_cycle_is_found() {
        // R(x) -> exists y E(x,y); E(x,y) -> R(y): classic non-WA pair.
        let t = classify("R(x) -> exists y E(x,y)\nE(x,y) -> R(y)\n");
        assert_eq!(t.class, TerminationClass::Cyclic);
        // The witness cycle visits both statements.
        let stmts: std::collections::BTreeSet<usize> = t.witness.iter().map(|e| e.stmt).collect();
        assert_eq!(stmts.len(), 2, "{:?}", t.witness_rendered);
    }

    #[test]
    fn classes_are_ordered() {
        assert!(TerminationClass::RichlyAcyclic < TerminationClass::WeaklyAcyclic);
        assert!(TerminationClass::WeaklyAcyclic < TerminationClass::Cyclic);
    }
}
