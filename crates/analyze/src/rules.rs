//! The lint rules: core validation lifted to spanned diagnostics, plus the
//! analyzer-only NDL01x rules over well-formed statements.
//!
//! | code   | severity | finding |
//! |--------|----------|---------|
//! | NDL001–NDL007 | error | parse / validation errors (see `ndl_core::error`) |
//! | NDL010 | warning  | existential variable used by no head atom in scope |
//! | NDL011 | warning  | vacuous parts (subtrees asserting only ⊤) |
//! | NDL012 | warning  | statement splits into independent tgds (Section 3) |
//! | NDL013 | warning  | duplicate atom in a body or head |
//! | NDL014 | warning  | nesting depth exceeds the configured bound |
//! | NDL015 | warning  | Skolem arity exceeds the configured bound (Section 4) |
//! | NDL016 | warning  | critical-instance chase has cyclic nulls (Section 4) |
//! | NDL017 | info     | universal variable occurs in a single atom |

use crate::diagnostic::{Diagnostic, LineIndex, Severity};
use crate::program::{parse_program, Statement, StmtAst};
use ndl_chase::chase_mapping;
use ndl_core::parse::{locate_applied, locate_ident, locate_quantified};
use ndl_core::prelude::*;
use ndl_hom::IncidenceGraph;
use ndl_reasoning::{drop_vacuous_parts, split_independent_conjuncts};
use std::collections::{BTreeMap, BTreeSet};

/// NDL010: an existential variable no head atom in scope uses.
pub const UNUSED_EXISTENTIAL: &str = "NDL010";
/// NDL011: parts whose whole subtree asserts only ⊤.
pub const VACUOUS_PART: &str = "NDL011";
/// NDL012: the statement is not normalized — it splits into independent tgds.
pub const SPLITTABLE: &str = "NDL012";
/// NDL013: the same atom occurs twice in one body or head.
pub const DUPLICATE_ATOM: &str = "NDL013";
/// NDL014: nesting depth above the configured bound.
pub const DEEP_NESTING: &str = "NDL014";
/// NDL015: Skolem arity (number of visible universals) above the bound.
pub const SKOLEM_ARITY: &str = "NDL015";
/// NDL016: the chased critical instance has Berge-cyclic null structure.
pub const CYCLIC_NULLS: &str = "NDL016";
/// NDL017: a universal variable occurring in a single atom (projection only).
pub const SINGLETON_UNIVERSAL: &str = "NDL017";

/// Tunable thresholds of the analyzer.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// NDL014 fires when a nested tgd's depth exceeds this (default 4).
    /// Implication testing is exponential in nesting-related parameters
    /// (Section 4), so deep programs deserve a nudge.
    pub max_depth: usize,
    /// NDL015 fires when a part introduces existentials while seeing more
    /// than this many universal variables (default 5): each existential
    /// Skolemizes to a function of that arity, and f-block sizes grow with
    /// it (Section 4).
    pub max_skolem_arity: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            max_depth: 4,
            max_skolem_arity: 5,
        }
    }
}

/// Lints a dependency-program source: parses it into statements, validates
/// everything against one shared schema (so cross-statement arity and
/// source/target conflicts surface), runs the analyzer-only rules on
/// well-formed statements, and chases the critical instance of the overall
/// mapping for NDL016. Diagnostics come back ordered by position.
pub fn lint_source(syms: &mut SymbolTable, src: &str, opts: &LintOptions) -> Vec<Diagnostic> {
    let index = LineIndex::new(src);
    let (stmts, parse_errs) = parse_program(syms, src);
    let mut diags = Vec::new();
    for (i, e) in &parse_errs {
        diags.push(core_diag(e, &stmts[*i], syms, &index));
    }

    let mut schema = Schema::new();
    let mut clean_tgds = Vec::new();
    let mut clean_egds = Vec::new();
    for stmt in &stmts {
        let Some(ast) = &stmt.ast else { continue };
        let mut errs = Vec::new();
        match ast {
            StmtAst::Tgd(t) => t.check(&mut schema, &mut errs),
            StmtAst::So(t) => t.check(&mut schema, &mut errs),
            StmtAst::Egd(e) => e.check(&mut schema, &mut errs),
            StmtAst::Fact(f) => {
                if let Err(e) = schema.declare(f.rel, f.args.len(), Side::Source) {
                    errs.push(e);
                }
            }
        }
        let clean = errs.is_empty();
        for e in &errs {
            diags.push(core_diag(e, stmt, syms, &index));
        }
        if clean {
            match ast {
                StmtAst::Tgd(t) => {
                    tgd_lints(t, stmt, syms, opts, &index, &mut diags);
                    clean_tgds.push(t.clone());
                }
                StmtAst::Egd(e) => clean_egds.push(e.clone()),
                _ => {}
            }
        }
    }

    if !clean_tgds.is_empty() {
        if let Ok(m) = NestedMapping::new(clean_tgds, clean_egds) {
            check_critical_chase(&m, syms, &mut diags);
        }
    }

    diags.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                d.statement.unwrap_or(usize::MAX),
                d.span.map_or(usize::MAX, |s| s.start),
                d.code.clone(),
            )
        };
        key(a).cmp(&key(b))
    });
    diags
}

/// Lifts a [`CoreError`] of `stmt` to a spanned diagnostic.
fn core_diag(e: &CoreError, stmt: &Statement, syms: &SymbolTable, index: &LineIndex) -> Diagnostic {
    let mut d =
        Diagnostic::new(e.code(), Severity::Error, e.display(syms)).with_statement(stmt.index);
    if let Some(sp) = e.locate(syms, &stmt.text) {
        d = d.with_span(sp.offset_by(stmt.offset), index);
    }
    d
}

/// The analyzer-only rules over one well-formed nested tgd.
fn tgd_lints(
    t: &NestedTgd,
    stmt: &Statement,
    syms: &SymbolTable,
    opts: &LintOptions,
    index: &LineIndex,
    diags: &mut Vec<Diagnostic>,
) {
    let whole = Span::new(stmt.offset, stmt.offset + stmt.text.len());
    let anchor_var = |name: &str| {
        locate_quantified(&stmt.text, name, 0)
            .or_else(|| locate_ident(&stmt.text, name, 0))
            .map(|s| s.offset_by(stmt.offset))
    };
    let push = |diags: &mut Vec<Diagnostic>, code, sev, msg: String, span: Option<Span>| {
        let mut d = Diagnostic::new(code, sev, msg).with_statement(stmt.index);
        if let Some(sp) = span {
            d = d.with_span(sp, index);
        }
        diags.push(d);
    };

    // NDL010: existentials used by no head atom of their part or a descendant.
    for (pid, p) in t.parts().iter().enumerate() {
        if p.existentials.is_empty() {
            continue;
        }
        let mut used: BTreeSet<VarId> = head_vars(p);
        for d in t.descendants(pid) {
            used.extend(head_vars(t.part(d)));
        }
        for &v in &p.existentials {
            if !used.contains(&v) {
                let name = syms.var_name(v);
                push(
                    diags,
                    UNUSED_EXISTENTIAL,
                    Severity::Warning,
                    format!("existential variable {name} is used by no head atom in scope"),
                    anchor_var(name),
                );
            }
        }
    }

    // NDL011: subtrees asserting only ⊤.
    let dropped = t.num_parts() - drop_vacuous_parts(t).num_parts();
    if dropped > 0 {
        push(
            diags,
            VACUOUS_PART,
            Severity::Warning,
            format!(
                "{dropped} part{} assert only true (no head atoms in the subtree)",
                if dropped == 1 { "" } else { "s" }
            ),
            Some(whole),
        );
    }

    // NDL012: not in normal form — root conjuncts share no existential.
    let pieces = split_independent_conjuncts(t).len();
    if pieces > 1 {
        push(
            diags,
            SPLITTABLE,
            Severity::Warning,
            format!(
                "statement is not normalized: it splits into {pieces} independent nested tgds \
                 (no shared root existentials; Section 3)"
            ),
            Some(whole),
        );
    }

    // NDL013: a body or head lists the same atom twice.
    for p in t.parts() {
        for atoms in [&p.body, &p.head] {
            let mut seen: BTreeSet<&Atom> = BTreeSet::new();
            let mut reported: BTreeSet<&Atom> = BTreeSet::new();
            for a in atoms {
                if !seen.insert(a) && reported.insert(a) {
                    let name = syms.rel_name(a.rel);
                    push(
                        diags,
                        DUPLICATE_ATOM,
                        Severity::Warning,
                        format!(
                            "duplicate atom {name}/{} in the same conjunction",
                            a.args.len()
                        ),
                        locate_applied(&stmt.text, name, Some(a.args.len()), 1)
                            .map(|s| s.offset_by(stmt.offset)),
                    );
                }
            }
        }
    }

    // NDL014: deep nesting.
    if t.depth() > opts.max_depth {
        push(
            diags,
            DEEP_NESTING,
            Severity::Warning,
            format!(
                "nesting depth {} exceeds {} — implication testing is exponential in \
                 nesting parameters (Section 4)",
                t.depth(),
                opts.max_depth
            ),
            Some(whole),
        );
    }

    // NDL015: wide Skolem functions.
    for (pid, p) in t.parts().iter().enumerate() {
        let arity = t.visible_universals(pid).len();
        if !p.existentials.is_empty() && arity > opts.max_skolem_arity {
            let name = syms.var_name(p.existentials[0]);
            push(
                diags,
                SKOLEM_ARITY,
                Severity::Warning,
                format!(
                    "existential {name} Skolemizes to a function of arity {arity} \
                     (> {}); f-block sizes grow with Skolem arity (Section 4)",
                    opts.max_skolem_arity
                ),
                anchor_var(name),
            );
        }
    }

    // NDL017: a universal occurring in a single atom only projects.
    let mut occurrences: BTreeMap<VarId, usize> = BTreeMap::new();
    for p in t.parts() {
        for a in p.body.iter().chain(p.head.iter()) {
            let distinct: BTreeSet<VarId> = a.args.iter().copied().collect();
            for v in distinct {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
    }
    for p in t.parts() {
        for &v in &p.universals {
            if occurrences.get(&v) == Some(&1) {
                let name = syms.var_name(v);
                push(
                    diags,
                    SINGLETON_UNIVERSAL,
                    Severity::Info,
                    format!("universal variable {name} occurs in a single atom (projection only)"),
                    anchor_var(name),
                );
            }
        }
    }
}

fn head_vars(p: &Part) -> BTreeSet<VarId> {
    p.head.iter().flat_map(|a| a.args.iter().copied()).collect()
}

/// NDL016: chases the critical instance (one fact per source relation, all
/// positions the same fresh constant) and checks the target's fact/null
/// incidence graph for Berge cycles. A cycle means nulls are woven into
/// unboundedly extensible structure, so chase-based reasoning procedures
/// may diverge on this mapping (Section 4).
fn check_critical_chase(m: &NestedMapping, syms: &mut SymbolTable, diags: &mut Vec<Diagnostic>) {
    let crit = syms.constant("crit");
    let mut source = Instance::new();
    for (rel, arity, side) in m.schema.relations() {
        if side == Side::Source {
            source.insert(Fact::new(rel, vec![Value::Const(crit); arity]));
        }
    }
    if source.is_empty() {
        return;
    }
    let (res, _nulls) = chase_mapping(&source, m, syms);
    let cyclic = IncidenceGraph::of(&res.target).cyclic_components();
    if !cyclic.is_empty() {
        let nulls: usize = cyclic.iter().map(Vec::len).sum();
        diags.push(Diagnostic::new(
            CYCLIC_NULLS,
            Severity::Warning,
            format!(
                "critical-instance chase has cyclic null structure ({nulls} null{} in {} \
                 cyclic component{}); chase-based procedures may diverge on this mapping \
                 (Section 4)",
                if nulls == 1 { "" } else { "s" },
                cyclic.len(),
                if cyclic.len() == 1 { "" } else { "s" },
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let mut syms = SymbolTable::new();
        lint_source(&mut syms, src, &LintOptions::default())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_program_has_no_errors() {
        let diags = lint("S(x,y) -> exists z (R(x,z) & T(z,y))\nfact: S(a,b)\n");
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }

    #[test]
    fn unsafe_variable_is_spanned() {
        let diags = lint("# header\nforall x,z (S(x) -> R(x))\n");
        let d = diags.iter().find(|d| d.code == "NDL002").expect("NDL002");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.statement, Some(0));
        assert_eq!(d.line, Some(2));
        assert_eq!(d.col, Some(10));
    }

    #[test]
    fn cross_statement_schema_conflicts() {
        // R is a target relation in statement 0 and a source one in 1.
        let diags = lint("S(x) -> R(x)\nR(x) -> T(x)\n");
        let d = diags.iter().find(|d| d.code == "NDL006").expect("NDL006");
        assert_eq!(d.statement, Some(1));
        assert_eq!(d.line, Some(2));
        assert_eq!(d.col, Some(1));
    }

    #[test]
    fn unused_existential_warns() {
        let diags = lint("S(x) -> exists y R(x)\n");
        let d = diags
            .iter()
            .find(|d| d.code == UNUSED_EXISTENTIAL)
            .expect("NDL010");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.col, Some(16));
    }

    #[test]
    fn splittable_statement_warns() {
        let diags = lint("S(x) -> (R(x) & T(x))\n");
        assert!(codes(&diags).contains(&SPLITTABLE), "{diags:?}");
        // Correlated existentials keep the conjuncts together: no warning.
        let ok = lint("S(x) -> exists y (R(x,y) & T(y,x))\n");
        assert!(!codes(&ok).contains(&SPLITTABLE), "{ok:?}");
    }

    #[test]
    fn duplicate_atom_warns_on_second_occurrence() {
        let diags = lint("S(x) & S(x) -> R(x)\n");
        let d = diags
            .iter()
            .find(|d| d.code == DUPLICATE_ATOM)
            .expect("NDL013");
        assert_eq!(d.col, Some(8));
    }

    #[test]
    fn depth_and_skolem_arity_bounds() {
        let mut syms = SymbolTable::new();
        let opts = LintOptions {
            max_depth: 1,
            max_skolem_arity: 1,
        };
        let diags = lint_source(
            &mut syms,
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x1) & forall x3 (S(x1,x3) -> R(y,x3))))\n",
            &opts,
        );
        assert!(codes(&diags).contains(&DEEP_NESTING), "{diags:?}");
        assert!(codes(&diags).contains(&SKOLEM_ARITY), "{diags:?}");
        let relaxed = lint_source(
            &mut syms,
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x1) & forall x3 (S(x1,x3) -> R(y,x3))))\n",
            &LintOptions::default(),
        );
        assert!(!codes(&relaxed).contains(&DEEP_NESTING));
        assert!(!codes(&relaxed).contains(&SKOLEM_ARITY));
    }

    #[test]
    fn cyclic_null_structure_warns() {
        // Two head atoms sharing two existentials: the chased critical
        // instance has facts T(n1,n2), U(n1,n2) — a Berge cycle.
        let diags = lint("S(x) -> exists y,z (T(y,z) & U(y,z))\n");
        assert!(codes(&diags).contains(&CYCLIC_NULLS), "{diags:?}");
        // A single wide fact is a star — acyclic.
        let ok = lint("S(x) -> exists y,z T(y,z)\n");
        assert!(!codes(&ok).contains(&CYCLIC_NULLS), "{ok:?}");
    }

    #[test]
    fn singleton_universal_is_info() {
        let diags = lint("S(x,y) -> R(x)\n");
        let d = diags
            .iter()
            .find(|d| d.code == SINGLETON_UNIVERSAL)
            .expect("NDL017");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("variable y"));
    }

    #[test]
    fn diagnostics_are_ordered_by_position() {
        let diags = lint("forall x,z (S(x) -> R(x))\nS(q -> R(q)\n");
        let stmts: Vec<_> = diags.iter().map(|d| d.statement).collect();
        let mut sorted = stmts.clone();
        sorted.sort();
        assert_eq!(stmts, sorted);
    }
}
