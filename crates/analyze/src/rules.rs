//! The lint rules: core validation lifted to spanned diagnostics, plus the
//! analyzer-only NDL01x rules over well-formed statements.
//!
//! | code   | severity | finding |
//! |--------|----------|---------|
//! | NDL001–NDL007 | error | parse / validation errors (see `ndl_core::error`) |
//! | NDL010 | warning  | existential variable used by no head atom in scope |
//! | NDL011 | warning  | vacuous parts (subtrees asserting only ⊤) |
//! | NDL012 | warning  | statement splits into independent tgds (Section 3) |
//! | NDL013 | warning  | duplicate atom in a body or head |
//! | NDL014 | warning  | nesting depth exceeds the configured bound |
//! | NDL015 | warning  | Skolem arity exceeds the configured bound (Section 4) |
//! | NDL016 | warning  | critical-instance chase has cyclic nulls (Section 4) |
//! | NDL017 | info     | universal variable occurs in a single atom |
//! | NDL020 | error    | not weakly acyclic — chase termination not guaranteed |
//! | NDL021 | warning  | weakly but not richly acyclic — oblivious chase may diverge |
//! | NDL022 | warning  | chase-size polynomial degree exceeds the configured bound |
//! | NDL023 | warning  | null-generation depth of a relation exceeds the bound |
//! | NDL024 | warning  | Skolem fan-out exceeds the configured bound |
//! | NDL025 | info     | clause joins at least the configured number of body atoms |
//! | NDL030 | warning  | statement subsumed by another (IMPLIES, Section 4) |
//! | NDL031 | info     | relation written but never read |
//! | NDL032 | info     | relation read but never written |
//! | NDL033 | info     | statement reads a relation it writes (self-interfering) |
//! | NDL034 | info     | parallel-schedule width report |
//! | NDL040 | warning  | dead statement — no chase from the facts can fire it |
//! | NDL041 | warning  | relation read and written, yet unreachable from the facts |
//! | NDL042 | warning  | source relation nothing live ever reads |
//! | NDL043 | info     | source column whose value is never used |
//! | NDL044 | info     | null-free (ground) target relation report |
//! | NDL045 | info     | provenance fan-in report (positions above the bound) |
//!
//! NDL020–NDL025 come from the semantic layer ([`crate::graph`],
//! [`crate::termination`], [`crate::cost`]): the position and Skolem
//! dependency graphs of the Skolemized program. They run on every
//! arity-consistent statement even when side discipline is violated
//! (NDL006), because recursive programs are exactly where termination is
//! at stake; NDL016's critical-instance signal corroborates them.
//!
//! NDL030 is semantic redundancy: statement σ is *subsumed* when another
//! single statement Σ = {σ'} already implies it (`IMPLIES(Σ, σ)`,
//! Section 4 of the paper) — chasing σ then derives nothing the chase of
//! σ' does not. Implication testing is expensive (non-elementary in
//! nesting depth), so the pass is gated to small programs by
//! [`LintOptions::max_subsumption_tgds`]. NDL031–NDL034 come from the
//! interference analysis ([`crate::interference`], [`crate::schedule`]):
//! whole-program relation roles and the statement conflict graph behind
//! `ndl analyze --schedule` and `ndl chase --parallel`.
//!
//! NDL040–NDL045 come from the dataflow pass ([`crate::dataflow`]):
//! reachability from the fact-populated relations, statement liveness,
//! groundness and position provenance. The liveness-based findings
//! (NDL040–NDL043) fire only when the program declares `fact:` statements
//! — without them the sources are assumed, and a dead-code claim would
//! accuse the assumption rather than the program. NDL044/NDL045 are
//! reports surfacing what `ndl analyze --dataflow` proves.

use crate::cost::ChaseAnalysis;
use crate::diagnostic::{Diagnostic, LineIndex, Note, Severity};
use crate::program::{parse_program, Statement, StmtAst};
use crate::termination::TerminationClass;
use ndl_chase::chase_mapping;
use ndl_core::parse::{locate_applied, locate_ident, locate_quantified};
use ndl_core::prelude::*;
use ndl_hom::IncidenceGraph;
use ndl_reasoning::{drop_vacuous_parts, implies_tgd, split_independent_conjuncts, ImpliesOptions};
use std::collections::{BTreeMap, BTreeSet};

/// NDL010: an existential variable no head atom in scope uses.
pub const UNUSED_EXISTENTIAL: &str = "NDL010";
/// NDL011: parts whose whole subtree asserts only ⊤.
pub const VACUOUS_PART: &str = "NDL011";
/// NDL012: the statement is not normalized — it splits into independent tgds.
pub const SPLITTABLE: &str = "NDL012";
/// NDL013: the same atom occurs twice in one body or head.
pub const DUPLICATE_ATOM: &str = "NDL013";
/// NDL014: nesting depth above the configured bound.
pub const DEEP_NESTING: &str = "NDL014";
/// NDL015: Skolem arity (number of visible universals) above the bound.
pub const SKOLEM_ARITY: &str = "NDL015";
/// NDL016: the chased critical instance has Berge-cyclic null structure.
pub const CYCLIC_NULLS: &str = "NDL016";
/// NDL017: a universal variable occurring in a single atom (projection only).
pub const SINGLETON_UNIVERSAL: &str = "NDL017";
/// NDL020: the program is not weakly acyclic — no chase variant is
/// guaranteed to terminate. The special-edge cycle is attached as notes.
pub const NON_TERMINATING: &str = "NDL020";
/// NDL021: weakly but not richly acyclic — the restricted chase
/// terminates, the oblivious (fixpoint) chase may diverge.
pub const OBLIVIOUS_DIVERGENCE: &str = "NDL021";
/// NDL022: the chase-size polynomial degree exceeds the configured bound.
pub const SIZE_DEGREE: &str = "NDL022";
/// NDL023: a relation's null-generation depth exceeds the bound.
pub const NULL_DEPTH: &str = "NDL023";
/// NDL024: a Skolem function's fan-out exceeds the configured bound.
pub const SKOLEM_FANOUT: &str = "NDL024";
/// NDL025: a Skolemized clause joins at least the configured number of
/// body atoms (accumulated ancestor bodies included).
pub const WIDE_JOIN: &str = "NDL025";
/// NDL030: the statement is implied by another statement alone (IMPLIES),
/// so chasing it derives nothing new — it can be removed.
pub const SUBSUMED: &str = "NDL030";
/// NDL031: a relation some statement writes but none reads — a pure
/// output (in a data-exchange mapping, simply a target relation).
pub const WRITE_ONLY: &str = "NDL031";
/// NDL032: a relation some statement reads but none writes — its matches
/// can only ever see externally supplied source facts.
pub const READ_ONLY: &str = "NDL032";
/// NDL033: a statement reading a relation it writes; it re-triggers on
/// its own derivations and always runs alone in a parallel schedule.
pub const SELF_INTERFERING: &str = "NDL033";
/// NDL034: the parallel-schedule width report (stages and widest stage).
pub const SCHEDULE_WIDTH: &str = "NDL034";
/// NDL040: a dead statement — every clause reads some relation no fact
/// populates and no firing clause writes, so no chase from the declared
/// facts can ever fire it. The chase engines skip certified-dead
/// statements (see `ndl_chase::DataflowCert`).
pub const DEAD_STATEMENT: &str = "NDL040";
/// NDL041: a relation that is read and written somewhere, yet unreachable
/// from the facts — every writer is dead or never fires. Distinct from
/// NDL032 (read but never written at all).
pub const UNREACHABLE_READ: &str = "NDL041";
/// NDL042: a fact-populated source relation no firing clause and no egd
/// ever reads — the facts are declared and then ignored.
pub const UNUSED_SOURCE: &str = "NDL042";
/// NDL043: a source column whose value is never used — in every firing
/// clause and egd reading the relation, the variable at that column
/// occurs nowhere else.
pub const UNUSED_SOURCE_COLUMN: &str = "NDL043";
/// NDL044: the null-free relation report — target relations the dataflow
/// pass proves can never hold a labeled null.
pub const GROUND_RELATIONS: &str = "NDL044";
/// NDL045: the provenance fan-in report — target positions reachable
/// from at least the configured number of distinct source positions and
/// Skolem functions.
pub const PROVENANCE_FAN_IN: &str = "NDL045";

/// Tunable thresholds of the analyzer.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// NDL014 fires when a nested tgd's depth exceeds this (default 4).
    /// Implication testing is exponential in nesting-related parameters
    /// (Section 4), so deep programs deserve a nudge.
    pub max_depth: usize,
    /// NDL015 fires when a part introduces existentials while seeing more
    /// than this many universal variables (default 5): each existential
    /// Skolemizes to a function of that arity, and f-block sizes grow with
    /// it (Section 4).
    pub max_skolem_arity: usize,
    /// NDL022 fires when the chase-size polynomial degree exceeds this
    /// (default 6): `chase(I)` may have `O(|I|^d)` facts.
    pub max_size_degree: usize,
    /// NDL023 fires when a relation can hold nulls of generation depth
    /// greater than this (default 2): nulls created from nulls created
    /// from nulls make instances hard to interpret.
    pub max_null_depth: usize,
    /// NDL024 fires when one Skolem function's terms can spread to more
    /// than this many positions (default 8).
    pub max_skolem_fanout: usize,
    /// NDL025 fires when a Skolemized clause joins at least this many
    /// body atoms (default 8): trigger matching is exponential in join
    /// width in the worst case.
    pub max_body_atoms: usize,
    /// NDL030 (pairwise subsumption via IMPLIES) runs only when the
    /// program has between 2 and this many clean nested tgds (default 6):
    /// the procedure enumerates k-patterns, which is non-elementary in
    /// nesting-related parameters. `0` disables the pass.
    pub max_subsumption_tgds: usize,
    /// NDL045 fires when a target position's provenance fan-in (distinct
    /// source positions plus distinct Skolem functions that can reach it)
    /// is at least this (default 8): such positions mix many origins and
    /// are where data-exchange mappings become hard to audit.
    pub max_provenance_fan_in: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            max_depth: 4,
            max_skolem_arity: 5,
            max_size_degree: 6,
            max_null_depth: 2,
            max_skolem_fanout: 8,
            max_body_atoms: 8,
            max_subsumption_tgds: 6,
            max_provenance_fan_in: 8,
        }
    }
}

/// Lints a dependency-program source: parses it into statements, validates
/// everything against one shared schema (so cross-statement arity and
/// source/target conflicts surface), runs the analyzer-only rules on
/// well-formed statements, and chases the critical instance of the overall
/// mapping for NDL016. Diagnostics come back ordered by position.
pub fn lint_source(syms: &mut SymbolTable, src: &str, opts: &LintOptions) -> Vec<Diagnostic> {
    let index = LineIndex::new(src);
    let (stmts, parse_errs) = parse_program(syms, src);
    let mut diags = Vec::new();
    for (i, e) in &parse_errs {
        diags.push(core_diag(e, &stmts[*i], syms, &index));
    }

    let mut schema = Schema::new();
    let mut clean_tgds = Vec::new();
    let mut clean_egds = Vec::new();
    for stmt in &stmts {
        let Some(ast) = &stmt.ast else { continue };
        let mut errs = Vec::new();
        match ast {
            StmtAst::Tgd(t) => t.check(&mut schema, &mut errs),
            StmtAst::So(t) => t.check(&mut schema, &mut errs),
            StmtAst::Egd(e) => e.check(&mut schema, &mut errs),
            StmtAst::Fact(f) => {
                if let Err(e) = schema.declare(f.rel, f.args.len(), Side::Source) {
                    errs.push(e);
                }
            }
        }
        let clean = errs.is_empty();
        for e in &errs {
            diags.push(core_diag(e, stmt, syms, &index));
        }
        if clean {
            match ast {
                StmtAst::Tgd(t) => {
                    tgd_lints(t, stmt, syms, opts, &index, &mut diags);
                    clean_tgds.push((stmt.index, t.clone()));
                }
                StmtAst::Egd(e) => clean_egds.push(e.clone()),
                _ => {}
            }
        }
    }

    if !clean_tgds.is_empty() {
        let tgds: Vec<NestedTgd> = clean_tgds.iter().map(|(_, t)| t.clone()).collect();
        if let Ok(m) = NestedMapping::new(tgds, clean_egds.clone()) {
            check_critical_chase(&m, syms, &mut diags);
        }
    }

    subsumption_lints(
        &clean_tgds,
        &clean_egds,
        syms,
        opts,
        &stmts,
        &index,
        &mut diags,
    );
    semantic_lints(syms, &stmts, opts, &index, &mut diags);

    diags.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                d.statement.unwrap_or(usize::MAX),
                d.span.map_or(usize::MAX, |s| s.start),
                d.code.clone(),
            )
        };
        key(a).cmp(&key(b))
    });
    diags
}

/// Lifts a [`CoreError`] of `stmt` to a spanned diagnostic.
fn core_diag(e: &CoreError, stmt: &Statement, syms: &SymbolTable, index: &LineIndex) -> Diagnostic {
    let mut d =
        Diagnostic::new(e.code(), Severity::Error, e.display(syms)).with_statement(stmt.index);
    if let Some(sp) = e.locate(syms, &stmt.text) {
        d = d.with_span(sp.offset_by(stmt.offset), index);
    }
    d
}

/// The analyzer-only rules over one well-formed nested tgd.
fn tgd_lints(
    t: &NestedTgd,
    stmt: &Statement,
    syms: &SymbolTable,
    opts: &LintOptions,
    index: &LineIndex,
    diags: &mut Vec<Diagnostic>,
) {
    let whole = Span::new(stmt.offset, stmt.offset + stmt.text.len());
    let anchor_var = |name: &str| {
        locate_quantified(&stmt.text, name, 0)
            .or_else(|| locate_ident(&stmt.text, name, 0))
            .map(|s| s.offset_by(stmt.offset))
    };
    let push = |diags: &mut Vec<Diagnostic>, code, sev, msg: String, span: Option<Span>| {
        let mut d = Diagnostic::new(code, sev, msg).with_statement(stmt.index);
        if let Some(sp) = span {
            d = d.with_span(sp, index);
        }
        diags.push(d);
    };

    // NDL010: existentials used by no head atom of their part or a descendant.
    for (pid, p) in t.parts().iter().enumerate() {
        if p.existentials.is_empty() {
            continue;
        }
        let mut used: BTreeSet<VarId> = head_vars(p);
        for d in t.descendants(pid) {
            used.extend(head_vars(t.part(d)));
        }
        for &v in &p.existentials {
            if !used.contains(&v) {
                let name = syms.var_name(v);
                push(
                    diags,
                    UNUSED_EXISTENTIAL,
                    Severity::Warning,
                    format!("existential variable {name} is used by no head atom in scope"),
                    anchor_var(name),
                );
            }
        }
    }

    // NDL011: subtrees asserting only ⊤.
    let dropped = t.num_parts() - drop_vacuous_parts(t).num_parts();
    if dropped > 0 {
        push(
            diags,
            VACUOUS_PART,
            Severity::Warning,
            format!(
                "{dropped} part{} assert only true (no head atoms in the subtree)",
                if dropped == 1 { "" } else { "s" }
            ),
            Some(whole),
        );
    }

    // NDL012: not in normal form — root conjuncts share no existential.
    let pieces = split_independent_conjuncts(t).len();
    if pieces > 1 {
        push(
            diags,
            SPLITTABLE,
            Severity::Warning,
            format!(
                "statement is not normalized: it splits into {pieces} independent nested tgds \
                 (no shared root existentials; Section 3)"
            ),
            Some(whole),
        );
    }

    // NDL013: a body or head lists the same atom twice.
    for p in t.parts() {
        for atoms in [&p.body, &p.head] {
            let mut seen: BTreeSet<&Atom> = BTreeSet::new();
            let mut reported: BTreeSet<&Atom> = BTreeSet::new();
            for a in atoms {
                if !seen.insert(a) && reported.insert(a) {
                    let name = syms.rel_name(a.rel);
                    push(
                        diags,
                        DUPLICATE_ATOM,
                        Severity::Warning,
                        format!(
                            "duplicate atom {name}/{} in the same conjunction",
                            a.args.len()
                        ),
                        locate_applied(&stmt.text, name, Some(a.args.len()), 1)
                            .map(|s| s.offset_by(stmt.offset)),
                    );
                }
            }
        }
    }

    // NDL014: deep nesting.
    if t.depth() > opts.max_depth {
        push(
            diags,
            DEEP_NESTING,
            Severity::Warning,
            format!(
                "nesting depth {} exceeds {} — implication testing is exponential in \
                 nesting parameters (Section 4)",
                t.depth(),
                opts.max_depth
            ),
            Some(whole),
        );
    }

    // NDL015: wide Skolem functions.
    for (pid, p) in t.parts().iter().enumerate() {
        let arity = t.visible_universals(pid).len();
        if !p.existentials.is_empty() && arity > opts.max_skolem_arity {
            let name = syms.var_name(p.existentials[0]);
            push(
                diags,
                SKOLEM_ARITY,
                Severity::Warning,
                format!(
                    "existential {name} Skolemizes to a function of arity {arity} \
                     (> {}); f-block sizes grow with Skolem arity (Section 4)",
                    opts.max_skolem_arity
                ),
                anchor_var(name),
            );
        }
    }

    // NDL017: a universal occurring in a single atom only projects.
    let mut occurrences: BTreeMap<VarId, usize> = BTreeMap::new();
    for p in t.parts() {
        for a in p.body.iter().chain(p.head.iter()) {
            let distinct: BTreeSet<VarId> = a.args.iter().copied().collect();
            for v in distinct {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
    }
    for p in t.parts() {
        for &v in &p.universals {
            if occurrences.get(&v) == Some(&1) {
                let name = syms.var_name(v);
                push(
                    diags,
                    SINGLETON_UNIVERSAL,
                    Severity::Info,
                    format!("universal variable {name} occurs in a single atom (projection only)"),
                    anchor_var(name),
                );
            }
        }
    }
}

fn head_vars(p: &Part) -> BTreeSet<VarId> {
    p.head.iter().flat_map(|a| a.args.iter().copied()).collect()
}

/// NDL016: chases the critical instance (one fact per source relation, all
/// positions the same fresh constant) and checks the target's fact/null
/// incidence graph for Berge cycles. A cycle means nulls are woven into
/// unboundedly extensible structure, so chase-based reasoning procedures
/// may diverge on this mapping (Section 4).
fn check_critical_chase(m: &NestedMapping, syms: &mut SymbolTable, diags: &mut Vec<Diagnostic>) {
    let crit = syms.constant("crit");
    let mut source = Instance::new();
    for (rel, arity, side) in m.schema.relations() {
        if side == Side::Source {
            source.insert(Fact::new(rel, vec![Value::Const(crit); arity]));
        }
    }
    if source.is_empty() {
        return;
    }
    let (res, _nulls) = chase_mapping(&source, m, syms);
    let cyclic = IncidenceGraph::of(&res.target).cyclic_components();
    if !cyclic.is_empty() {
        let nulls: usize = cyclic.iter().map(Vec::len).sum();
        diags.push(Diagnostic::new(
            CYCLIC_NULLS,
            Severity::Warning,
            format!(
                "critical-instance chase has cyclic null structure ({nulls} null{} in {} \
                 cyclic component{}); chase-based procedures may diverge on this mapping \
                 (Section 4)",
                if nulls == 1 { "" } else { "s" },
                cyclic.len(),
                if cyclic.len() == 1 { "" } else { "s" },
            ),
        ));
    }
}

/// NDL020–NDL025: the semantic pass over the position and Skolem graphs.
/// Runs on all arity-consistent statements — side-discipline violations do
/// not exclude a statement (see [`crate::graph`] module docs).
fn semantic_lints(
    syms: &mut SymbolTable,
    stmts: &[Statement],
    opts: &LintOptions,
    index: &LineIndex,
    diags: &mut Vec<Diagnostic>,
) {
    let analysis = ChaseAnalysis::analyze(syms, stmts);
    let whole = |i: usize| {
        let s = &stmts[i];
        Span::new(s.offset, s.offset + s.text.len())
    };
    // An edge's note anchors at the *target* position's relation in the
    // edge's statement, preferring the second occurrence (recursive
    // statements mention the relation in body and head; the head
    // occurrence is where the value arrives).
    let anchor_edge = |e: &crate::graph::PosEdge| {
        let (rel, _) = analysis.graphs.positions.positions[e.to];
        let name = syms.rel_name(rel);
        let text = &stmts[e.stmt].text;
        locate_applied(text, name, None, 1)
            .or_else(|| locate_applied(text, name, None, 0))
            .map(|s| s.offset_by(stmts[e.stmt].offset))
    };

    match analysis.termination.class {
        TerminationClass::Cyclic | TerminationClass::WeaklyAcyclic => {
            let cyclic = analysis.termination.class == TerminationClass::Cyclic;
            let (code, sev, message) = if cyclic {
                (
                    NON_TERMINATING,
                    Severity::Error,
                    "program is not weakly acyclic: no chase variant is guaranteed to \
                     terminate (special-edge cycle in the position graph)"
                        .to_string(),
                )
            } else {
                (
                    OBLIVIOUS_DIVERGENCE,
                    Severity::Warning,
                    "program is weakly but not richly acyclic: the restricted chase \
                     terminates, the oblivious (fixpoint) chase may diverge"
                        .to_string(),
                )
            };
            let witness = &analysis.termination.witness;
            let first_stmt = witness.first().map(|e| e.stmt);
            let mut d = Diagnostic::new(code, sev, message);
            if let Some(i) = first_stmt {
                d = d.with_statement(i).with_span(whole(i), index);
            }
            for (e, rendered) in witness.iter().zip(&analysis.termination.witness_rendered) {
                let kind = if e.special {
                    "special edge"
                } else {
                    "regular edge"
                };
                let mut note = Note::new(format!("{kind} {rendered}")).with_statement(e.stmt);
                if let Some(sp) = anchor_edge(e) {
                    note = note.with_span(sp, index);
                }
                d = d.with_note(note);
            }
            diags.push(d);
        }
        TerminationClass::RichlyAcyclic => {}
    }

    if let Some(deg) = analysis.cost.size_degree {
        if deg > opts.max_size_degree {
            diags.push(Diagnostic::new(
                SIZE_DEGREE,
                Severity::Warning,
                format!(
                    "chase size is bounded by O(n^{deg}) (> degree {}); consider \
                     splitting wide joins or narrowing Skolem arguments",
                    opts.max_size_degree
                ),
            ));
        }
    }

    for &(rel, depth) in &analysis.termination.relation_depths {
        if depth > opts.max_null_depth {
            diags.push(Diagnostic::new(
                NULL_DEPTH,
                Severity::Warning,
                format!(
                    "relation {} can hold nulls of generation depth {depth} (> {}): \
                     nulls invented from nulls invented from nulls",
                    syms.rel_name(rel),
                    opts.max_null_depth
                ),
            ));
        }
    }

    for f in &analysis.graphs.skolem.funcs {
        if f.fan_out > opts.max_skolem_fanout {
            let mut d = Diagnostic::new(
                SKOLEM_FANOUT,
                Severity::Warning,
                format!(
                    "Skolem function {} can spread to {} positions (> {}); its nulls \
                     permeate the target schema",
                    syms.func_name(f.func),
                    f.fan_out,
                    opts.max_skolem_fanout
                ),
            );
            d = d.with_statement(f.stmt).with_span(whole(f.stmt), index);
            diags.push(d);
        }
    }

    let mut wide: BTreeMap<usize, usize> = BTreeMap::new();
    for cv in &analysis.graphs.clauses {
        if cv.clause.body.len() >= opts.max_body_atoms {
            let w = wide.entry(cv.stmt).or_insert(0);
            *w = (*w).max(cv.clause.body.len());
        }
    }
    for (stmt, width) in wide {
        diags.push(
            Diagnostic::new(
                WIDE_JOIN,
                Severity::Info,
                format!(
                    "a Skolemized clause of this statement joins {width} body atoms \
                     (>= {}); trigger matching is worst-case exponential in join width",
                    opts.max_body_atoms
                ),
            )
            .with_statement(stmt)
            .with_span(whole(stmt), index),
        );
    }

    // NDL031/NDL032: whole-program relation roles, facts counted as
    // writers and egd bodies as readers (see `crate::interference`).
    for &rel in &analysis.interference.write_only {
        diags.push(Diagnostic::new(
            WRITE_ONLY,
            Severity::Info,
            format!(
                "relation {} is written but never read: a pure output (for a \
                 data-exchange mapping, simply a target relation)",
                syms.rel_name(rel)
            ),
        ));
    }
    for &rel in &analysis.interference.read_only {
        diags.push(Diagnostic::new(
            READ_ONLY,
            Severity::Info,
            format!(
                "relation {} is read but never written: no statement or fact \
                 populates it, so its matches only ever see externally supplied \
                 source facts",
                syms.rel_name(rel)
            ),
        ));
    }

    // NDL033: self-interfering statements must run alone in a stage.
    for &s in &analysis.interference.self_interfering {
        diags.push(
            Diagnostic::new(
                SELF_INTERFERING,
                Severity::Info,
                "statement reads a relation it writes: it can re-trigger on its \
                 own derivations and always runs alone in a parallel schedule",
            )
            .with_statement(s)
            .with_span(whole(s), index),
        );
    }

    // NDL034: the schedule-width report, when there is anything to
    // parallelize over.
    if analysis.interference.scheduled.len() >= 2 {
        diags.push(Diagnostic::new(
            SCHEDULE_WIDTH,
            Severity::Info,
            format!(
                "parallel schedule: {} statement(s) in {} stage(s), width {} \
                 (see `ndl analyze --schedule`)",
                analysis.interference.scheduled.len(),
                analysis.schedule.len(),
                analysis.schedule.width()
            ),
        ));
    }

    // NDL040–NDL044: the whole-mapping dataflow pass. Liveness-based
    // findings require *declared* facts: in assumed-sources mode the
    // population is a guess (every read-never-written relation), so dead
    // and unused claims would accuse the analyzer's own assumption, not
    // the program.
    let df = &analysis.dataflow;
    if !df.assumed_sources {
        for &s in &df.dead {
            diags.push(
                Diagnostic::new(
                    DEAD_STATEMENT,
                    Severity::Warning,
                    "statement is dead: every clause reads some relation that no fact \
                     populates and no firing statement writes, so no chase from the \
                     declared facts can ever fire it (`ndl chase` skips it under a \
                     dataflow certificate)",
                )
                .with_statement(s)
                .with_span(whole(s), index),
            );
        }
        for &rel in &df.unwritten_reads {
            diags.push(Diagnostic::new(
                UNREACHABLE_READ,
                Severity::Warning,
                format!(
                    "relation {} is read and written, yet unreachable: every statement \
                     writing it is dead or never fires, so its readers only ever see \
                     an empty relation",
                    syms.rel_name(rel)
                ),
            ));
        }
        for &rel in &df.unused_sources {
            diags.push(Diagnostic::new(
                UNUSED_SOURCE,
                Severity::Warning,
                format!(
                    "source relation {} is populated by facts but read by no firing \
                     statement and no egd: its facts are declared and then ignored",
                    syms.rel_name(rel)
                ),
            ));
        }
        for &(rel, col) in &df.unused_source_columns {
            diags.push(Diagnostic::new(
                UNUSED_SOURCE_COLUMN,
                Severity::Info,
                format!(
                    "column {}.{} of a source relation is never used: every firing \
                     clause and egd reading {} ignores the value at that position",
                    syms.rel_name(rel),
                    col + 1,
                    syms.rel_name(rel)
                ),
            ));
        }
        // NDL044: ground relations some statement actually derives into —
        // relations only facts populate are trivially null-free and would
        // drown the report, and unreachable relations are null-free only
        // vacuously (they stay empty), so both are excluded.
        let head_written: BTreeSet<RelId> = analysis
            .graphs
            .clauses
            .iter()
            .flat_map(|cv| cv.clause.head.iter().map(|ta| ta.rel))
            .collect();
        let ground_written: Vec<&RelId> = df
            .ground
            .iter()
            .filter(|r| head_written.contains(r) && df.reachable.contains(r))
            .collect();
        if !ground_written.is_empty() {
            let names: Vec<&str> = ground_written.iter().map(|&&r| syms.rel_name(r)).collect();
            diags.push(Diagnostic::new(
                GROUND_RELATIONS,
                Severity::Info,
                format!(
                    "derived relation{} {} {} provably null-free: homomorphism and \
                     core checks skip null bookkeeping there (see `ndl analyze \
                     --dataflow`)",
                    if names.len() == 1 { "" } else { "s" },
                    names.join(", "),
                    if names.len() == 1 { "is" } else { "are" },
                ),
            ));
        }
    }

    // NDL045: positions mixing many origins. Provenance is computed from
    // firing clauses whichever way the sources were chosen, so the report
    // is meaningful in assumed mode too.
    for (q, p) in df.provenance.iter().enumerate() {
        if p.fan_in() >= opts.max_provenance_fan_in {
            diags.push(Diagnostic::new(
                PROVENANCE_FAN_IN,
                Severity::Info,
                format!(
                    "position {} has provenance fan-in {} (>= {}): values from {} \
                     source position(s) and {} Skolem function(s) can reach it",
                    analysis.graphs.positions.display_pos(syms, q),
                    p.fan_in(),
                    opts.max_provenance_fan_in,
                    p.sources.len(),
                    p.funcs.len(),
                ),
            ));
        }
    }
}

/// NDL030: pairwise subsumption via the IMPLIES procedure of Section 4.
/// Statement σᵢ is flagged when some other single clean statement σⱼ
/// already implies it. When the two are equivalent (IMPLIES holds in both
/// directions) only the *later* statement is flagged, so one of an
/// α-equivalent pair always survives. Pairs on which the procedure errors
/// (e.g. the pattern budget trips) are skipped — absence of NDL030 is not
/// a proof of irredundancy. Gated to small programs: IMPLIES enumerates
/// k-patterns, non-elementary in nesting-related parameters.
fn subsumption_lints(
    clean_tgds: &[(usize, NestedTgd)],
    clean_egds: &[Egd],
    syms: &mut SymbolTable,
    opts: &LintOptions,
    stmts: &[Statement],
    index: &LineIndex,
    diags: &mut Vec<Diagnostic>,
) {
    let n = clean_tgds.len();
    if n < 2 || n > opts.max_subsumption_tgds {
        return;
    }
    let iopts = ImpliesOptions::default();
    let mut imp = vec![vec![false; n]; n];
    for j in 0..n {
        let premise = match NestedMapping::new(vec![clean_tgds[j].1.clone()], clean_egds.to_vec()) {
            Ok(m) => m,
            Err(_) => return,
        };
        for i in 0..n {
            if i != j {
                imp[j][i] = implies_tgd(&premise, &clean_tgds[i].1, syms, &iopts)
                    .map(|r| r.holds)
                    .unwrap_or(false);
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i == j || !imp[j][i] {
                continue;
            }
            if imp[i][j] && j > i {
                continue; // equivalent pair: flag only the later statement
            }
            let (si, _) = clean_tgds[i];
            let (sj, _) = clean_tgds[j];
            let s = &stmts[si];
            let how = if imp[i][j] {
                "equivalent to"
            } else {
                "subsumed by"
            };
            diags.push(
                Diagnostic::new(
                    SUBSUMED,
                    Severity::Warning,
                    format!(
                        "statement is {how} statement {sj} (IMPLIES, Section 4): \
                         chasing it derives nothing new; consider removing it"
                    ),
                )
                .with_statement(si)
                .with_span(Span::new(s.offset, s.offset + s.text.len()), index),
            );
            break; // one subsumer per statement is enough
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let mut syms = SymbolTable::new();
        lint_source(&mut syms, src, &LintOptions::default())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_program_has_no_errors() {
        let diags = lint("S(x,y) -> exists z (R(x,z) & T(z,y))\nfact: S(a,b)\n");
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }

    #[test]
    fn unsafe_variable_is_spanned() {
        let diags = lint("# header\nforall x,z (S(x) -> R(x))\n");
        let d = diags.iter().find(|d| d.code == "NDL002").expect("NDL002");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.statement, Some(0));
        assert_eq!(d.line, Some(2));
        assert_eq!(d.col, Some(10));
    }

    #[test]
    fn cross_statement_schema_conflicts() {
        // R is a target relation in statement 0 and a source one in 1.
        let diags = lint("S(x) -> R(x)\nR(x) -> T(x)\n");
        let d = diags.iter().find(|d| d.code == "NDL006").expect("NDL006");
        assert_eq!(d.statement, Some(1));
        assert_eq!(d.line, Some(2));
        assert_eq!(d.col, Some(1));
    }

    #[test]
    fn unused_existential_warns() {
        let diags = lint("S(x) -> exists y R(x)\n");
        let d = diags
            .iter()
            .find(|d| d.code == UNUSED_EXISTENTIAL)
            .expect("NDL010");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.col, Some(16));
    }

    #[test]
    fn splittable_statement_warns() {
        let diags = lint("S(x) -> (R(x) & T(x))\n");
        assert!(codes(&diags).contains(&SPLITTABLE), "{diags:?}");
        // Correlated existentials keep the conjuncts together: no warning.
        let ok = lint("S(x) -> exists y (R(x,y) & T(y,x))\n");
        assert!(!codes(&ok).contains(&SPLITTABLE), "{ok:?}");
    }

    #[test]
    fn duplicate_atom_warns_on_second_occurrence() {
        let diags = lint("S(x) & S(x) -> R(x)\n");
        let d = diags
            .iter()
            .find(|d| d.code == DUPLICATE_ATOM)
            .expect("NDL013");
        assert_eq!(d.col, Some(8));
    }

    #[test]
    fn depth_and_skolem_arity_bounds() {
        let mut syms = SymbolTable::new();
        let opts = LintOptions {
            max_depth: 1,
            max_skolem_arity: 1,
            ..LintOptions::default()
        };
        let diags = lint_source(
            &mut syms,
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x1) & forall x3 (S(x1,x3) -> R(y,x3))))\n",
            &opts,
        );
        assert!(codes(&diags).contains(&DEEP_NESTING), "{diags:?}");
        assert!(codes(&diags).contains(&SKOLEM_ARITY), "{diags:?}");
        let relaxed = lint_source(
            &mut syms,
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x1) & forall x3 (S(x1,x3) -> R(y,x3))))\n",
            &LintOptions::default(),
        );
        assert!(!codes(&relaxed).contains(&DEEP_NESTING));
        assert!(!codes(&relaxed).contains(&SKOLEM_ARITY));
    }

    #[test]
    fn cyclic_null_structure_warns() {
        // Two head atoms sharing two existentials: the chased critical
        // instance has facts T(n1,n2), U(n1,n2) — a Berge cycle.
        let diags = lint("S(x) -> exists y,z (T(y,z) & U(y,z))\n");
        assert!(codes(&diags).contains(&CYCLIC_NULLS), "{diags:?}");
        // A single wide fact is a star — acyclic.
        let ok = lint("S(x) -> exists y,z T(y,z)\n");
        assert!(!codes(&ok).contains(&CYCLIC_NULLS), "{ok:?}");
    }

    #[test]
    fn singleton_universal_is_info() {
        let diags = lint("S(x,y) -> R(x)\n");
        let d = diags
            .iter()
            .find(|d| d.code == SINGLETON_UNIVERSAL)
            .expect("NDL017");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("variable y"));
    }

    #[test]
    fn non_weakly_acyclic_program_is_an_error_with_cycle_notes() {
        let diags = lint("E(x,y) -> exists z E(y,z)\n");
        let d = diags
            .iter()
            .find(|d| d.code == NON_TERMINATING)
            .expect("NDL020");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.statement, Some(0));
        assert!(!d.notes.is_empty());
        assert!(
            d.notes[0].message.starts_with("special edge"),
            "{:?}",
            d.notes
        );
        assert!(d.notes[0].span.is_some());
        // NDL006 (side discipline) fires too — the semantic pass must not
        // be suppressed by it.
        assert!(codes(&diags).contains(&"NDL006"), "{diags:?}");
    }

    #[test]
    fn blind_recursion_warns_about_oblivious_divergence() {
        let diags = lint("T(x) -> exists y T(y)\n");
        let d = diags
            .iter()
            .find(|d| d.code == OBLIVIOUS_DIVERGENCE)
            .expect("NDL021");
        assert_eq!(d.severity, Severity::Warning);
        assert!(!codes(&diags).contains(&NON_TERMINATING));
    }

    #[test]
    fn clean_source_to_target_program_has_no_semantic_findings() {
        let diags = lint("S(x,y) -> exists z (R(x,z) & T(z,y))\nfact: S(a,b)\n");
        for code in [
            NON_TERMINATING,
            OBLIVIOUS_DIVERGENCE,
            SIZE_DEGREE,
            NULL_DEPTH,
            SKOLEM_FANOUT,
            WIDE_JOIN,
        ] {
            assert!(!codes(&diags).contains(&code), "{code}: {diags:?}");
        }
    }

    #[test]
    fn size_degree_and_wide_join_bounds() {
        let mut syms = SymbolTable::new();
        let opts = LintOptions {
            max_size_degree: 2,
            max_body_atoms: 2,
            ..LintOptions::default()
        };
        let diags = lint_source(&mut syms, "E(x,y) & E(y,z) -> E(x,z)\n", &opts);
        assert!(codes(&diags).contains(&SIZE_DEGREE), "{diags:?}");
        assert!(codes(&diags).contains(&WIDE_JOIN), "{diags:?}");
        let relaxed = lint("E(x,y) & E(y,z) -> E(x,z)\n");
        assert!(!codes(&relaxed).contains(&SIZE_DEGREE));
        assert!(!codes(&relaxed).contains(&WIDE_JOIN));
    }

    #[test]
    fn null_depth_and_fanout_bounds() {
        let mut syms = SymbolTable::new();
        // A null pipeline: U's null feeds W's Skolem, so W holds nulls of
        // generation depth 2 (the first special edge is RA-only — x is
        // hidden inside the Skolem term — and does not count toward rank).
        let src = "S(x) -> exists y T(y)\nT(x) -> exists z U(x,z)\nU(x,y) -> exists w W(y,w)\n";
        let opts = LintOptions {
            max_null_depth: 1,
            max_skolem_fanout: 1,
            ..LintOptions::default()
        };
        let diags = lint_source(&mut syms, src, &opts);
        assert!(codes(&diags).contains(&NULL_DEPTH), "{diags:?}");
        assert!(codes(&diags).contains(&SKOLEM_FANOUT), "{diags:?}");
        let relaxed = lint(src);
        assert!(!codes(&relaxed).contains(&SKOLEM_FANOUT), "{relaxed:?}");
    }

    #[test]
    fn diagnostics_are_ordered_by_position() {
        let diags = lint("forall x,z (S(x) -> R(x))\nS(q -> R(q)\n");
        let stmts: Vec<_> = diags.iter().map(|d| d.statement).collect();
        let mut sorted = stmts.clone();
        sorted.sort();
        assert_eq!(stmts, sorted);
    }

    #[test]
    fn alpha_equivalent_duplicate_is_subsumed_both_directions() {
        // IMPLIES holds in both directions; only the later statement is
        // flagged, as "equivalent to" its subsumer.
        let diags = lint("S(x) -> exists y R(x,y)\nS(u) -> exists v R(u,v)\nfact: S(a)\n");
        let subs: Vec<_> = diags.iter().filter(|d| d.code == SUBSUMED).collect();
        assert_eq!(subs.len(), 1, "{diags:?}");
        assert_eq!(subs[0].statement, Some(1));
        assert_eq!(subs[0].severity, Severity::Warning);
        assert!(subs[0].message.contains("equivalent to statement 0"));
    }

    #[test]
    fn one_directional_subsumption_flags_the_weaker_statement() {
        // Statement 1 asks for *some* pair in R with first component x;
        // statement 0 already delivers one. The converse fails.
        let diags = lint("S(x) -> R(x,x)\nS(u) -> exists v R(u,v)\n");
        let subs: Vec<_> = diags.iter().filter(|d| d.code == SUBSUMED).collect();
        assert_eq!(subs.len(), 1, "{diags:?}");
        assert_eq!(subs[0].statement, Some(1));
        assert!(subs[0].message.contains("subsumed by statement 0"));
    }

    #[test]
    fn subsumption_pass_is_gated_by_program_size() {
        let opts = LintOptions {
            max_subsumption_tgds: 1,
            ..LintOptions::default()
        };
        let mut syms = SymbolTable::new();
        let diags = lint_source(
            &mut syms,
            "S(x) -> exists y R(x,y)\nS(u) -> exists v R(u,v)\n",
            &opts,
        );
        assert!(!codes(&diags).contains(&SUBSUMED), "{diags:?}");
    }

    #[test]
    fn relation_roles_are_reported_as_info() {
        let diags = lint("S(x) -> R(x)\nfact: T(a)\n");
        // R is written but never read; S is read but never written; T
        // (fact only) is written but never read.
        let write_only: Vec<_> = diags.iter().filter(|d| d.code == WRITE_ONLY).collect();
        let read_only: Vec<_> = diags.iter().filter(|d| d.code == READ_ONLY).collect();
        assert_eq!(write_only.len(), 2, "{diags:?}");
        assert_eq!(read_only.len(), 1, "{diags:?}");
        assert!(write_only.iter().all(|d| d.severity == Severity::Info));
        assert!(read_only[0].message.contains("relation S"));
    }

    #[test]
    fn self_interference_and_schedule_width_are_reported() {
        let diags = lint("E(x,y) & E(y,z) -> E(x,z)\nS(x) -> R(x)\n");
        let d = diags
            .iter()
            .find(|d| d.code == SELF_INTERFERING)
            .expect("NDL033");
        assert_eq!(d.statement, Some(0));
        assert_eq!(d.severity, Severity::Info);
        let w = diags
            .iter()
            .find(|d| d.code == SCHEDULE_WIDTH)
            .expect("NDL034");
        assert!(w.message.contains("2 statement(s) in 2 stage(s), width 1"));
    }

    #[test]
    fn dead_code_lints_fire_on_fact_bearing_programs() {
        // Z is unpopulated: statement 1 is dead (NDL040); D is written
        // only by it and read by statement 2, so D is an unreachable
        // read (NDL041) and statement 2 is dead too. V's facts are never
        // read (NDL042) and S's second column is ignored (NDL043).
        let diags = lint("fact: S(a,b)\nZ(x) -> D(x)\nD(x) -> E(x)\nS(x,y) -> T(x)\nfact: V(c)\n");
        let dead: Vec<_> = diags.iter().filter(|d| d.code == DEAD_STATEMENT).collect();
        assert_eq!(dead.len(), 2, "{diags:?}");
        assert_eq!(dead[0].statement, Some(1));
        assert_eq!(dead[1].statement, Some(2));
        assert!(dead.iter().all(|d| d.severity == Severity::Warning));
        assert!(dead[0].span.is_some());
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.code == UNREACHABLE_READ)
            .collect();
        assert_eq!(unreachable.len(), 1, "{diags:?}");
        assert!(unreachable[0].message.contains("relation D"));
        let unused: Vec<_> = diags.iter().filter(|d| d.code == UNUSED_SOURCE).collect();
        assert_eq!(unused.len(), 1, "{diags:?}");
        assert!(unused[0].message.contains("relation V"));
        let cols: Vec<_> = diags
            .iter()
            .filter(|d| d.code == UNUSED_SOURCE_COLUMN)
            .collect();
        assert_eq!(cols.len(), 1, "{diags:?}");
        assert!(cols[0].message.contains("S.2"), "{}", cols[0].message);
        assert_eq!(cols[0].severity, Severity::Info);
    }

    #[test]
    fn dataflow_liveness_lints_are_silent_without_facts() {
        // The same shape minus the facts: sources are assumed, so no
        // NDL040–NDL044 — the assumption, not the program, would be at
        // fault.
        let diags = lint("Z(x) -> D(x)\nD(x) -> E(x)\nS(x,y) -> T(x)\n");
        for code in [
            DEAD_STATEMENT,
            UNREACHABLE_READ,
            UNUSED_SOURCE,
            UNUSED_SOURCE_COLUMN,
            GROUND_RELATIONS,
        ] {
            assert!(!codes(&diags).contains(&code), "{code}: {diags:?}");
        }
    }

    #[test]
    fn ground_relations_are_reported_for_derived_relations_only() {
        // T and U are derived and null-free; R holds Skolem nulls; the
        // fact-only relation S must not pad the report.
        let diags = lint("fact: S(a)\nS(x) -> T(x)\nT(x) -> U(x)\nS(x) -> exists y R(x,y)\n");
        let d = diags
            .iter()
            .find(|d| d.code == GROUND_RELATIONS)
            .expect("NDL044");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("T, U"), "{}", d.message);
        assert!(!d.message.contains("R"), "{}", d.message);
        assert!(!d.message.contains("S,"), "{}", d.message);
    }

    #[test]
    fn provenance_fan_in_report_is_threshold_gated() {
        // Eight source relations all feed T.1.
        let mut src = String::new();
        let mut wide = String::new();
        for i in 0..8 {
            src.push_str(&format!("fact: S{i}(a)\n"));
            wide.push_str(&format!("S{i}(x) -> T(x)\n"));
        }
        let mut syms = SymbolTable::new();
        let diags = lint_source(&mut syms, &format!("{src}{wide}"), &LintOptions::default());
        let d = diags
            .iter()
            .find(|d| d.code == PROVENANCE_FAN_IN)
            .expect("NDL045");
        assert!(d.message.contains("T.1"), "{}", d.message);
        assert!(d.message.contains("fan-in 8"), "{}", d.message);
        // A higher threshold silences it.
        let opts = LintOptions {
            max_provenance_fan_in: 9,
            ..LintOptions::default()
        };
        let mut syms = SymbolTable::new();
        let relaxed = lint_source(&mut syms, &format!("{src}{wide}"), &opts);
        assert!(!codes(&relaxed).contains(&PROVENANCE_FAN_IN), "{relaxed:?}");
    }

    #[test]
    fn single_statement_program_has_no_schedule_report() {
        let diags = lint("S(x) -> R(x)\n");
        assert!(!codes(&diags).contains(&SCHEDULE_WIDTH));
        assert!(!codes(&diags).contains(&SUBSUMED));
    }
}
