//! Position and Skolem dependency graphs of a dependency program — the
//! structures behind the chase-termination classes (weak acyclicity, Fagin
//! et al.; rich acyclicity, Hernich–Schweikardt) and the cost bounds of
//! [`crate::cost`].
//!
//! Every analyzable statement is flattened to Skolemized clauses (nested
//! tgds via `ndl_core::skolem`, SO tgds directly). The **position graph**
//! has one node per relation position `R.i`:
//!
//! - a *regular* edge `p → q` when a universal variable at body position
//!   `p` is copied to head position `q`;
//! - a *special* edge `p ⇒ q` when head position `q` holds a Skolem term
//!   (an invented null). Under the weak-acyclicity rule the edge exists
//!   for body positions of universals that also occur in the head; under
//!   the rich-acyclicity rule it exists for **all** universal body
//!   positions. Rich acyclicity implies weak acyclicity.
//!
//! The **Skolem dependency graph** has one node per Skolem function; an
//! edge `f → g` means values invented by `f` can (through regular-edge
//! propagation) reach a body position feeding `g`'s arguments, i.e. terms
//! can nest. A cycle means unboundedly deep term nesting.
//!
//! Side discipline (`Side::Source`/`Side::Target`) is deliberately
//! **ignored** here: recursive programs violate it (NDL006) yet are
//! exactly the programs whose termination class is interesting. Only
//! per-relation arity consistency gates a statement into the analysis.

use crate::program::{Statement, StmtAst};
use ndl_core::prelude::*;
use ndl_core::skolem::skolemize;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a position node in a [`PositionGraph`].
pub type PosId = usize;

/// An edge of the position graph, with provenance for witness rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PosEdge {
    /// Source position.
    pub from: PosId,
    /// Target position.
    pub to: PosId,
    /// Is this a special (null-creating) edge? Regular edges copy values.
    pub special: bool,
    /// Does the edge belong to the *weak*-acyclicity graph? (All regular
    /// edges do; a special edge does iff its source variable occurs in the
    /// head. Every edge belongs to the rich-acyclicity graph.)
    pub in_wa: bool,
    /// Statement the edge comes from.
    pub stmt: usize,
    /// The variable copied (regular) or Skolem function invented (special).
    pub via: String,
}

/// The position graph of a program.
#[derive(Clone, Debug, Default)]
pub struct PositionGraph {
    /// `PosId → (relation, 0-based position)`.
    pub positions: Vec<(RelId, usize)>,
    /// All edges, deduplicated by `(from, to, special)`; provenance is the
    /// first statement that contributed the edge.
    pub edges: Vec<PosEdge>,
}

impl PositionGraph {
    /// Renders a position as `R.i` (1-based, as in the literature).
    pub fn display_pos(&self, syms: &SymbolTable, p: PosId) -> String {
        let (rel, i) = self.positions[p];
        format!("{}.{}", syms.rel_name(rel), i + 1)
    }

    /// Renders an edge as `S.1 -> R.1` or `S.1 =f=> R.2 (statement 3)`.
    pub fn display_edge(&self, syms: &SymbolTable, e: &PosEdge) -> String {
        let arrow = if e.special {
            format!("={}=>", e.via)
        } else {
            "->".to_string()
        };
        format!(
            "{} {} {} (statement {})",
            self.display_pos(syms, e.from),
            arrow,
            self.display_pos(syms, e.to),
            e.stmt + 1
        )
    }

    /// The edges of the weak- (`wa = true`) or rich-acyclicity graph.
    pub fn graph_edges(&self, wa: bool) -> impl Iterator<Item = &PosEdge> {
        self.edges.iter().filter(move |e| !wa || e.in_wa)
    }

    /// Strongly connected components of the chosen graph, as a component
    /// id per position (Kosaraju, iterative — safe on deep graphs).
    pub fn scc_ids(&self, wa: bool) -> Vec<usize> {
        let n = self.positions.len();
        let mut fwd: Vec<Vec<PosId>> = vec![Vec::new(); n];
        let mut back: Vec<Vec<PosId>> = vec![Vec::new(); n];
        for e in self.graph_edges(wa) {
            fwd[e.from].push(e.to);
            back[e.to].push(e.from);
        }
        // Pass 1: finish order on the forward graph.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            seen[start] = true;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < fwd[v].len() {
                    let w = fwd[v][*i];
                    *i += 1;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // Pass 2: reverse graph in reverse finish order.
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = next;
            while let Some(v) = stack.pop() {
                for &w in &back[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// A cycle through a special edge in the chosen graph, if one exists —
    /// the witness that the program is not weakly (`wa = true`) or richly
    /// (`wa = false`) acyclic. The cycle is returned edge-by-edge starting
    /// with the special edge; consecutive edges are adjacent and the last
    /// edge returns to the special edge's source.
    pub fn special_cycle(&self, wa: bool) -> Option<Vec<&PosEdge>> {
        let comp = self.scc_ids(wa);
        let special = self
            .graph_edges(wa)
            .find(|e| e.special && comp[e.from] == comp[e.to])?;
        // Shortest edge path from `special.to` back to `special.from`
        // inside the component (BFS over component-internal edges).
        let mut cycle = vec![special];
        if special.to != special.from {
            let mut adj: Vec<Vec<&PosEdge>> = vec![Vec::new(); self.positions.len()];
            for e in self.graph_edges(wa) {
                adj[e.from].push(e);
            }
            let mut prev: BTreeMap<PosId, &PosEdge> = BTreeMap::new();
            let mut queue = std::collections::VecDeque::from([special.to]);
            'bfs: while let Some(v) = queue.pop_front() {
                for &e in &adj[v] {
                    if comp[e.to] == comp[v] && e.to != special.to && !prev.contains_key(&e.to) {
                        prev.insert(e.to, e);
                        if e.to == special.from {
                            break 'bfs;
                        }
                        queue.push_back(e.to);
                    }
                }
            }
            let mut path = Vec::new();
            let mut at = special.from;
            while at != special.to {
                let e = prev.get(&at)?;
                path.push(*e);
                at = e.from;
            }
            path.reverse();
            cycle.extend(path);
        }
        Some(cycle)
    }

    /// Per-position **rank**: the maximum number of special edges on any
    /// path ending at the position — the depth of null-over-null creation.
    /// `None` when the weak-acyclicity graph has a special cycle (ranks
    /// are unbounded).
    pub fn ranks(&self) -> Option<Vec<usize>> {
        let comp = self.scc_ids(true);
        if self
            .graph_edges(true)
            .any(|e| e.special && comp[e.from] == comp[e.to])
        {
            return None;
        }
        // Longest path by special-edge count over the condensation DAG.
        let ncomp = comp.iter().map(|&c| c + 1).max().unwrap_or(0);
        let mut cedges: BTreeSet<(usize, usize, usize)> = BTreeSet::new(); // (from, to, weight)
        for e in self.graph_edges(true) {
            if comp[e.from] != comp[e.to] || e.special {
                cedges.insert((comp[e.from], comp[e.to], usize::from(e.special)));
            }
        }
        let mut indeg = vec![0usize; ncomp];
        let mut cadj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ncomp];
        for &(f, t, w) in &cedges {
            indeg[t] += 1;
            cadj[f].push((t, w));
        }
        let mut rank = vec![0usize; ncomp];
        let mut ready: Vec<usize> = (0..ncomp).filter(|&c| indeg[c] == 0).collect();
        while let Some(c) = ready.pop() {
            for &(t, w) in &cadj[c] {
                rank[t] = rank[t].max(rank[c] + w);
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    ready.push(t);
                }
            }
        }
        Some(
            self.positions
                .iter()
                .enumerate()
                .map(|(p, _)| rank[comp[p]])
                .collect(),
        )
    }

    /// Positions reachable from `from` via regular edges (reflexive).
    pub fn regular_reach(&self, from: &BTreeSet<PosId>) -> BTreeSet<PosId> {
        let mut adj: Vec<Vec<PosId>> = vec![Vec::new(); self.positions.len()];
        for e in &self.edges {
            if !e.special {
                adj[e.from].push(e.to);
            }
        }
        let mut out = from.clone();
        let mut stack: Vec<PosId> = from.iter().copied().collect();
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if out.insert(w) {
                    stack.push(w);
                }
            }
        }
        out
    }
}

/// A Skolem function of the program, with the graph-derived metrics.
#[derive(Clone, Debug)]
pub struct SkolemFunc {
    /// The interned function symbol.
    pub func: FuncId,
    /// Statement that introduces it.
    pub stmt: usize,
    /// Distinct body positions feeding the function's arguments.
    pub fan_in: usize,
    /// Distinct positions (under regular-edge propagation) where terms of
    /// this function may end up.
    pub fan_out: usize,
}

/// The Skolem dependency graph: nodes are Skolem functions, an edge
/// `f → g` means `f`-terms can reach an argument of `g` (term nesting).
#[derive(Clone, Debug, Default)]
pub struct SkolemGraph {
    /// The functions, in statement order.
    pub funcs: Vec<SkolemFunc>,
    /// Edges as index pairs into `funcs`.
    pub edges: Vec<(usize, usize)>,
}

/// One Skolemized clause, with the statement it came from.
#[derive(Clone, Debug)]
pub struct ClauseView {
    /// Index of the originating statement.
    pub stmt: usize,
    /// The flattened clause.
    pub clause: SoClause,
}

/// The semantic view of a program: its analyzable clauses and both
/// dependency graphs.
#[derive(Clone, Debug, Default)]
pub struct ProgramGraphs {
    /// Skolemized clauses of every analyzable statement.
    pub clauses: Vec<ClauseView>,
    /// The position graph.
    pub positions: PositionGraph,
    /// The Skolem dependency graph.
    pub skolem: SkolemGraph,
    /// Total number of statements in the program (analyzable or not).
    pub statements: usize,
    /// Statements that entered the analysis (parsed, arity-consistent).
    pub analyzed: Vec<usize>,
    /// Per analyzed statement: (relations read in bodies, relations
    /// written in heads) — the input of firing-order computation.
    pub stmt_rels: BTreeMap<usize, (BTreeSet<RelId>, BTreeSet<RelId>)>,
}

impl ProgramGraphs {
    /// Builds the semantic view of `stmts`. A statement participates when
    /// it parsed and its relations agree in arity with earlier analyzable
    /// statements; side-discipline violations (NDL006) do **not** exclude
    /// it — see the module docs. Nested tgds are Skolemized here (fresh
    /// function symbols are interned into `syms`).
    pub fn build(syms: &mut SymbolTable, stmts: &[Statement]) -> ProgramGraphs {
        let mut g = ProgramGraphs {
            statements: stmts.len(),
            ..ProgramGraphs::default()
        };
        let mut arity: BTreeMap<RelId, usize> = BTreeMap::new();
        let mut func_stmt: BTreeMap<FuncId, usize> = BTreeMap::new();
        for stmt in stmts {
            let Some(ast) = &stmt.ast else { continue };
            let (so, funcs) = match ast {
                StmtAst::Tgd(t) => {
                    if !well_formed_ignoring_sides(|s, e| t.check(s, e)) {
                        continue;
                    }
                    let (so, info) = skolemize(t, syms);
                    let funcs = info.funcs.clone();
                    (so, funcs)
                }
                StmtAst::So(t) => {
                    if !well_formed_ignoring_sides(|s, e| t.check(s, e)) {
                        continue;
                    }
                    (t.clone(), t.funcs.clone())
                }
                StmtAst::Fact(f) => {
                    if arity_ok(&mut arity, &[(f.rel, f.args.len())]) {
                        g.analyzed.push(stmt.index);
                    }
                    continue;
                }
                StmtAst::Egd(_) => {
                    // Egds neither copy values to new positions nor invent
                    // nulls; they are irrelevant to the position graph.
                    g.analyzed.push(stmt.index);
                    continue;
                }
            };
            let mut rels: Vec<(RelId, usize)> = Vec::new();
            for c in &so.clauses {
                rels.extend(c.body.iter().map(|a| (a.rel, a.args.len())));
                rels.extend(c.head.iter().map(|a| (a.rel, a.args.len())));
            }
            if !arity_ok(&mut arity, &rels) {
                continue;
            }
            g.analyzed.push(stmt.index);
            for f in funcs {
                func_stmt.insert(f, stmt.index);
            }
            let mut body_rels = BTreeSet::new();
            let mut head_rels = BTreeSet::new();
            for c in &so.clauses {
                body_rels.extend(c.body.iter().map(|a| a.rel));
                head_rels.extend(c.head.iter().map(|a| a.rel));
                g.clauses.push(ClauseView {
                    stmt: stmt.index,
                    clause: c.clone(),
                });
            }
            g.stmt_rels.insert(stmt.index, (body_rels, head_rels));
        }
        g.build_position_graph(syms);
        g.build_skolem_graph(&func_stmt, syms);
        g
    }

    fn pos_id(
        positions: &mut Vec<(RelId, usize)>,
        ids: &mut BTreeMap<(RelId, usize), PosId>,
        rel: RelId,
        i: usize,
    ) -> PosId {
        *ids.entry((rel, i)).or_insert_with(|| {
            positions.push((rel, i));
            positions.len() - 1
        })
    }

    fn build_position_graph(&mut self, syms: &SymbolTable) {
        let mut positions = Vec::new();
        let mut ids = BTreeMap::new();
        // Dedup key → index into `edges`.
        let mut seen: BTreeMap<(PosId, PosId, bool), usize> = BTreeMap::new();
        let mut edges: Vec<PosEdge> = Vec::new();
        for cv in &self.clauses {
            let c = &cv.clause;
            // Body positions per universal variable.
            let mut body_pos: BTreeMap<VarId, BTreeSet<PosId>> = BTreeMap::new();
            for a in &c.body {
                for (i, &v) in a.args.iter().enumerate() {
                    let p = Self::pos_id(&mut positions, &mut ids, a.rel, i);
                    body_pos.entry(v).or_default().insert(p);
                }
            }
            // Universals that occur in the head as themselves.
            let mut head_vars: BTreeSet<VarId> = BTreeSet::new();
            for ta in &c.head {
                for t in &ta.args {
                    if let Term::Var(v) = t {
                        head_vars.insert(*v);
                    }
                }
            }
            let mut push = |e: PosEdge| match seen.get(&(e.from, e.to, e.special)) {
                Some(&i) => edges[i].in_wa |= e.in_wa,
                None => {
                    seen.insert((e.from, e.to, e.special), edges.len());
                    edges.push(e);
                }
            };
            for ta in &c.head {
                for (i, t) in ta.args.iter().enumerate() {
                    let q = Self::pos_id(&mut positions, &mut ids, ta.rel, i);
                    match t {
                        Term::Var(x) => {
                            for &p in body_pos.get(x).into_iter().flatten() {
                                push(PosEdge {
                                    from: p,
                                    to: q,
                                    special: false,
                                    in_wa: true,
                                    stmt: cv.stmt,
                                    via: syms.var_name(*x).to_string(),
                                });
                            }
                        }
                        Term::App(f, _) => {
                            // A null lands at q: special edges from every
                            // universal body position (rich-acyclicity
                            // rule); the edge also belongs to the
                            // weak-acyclicity graph when its variable is
                            // copied to the head.
                            let via = syms.func_name(*f).to_string();
                            for (&x, ps) in &body_pos {
                                for &p in ps {
                                    push(PosEdge {
                                        from: p,
                                        to: q,
                                        special: true,
                                        in_wa: head_vars.contains(&x),
                                        stmt: cv.stmt,
                                        via: via.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        self.positions = PositionGraph { positions, edges };
    }

    fn build_skolem_graph(&mut self, func_stmt: &BTreeMap<FuncId, usize>, _syms: &SymbolTable) {
        // O(f): head positions where a term mentioning f lands.
        // I(f): body positions of the variables inside f's arguments.
        let mut occ: BTreeMap<FuncId, BTreeSet<PosId>> = BTreeMap::new();
        let mut input: BTreeMap<FuncId, BTreeSet<PosId>> = BTreeMap::new();
        let ids: BTreeMap<(RelId, usize), PosId> = self
            .positions
            .positions
            .iter()
            .enumerate()
            .map(|(i, &rp)| (rp, i))
            .collect();
        for cv in &self.clauses {
            let c = &cv.clause;
            let mut body_pos: BTreeMap<VarId, BTreeSet<PosId>> = BTreeMap::new();
            for a in &c.body {
                for (i, &v) in a.args.iter().enumerate() {
                    if let Some(&p) = ids.get(&(a.rel, i)) {
                        body_pos.entry(v).or_default().insert(p);
                    }
                }
            }
            for ta in &c.head {
                for (i, t) in ta.args.iter().enumerate() {
                    let Some(&q) = ids.get(&(ta.rel, i)) else {
                        continue;
                    };
                    let mut funcs = BTreeSet::new();
                    let mut vars = BTreeSet::new();
                    collect_term(t, &mut funcs, &mut vars);
                    for f in funcs {
                        occ.entry(f).or_default().insert(q);
                        let inp = input.entry(f).or_default();
                        for v in &vars {
                            inp.extend(body_pos.get(v).into_iter().flatten());
                        }
                    }
                }
            }
        }
        let mut funcs: Vec<FuncId> = occ.keys().copied().collect();
        funcs.sort_by_key(|f| (func_stmt.get(f).copied().unwrap_or(usize::MAX), *f));
        let reach: Vec<BTreeSet<PosId>> = funcs
            .iter()
            .map(|f| self.positions.regular_reach(&occ[f]))
            .collect();
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for (i, &f) in funcs.iter().enumerate() {
            nodes.push(SkolemFunc {
                func: f,
                stmt: func_stmt.get(&f).copied().unwrap_or(0),
                fan_in: input.get(&f).map_or(0, BTreeSet::len),
                fan_out: reach[i].len(),
            });
            for (j, &g) in funcs.iter().enumerate() {
                let gin = input.get(&g).into_iter().flatten();
                if gin.into_iter().any(|p| reach[i].contains(p)) {
                    edges.push((i, j));
                }
            }
        }
        self.skolem = SkolemGraph {
            funcs: nodes,
            edges,
        };
    }

    /// Graphviz DOT rendering of both graphs: the position graph (special
    /// edges dashed, labeled with the Skolem function) and the Skolem
    /// dependency graph as a second cluster.
    pub fn to_dot(&self, syms: &SymbolTable) -> String {
        let mut out = String::from("digraph analysis {\n  rankdir=LR;\n");
        out.push_str("  subgraph cluster_positions {\n    label=\"position graph\";\n");
        for (i, _) in self.positions.positions.iter().enumerate() {
            out.push_str(&format!(
                "    p{} [label=\"{}\", shape=box];\n",
                i,
                self.positions.display_pos(syms, i)
            ));
        }
        for e in &self.positions.edges {
            if e.special {
                out.push_str(&format!(
                    "    p{} -> p{} [style=dashed, label=\"{}\"{}];\n",
                    e.from,
                    e.to,
                    e.via,
                    if e.in_wa { "" } else { ", color=gray" }
                ));
            } else {
                out.push_str(&format!("    p{} -> p{};\n", e.from, e.to));
            }
        }
        out.push_str("  }\n");
        out.push_str("  subgraph cluster_skolem {\n    label=\"Skolem dependency graph\";\n");
        for (i, f) in self.skolem.funcs.iter().enumerate() {
            out.push_str(&format!(
                "    f{} [label=\"{} (in {}, out {})\", shape=ellipse];\n",
                i,
                syms.func_name(f.func),
                f.fan_in,
                f.fan_out
            ));
        }
        for &(a, b) in &self.skolem.edges {
            out.push_str(&format!("    f{a} -> f{b};\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Is a statement well-formed apart from side discipline? Validation runs
/// against a private schema, and `SideMismatch` (NDL006) is tolerated —
/// recursive programs necessarily read their own target relations, and
/// their termination class is exactly what the analysis must determine.
fn well_formed_ignoring_sides(check: impl FnOnce(&mut Schema, &mut Vec<CoreError>)) -> bool {
    let mut schema = Schema::new();
    let mut errs = Vec::new();
    check(&mut schema, &mut errs);
    errs.iter()
        .all(|e| matches!(e, CoreError::SideMismatch { .. }))
}

fn arity_ok(arity: &mut BTreeMap<RelId, usize>, uses: &[(RelId, usize)]) -> bool {
    // Check first (a statement must not half-register), then record.
    for &(r, n) in uses {
        if arity.get(&r).is_some_and(|&m| m != n) {
            return false;
        }
    }
    // A single statement may still be internally inconsistent.
    let mut local: BTreeMap<RelId, usize> = BTreeMap::new();
    for &(r, n) in uses {
        if *local.entry(r).or_insert(n) != n {
            return false;
        }
    }
    arity.extend(local);
    true
}

fn collect_term(t: &Term, funcs: &mut BTreeSet<FuncId>, vars: &mut BTreeSet<VarId>) {
    match t {
        Term::Var(v) => {
            vars.insert(*v);
        }
        Term::App(f, args) => {
            funcs.insert(*f);
            for a in args {
                collect_term(a, funcs, vars);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parse_program;

    fn graphs(src: &str) -> (SymbolTable, ProgramGraphs) {
        let mut syms = SymbolTable::new();
        let (stmts, _) = parse_program(&mut syms, src);
        let g = ProgramGraphs::build(&mut syms, &stmts);
        (syms, g)
    }

    #[test]
    fn running_example_graph_is_acyclic() {
        let (syms, g) = graphs(
            "forall x1 (S1(x1) -> exists y1 (forall x2 (S2(x2) -> R2(y1,x2)) & \
             forall x3 (S3(x1,x3) -> (R3(y1,x3) & forall x4 (S4(x3,x4) -> \
             exists y2 (R4(y2,x4)))))))\n",
        );
        assert!(g.positions.special_cycle(true).is_none());
        assert!(g.positions.special_cycle(false).is_none());
        let ranks = g.positions.ranks().unwrap();
        assert_eq!(ranks.iter().max(), Some(&1));
        // Two Skolem functions (y1, y2); f = y1 lands at R2.1 and R3.1.
        assert_eq!(g.skolem.funcs.len(), 2);
        let f = &g.skolem.funcs[0];
        assert_eq!(f.fan_out, 2);
        // x1 is fed from S1.1 (clause for σ2) and S3.1 (clause for σ3).
        assert_eq!(f.fan_in, 2);
        assert!(g.skolem.edges.is_empty());
        let dot = g.to_dot(&syms);
        assert!(dot.contains("cluster_positions"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn propagating_recursion_is_not_weakly_acyclic() {
        // E(x,y) -> exists z E(y,z): y occurs in the head, so E.2 ⇒ E.2 is
        // special in the WA graph too, and E.1 ⇒ E.2 → E.1 closes a cycle.
        let (syms, g) = graphs("E(x,y) -> exists z E(y,z)\n");
        let cyc = g.positions.special_cycle(true).expect("cycle");
        assert!(cyc[0].special);
        let rendered: Vec<String> = cyc
            .iter()
            .map(|e| g.positions.display_edge(&syms, e))
            .collect();
        assert!(rendered.iter().any(|s| s.contains("=f")), "{rendered:?}");
        assert!(g.positions.ranks().is_none());
        assert!(g.positions.special_cycle(false).is_some());
    }

    #[test]
    fn blind_recursion_is_weakly_but_not_richly_acyclic() {
        // T(x) -> exists y T(y): x does not occur in the head, so the WA
        // graph has no special edge at all — but the RA rule adds the
        // special self-loop T.1 ⇒ T.1 (the oblivious chase diverges).
        let (_syms, g) = graphs("T(x) -> exists y T(y)\n");
        assert!(g.positions.special_cycle(true).is_none());
        let cyc = g.positions.special_cycle(false).expect("RA cycle");
        assert_eq!(cyc[0].from, cyc[0].to);
        // Ranks follow the weak-acyclicity graph (the literature's rank):
        // with no WA special edge the rank is 0 even though nulls land in
        // T.1 under the oblivious semantics.
        assert_eq!(g.positions.ranks().unwrap(), vec![0]);
    }

    #[test]
    fn wa_not_ra_program() {
        // R(x,y) -> exists z R(x,z): x occurs in the head, y does not.
        // WA graph: regular R.1→R.1, special R.1⇒R.2 — no cycle.
        // RA graph adds special R.2⇒R.2 — a special self-loop.
        let (_syms, g) = graphs("R(x,y) -> exists z R(x,z)\n");
        assert!(g.positions.special_cycle(true).is_none());
        assert!(g.positions.special_cycle(false).is_some());
        assert!(g.positions.ranks().is_some());
    }

    #[test]
    fn arity_conflicts_exclude_statements() {
        let (_syms, g) = graphs("S(x) -> R(x)\nS(x,y) -> Q(x)\n");
        // Statement 2 conflicts with S/1 and is skipped.
        assert_eq!(g.analyzed, vec![0]);
        assert_eq!(g.statements, 2);
    }

    #[test]
    fn side_conflicts_do_not_exclude() {
        let (_syms, g) = graphs("S(x) -> R(x)\nR(x) -> T(x)\n");
        assert_eq!(g.analyzed, vec![0, 1]);
        assert!(g.positions.special_cycle(false).is_none());
    }

    #[test]
    fn skolem_nesting_shows_as_graph_edge() {
        // f-terms land in T.1; T.1 feeds g via the second statement.
        let (syms, g) = graphs("S(x) -> exists y T(y)\nT(x) -> exists z U(x,z)\n");
        assert_eq!(g.skolem.funcs.len(), 2);
        assert_eq!(g.skolem.edges, vec![(0, 1)]);
        let names: Vec<&str> = g
            .skolem
            .funcs
            .iter()
            .map(|f| syms.func_name(f.func))
            .collect();
        assert_eq!(names.len(), 2);
    }
}
