//! The diagnostic data model: severities, the [`Diagnostic`] record with
//! its resolved line/column position, the [`LineIndex`] that resolves byte
//! offsets, and the human-readable renderer.

use ndl_core::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Stylistic or informational; the program is fine.
    Info,
    /// The program is well-formed but likely not what was intended, or has
    /// a shape known to be expensive (Sections 3 and 4 of the paper).
    Warning,
    /// The statement is malformed and was rejected.
    Error,
}

impl Severity {
    /// The lowercase name used in rendered output and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Serialized as the lowercase name rather than the derive's variant tag, so
// the JSON surface is conventional (`"severity": "warning"`).
impl Serialize for Severity {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => match s.as_str() {
                "info" => Ok(Severity::Info),
                "warning" => Ok(Severity::Warning),
                "error" => Ok(Severity::Error),
                other => Err(serde::Error::custom(format!("unknown severity {other:?}"))),
            },
            _ => Err(serde::Error::msg("severity must be a string")),
        }
    }
}

/// One finding of the analyzer, anchored (when possible) to a byte span of
/// the linted source and the resolved 1-based line/column of its start.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `NDL002` (see `docs/lints.md`).
    pub code: String,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Index of the statement the finding is about (0-based), if any —
    /// mapping-level findings such as NDL016 span the whole program.
    pub statement: Option<usize>,
    /// Byte span into the linted source, if the finding has an anchor.
    pub span: Option<Span>,
    /// 1-based line of `span.start`.
    pub line: Option<usize>,
    /// 1-based column (in bytes) of `span.start`.
    pub col: Option<usize>,
}

impl Diagnostic {
    /// Creates an unanchored diagnostic.
    pub fn new(code: &str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            message: message.into(),
            statement: None,
            span: None,
            line: None,
            col: None,
        }
    }

    /// Anchors the diagnostic to `span`, resolving line/column via `index`.
    pub fn with_span(mut self, span: Span, index: &LineIndex) -> Diagnostic {
        let (line, col) = index.line_col(span.start);
        self.span = Some(span);
        self.line = Some(line);
        self.col = Some(col);
        self
    }

    /// Attributes the diagnostic to statement `index`.
    pub fn with_statement(mut self, index: usize) -> Diagnostic {
        self.statement = Some(index);
        self
    }

    /// Is this an error-severity finding?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// Resolves byte offsets of a source text to 1-based line/column pairs.
#[derive(Clone, Debug)]
pub struct LineIndex {
    /// Byte offset of the first character of each line.
    line_starts: Vec<usize>,
    len: usize,
}

impl LineIndex {
    /// Indexes `text`.
    pub fn new(text: &str) -> LineIndex {
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex {
            line_starts,
            len: text.len(),
        }
    }

    /// The 1-based `(line, column)` of byte `offset`; offsets past the end
    /// resolve to one past the last column of the last line.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let offset = offset.min(self.len);
        let line = self
            .line_starts
            .partition_point(|&start| start <= offset)
            .saturating_sub(1);
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The byte range of 1-based `line` (without its newline), if it exists.
    pub fn line_span(&self, line: usize) -> Option<(usize, usize)> {
        let start = *self.line_starts.get(line.checked_sub(1)?)?;
        let end = self
            .line_starts
            .get(line)
            .map(|&next| next - 1)
            .unwrap_or(self.len);
        Some((start, end))
    }
}

/// Renders diagnostics in a compact rustc-like layout with the offending
/// source line and a caret marker:
///
/// ```text
/// error[NDL002]: universal variable z occurs in no body atom of its part
///  --> deps.ndl:3:10
///   |
/// 3 | forall x,z (S(x) -> R(x))
///   |          ^
/// ```
pub fn render(diags: &[Diagnostic], file: &str, source: &str) -> String {
    let index = LineIndex::new(source);
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        let Some(span) = d.span else {
            out.push_str(&format!(" --> {file}\n"));
            continue;
        };
        let (line, col) = (d.line.unwrap_or(1), d.col.unwrap_or(1));
        out.push_str(&format!(" --> {file}:{line}:{col}\n"));
        if let Some((start, end)) = index.line_span(line) {
            let gutter = line.to_string();
            let pad = " ".repeat(gutter.len());
            let text = &source[start..end];
            let width = span
                .len()
                .clamp(1, end.saturating_sub(start + col - 1).max(1));
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {text}\n"));
            out.push_str(&format!(
                "{pad} | {}{}\n",
                " ".repeat(col - 1),
                "^".repeat(width)
            ));
        }
    }
    out
}

/// One-line totals, e.g. `2 errors, 1 warning, 0 info`.
pub fn summary(diags: &[Diagnostic]) -> String {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    let (e, w, i) = (
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
    );
    let plural = |n: usize, word: &str| {
        if n == 1 {
            format!("{n} {word}")
        } else {
            format!("{n} {word}s")
        }
    };
    format!(
        "{}, {}, {} info",
        plural(e, "error"),
        plural(w, "warning"),
        i
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_resolves_offsets() {
        let idx = LineIndex::new("ab\ncd\n\nefg");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (4, 1));
        assert_eq!(idx.line_col(9), (4, 3));
        assert_eq!(idx.line_col(1000), (4, 4));
        assert_eq!(idx.line_span(2), Some((3, 5)));
        assert_eq!(idx.line_span(4), Some((7, 10)));
        assert_eq!(idx.line_span(5), None);
    }

    #[test]
    fn severity_orders_and_serializes() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let v = Severity::Warning.to_value();
        assert_eq!(Severity::from_value(&v).unwrap(), Severity::Warning);
        assert!(Severity::from_value(&serde::Value::String("nope".into())).is_err());
    }

    #[test]
    fn render_includes_caret_line() {
        let src = "S(x) -> R(x)\nforall x,z (S(x) -> R(x))";
        let idx = LineIndex::new(src);
        let d = Diagnostic::new("NDL002", Severity::Error, "unsafe variable z")
            .with_span(Span::new(22, 23), &idx)
            .with_statement(1);
        let text = render(std::slice::from_ref(&d), "deps.ndl", src);
        assert!(text.contains("error[NDL002]: unsafe variable z"));
        assert!(text.contains("--> deps.ndl:2:10"));
        assert!(text.contains("2 | forall x,z (S(x) -> R(x))"));
        assert!(text.contains("|          ^"));
        assert_eq!(d.line, Some(2));
        assert_eq!(d.col, Some(10));
    }

    #[test]
    fn summary_counts() {
        let diags = vec![
            Diagnostic::new("NDL001", Severity::Error, "a"),
            Diagnostic::new("NDL010", Severity::Warning, "b"),
            Diagnostic::new("NDL017", Severity::Info, "c"),
        ];
        assert_eq!(summary(&diags), "1 error, 1 warning, 1 info");
    }
}
