//! The diagnostic data model: severities, the [`Diagnostic`] record with
//! its resolved line/column position, the [`LineIndex`] that resolves byte
//! offsets, and the human-readable renderer.

use ndl_core::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Stylistic or informational; the program is fine.
    Info,
    /// The program is well-formed but likely not what was intended, or has
    /// a shape known to be expensive (Sections 3 and 4 of the paper).
    Warning,
    /// The statement is malformed and was rejected.
    Error,
}

impl Severity {
    /// The lowercase name used in rendered output and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Serialized as the lowercase name rather than the derive's variant tag, so
// the JSON surface is conventional (`"severity": "warning"`).
impl Serialize for Severity {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => match s.as_str() {
                "info" => Ok(Severity::Info),
                "warning" => Ok(Severity::Warning),
                "error" => Ok(Severity::Error),
                other => Err(serde::Error::custom(format!("unknown severity {other:?}"))),
            },
            _ => Err(serde::Error::msg("severity must be a string")),
        }
    }
}

/// A secondary annotation attached to a [`Diagnostic`] — e.g. one hop of
/// the special-edge cycle NDL020 reports. Notes render after the primary
/// snippet, each with its own caret when anchored.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Note {
    /// Human-readable explanation of this annotation.
    pub message: String,
    /// Statement the note points into, if any.
    pub statement: Option<usize>,
    /// Byte span into the linted source, if the note has an anchor.
    pub span: Option<Span>,
    /// 1-based line of `span.start`.
    pub line: Option<usize>,
    /// 1-based column (in characters) of `span.start`.
    pub col: Option<usize>,
}

impl Note {
    /// Creates an unanchored note.
    pub fn new(message: impl Into<String>) -> Note {
        Note {
            message: message.into(),
            statement: None,
            span: None,
            line: None,
            col: None,
        }
    }

    /// Anchors the note to `span`, resolving line/column via `index`.
    pub fn with_span(mut self, span: Span, index: &LineIndex) -> Note {
        let (line, col) = index.line_col(span.start);
        self.span = Some(span);
        self.line = Some(line);
        self.col = Some(col);
        self
    }

    /// Attributes the note to statement `index`.
    pub fn with_statement(mut self, index: usize) -> Note {
        self.statement = Some(index);
        self
    }
}

/// One finding of the analyzer, anchored (when possible) to a byte span of
/// the linted source and the resolved 1-based line/column of its start.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `NDL002` (see `docs/lints.md`).
    pub code: String,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Index of the statement the finding is about (0-based), if any —
    /// mapping-level findings such as NDL016 span the whole program.
    pub statement: Option<usize>,
    /// Byte span into the linted source, if the finding has an anchor.
    pub span: Option<Span>,
    /// 1-based line of `span.start`.
    pub line: Option<usize>,
    /// 1-based column (in characters) of `span.start`.
    pub col: Option<usize>,
    /// Secondary annotations (e.g. the hops of an NDL020 cycle).
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// Creates an unanchored diagnostic.
    pub fn new(code: &str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            message: message.into(),
            statement: None,
            span: None,
            line: None,
            col: None,
            notes: Vec::new(),
        }
    }

    /// Anchors the diagnostic to `span`, resolving line/column via `index`.
    pub fn with_span(mut self, span: Span, index: &LineIndex) -> Diagnostic {
        let (line, col) = index.line_col(span.start);
        self.span = Some(span);
        self.line = Some(line);
        self.col = Some(col);
        self
    }

    /// Attributes the diagnostic to statement `index`.
    pub fn with_statement(mut self, index: usize) -> Diagnostic {
        self.statement = Some(index);
        self
    }

    /// Appends a secondary note.
    pub fn with_note(mut self, note: Note) -> Diagnostic {
        self.notes.push(note);
        self
    }

    /// Is this an error-severity finding?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// Resolves byte offsets of a source text to 1-based line/column pairs.
/// Columns count **characters**, not bytes, so diagnostics and carets line
/// up on multi-byte UTF-8 input.
#[derive(Clone, Debug)]
pub struct LineIndex {
    /// Byte offset of the first character of each line.
    line_starts: Vec<usize>,
    /// The indexed text (kept to count characters within a line).
    text: String,
}

impl LineIndex {
    /// Indexes `text`.
    pub fn new(text: &str) -> LineIndex {
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex {
            line_starts,
            text: text.to_string(),
        }
    }

    /// The 1-based `(line, column)` of byte `offset`, the column counted in
    /// characters; offsets past the end resolve to one past the last column
    /// of the last line. An offset inside a multi-byte character resolves
    /// to that character's column.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let mut offset = offset.min(self.text.len());
        while !self.text.is_char_boundary(offset) {
            offset -= 1;
        }
        let line = self
            .line_starts
            .partition_point(|&start| start <= offset)
            .saturating_sub(1);
        let col = self.text[self.line_starts[line]..offset].chars().count();
        (line + 1, col + 1)
    }

    /// The byte range of 1-based `line` (without its newline), if it exists.
    pub fn line_span(&self, line: usize) -> Option<(usize, usize)> {
        let start = *self.line_starts.get(line.checked_sub(1)?)?;
        let end = self
            .line_starts
            .get(line)
            .map(|&next| next - 1)
            .unwrap_or(self.text.len());
        Some((start, end))
    }
}

/// Renders diagnostics in a compact rustc-like layout with the offending
/// source line and a caret marker:
///
/// ```text
/// error[NDL002]: universal variable z occurs in no body atom of its part
///  --> deps.ndl:3:10
///   |
/// 3 | forall x,z (S(x) -> R(x))
///   |          ^
/// ```
pub fn render(diags: &[Diagnostic], file: &str, source: &str) -> String {
    let index = LineIndex::new(source);
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        render_anchor(&mut out, file, source, &index, d.span, d.line, d.col);
        for n in &d.notes {
            out.push_str(&format!("note: {}\n", n.message));
            render_anchor(&mut out, file, source, &index, n.span, n.line, n.col);
        }
    }
    out
}

/// Renders the ` --> file:line:col` locator and, when anchored, the source
/// line with a caret marker. Caret padding and width count characters so
/// the marker aligns on multi-byte UTF-8 lines.
fn render_anchor(
    out: &mut String,
    file: &str,
    source: &str,
    index: &LineIndex,
    span: Option<Span>,
    line: Option<usize>,
    col: Option<usize>,
) {
    let Some(span) = span else {
        out.push_str(&format!(" --> {file}\n"));
        return;
    };
    let (line, col) = (line.unwrap_or(1), col.unwrap_or(1));
    out.push_str(&format!(" --> {file}:{line}:{col}\n"));
    if let Some((start, end)) = index.line_span(line) {
        let gutter = line.to_string();
        let pad = " ".repeat(gutter.len());
        let text = &source[start..end];
        let line_chars = text.chars().count();
        // Characters the span covers, truncated to what lies on this line.
        let span_end = span.end.clamp(span.start, end).min(source.len());
        let span_chars = source
            .get(span.start..span_end)
            .map_or(1, |s| s.chars().count());
        let width = span_chars.clamp(1, (line_chars + 1).saturating_sub(col).max(1));
        out.push_str(&format!("{pad} |\n"));
        out.push_str(&format!("{gutter} | {text}\n"));
        out.push_str(&format!(
            "{pad} | {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
    }
}

/// One-line totals, e.g. `2 errors, 1 warning, 0 info`.
pub fn summary(diags: &[Diagnostic]) -> String {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    let (e, w, i) = (
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
    );
    let plural = |n: usize, word: &str| {
        if n == 1 {
            format!("{n} {word}")
        } else {
            format!("{n} {word}s")
        }
    };
    format!(
        "{}, {}, {} info",
        plural(e, "error"),
        plural(w, "warning"),
        i
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_resolves_offsets() {
        let idx = LineIndex::new("ab\ncd\n\nefg");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (4, 1));
        assert_eq!(idx.line_col(9), (4, 3));
        assert_eq!(idx.line_col(1000), (4, 4));
        assert_eq!(idx.line_span(2), Some((3, 5)));
        assert_eq!(idx.line_span(4), Some((7, 10)));
        assert_eq!(idx.line_span(5), None);
    }

    #[test]
    fn severity_orders_and_serializes() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let v = Severity::Warning.to_value();
        assert_eq!(Severity::from_value(&v).unwrap(), Severity::Warning);
        assert!(Severity::from_value(&serde::Value::String("nope".into())).is_err());
    }

    #[test]
    fn render_includes_caret_line() {
        let src = "S(x) -> R(x)\nforall x,z (S(x) -> R(x))";
        let idx = LineIndex::new(src);
        let d = Diagnostic::new("NDL002", Severity::Error, "unsafe variable z")
            .with_span(Span::new(22, 23), &idx)
            .with_statement(1);
        let text = render(std::slice::from_ref(&d), "deps.ndl", src);
        assert!(text.contains("error[NDL002]: unsafe variable z"));
        assert!(text.contains("--> deps.ndl:2:10"));
        assert!(text.contains("2 | forall x,z (S(x) -> R(x))"));
        assert!(text.contains("|          ^"));
        assert_eq!(d.line, Some(2));
        assert_eq!(d.col, Some(10));
    }

    #[test]
    fn multibyte_columns_count_characters() {
        // Line 1 is a non-ASCII comment; line 2 holds multi-byte
        // identifiers before the span. Byte-based columns would be off by
        // three at the anchor ('ü' and the two 'é's before it).
        let src = "# café σ mapping\nTür(é) -> R(é,zz)";
        let idx = LineIndex::new(src);
        let off = src.rfind("zz").unwrap();
        assert_eq!(idx.line_col(off), (2, 15));
        let d = Diagnostic::new("NDL002", Severity::Error, "unsafe variable zz")
            .with_span(Span::new(off, off + 2), &idx);
        assert_eq!((d.line, d.col), (Some(2), Some(15)));
        let text = render(std::slice::from_ref(&d), "deps.ndl", src);
        assert!(text.contains(" --> deps.ndl:2:15"));
        // The caret sits under `zz`: 14 characters of padding, width 2.
        assert!(
            text.contains(&format!("  | {}^^\n", " ".repeat(14))),
            "{text}"
        );
        // An offset inside a multi-byte character resolves to its column.
        let e_off = src.rfind('é').unwrap();
        assert_eq!(idx.line_col(e_off + 1), idx.line_col(e_off));
    }

    #[test]
    fn notes_render_with_their_own_carets() {
        let src = "S(x) -> R(x)\nR(x) -> S(x)";
        let idx = LineIndex::new(src);
        let d = Diagnostic::new("NDL020", Severity::Error, "cycle")
            .with_span(Span::new(0, 1), &idx)
            .with_note(
                Note::new("back edge here")
                    .with_statement(1)
                    .with_span(Span::new(21, 22), &idx),
            )
            .with_note(Note::new("unanchored context"));
        let text = render(std::slice::from_ref(&d), "p.ndl", src);
        assert!(text.contains("note: back edge here"));
        assert!(text.contains(" --> p.ndl:2:9"));
        assert!(text.contains("2 | R(x) -> S(x)"));
        assert!(text.contains("note: unanchored context\n --> p.ndl\n"));
    }

    #[test]
    fn summary_counts() {
        let diags = vec![
            Diagnostic::new("NDL001", Severity::Error, "a"),
            Diagnostic::new("NDL010", Severity::Warning, "b"),
            Diagnostic::new("NDL017", Severity::Info, "c"),
        ];
        assert_eq!(summary(&diags), "1 error, 1 warning, 1 info");
    }
}
