//! Interference analysis: the **statement conflict graph** built from the
//! per-statement footprints of [`crate::footprint`].
//!
//! Two statements *interfere* when firing them concurrently inside one
//! chase round could observe or produce different state than firing them
//! in sequence:
//!
//! - **W–W**: both write the same relation (their head insertions race on
//!   the same posting lists);
//! - **R–W**: one reads a relation the other writes (the reader's matches
//!   could see the writer's half-committed round);
//! - **shared null factory**: both invent nulls through the same Skolem
//!   function, so interning order — and hence null identity — depends on
//!   scheduling.
//!
//! The round-snapshot discipline of the fixpoint engine (matches run
//! against the *previous* round's index, insertions commit at round end)
//! already neutralizes R–W and W–W conflicts *across* rounds; the conflict
//! graph is about what may fire **in parallel within a round** while
//! staying bit-identical to the sequential engine. [`crate::schedule`]
//! stratifies this graph into conflict-free stages.
//!
//! Footprint computation lives in [`crate::footprint`] (shared with the
//! dataflow pass); the types [`Footprint`] and [`ConflictKind`] are
//! re-exported here so pre-split import paths keep working.

use crate::footprint::ProgramFootprints;
use crate::graph::ProgramGraphs;
use crate::program::Statement;
use ndl_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

pub use crate::footprint::{ConflictKind, Footprint};

/// An edge of the statement conflict graph (`a < b`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictEdge {
    /// Smaller statement index.
    pub a: usize,
    /// Larger statement index.
    pub b: usize,
    /// Every reason the pair conflicts, in [`ConflictKind`] order.
    pub kinds: Vec<ConflictKind>,
}

/// The interference analysis of a program: footprints, the conflict
/// graph, and the whole-program relation roles behind NDL031/NDL032.
#[derive(Clone, Debug, Default)]
pub struct InterferenceAnalysis {
    /// Footprint per statement that contributes reads or writes: tgd
    /// statements that entered [`ProgramGraphs`], plus ground facts and
    /// egds (which the graphs skip).
    pub footprints: BTreeMap<usize, Footprint>,
    /// Statements eligible for scheduling — exactly the tgd statements
    /// with Skolemized clauses in [`ProgramGraphs::clauses`].
    pub scheduled: BTreeSet<usize>,
    /// Conflict edges among *scheduled* statements, ordered by `(a, b)`.
    pub edges: Vec<ConflictEdge>,
    /// Scheduled statements whose own reads and writes overlap.
    pub self_interfering: Vec<usize>,
    /// Relations some statement writes but none reads (NDL031). For a
    /// data-exchange mapping these are simply the target relations, so
    /// the lint is informational.
    pub write_only: Vec<RelId>,
    /// Relations some statement reads but none writes (NDL032): the
    /// matches can only ever see source facts — or nothing at all.
    pub read_only: Vec<RelId>,
}

impl InterferenceAnalysis {
    /// Computes footprints and the conflict graph. `graphs` supplies the
    /// Skolemized clauses of analyzable tgd statements; `stmts` supplies
    /// the facts and egds the graphs skip.
    pub fn of(graphs: &ProgramGraphs, stmts: &[Statement]) -> InterferenceAnalysis {
        let fps = ProgramFootprints::of(graphs, stmts);
        let mut a = InterferenceAnalysis {
            footprints: fps.footprints,
            scheduled: fps.scheduled,
            ..InterferenceAnalysis::default()
        };
        let sched: Vec<usize> = a.scheduled.iter().copied().collect();
        for (i, &s) in sched.iter().enumerate() {
            if a.footprints[&s].self_interfering() {
                a.self_interfering.push(s);
            }
            for &t in &sched[i + 1..] {
                let kinds = a.footprints[&s].kinds_against(&a.footprints[&t]);
                if !kinds.is_empty() {
                    a.edges.push(ConflictEdge { a: s, b: t, kinds });
                }
            }
        }
        let mut read: BTreeSet<RelId> = BTreeSet::new();
        let mut written: BTreeSet<RelId> = BTreeSet::new();
        for fp in a.footprints.values() {
            read.extend(fp.reads.iter().copied());
            written.extend(fp.writes.iter().copied());
        }
        a.write_only = written.difference(&read).copied().collect();
        a.read_only = read.difference(&written).copied().collect();
        a
    }

    /// Is the pair conflict-free (both scheduled, no edge between them)?
    pub fn independent(&self, a: usize, b: usize) -> bool {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        a != b
            && self.scheduled.contains(&a)
            && self.scheduled.contains(&b)
            && !self.edges.iter().any(|e| e.a == a && e.b == b)
    }

    /// Renders the conflict graph in Graphviz DOT: one box per scheduled
    /// statement labeled with its read/write sets, one undirected edge per
    /// conflict labeled with its reasons. Self-interfering statements are
    /// drawn with a doubled border.
    pub fn to_dot(&self, syms: &SymbolTable) -> String {
        let names = |rels: &BTreeSet<RelId>| -> String {
            let v: Vec<&str> = rels.iter().map(|&r| syms.rel_name(r)).collect();
            v.join(",")
        };
        let mut out = String::from("graph conflicts {\n  node [shape=box];\n");
        for &s in &self.scheduled {
            let fp = &self.footprints[&s];
            let peripheries = if fp.self_interfering() {
                ", peripheries=2"
            } else {
                ""
            };
            out.push_str(&format!(
                "  s{} [label=\"s{}\\nR: {}\\nW: {}\"{}];\n",
                s,
                s,
                names(&fp.reads),
                names(&fp.writes),
                peripheries
            ));
        }
        for e in &self.edges {
            let labels: Vec<&str> = e.kinds.iter().map(|k| k.label()).collect();
            out.push_str(&format!(
                "  s{} -- s{} [label=\"{}\"];\n",
                e.a,
                e.b,
                labels.join("\\n")
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parse_program;

    fn build(src: &str) -> (SymbolTable, Vec<Statement>, ProgramGraphs) {
        let mut syms = SymbolTable::new();
        let (stmts, errs) = parse_program(&mut syms, src);
        assert!(errs.is_empty(), "{errs:?}");
        let graphs = ProgramGraphs::build(&mut syms, &stmts);
        (syms, stmts, graphs)
    }

    #[test]
    fn independent_statements_have_no_edge() {
        let (_, stmts, graphs) = build("S(x) -> R(x)\nT(x) -> U(x)\n");
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        assert!(a.edges.is_empty());
        assert!(a.independent(0, 1));
    }

    #[test]
    fn write_write_and_read_write_edges() {
        // Both write R: W–W. Statement 2 reads R which 0 and 1 write: R–W.
        let (_, stmts, graphs) = build("S(x) -> R(x)\nT(x) -> R(x)\nR(x) -> U(x)\n");
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        let edge = |x: usize, y: usize| a.edges.iter().find(|e| e.a == x && e.b == y).unwrap();
        assert_eq!(edge(0, 1).kinds, vec![ConflictKind::WriteWrite]);
        assert_eq!(edge(0, 2).kinds, vec![ConflictKind::ReadWrite]);
        assert_eq!(edge(1, 2).kinds, vec![ConflictKind::ReadWrite]);
        assert!(!a.independent(0, 1));
    }

    #[test]
    fn shared_skolem_function_is_a_conflict() {
        // Two SO tgds invent nulls through the same declared function f.
        let src = "exists f . S(x) -> R(x, f(x))\nexists f . T(x) -> U(x, f(x))\n";
        let (_, stmts, graphs) = build(src);
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].kinds, vec![ConflictKind::SharedNullFactory]);
    }

    #[test]
    fn unused_declared_function_does_not_conflict() {
        // g is declared by both but only applied by the first: footprints
        // track *occurring* functions, so no shared-factory edge.
        let src = "exists f, g . S(x) -> R(x, f(x))\nexists f2, g . T(x) -> U(x, f2(x))\n";
        let (_, stmts, graphs) = build(src);
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn self_interfering_statement_is_flagged() {
        let (_, stmts, graphs) = build("E(x,y) & R(y) -> R(x)\n");
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        assert_eq!(a.self_interfering, vec![0]);
        assert!(a.footprints[&0].self_interfering());
    }

    #[test]
    fn facts_write_and_egds_read() {
        let src = "fact: S(a, b)\negd: S(x,y) & S(x,z) -> y = z\nS(x,y) -> R(x)\n";
        let (_, stmts, graphs) = build(src);
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        // The fact writes S; the egd reads S; only statement 2 schedules.
        assert_eq!(a.scheduled.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert!(a.footprints[&0].writes.len() == 1 && a.footprints[&0].reads.is_empty());
        assert!(a.footprints[&1].reads.len() == 1 && a.footprints[&1].writes.is_empty());
        // S is both written (fact) and read; R is write-only.
        assert_eq!(a.write_only.len(), 1);
        assert!(a.read_only.is_empty());
    }

    #[test]
    fn read_only_relation_is_reported() {
        let (_, stmts, graphs) = build("S(x) -> R(x)\n");
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        assert_eq!(a.read_only.len(), 1); // S: read, never written
        assert_eq!(a.write_only.len(), 1); // R: written, never read
    }

    #[test]
    fn dot_renders_nodes_and_labeled_edges() {
        let (syms, stmts, graphs) = build("S(x) -> R(x)\nT(x) -> R(x)\n");
        let a = InterferenceAnalysis::of(&graphs, &stmts);
        let dot = a.to_dot(&syms);
        assert!(dot.starts_with("graph conflicts {"));
        assert!(dot.contains("s0 -- s1"));
        assert!(dot.contains("write-write"));
        assert!(dot.contains("W: R"));
    }
}
