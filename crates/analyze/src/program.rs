//! Splitting a dependency-program source into statements and parsing each.
//!
//! A program is a line-oriented text: one dependency or fact per line,
//! blank lines and `#` comments ignored. Each line may carry an explicit
//! kind prefix (`tgd:`, `so:`, `egd:`, `fact:`); without one, the kind is
//! auto-detected by trying the parsers in order nested tgd → SO tgd → egd
//! → fact and keeping the first success. On total failure the parse error
//! that made the most progress (largest byte offset) is reported, which in
//! practice is the parser for the intended kind.

use ndl_core::prelude::*;

/// The parsed form of one statement.
#[derive(Clone, Debug)]
pub enum StmtAst {
    /// A nested tgd (covers plain s-t tgds: a single part).
    Tgd(NestedTgd),
    /// A second-order tgd.
    So(SoTgd),
    /// An equality-generating dependency.
    Egd(Egd),
    /// A ground fact of the source instance.
    Fact(Fact),
}

/// One statement of a program: its position in the source, its text, and
/// its parsed form (`None` if parsing failed — the parse error is reported
/// separately).
#[derive(Clone, Debug)]
pub struct Statement {
    /// 0-based statement index (counting only real statements, not
    /// comments or blank lines).
    pub index: usize,
    /// Byte offset of `text` within the full program source. Spans located
    /// inside `text` are mapped to program spans by `span.offset_by(offset)`.
    pub offset: usize,
    /// The statement text, prefix and surrounding whitespace stripped.
    pub text: String,
    /// The parsed statement, if any parser accepted it.
    pub ast: Option<StmtAst>,
}

/// Splits `src` into statements and parses each one. Returns the
/// statements together with the parse errors, as `(statement index,
/// error)` pairs; error offsets are relative to the statement's `text`.
pub fn parse_program(
    syms: &mut SymbolTable,
    src: &str,
) -> (Vec<Statement>, Vec<(usize, CoreError)>) {
    let mut stmts = Vec::new();
    let mut errors = Vec::new();
    let mut pos = 0usize;
    for line in src.split_inclusive('\n') {
        let line_start = pos;
        pos += line.len();
        let raw = line.trim_end_matches(['\n', '\r']);
        let lead = raw.len() - raw.trim_start().len();
        let body = raw.trim();
        if body.is_empty() || body.starts_with('#') {
            continue;
        }
        let (kind, text, text_off) = split_prefix(body, line_start + lead);
        let index = stmts.len();
        let ast = match parse_statement(syms, kind, text) {
            Ok(ast) => Some(ast),
            Err(e) => {
                errors.push((index, e));
                None
            }
        };
        stmts.push(Statement {
            index,
            offset: text_off,
            text: text.to_string(),
            ast,
        });
    }
    (stmts, errors)
}

/// What a kind prefix (or its absence) asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Auto,
    Tgd,
    So,
    Egd,
    Fact,
}

/// Strips an optional `tgd:` / `so:` / `egd:` / `fact:` prefix, returning
/// the forced kind, the remaining text, and its byte offset in the source.
fn split_prefix(body: &str, body_off: usize) -> (Kind, &str, usize) {
    for (prefix, kind) in [
        ("tgd:", Kind::Tgd),
        ("so:", Kind::So),
        ("egd:", Kind::Egd),
        ("fact:", Kind::Fact),
    ] {
        if let Some(rest) = body.strip_prefix(prefix) {
            let trimmed = rest.trim_start();
            let off = body_off + prefix.len() + (rest.len() - trimmed.len());
            return (kind, trimmed, off);
        }
    }
    (Kind::Auto, body, body_off)
}

fn parse_statement(syms: &mut SymbolTable, kind: Kind, text: &str) -> Result<StmtAst> {
    match kind {
        Kind::Tgd => parse_nested_tgd(syms, text).map(StmtAst::Tgd),
        Kind::So => parse_so_tgd(syms, text).map(StmtAst::So),
        Kind::Egd => parse_egd(syms, text).map(StmtAst::Egd),
        Kind::Fact => parse_fact(syms, text).map(StmtAst::Fact),
        Kind::Auto => {
            let mut best: Option<CoreError> = None;
            let keep = |e: CoreError, best: &mut Option<CoreError>| {
                if progress(&e) >= best.as_ref().map_or(0, progress) {
                    *best = Some(e);
                }
            };
            match parse_nested_tgd(syms, text) {
                Ok(t) => return Ok(StmtAst::Tgd(t)),
                Err(e) => keep(e, &mut best),
            }
            match parse_so_tgd(syms, text) {
                Ok(t) => return Ok(StmtAst::So(t)),
                Err(e) => keep(e, &mut best),
            }
            match parse_egd(syms, text) {
                Ok(t) => return Ok(StmtAst::Egd(t)),
                Err(e) => keep(e, &mut best),
            }
            match parse_fact(syms, text) {
                Ok(t) => return Ok(StmtAst::Fact(t)),
                Err(e) => keep(e, &mut best),
            }
            Err(best.expect("at least one attempt ran"))
        }
    }
}

/// How far into the statement a parse attempt got before failing.
fn progress(e: &CoreError) -> usize {
    match e {
        CoreError::Parse { offset, .. } => *offset + 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_lines_and_detects_kinds() {
        let mut syms = SymbolTable::new();
        let src = "# a mapping\n\
                   S(x,y) -> exists z R(x,z)\n\
                   \n\
                   egd: S(x,y) & S(x2,y) -> x = x2\n\
                   fact: S(a,b)\n\
                   so: exists f . S(x,y) -> R(x,f(x))\n";
        let (stmts, errs) = parse_program(&mut syms, src);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(stmts.len(), 4);
        assert!(matches!(stmts[0].ast, Some(StmtAst::Tgd(_))));
        assert!(matches!(stmts[1].ast, Some(StmtAst::Egd(_))));
        assert!(matches!(stmts[2].ast, Some(StmtAst::Fact(_))));
        assert!(matches!(stmts[3].ast, Some(StmtAst::So(_))));
        // Offsets point at the statement text, past any prefix.
        assert_eq!(&src[stmts[0].offset..stmts[0].offset + 6], "S(x,y)");
        assert_eq!(&src[stmts[1].offset..stmts[1].offset + 6], "S(x,y)");
        assert_eq!(&src[stmts[2].offset..stmts[2].offset + 6], "S(a,b)");
    }

    #[test]
    fn auto_detects_egd_and_fact() {
        let mut syms = SymbolTable::new();
        let src = "S(x,y) & S(x,z) -> y = z\nS(a,b)\n";
        let (stmts, errs) = parse_program(&mut syms, src);
        assert!(errs.is_empty(), "{errs:?}");
        assert!(matches!(stmts[0].ast, Some(StmtAst::Egd(_))));
        assert!(matches!(stmts[1].ast, Some(StmtAst::Fact(_))));
    }

    #[test]
    fn parse_error_is_attributed_to_its_statement() {
        let mut syms = SymbolTable::new();
        let src = "S(x) -> R(x)\nS(x -> R(x)\n";
        let (stmts, errs) = parse_program(&mut syms, src);
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].ast.is_some());
        assert!(stmts[1].ast.is_none());
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].0, 1);
        assert!(matches!(errs[0].1, CoreError::Parse { .. }));
    }

    #[test]
    fn forced_kind_overrides_auto_detection() {
        let mut syms = SymbolTable::new();
        // As a tgd this is fine; forced to egd it must fail.
        let (stmts, errs) = parse_program(&mut syms, "egd: S(x) -> R(x)\n");
        assert_eq!(stmts.len(), 1);
        assert!(stmts[0].ast.is_none());
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn windows_line_endings_and_indent() {
        let mut syms = SymbolTable::new();
        let src = "  S(x) -> R(x)\r\n\t# comment\r\nfact: S(a)\r\n";
        let (stmts, errs) = parse_program(&mut syms, src);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].offset, 2);
        assert_eq!(stmts[0].text, "S(x) -> R(x)");
    }
}
