//! Per-statement footprints: what each statement of a program reads,
//! writes, and which Skolem functions it invents nulls through.
//!
//! Footprints are the shared vocabulary of two whole-program passes:
//! [`crate::interference`] builds the statement conflict graph from them
//! (which pairs may fire in parallel within a round), and
//! [`crate::dataflow`] runs the reachability/liveness/groundness fixpoints
//! over them (which statements can ever fire at all). Factoring the
//! computation here keeps the two passes byte-for-byte agreed on what a
//! statement touches.
//!
//! Footprints deliberately mirror `ndl_chase::parallel::StmtFootprint`:
//! reads are body relations, writes are head relations, and the Skolem
//! set contains the functions *occurring* in clause heads and equality
//! gates (a declared-but-unused function invents nothing and so cannot
//! conflict). The chase engine re-derives footprints itself when checking
//! a schedule certificate, so the two computations must agree — the
//! round-trip is pinned by tests in `crates/chase/tests/`.
//!
//! Beyond tgds, the pass also folds in the passive statements: ground
//! facts count as writers of their relation and egd bodies as readers.
//! They never enter the schedule (facts load before round 1, egds are not
//! chased by the fixpoint engine), but they complete the whole-program
//! read/write picture behind the NDL031/NDL032 relation-role lints and
//! the dataflow reachability fixpoint.

use crate::graph::ProgramGraphs;
use crate::program::{Statement, StmtAst};
use ndl_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// The static footprint of one statement: what it reads, what it writes,
/// and which Skolem functions it invents nulls through.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Relations matched in clause bodies (or an egd body).
    pub reads: BTreeSet<RelId>,
    /// Relations inserted into by clause heads (or a ground fact).
    pub writes: BTreeSet<RelId>,
    /// Skolem functions occurring in heads or equality gates.
    pub funcs: BTreeSet<FuncId>,
}

impl Footprint {
    /// Do two *distinct* statements conflict? True on any W–W, R–W (either
    /// direction) or shared-Skolem overlap.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        !self.kinds_against(other).is_empty()
    }

    /// The conflict kinds between two distinct statements (empty when
    /// they are independent).
    pub fn kinds_against(&self, other: &Footprint) -> Vec<ConflictKind> {
        let mut kinds = Vec::new();
        if self.writes.intersection(&other.writes).next().is_some() {
            kinds.push(ConflictKind::WriteWrite);
        }
        if self.reads.intersection(&other.writes).next().is_some()
            || other.reads.intersection(&self.writes).next().is_some()
        {
            kinds.push(ConflictKind::ReadWrite);
        }
        if self.funcs.intersection(&other.funcs).next().is_some() {
            kinds.push(ConflictKind::SharedNullFactory);
        }
        kinds
    }

    /// Does the statement read a relation it also writes? Such a statement
    /// can re-trigger on its own insertions and must run alone in its
    /// stage (the engine refuses multi-statement stages containing one).
    pub fn self_interfering(&self) -> bool {
        self.reads.intersection(&self.writes).next().is_some()
    }
}

/// Why two statements cannot fire in parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConflictKind {
    /// Both statements write a common relation.
    WriteWrite,
    /// One statement reads a relation the other writes.
    ReadWrite,
    /// Both statements invent nulls through a common Skolem function.
    SharedNullFactory,
}

impl ConflictKind {
    /// Stable lowercase label (used in JSON reports and DOT edge labels).
    pub fn label(self) -> &'static str {
        match self {
            ConflictKind::WriteWrite => "write-write",
            ConflictKind::ReadWrite => "read-write",
            ConflictKind::SharedNullFactory => "shared-null-factory",
        }
    }
}

/// The whole-program footprint map: one [`Footprint`] per statement that
/// contributes reads or writes, plus the set of statements eligible for
/// scheduling (exactly the tgd statements with Skolemized clauses in
/// [`ProgramGraphs::clauses`]).
#[derive(Clone, Debug, Default)]
pub struct ProgramFootprints {
    /// Footprint per contributing statement: tgd statements that entered
    /// [`ProgramGraphs`], plus ground facts and egds (which the graphs
    /// skip).
    pub footprints: BTreeMap<usize, Footprint>,
    /// Statements eligible for scheduling — exactly the tgd statements
    /// with Skolemized clauses in [`ProgramGraphs::clauses`].
    pub scheduled: BTreeSet<usize>,
}

impl ProgramFootprints {
    /// Computes the footprints of every statement. `graphs` supplies the
    /// Skolemized clauses of analyzable tgd statements; `stmts` supplies
    /// the facts and egds the graphs skip.
    pub fn of(graphs: &ProgramGraphs, stmts: &[Statement]) -> ProgramFootprints {
        let mut p = ProgramFootprints::default();
        for cv in &graphs.clauses {
            let fp = p.footprints.entry(cv.stmt).or_default();
            p.scheduled.insert(cv.stmt);
            for atom in &cv.clause.body {
                fp.reads.insert(atom.rel);
            }
            for atom in &cv.clause.head {
                fp.writes.insert(atom.rel);
                for t in &atom.args {
                    collect_funcs(t, &mut fp.funcs);
                }
            }
            for (l, r) in &cv.clause.equalities {
                collect_funcs(l, &mut fp.funcs);
                collect_funcs(r, &mut fp.funcs);
            }
        }
        for stmt in stmts {
            match &stmt.ast {
                Some(StmtAst::Fact(f)) => {
                    p.footprints
                        .entry(stmt.index)
                        .or_default()
                        .writes
                        .insert(f.rel);
                }
                Some(StmtAst::Egd(e)) => {
                    let fp = p.footprints.entry(stmt.index).or_default();
                    for atom in &e.body {
                        fp.reads.insert(atom.rel);
                    }
                }
                _ => {}
            }
        }
        p
    }
}

/// Collects the function symbols occurring anywhere in a term.
pub(crate) fn collect_funcs(t: &Term, out: &mut BTreeSet<FuncId>) {
    if let Term::App(f, args) = t {
        out.insert(*f);
        for a in args {
            collect_funcs(a, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parse_program;

    fn build(src: &str) -> (SymbolTable, Vec<Statement>, ProgramGraphs) {
        let mut syms = SymbolTable::new();
        let (stmts, errs) = parse_program(&mut syms, src);
        assert!(errs.is_empty(), "{errs:?}");
        let graphs = ProgramGraphs::build(&mut syms, &stmts);
        (syms, stmts, graphs)
    }

    #[test]
    fn footprints_cover_tgds_facts_and_egds() {
        let src = "fact: S(a, b)\negd: S(x,y) & S(x,z) -> y = z\nS(x,y) -> R(x)\n";
        let (_, stmts, graphs) = build(src);
        let p = ProgramFootprints::of(&graphs, &stmts);
        assert_eq!(p.scheduled.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert!(p.footprints[&0].writes.len() == 1 && p.footprints[&0].reads.is_empty());
        assert!(p.footprints[&1].reads.len() == 1 && p.footprints[&1].writes.is_empty());
        assert!(p.footprints[&2].reads.len() == 1 && p.footprints[&2].writes.len() == 1);
    }

    #[test]
    fn funcs_track_occurring_not_declared() {
        let src = "exists f, g . S(x) -> R(x, f(x))\n";
        let (_, stmts, graphs) = build(src);
        let p = ProgramFootprints::of(&graphs, &stmts);
        assert_eq!(p.footprints[&0].funcs.len(), 1);
    }

    /// Regression pin: the factored-out computation produces byte-identical
    /// footprints to the PR-6 interference analysis (which now consumes
    /// this module — the pin guards against the two ever diverging again).
    #[test]
    fn interference_footprints_are_exactly_program_footprints() {
        let src = "fact: S(a, b)\n\
                   egd: S(x,y) & S(x,z) -> y = z\n\
                   S(x,y) -> exists z R(x, z)\n\
                   R(x,y) & S(y,w) -> T(x)\n\
                   exists f . T(x) -> U(x, f(x))\n\
                   V(x,y) & V(y,z) -> V(x,z)\n";
        let (_, stmts, graphs) = build(src);
        let p = ProgramFootprints::of(&graphs, &stmts);
        let inter = crate::interference::InterferenceAnalysis::of(&graphs, &stmts);
        assert_eq!(inter.footprints, p.footprints);
        assert_eq!(inter.scheduled, p.scheduled);
    }
}
