//! Whole-mapping dataflow analysis: which values can flow where through a
//! nested-dependency program.
//!
//! Four fixpoints over the shared [`crate::footprint`] vocabulary:
//!
//! - **relation reachability** — starting from the populated *source*
//!   relations, a clause whose body relations are all reachable marks its
//!   head relations reachable (the abstraction of "can ever hold a
//!   fact");
//! - **statement liveness** — a statement is *dead* when every one of its
//!   clauses reads some unreachable relation: no chase, on any source
//!   instance drawn from the populated relations, can ever fire it;
//! - **groundness** — a relation is *nullable* when some firing clause
//!   can place a Skolem term (directly, or a variable bound only at
//!   nullable relations) into it; everything else is provably
//!   **null-free**, so homomorphism and core machinery need not inspect
//!   it for nulls;
//! - **position provenance** — per target position, the set of source
//!   positions whose values and Skolem functions whose nulls can reach it
//!   through the firing clauses (the position-level refinement of
//!   reachability, mirroring the canonical-instance reachability
//!   arguments of Calì–Torlone).
//!
//! Source relations are the relations populated by `fact:` statements.
//! A program with no facts is analyzed in **assumed-sources** mode: every
//! relation that is read but never written is assumed populated. Both
//! choices are *supersets* of what any actual chase run can see (a fact
//! populates exactly its relation; an empty source populates nothing), and
//! every fixpoint here is monotone in the source set — so the dead and
//! ground sets claimed by this analysis are always subsets of what the
//! chase engines can prove from the real source instance. That is what
//! makes the [`ndl_chase::DataflowCert`] derived from this pass (see
//! [`crate::cost::ChaseAnalysis::tgd_plan`]) verifiable in the
//! certificate-not-trusted style: the engines recompute both sets against
//! the instance they were actually given and refuse certificates that
//! claim too much.
//!
//! Surfaced as the NDL040–NDL045 lints, the [`DataflowSummary`] of
//! `ndl analyze --dataflow [--json]`, and `--dot=dataflow`.

use crate::footprint::{collect_funcs, ProgramFootprints};
use crate::graph::{PosId, ProgramGraphs};
use crate::program::{Statement, StmtAst};
use ndl_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Position-level provenance: what can reach one position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Source positions whose values can be copied here (a source
    /// position reaches itself).
    pub sources: BTreeSet<PosId>,
    /// Skolem functions whose invented nulls can land here.
    pub funcs: BTreeSet<FuncId>,
}

impl Provenance {
    /// Total fan-in: distinct source positions plus distinct Skolem
    /// functions reaching the position.
    pub fn fan_in(&self) -> usize {
        self.sources.len() + self.funcs.len()
    }
}

/// The whole-mapping dataflow analysis (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct DataflowAnalysis {
    /// The populated source relations the fixpoints start from.
    pub sources: BTreeSet<RelId>,
    /// `true` when the program has no `fact:` statements and the sources
    /// are *assumed*: every relation read but never written.
    pub assumed_sources: bool,
    /// Relations that can hold a fact in some chase from the sources.
    pub reachable: BTreeSet<RelId>,
    /// Dead statements: every clause reads some unreachable relation.
    pub dead: BTreeSet<usize>,
    /// Live scheduled statements (the complement of `dead` within the
    /// scheduled set).
    pub live: BTreeSet<usize>,
    /// Relations that are read and written somewhere, yet unreachable —
    /// all their writers are dead or never fire (NDL041).
    pub unwritten_reads: BTreeSet<RelId>,
    /// Source relations no firing clause and no egd ever reads (NDL042).
    pub unused_sources: BTreeSet<RelId>,
    /// `(relation, 0-based column)` of source columns whose value is
    /// never used: in every firing clause and egd reading the relation,
    /// the variable at that column occurs nowhere else (NDL043).
    pub unused_source_columns: BTreeSet<(RelId, usize)>,
    /// Relations some reachable derivation can place a null into.
    pub nullable: BTreeSet<RelId>,
    /// Provably null-free relations: every relation mentioned by the
    /// program that is not `nullable` (unreachable relations are
    /// vacuously ground — they stay empty).
    pub ground: BTreeSet<RelId>,
    /// Per-position provenance, indexed by [`PosId`] of the position
    /// graph. Flows are taken from *firing* clauses only.
    pub provenance: Vec<Provenance>,
}

impl DataflowAnalysis {
    /// Runs the dataflow fixpoints. `graphs` supplies the Skolemized
    /// clauses and the position vocabulary; `stmts` supplies facts (the
    /// sources) and egds (extra readers).
    pub fn of(graphs: &ProgramGraphs, stmts: &[Statement]) -> DataflowAnalysis {
        let fps = ProgramFootprints::of(graphs, stmts);
        let mut a = DataflowAnalysis::default();

        // Sources: fact-populated relations, or (assumed mode) the
        // relations read but never written.
        let mut read: BTreeSet<RelId> = BTreeSet::new();
        let mut written: BTreeSet<RelId> = BTreeSet::new();
        for fp in fps.footprints.values() {
            read.extend(fp.reads.iter().copied());
            written.extend(fp.writes.iter().copied());
        }
        let fact_rels: BTreeSet<RelId> = stmts
            .iter()
            .filter_map(|s| match &s.ast {
                Some(StmtAst::Fact(f)) => Some(f.rel),
                _ => None,
            })
            .collect();
        if fact_rels.is_empty() {
            a.assumed_sources = true;
            a.sources = read.difference(&written).copied().collect();
        } else {
            a.sources = fact_rels;
        }

        // Relation reachability: a clause whose body is reachable marks
        // its heads reachable.
        a.reachable = a.sources.clone();
        loop {
            let mut changed = false;
            for cv in &graphs.clauses {
                if cv.clause.body.iter().all(|b| a.reachable.contains(&b.rel)) {
                    for ta in &cv.clause.head {
                        changed |= a.reachable.insert(ta.rel);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let firing: Vec<bool> = graphs
            .clauses
            .iter()
            .map(|cv| cv.clause.body.iter().all(|b| a.reachable.contains(&b.rel)))
            .collect();

        // Statement liveness: dead iff *every* clause fails to fire.
        for &s in &fps.scheduled {
            let alive = graphs
                .clauses
                .iter()
                .zip(&firing)
                .any(|(cv, &f)| cv.stmt == s && f);
            if alive {
                a.live.insert(s);
            } else {
                a.dead.insert(s);
            }
        }

        // Groundness: nullable relations, over firing clauses only. A
        // head argument introduces a null when it is a Skolem term, or a
        // variable all of whose body bindings come from nullable
        // relations (a join binds the variable at *every* occurrence, so
        // one null-free occurrence grounds it).
        loop {
            let mut changed = false;
            for (cv, &fires) in graphs.clauses.iter().zip(&firing) {
                if !fires {
                    continue;
                }
                for ta in &cv.clause.head {
                    if a.nullable.contains(&ta.rel) {
                        continue;
                    }
                    let introduces = ta.args.iter().any(|t| match t {
                        Term::App(..) => true,
                        Term::Var(v) => {
                            let mut any = false;
                            let all_nullable = cv
                                .clause
                                .body
                                .iter()
                                .filter(|b| b.args.contains(v))
                                .all(|b| {
                                    any = true;
                                    a.nullable.contains(&b.rel)
                                });
                            !any || all_nullable
                        }
                    });
                    if introduces {
                        a.nullable.insert(ta.rel);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mentioned: BTreeSet<RelId> = a
            .sources
            .iter()
            .chain(read.iter())
            .chain(written.iter())
            .copied()
            .collect();
        a.ground = mentioned.difference(&a.nullable).copied().collect();

        // NDL041: read somewhere, written somewhere, still unreachable —
        // every writer is dead or never fires.
        a.unwritten_reads = read
            .intersection(&written)
            .filter(|r| !a.reachable.contains(r))
            .copied()
            .collect();

        // NDL042/NDL043: what the live program actually consumes.
        let mut live_read: BTreeSet<RelId> = BTreeSet::new();
        for (cv, &fires) in graphs.clauses.iter().zip(&firing) {
            if fires {
                live_read.extend(cv.clause.body.iter().map(|b| b.rel));
            }
        }
        for stmt in stmts {
            if let Some(StmtAst::Egd(e)) = &stmt.ast {
                live_read.extend(e.body.iter().map(|b| b.rel));
            }
        }
        a.unused_sources = a.sources.difference(&live_read).copied().collect();
        a.unused_source_columns = unused_source_columns(graphs, stmts, &a.sources, &firing);

        a.provenance = provenance(graphs, &a.sources, &firing);
        a
    }

    /// The serializable report of `ndl analyze --dataflow`.
    pub fn summary(&self, syms: &SymbolTable, graphs: &ProgramGraphs) -> DataflowSummary {
        let names = |rels: &BTreeSet<RelId>| -> Vec<String> {
            let mut v: Vec<String> = rels.iter().map(|&r| syms.rel_name(r).to_string()).collect();
            v.sort();
            v
        };
        let mentioned: BTreeSet<RelId> = self
            .reachable
            .iter()
            .chain(self.nullable.iter())
            .chain(self.ground.iter())
            .copied()
            .collect();
        let unreachable: BTreeSet<RelId> = mentioned.difference(&self.reachable).copied().collect();
        DataflowSummary {
            assumed_sources: self.assumed_sources,
            sources: names(&self.sources),
            reachable: names(&self.reachable),
            unreachable: names(&unreachable),
            dead_statements: self.dead.iter().copied().collect(),
            live_statements: self.live.iter().copied().collect(),
            ground: names(&self.ground),
            nullable: names(&self.nullable),
            unwritten_reads: names(&self.unwritten_reads),
            unused_sources: names(&self.unused_sources),
            unused_source_columns: self
                .unused_source_columns
                .iter()
                .map(|&(r, i)| format!("{}.{}", syms.rel_name(r), i + 1))
                .collect(),
            provenance: self
                .provenance
                .iter()
                .enumerate()
                .filter(|(_, p)| p.fan_in() > 0)
                .map(|(q, p)| ProvenanceReport {
                    position: graphs.positions.display_pos(syms, q),
                    sources: p
                        .sources
                        .iter()
                        .map(|&s| graphs.positions.display_pos(syms, s))
                        .collect(),
                    functions: p
                        .funcs
                        .iter()
                        .map(|&f| syms.func_name(f).to_string())
                        .collect(),
                    fan_in: p.fan_in(),
                })
                .collect(),
        }
    }

    /// Graphviz DOT rendering of the relation-level dataflow graph
    /// (`ndl analyze --dot=dataflow`): one node per relation (sources
    /// filled, unreachable relations dashed gray, ground relations
    /// annotated), one edge per body-to-head flow, dead flows dashed.
    pub fn to_dot(&self, syms: &SymbolTable, graphs: &ProgramGraphs) -> String {
        let mut rels: BTreeSet<RelId> = self.sources.iter().copied().collect();
        let firing: Vec<bool> = graphs
            .clauses
            .iter()
            .map(|cv| {
                cv.clause
                    .body
                    .iter()
                    .all(|b| self.reachable.contains(&b.rel))
            })
            .collect();
        // flow (from, to) → (statements, any contributing clause fires,
        // Skolem functions the flow can invent nulls through)
        type FlowEdge = (BTreeSet<usize>, bool, BTreeSet<FuncId>);
        let mut flows: BTreeMap<(RelId, RelId), FlowEdge> = BTreeMap::new();
        for (cv, &fires) in graphs.clauses.iter().zip(&firing) {
            for b in &cv.clause.body {
                rels.insert(b.rel);
                for ta in &cv.clause.head {
                    rels.insert(ta.rel);
                    let entry = flows.entry((b.rel, ta.rel)).or_default();
                    entry.0.insert(cv.stmt);
                    entry.1 |= fires;
                    for t in &ta.args {
                        collect_funcs(t, &mut entry.2);
                    }
                }
            }
        }
        let mut out = String::from("digraph dataflow {\n  rankdir=LR;\n  node [shape=box];\n");
        for &r in &rels {
            let name = syms.rel_name(r);
            let mut attrs = Vec::new();
            let label = if self.ground.contains(&r) {
                format!("{name}\\n(ground)")
            } else {
                name.to_string()
            };
            attrs.push(format!("label=\"{label}\""));
            if self.sources.contains(&r) {
                attrs.push("style=filled".to_string());
                attrs.push("fillcolor=lightsteelblue".to_string());
            } else if !self.reachable.contains(&r) {
                attrs.push("style=dashed".to_string());
                attrs.push("color=gray50".to_string());
                attrs.push("fontcolor=gray50".to_string());
            }
            out.push_str(&format!("  \"{}\" [{}];\n", name, attrs.join(", ")));
        }
        for (&(from, to), (stmts, live, funcs)) in &flows {
            let mut label: Vec<String> = stmts.iter().map(|s| format!("s{s}")).collect();
            label.extend(funcs.iter().map(|&f| format!("{}()", syms.func_name(f))));
            let style = if *live {
                String::new()
            } else {
                ", style=dashed, color=gray50, fontcolor=gray50".to_string()
            };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"{}];\n",
                syms.rel_name(from),
                syms.rel_name(to),
                label.join("\\n"),
                style
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Source columns whose value is never consumed (NDL043): for every
/// firing clause and every egd with a body atom over the source relation,
/// the variable at the column occurs nowhere else in the statement.
fn unused_source_columns(
    graphs: &ProgramGraphs,
    stmts: &[Statement],
    sources: &BTreeSet<RelId>,
    firing: &[bool],
) -> BTreeSet<(RelId, usize)> {
    // (relation, column) → was any occurrence used?
    let mut seen: BTreeMap<(RelId, usize), bool> = BTreeMap::new();
    for (cv, &fires) in graphs.clauses.iter().zip(firing) {
        if !fires {
            continue;
        }
        let c = &cv.clause;
        let mut head_vars: BTreeSet<VarId> = BTreeSet::new();
        let mut funcs = BTreeSet::new();
        for ta in &c.head {
            for t in &ta.args {
                collect_vars(t, &mut head_vars);
                collect_funcs(t, &mut funcs);
            }
        }
        for (l, r) in &c.equalities {
            collect_vars(l, &mut head_vars);
            collect_vars(r, &mut head_vars);
        }
        for (ai, atom) in c.body.iter().enumerate() {
            if !sources.contains(&atom.rel) {
                continue;
            }
            for (i, &v) in atom.args.iter().enumerate() {
                let body_occurrences: usize = c
                    .body
                    .iter()
                    .enumerate()
                    .map(|(bi, b)| {
                        b.args
                            .iter()
                            .enumerate()
                            .filter(|&(j, &w)| w == v && (bi != ai || j != i))
                            .count()
                    })
                    .sum();
                let used = body_occurrences > 0 || head_vars.contains(&v);
                *seen.entry((atom.rel, i)).or_insert(false) |= used;
            }
        }
    }
    for stmt in stmts {
        let Some(StmtAst::Egd(e)) = &stmt.ast else {
            continue;
        };
        for (ai, atom) in e.body.iter().enumerate() {
            if !sources.contains(&atom.rel) {
                continue;
            }
            for (i, &v) in atom.args.iter().enumerate() {
                let elsewhere = e.body.iter().enumerate().any(|(bi, b)| {
                    b.args
                        .iter()
                        .enumerate()
                        .any(|(j, &w)| w == v && (bi != ai || j != i))
                });
                let used = elsewhere || e.eq.0 == v || e.eq.1 == v;
                *seen.entry((atom.rel, i)).or_insert(false) |= used;
            }
        }
    }
    seen.into_iter()
        .filter_map(|(col, used)| (!used).then_some(col))
        .collect()
}

/// Position provenance over the firing clauses: source positions reach
/// themselves; a head variable receives the provenance of every body
/// position binding it; a Skolem head term deposits its functions (the
/// invented null hides its arguments' values, so only the functions
/// propagate onward).
fn provenance(
    graphs: &ProgramGraphs,
    sources: &BTreeSet<RelId>,
    firing: &[bool],
) -> Vec<Provenance> {
    let pg = &graphs.positions;
    let ids: BTreeMap<(RelId, usize), PosId> = pg
        .positions
        .iter()
        .enumerate()
        .map(|(i, &rp)| (rp, i))
        .collect();
    let mut prov: Vec<Provenance> = vec![Provenance::default(); pg.positions.len()];
    for (p, &(rel, _)) in pg.positions.iter().enumerate() {
        if sources.contains(&rel) {
            prov[p].sources.insert(p);
        }
    }
    // Copy flows (from-position, to-position) of the firing clauses.
    let mut copies: BTreeSet<(PosId, PosId)> = BTreeSet::new();
    for (cv, &fires) in graphs.clauses.iter().zip(firing) {
        if !fires {
            continue;
        }
        let c = &cv.clause;
        let mut body_pos: BTreeMap<VarId, BTreeSet<PosId>> = BTreeMap::new();
        for b in &c.body {
            for (i, &v) in b.args.iter().enumerate() {
                if let Some(&p) = ids.get(&(b.rel, i)) {
                    body_pos.entry(v).or_default().insert(p);
                }
            }
        }
        for ta in &c.head {
            for (i, t) in ta.args.iter().enumerate() {
                let Some(&q) = ids.get(&(ta.rel, i)) else {
                    continue;
                };
                match t {
                    Term::Var(x) => {
                        for &p in body_pos.get(x).into_iter().flatten() {
                            copies.insert((p, q));
                        }
                    }
                    t @ Term::App(..) => {
                        collect_funcs(t, &mut prov[q].funcs);
                    }
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for &(p, q) in &copies {
            if p == q {
                continue;
            }
            let (src, fns): (Vec<PosId>, Vec<FuncId>) = (
                prov[p].sources.iter().copied().collect(),
                prov[p].funcs.iter().copied().collect(),
            );
            for s in src {
                changed |= prov[q].sources.insert(s);
            }
            for f in fns {
                changed |= prov[q].funcs.insert(f);
            }
        }
        if !changed {
            break;
        }
    }
    prov
}

fn collect_vars(t: &Term, out: &mut BTreeSet<VarId>) {
    match t {
        Term::Var(v) => {
            out.insert(*v);
        }
        Term::App(_, args) => {
            for a in args {
                collect_vars(a, out);
            }
        }
    }
}

/// Provenance of one position in the [`DataflowSummary`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceReport {
    /// The position, rendered `R.i` (1-based).
    pub position: String,
    /// Source positions reaching it.
    pub sources: Vec<String>,
    /// Skolem functions reaching it.
    pub functions: Vec<String>,
    /// `sources.len() + functions.len()`.
    pub fan_in: usize,
}

/// The serializable dataflow report of `ndl analyze --dataflow [--json]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowSummary {
    /// Were the sources assumed (no `fact:` statements)?
    pub assumed_sources: bool,
    /// Source relation names, sorted.
    pub sources: Vec<String>,
    /// Reachable relation names, sorted.
    pub reachable: Vec<String>,
    /// Mentioned-but-unreachable relation names, sorted.
    pub unreachable: Vec<String>,
    /// Dead statement indices (0-based).
    pub dead_statements: Vec<usize>,
    /// Live scheduled statement indices (0-based).
    pub live_statements: Vec<usize>,
    /// Provably null-free relation names, sorted.
    pub ground: Vec<String>,
    /// Possibly-null-carrying relation names, sorted.
    pub nullable: Vec<String>,
    /// Read-and-written yet unreachable relation names (NDL041).
    pub unwritten_reads: Vec<String>,
    /// Source relations nothing live reads (NDL042).
    pub unused_sources: Vec<String>,
    /// Unused source columns, rendered `R.i` (NDL043).
    pub unused_source_columns: Vec<String>,
    /// Per-position provenance (positions with nonzero fan-in only).
    pub provenance: Vec<ProvenanceReport>,
}

impl DataflowSummary {
    /// Pretty-printed JSON with a trailing newline (diff-friendly, like
    /// the other `ndl analyze` reports).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("reports serialize infallibly");
        s.push('\n');
        s
    }

    /// Parses a summary back from [`DataflowSummary::to_json`] output.
    pub fn from_json(text: &str) -> std::result::Result<DataflowSummary, serde::Error> {
        serde_json::from_str(text)
    }

    /// Human-readable rendering (the default `--dataflow` output).
    pub fn render(&self) -> String {
        let list = |v: &[String]| -> String {
            if v.is_empty() {
                "(none)".to_string()
            } else {
                v.join(", ")
            }
        };
        let stmts = |v: &[usize]| -> String {
            if v.is_empty() {
                "(none)".to_string()
            } else {
                v.iter()
                    .map(|s| format!("s{s}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        let mut out = String::new();
        let assumed = if self.assumed_sources {
            " (assumed)"
        } else {
            ""
        };
        out.push_str(&format!("sources{}: {}\n", assumed, list(&self.sources)));
        out.push_str(&format!("reachable: {}\n", list(&self.reachable)));
        out.push_str(&format!("unreachable: {}\n", list(&self.unreachable)));
        out.push_str(&format!(
            "dead statements: {}\n",
            stmts(&self.dead_statements)
        ));
        out.push_str(&format!(
            "live statements: {}\n",
            stmts(&self.live_statements)
        ));
        out.push_str(&format!("ground: {}\n", list(&self.ground)));
        out.push_str(&format!("nullable: {}\n", list(&self.nullable)));
        out.push_str(&format!(
            "unwritten reads: {}\n",
            list(&self.unwritten_reads)
        ));
        out.push_str(&format!("unused sources: {}\n", list(&self.unused_sources)));
        out.push_str(&format!(
            "unused source columns: {}\n",
            list(&self.unused_source_columns)
        ));
        out.push_str("provenance:\n");
        for p in &self.provenance {
            let mut from: Vec<String> = p.sources.clone();
            from.extend(p.functions.iter().map(|f| format!("{f}()")));
            out.push_str(&format!(
                "  {} <- {} (fan-in {})\n",
                p.position,
                from.join(", "),
                p.fan_in
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parse_program;

    fn dataflow(src: &str) -> (SymbolTable, ProgramGraphs, DataflowAnalysis) {
        let mut syms = SymbolTable::new();
        let (stmts, errs) = parse_program(&mut syms, src);
        assert!(errs.is_empty(), "{errs:?}");
        let graphs = ProgramGraphs::build(&mut syms, &stmts);
        let a = DataflowAnalysis::of(&graphs, &stmts);
        (syms, graphs, a)
    }

    fn rel(syms: &SymbolTable, name: &str) -> RelId {
        syms.find_rel(name).unwrap()
    }

    #[test]
    fn reachability_follows_write_chains() {
        let (syms, _, a) = dataflow("fact: S(a)\nS(x) -> T(x)\nT(x) -> U(x)\nZ(x) -> W(x)\n");
        assert!(!a.assumed_sources);
        assert_eq!(a.sources, BTreeSet::from([rel(&syms, "S")]));
        for r in ["S", "T", "U"] {
            assert!(a.reachable.contains(&rel(&syms, r)), "{r} reachable");
        }
        for r in ["Z", "W"] {
            assert!(!a.reachable.contains(&rel(&syms, r)), "{r} unreachable");
        }
        // Statement 3 reads Z, which nothing populates.
        assert_eq!(a.dead, BTreeSet::from([3]));
        assert_eq!(a.live, BTreeSet::from([1, 2]));
        assert!(a.unwritten_reads.is_empty());
    }

    #[test]
    fn dead_chains_propagate() {
        let (syms, _, a) = dataflow("fact: S(a)\nZ(x) -> D(x)\nD(x) -> E(x)\nS(x) -> T(x)\n");
        // Statement 1 is dead (Z unpopulated); D is written only by it,
        // so statement 2 is transitively dead and D is an unwritten read.
        assert_eq!(a.dead, BTreeSet::from([1, 2]));
        assert_eq!(a.unwritten_reads, BTreeSet::from([rel(&syms, "D")]));
    }

    #[test]
    fn groundness_tracks_null_introduction_and_copying() {
        let (syms, _, a) =
            dataflow("fact: S(a)\nS(x) -> exists y R(x,y)\nS(x) -> T(x)\nR(x,y) -> P(y)\n");
        assert_eq!(
            a.nullable,
            BTreeSet::from([rel(&syms, "R"), rel(&syms, "P")])
        );
        assert!(a.ground.contains(&rel(&syms, "S")));
        assert!(a.ground.contains(&rel(&syms, "T")));
    }

    #[test]
    fn join_with_ground_relation_grounds_the_variable() {
        // y is bound at both R.2 (nullable) and G.1 (ground): the join
        // can only produce ground values for y, so Q stays ground.
        let (syms, _, a) =
            dataflow("fact: S(a)\nfact: G(a)\nS(x) -> exists y R(x,y)\nR(x,y) & G(y) -> Q(y)\n");
        assert!(a.nullable.contains(&rel(&syms, "R")));
        assert!(a.ground.contains(&rel(&syms, "Q")));
    }

    #[test]
    fn unreachable_relations_are_vacuously_ground() {
        let (syms, _, a) = dataflow("fact: S(a)\nZ(x) -> exists y W(x,y)\n");
        assert!(a.ground.contains(&rel(&syms, "W")));
        assert!(a.ground.contains(&rel(&syms, "Z")));
    }

    #[test]
    fn assumed_sources_without_facts() {
        let (syms, _, a) = dataflow("S(x) -> T(x)\nT(x) -> U(x)\n");
        assert!(a.assumed_sources);
        assert_eq!(a.sources, BTreeSet::from([rel(&syms, "S")]));
        assert!(a.dead.is_empty());
        assert_eq!(a.live, BTreeSet::from([0, 1]));
    }

    #[test]
    fn unused_sources_and_columns() {
        let (syms, _, a) = dataflow("fact: S(a, b)\nfact: V(a)\nS(x,y) -> T(x)\n");
        assert_eq!(a.unused_sources, BTreeSet::from([rel(&syms, "V")]));
        assert_eq!(
            a.unused_source_columns,
            BTreeSet::from([(rel(&syms, "S"), 1)])
        );
    }

    #[test]
    fn joined_and_equated_columns_are_used() {
        let src = "fact: S(a, b)\negd: S(x,y) & S(x,z) -> y = z\nS(x,y) -> T(x)\n";
        let (_syms, _, a) = dataflow(src);
        // Column 1 joins the egd atoms; column 2 is equated.
        assert!(a.unused_source_columns.is_empty());
    }

    #[test]
    fn provenance_reaches_through_copies_and_funcs() {
        let (syms, graphs, a) = dataflow("fact: S(a)\nS(x) -> exists y R(x,y)\nR(x,y) -> T(y)\n");
        let pos = |name: &str, i: usize| -> PosId {
            let r = rel(&syms, name);
            graphs
                .positions
                .positions
                .iter()
                .position(|&p| p == (r, i))
                .unwrap()
        };
        // R.1 copies S.1; R.2 holds the Skolem null; T.1 copies R.2.
        assert_eq!(
            a.provenance[pos("R", 0)].sources,
            BTreeSet::from([pos("S", 0)])
        );
        assert_eq!(a.provenance[pos("R", 1)].funcs.len(), 1);
        assert_eq!(
            a.provenance[pos("T", 0)].funcs,
            a.provenance[pos("R", 1)].funcs
        );
        assert!(a.provenance[pos("T", 0)].sources.is_empty());
    }

    #[test]
    fn dead_clause_flows_are_excluded_from_provenance() {
        // Statement 1 is dead (Z unpopulated): its S.1 -> T.1 copy must
        // not contribute provenance, but statement 2's U.1 -> T.1 does.
        let (syms, graphs, a) =
            dataflow("fact: S(a)\nfact: U(a)\nZ(x) & S(x) -> T(x)\nU(x) -> T(x)\n");
        let pos = |name: &str, i: usize| -> PosId {
            let r = rel(&syms, name);
            graphs
                .positions
                .positions
                .iter()
                .position(|&p| p == (r, i))
                .unwrap()
        };
        assert_eq!(
            a.provenance[pos("T", 0)].sources,
            BTreeSet::from([pos("U", 0)])
        );
    }

    #[test]
    fn summary_round_trips_and_renders() {
        let (syms, graphs, a) = dataflow("fact: S(a)\nS(x) -> exists y R(x,y)\nZ(x) -> W(x)\n");
        let s = a.summary(&syms, &graphs);
        assert!(s.to_json().ends_with('\n'));
        let back = DataflowSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        let text = s.render();
        assert!(text.contains("sources: S"));
        assert!(text.contains("dead statements: s2"));
        let dot = a.to_dot(&syms, &graphs);
        assert!(dot.starts_with("digraph dataflow {"));
        assert!(dot.contains("\"S\" ["));
        assert!(dot.contains("style=dashed"));
    }
}
