//! Model checking: does a pair `(I, J)` satisfy a dependency?
//!
//! The paper (Section 1) contrasts the data complexity of the two
//! formalisms: model checking nested tgds is in LOGSPACE (they are
//! first-order), while model checking plain SO tgds is NP-complete. Our
//! implementations mirror that split:
//!
//! - [`satisfies_nested`] evaluates the first-order formula directly
//!   (polynomial in the data);
//! - [`satisfies_plain_so`] reduces to a homomorphism test
//!   `chase(I, σ) → J` (plain SO tgds admit universal solutions and are
//!   closed under target homomorphisms) — the NP search lives in the
//!   homomorphism finder;
//! - [`satisfies_so`] handles *full* SO tgds (equalities, nested terms) by
//!   backtracking over Skolem-function graphs.

use ndl_chase::{all_matches, chase_so, Binding, NullFactory};
use ndl_core::prelude::*;
use ndl_hom::homomorphic;
use std::collections::{BTreeMap, BTreeSet};

/// Does `(source, target) ⊨ σ` for a nested tgd σ? Direct first-order
/// evaluation: every part must hold for all assignments of its universals
/// extending the ancestors', with existential witnesses drawn from the
/// target's active domain.
pub fn satisfies_nested(source: &Instance, target: &Instance, tgd: &NestedTgd) -> bool {
    sat_part(source, target, tgd, tgd.root(), &Binding::new())
}

/// Does `(source, target)` satisfy every tgd of the mapping, and does
/// `source` satisfy its egds?
pub fn satisfies_mapping(source: &Instance, target: &Instance, m: &NestedMapping) -> bool {
    ndl_chase::satisfies_egds(source, &m.source_egds)
        && m.tgds.iter().all(|t| satisfies_nested(source, target, t))
}

fn sat_part(
    source: &Instance,
    target: &Instance,
    tgd: &NestedTgd,
    part: PartId,
    inherited: &Binding,
) -> bool {
    let p = tgd.part(part);
    all_matches(source, &p.body, inherited)
        .into_iter()
        .all(|binding| witness_exists(source, target, tgd, part, &binding))
}

/// Searches witnesses for the part's existential variables such that the
/// head atoms hold and all child parts hold.
fn witness_exists(
    source: &Instance,
    target: &Instance,
    tgd: &NestedTgd,
    part: PartId,
    binding: &Binding,
) -> bool {
    let p = tgd.part(part);
    // Existential variables that actually occur in some head atom in scope
    // (this part or a descendant). Unused ones need no witness.
    let mut used: BTreeSet<VarId> = BTreeSet::new();
    for pid in std::iter::once(part).chain(tgd.descendants(part)) {
        for a in &tgd.part(pid).head {
            used.extend(a.args.iter().copied());
        }
    }
    let witnesses: Vec<VarId> = p
        .existentials
        .iter()
        .copied()
        .filter(|y| used.contains(y))
        .collect();
    let candidates: Vec<Value> = target.adom().into_iter().collect();
    search_witness(
        source,
        target,
        tgd,
        part,
        binding,
        &witnesses,
        0,
        &candidates,
    )
}

#[allow(clippy::too_many_arguments)]
fn search_witness(
    source: &Instance,
    target: &Instance,
    tgd: &NestedTgd,
    part: PartId,
    binding: &Binding,
    witnesses: &[VarId],
    i: usize,
    candidates: &[Value],
) -> bool {
    if i == witnesses.len() {
        let p = tgd.part(part);
        // Head atoms must hold in the target...
        let heads_ok = p.head.iter().all(|a| {
            let args: Vec<Value> = a.args.iter().map(|v| binding[v]).collect();
            target.contains_tuple(a.rel, args.as_slice())
        });
        if !heads_ok {
            return false;
        }
        // ...and every child part must hold under the extended binding.
        return tgd
            .children(part)
            .iter()
            .all(|&c| sat_part(source, target, tgd, c, binding));
    }
    // Heads with unbound variables can't be checked until all witnesses of
    // this part are chosen; simple enumeration suffices at our scales.
    candidates.iter().any(|&v| {
        let mut b = binding.clone();
        b.insert(witnesses[i], v);
        search_witness(source, target, tgd, part, &b, witnesses, i + 1, candidates)
    })
}

/// Does `(source, target) ⊨ σ` for a **plain** SO tgd? Since plain SO tgds
/// admit universal solutions and are closed under target homomorphisms,
/// `(I, J) ⊨ σ` iff `chase(I, σ) → J`.
///
/// # Panics
/// Panics if σ is not plain (use [`satisfies_so`]).
pub fn satisfies_plain_so(source: &Instance, target: &Instance, tgd: &SoTgd) -> bool {
    assert!(tgd.is_plain(), "satisfies_plain_so requires a plain SO tgd");
    let mut nulls = NullFactory::new();
    let chased = chase_so(source, tgd, &mut nulls);
    homomorphic(&chased, target)
}

/// Does `(source, target) ⊨ σ` for a full SO tgd (equalities and nested
/// terms allowed)? Backtracking search over Skolem-function graphs: each
/// needed application point `f(v⃗)` is assigned a value from
/// `adom(I) ∪ adom(J)` or a point-private fresh value (sound and complete:
/// any model can be collapsed onto such representatives preserving
/// equalities and fact membership).
pub fn satisfies_so(source: &Instance, target: &Instance, tgd: &SoTgd) -> bool {
    // Collect obligations: one per clause per body match.
    let mut obligations: Vec<(usize, Binding)> = Vec::new();
    for (ci, clause) in tgd.clauses.iter().enumerate() {
        for b in all_matches(source, &clause.body, &Binding::new()) {
            obligations.push((ci, b));
        }
    }
    let mut candidates: Vec<Value> = source
        .adom()
        .into_iter()
        .chain(target.adom())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // Fresh values model function outputs outside adom(I) ∪ adom(J). Any
    // model can be collapsed so that each equality class of outside values
    // maps to one representative; the number of classes is at most the
    // total number of function-term occurrences across all obligations, so
    // that many shared fresh values make the search complete. Fresh ids
    // start well above any real null id.
    let fresh_base = 0x4000_0000u32;
    let total_points: usize = obligations
        .iter()
        .map(|(ci, _)| {
            let clause = &tgd.clauses[*ci];
            let mut fs = Vec::new();
            for ta in &clause.head {
                for t in &ta.args {
                    t.collect_funcs(&mut fs);
                }
            }
            for (l, r) in &clause.equalities {
                l.collect_funcs(&mut fs);
                r.collect_funcs(&mut fs);
            }
            fs.len()
        })
        .sum();
    for i in 0..total_points.max(1) {
        candidates.push(Value::Null(NullId(fresh_base + i as u32)));
    }
    let mut f: FuncGraph = BTreeMap::new();
    solve(
        tgd,
        target,
        &obligations,
        0,
        &mut f,
        &candidates,
        fresh_base,
    )
}

type Point = (FuncId, Vec<Value>);
type FuncGraph = BTreeMap<Point, Value>;

fn solve(
    tgd: &SoTgd,
    target: &Instance,
    obligations: &[(usize, Binding)],
    i: usize,
    f: &mut FuncGraph,
    candidates: &[Value],
    fresh_base: u32,
) -> bool {
    if i == obligations.len() {
        return true;
    }
    let (ci, binding) = &obligations[i];
    let clause = &tgd.clauses[*ci];
    // Option A: all equalities hold and all head atoms are in the target.
    // Option B: some equality fails.
    // Both options branch over values of yet-unassigned application points.
    satisfy_clause(
        tgd,
        target,
        clause,
        binding,
        0,
        f,
        candidates,
        fresh_base,
        &mut |f2| solve(tgd, target, obligations, i + 1, f2, candidates, fresh_base),
    )
}

/// Tries to discharge one clause obligation, branching over function
/// values. `eq_idx` walks the equalities; after them the head atoms are
/// checked. Calls `cont` on every consistent completion.
#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn satisfy_clause(
    tgd: &SoTgd,
    target: &Instance,
    clause: &SoClause,
    binding: &Binding,
    eq_idx: usize,
    f: &mut FuncGraph,
    candidates: &[Value],
    fresh_base: u32,
    cont: &mut dyn FnMut(&mut FuncGraph) -> bool,
) -> bool {
    if eq_idx < clause.equalities.len() {
        let (l, r) = &clause.equalities[eq_idx];
        // Branch on evaluations of both sides.
        return eval_term(l, binding, f, candidates, fresh_base, &mut |lv, f| {
            eval_term(r, binding, f, candidates, fresh_base, &mut |rv, f| {
                if lv == rv {
                    // Equality holds: continue with remaining equalities.
                    satisfy_clause(
                        tgd,
                        target,
                        clause,
                        binding,
                        eq_idx + 1,
                        f,
                        candidates,
                        fresh_base,
                        cont,
                    )
                } else {
                    // Equality fails: the clause is vacuously satisfied.
                    cont(f)
                }
            })
        });
    }
    // All equalities hold — every head atom must be in the target.
    check_heads(
        target, clause, binding, 0, 0, f, candidates, fresh_base, cont,
    )
}

#[allow(clippy::too_many_arguments)]
fn check_heads(
    target: &Instance,
    clause: &SoClause,
    binding: &Binding,
    atom_idx: usize,
    arg_idx: usize,
    f: &mut FuncGraph,
    candidates: &[Value],
    fresh_base: u32,
    cont: &mut dyn FnMut(&mut FuncGraph) -> bool,
) -> bool {
    if atom_idx == clause.head.len() {
        return cont(f);
    }
    let atom = &clause.head[atom_idx];
    if arg_idx == atom.args.len() {
        // All args evaluated previously during recursion; re-evaluate the
        // (now fully determined) tuple and test membership.
        let mut tuple = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match eval_ground(t, binding, f) {
                Some(v) => tuple.push(v),
                None => return false, // should not happen: all points assigned
            }
        }
        if !target.contains_tuple(atom.rel, &tuple) {
            return false;
        }
        return check_heads(
            target,
            clause,
            binding,
            atom_idx + 1,
            0,
            f,
            candidates,
            fresh_base,
            cont,
        );
    }
    let term = &clause.head[atom_idx].args[arg_idx];
    eval_term(term, binding, f, candidates, fresh_base, &mut |_, f| {
        check_heads(
            target,
            clause,
            binding,
            atom_idx,
            arg_idx + 1,
            f,
            candidates,
            fresh_base,
            cont,
        )
    })
}

/// Evaluates a term under `binding` and the (partial) function graph `f`,
/// branching on values for unassigned application points. Calls `cont` for
/// every possible value; undoes assignments on backtrack.
fn eval_term(
    term: &Term,
    binding: &Binding,
    f: &mut FuncGraph,
    candidates: &[Value],
    fresh_base: u32,
    cont: &mut dyn FnMut(Value, &mut FuncGraph) -> bool,
) -> bool {
    match term {
        Term::Var(v) => cont(binding[v], f),
        Term::App(g, args) => {
            eval_args(
                args,
                0,
                Vec::new(),
                binding,
                f,
                candidates,
                fresh_base,
                &mut |vals, f| {
                    let point: Point = (*g, vals.to_vec());
                    if let Some(&v) = f.get(&point) {
                        return cont(v, f);
                    }
                    // Branch over all candidates (adom values + shared fresh).
                    for &cand in candidates {
                        f.insert(point.clone(), cand);
                        if cont(cand, f) {
                            return true;
                        }
                        f.remove(&point);
                    }
                    false
                },
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_args(
    args: &[Term],
    i: usize,
    acc: Vec<Value>,
    binding: &Binding,
    f: &mut FuncGraph,
    candidates: &[Value],
    fresh_base: u32,
    cont: &mut dyn FnMut(&[Value], &mut FuncGraph) -> bool,
) -> bool {
    if i == args.len() {
        return cont(&acc, f);
    }
    eval_term(&args[i], binding, f, candidates, fresh_base, &mut |v, f| {
        let mut acc2 = acc.clone();
        acc2.push(v);
        eval_args(args, i + 1, acc2, binding, f, candidates, fresh_base, cont)
    })
}

/// Evaluates a term when all needed application points are assigned.
fn eval_ground(term: &Term, binding: &Binding, f: &FuncGraph) -> Option<Value> {
    match term {
        Term::Var(v) => binding.get(v).copied(),
        Term::App(g, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_ground(a, binding, f)?);
            }
            f.get(&(*g, vals)).copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndl_chase::{chase_mapping, chase_nested, Prepared};

    #[test]
    fn nested_chase_result_satisfies_the_tgd() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
            &[],
        )
        .unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, b]), Fact::new(s, vec![a, a])]);
        let (res, _) = chase_mapping(&source, &m, &mut syms);
        assert!(satisfies_mapping(&source, &res.target, &m));
        // Removing one fact may leave a redundant witness intact, so drop
        // every R(·, a) fact: then no witness y covers x3 = a.
        let smaller = res.target.filter(&|f| f.args[1] != a);
        assert!(smaller.len() < res.target.len());
        assert!(!satisfies_mapping(&source, &smaller, &m));
    }

    #[test]
    fn nested_satisfaction_agrees_with_chase_homomorphism() {
        // Nested tgds are closed under target homomorphisms and the chase
        // is universal: (I, J) ⊨ σ iff chase(I, σ) → J.
        let mut syms = SymbolTable::new();
        let tgd = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
        )
        .unwrap();
        let prep = Prepared::new(tgd.clone(), &mut syms);
        let s1 = syms.rel("S1");
        let s2 = syms.rel("S2");
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let source = Instance::from_facts([
            Fact::new(s1, vec![a]),
            Fact::new(s2, vec![b]),
            Fact::new(s2, vec![c]),
        ]);
        let mut nulls = NullFactory::new();
        let chased = chase_nested(&source, &[prep], &mut nulls).target;
        // Candidate targets.
        let j1 = Instance::from_facts([Fact::new(r, vec![b, a]), Fact::new(r, vec![c, a])]);
        let j2 = Instance::from_facts([Fact::new(r, vec![b, a]), Fact::new(r, vec![c, b])]);
        for j in [&j1, &j2, &chased] {
            assert_eq!(
                satisfies_nested(&source, j, &tgd),
                homomorphic(&chased, j),
                "disagreement on {}",
                j.display(&syms)
            );
        }
        assert!(satisfies_nested(&source, &j1, &tgd));
        assert!(!satisfies_nested(&source, &j2, &tgd)); // different y's needed
    }

    #[test]
    fn plain_so_satisfaction() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))").unwrap();
        let s = syms.rel("S");
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, b])]);
        let good = Instance::from_facts([Fact::new(r, vec![a, a])]); // f constant
        let bad = Instance::new();
        assert!(satisfies_plain_so(&source, &good, &tgd));
        assert!(!satisfies_plain_so(&source, &bad, &tgd));
        // The general solver agrees.
        assert!(satisfies_so(&source, &good, &tgd));
        assert!(!satisfies_so(&source, &bad, &tgd));
    }

    #[test]
    fn full_so_equality_semantics() {
        // Emp/Mgr/SelfMgr: with J = {Mgr(a,a)}, f(a) = a is forced, so
        // SelfMgr(a) must be present.
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(
            &mut syms,
            "exists f . Emp(e) -> Mgr(e,f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)",
        )
        .unwrap();
        let emp = syms.rel("Emp");
        let mgr = syms.rel("Mgr");
        let selfm = syms.rel("SelfMgr");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(emp, vec![a])]);
        let j_self_loop = Instance::from_facts([Fact::new(mgr, vec![a, a])]);
        assert!(!satisfies_so(&source, &j_self_loop, &tgd));
        let j_ok = Instance::from_facts([Fact::new(mgr, vec![a, a]), Fact::new(selfm, vec![a])]);
        assert!(satisfies_so(&source, &j_ok, &tgd));
        // With an external manager, no SelfMgr needed.
        let j_ext = Instance::from_facts([Fact::new(mgr, vec![a, b])]);
        assert!(satisfies_so(&source, &j_ext, &tgd));
    }

    #[test]
    fn empty_target_satisfies_only_headless() {
        let mut syms = SymbolTable::new();
        let tgd = parse_nested_tgd(&mut syms, "S(x) -> exists y R(x,y)").unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(s, vec![a])]);
        assert!(!satisfies_nested(&source, &Instance::new(), &tgd));
        // Vacuous when the source is empty.
        assert!(satisfies_nested(&Instance::new(), &Instance::new(), &tgd));
    }

    #[test]
    fn so_chase_result_satisfies_its_tgd() {
        let mut syms = SymbolTable::new();
        let tgd = parse_so_tgd(
            &mut syms,
            "exists f,g . S(x,y) & Q(z) -> R(f(z,x),f(z,y),g(z))",
        )
        .unwrap();
        let s = syms.rel("S");
        let q = syms.rel("Q");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let o = Value::Const(syms.constant("o"));
        let source = Instance::from_facts([Fact::new(s, vec![a, b]), Fact::new(q, vec![o])]);
        let mut nulls = NullFactory::new();
        let chased = chase_so(&source, &tgd, &mut nulls);
        assert!(satisfies_plain_so(&source, &chased, &tgd));
        assert!(satisfies_so(&source, &chased, &tgd));
    }
}
