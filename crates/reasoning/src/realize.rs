//! Realizability of patterns (paper, Example 3.4).
//!
//! Not every pattern of a nested tgd can occur as the pattern of a chase
//! tree: parts whose variables are all bound by ancestors can trigger at
//! most once per parent, so their nodes cannot be cloned. The IMPLIES
//! procedure deliberately ignores realizability ("can be shown not to
//! affect its correctness"); this module provides the diagnostic tools:
//!
//! - [`realized_by_canonical`] — a *sufficient* realizability check: does
//!   chasing the pattern's own canonical source instance produce a chase
//!   tree with exactly this pattern? (Example 3.4's over-cloned patterns
//!   fail it: their canonical atoms deduplicate.)
//! - [`realized_patterns`] — the multiset of patterns realized in a chase
//!   forest, for workload analysis.

use crate::canonical::canonical_instances;
use crate::pattern::Pattern;
use ndl_chase::{chase_nested, ChaseForest, NullFactory, Prepared};
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// Sufficient realizability check: chase the pattern's canonical source
/// instance and compare chase-tree patterns. A `true` answer exhibits a
/// concrete source instance realizing the pattern; `false` means the
/// canonical instance does not realize it (for patterns over-cloning
/// ancestor-bound parts, no instance does).
pub fn realized_by_canonical(tgd: &NestedTgd, pattern: &Pattern, syms: &mut SymbolTable) -> bool {
    let info = SkolemInfo::for_nested(tgd, syms);
    let mut nulls = NullFactory::new();
    let pair = canonical_instances(tgd, &info, pattern, syms, &mut nulls);
    let prep = Prepared::new(tgd.clone(), syms);
    let mut chase_nulls = NullFactory::new();
    let res = chase_nested(&pair.source, &[prep], &mut chase_nulls);
    res.forest
        .roots
        .iter()
        .any(|&r| Pattern::of_chase_tree(&res.forest, r) == *pattern)
}

/// The patterns of the chase trees in a forest, with multiplicities —
/// which shapes a workload actually exercises.
pub fn realized_patterns(forest: &ChaseForest) -> Vec<(Pattern, usize)> {
    let mut counts: BTreeMap<Vec<u8>, (Pattern, usize)> = BTreeMap::new();
    for &root in &forest.roots {
        let p = Pattern::of_chase_tree(forest, root);
        counts
            .entry(p.canonical_key())
            .and_modify(|(_, c)| *c += 1)
            .or_insert((p, 1));
    }
    counts.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 3.4: the tgd with a single ancestor-bound nested part only
    /// realizes patterns with at most one child node.
    #[test]
    fn example_34_overclones_unrealizable() {
        let mut syms = SymbolTable::new();
        let tgd =
            parse_nested_tgd(&mut syms, "forall x1 (S1(x1) -> ((S2(x1) -> T2(x1))))").unwrap();
        let mut fine = Pattern::root_only(0);
        fine.add_child(0, 1);
        assert!(realized_by_canonical(&tgd, &fine, &mut syms));
        let mut cloned = fine.clone();
        cloned.clone_subtree(1);
        assert!(!realized_by_canonical(&tgd, &cloned, &mut syms));
    }

    /// For parts with own variables, clones ARE realizable.
    #[test]
    fn clones_of_free_parts_are_realizable() {
        let mut syms = SymbolTable::new();
        let tgd = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))",
        )
        .unwrap();
        let mut p = Pattern::root_only(0);
        p.add_child(0, 1);
        p.add_child(0, 1);
        p.add_child(0, 1);
        assert!(realized_by_canonical(&tgd, &p, &mut syms));
    }

    /// Workload statistics: counts of realized patterns in a chase forest.
    #[test]
    fn realized_pattern_counts() {
        let mut syms = SymbolTable::new();
        let tgd = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y (forall x2 (S2(x1,x2) -> R(y,x2))))",
        )
        .unwrap();
        let prep = Prepared::new(tgd, &mut syms);
        let s1 = syms.rel("S1");
        let s2 = syms.rel("S2");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        // a has two S2-partners, b has none.
        let source = Instance::from_facts([
            Fact::new(s1, vec![a]),
            Fact::new(s1, vec![b]),
            Fact::new(s2, vec![a, b]),
            Fact::new(s2, vec![a, c]),
        ]);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &[prep], &mut nulls);
        let stats = realized_patterns(&res.forest);
        // Two distinct shapes: root-only (for b) and root+2 children (for a).
        assert_eq!(stats.len(), 2);
        let total: usize = stats.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2);
        assert!(stats.iter().any(|(p, c)| p.len() == 1 && *c == 1));
        assert!(stats.iter().any(|(p, c)| p.len() == 3 && *c == 1));
    }
}
