//! # ndl-reasoning
//!
//! The decision procedures and structural tools of *Nested Dependencies:
//! Structure and Reasoning* (Kolaitis, Pichler, Sallinger, Savenkov,
//! PODS 2014):
//!
//! - [`pattern`] / [`enumerate`] — patterns of chase trees and k-pattern
//!   enumeration (Definitions 3.2/3.3, Proposition 3.5);
//! - [`canonical`] — canonical instances of patterns (Definition 3.7) and
//!   their legal variants under source egds (Definition 5.4);
//! - [`implies`] — the IMPLIES procedure for the implication problem of
//!   nested tgds (Theorem 3.1), logical equivalence (Corollary 3.11), and
//!   the source-egd extension (Theorem 5.7);
//! - [`fblock`] — boundedness of the f-block size (Theorems 4.4, 4.9–4.11,
//!   5.5);
//! - [`to_glav`] — deciding GLAV-equivalence with verified witnesses
//!   (Theorems 4.2 and 5.6);
//! - [`separate`] — f-degree and path-length separation of plain SO tgds
//!   from nested GLAV mappings (Theorems 4.12, 4.16, Proposition 4.13);
//! - [`model_check`] — model checkers for nested tgds (polynomial data
//!   complexity) and (plain) SO tgds (NP).

#![warn(missing_docs)]

pub mod anchor;
pub mod canonical;
pub mod compose;
pub mod cq;
pub mod enumerate;
pub mod error;
pub mod fblock;
pub mod implies;
pub mod model_check;
pub mod normalize;
pub mod pattern;
pub mod realize;
pub mod separate;
pub mod to_glav;

pub use anchor::{anchor_for_block, effective_anchor_bound, AnchorWitness};
pub use canonical::{canonical_instances, legalize, CanonicalPair};
pub use compose::{compose_glav, freeze, two_step_chase, unfreeze};
pub use cq::{certain_answers, cq_equivalent_on, ConjunctiveQuery};
pub use enumerate::{count_k_patterns, k_patterns, max_k_pattern_size, DEFAULT_PATTERN_BUDGET};
pub use error::{ReasoningError, Result};
pub use fblock::{
    clone_bound, fblock_size_bounded_by_exhaustive, has_bounded_fblock_size, FblockAnalysis,
    FblockOptions, GrowthEvidence,
};
pub use implies::{
    equivalent, implies_mapping, implies_mapping_observed, implies_tgd, implies_tgd_observed,
    redundant_tgds, Counterexample, ImpliesOptions, ImpliesReport,
};
pub use model_check::{satisfies_mapping, satisfies_nested, satisfies_plain_so, satisfies_so};
pub use normalize::{
    drop_vacuous_parts, normalize_mapping, prune_unused_existentials, split_independent_conjuncts,
};
pub use pattern::{Pattern, PatternNode};
pub use realize::{realized_by_canonical, realized_patterns};
pub use separate::{sweep_nested, sweep_so, NotNestedReason, SeparationReport, SweepPoint};
pub use to_glav::{glav_equivalent, GlavDecision};
