//! Deciding boundedness of the f-block size of nested GLAV mappings
//! (paper, Section 4.1 and Section 5).
//!
//! Theorem 4.1 reduces "is M equivalent to a GLAV mapping?" to "does M
//! have bounded f-block size?". The paper proves decidability of the
//! latter through two properties of nested GLAV mappings:
//!
//! - **effective threshold** (Theorem 4.4 / 5.5): above a computable
//!   f-block size, two sibling subtrees of the chase tree are isomorphic
//!   and cloning a third strictly grows the block — so the size is
//!   unbounded;
//! - **effective bounded anchor** (Theorem 4.9): large core f-blocks are
//!   witnessed by canonical instances of k-patterns obtained by cloning.
//!
//! Our decision procedure implements exactly the certificate the proofs
//! construct: for every subtree of every 1-pattern of every tgd, chase the
//! **cloning ladder** `p, p+t, p+2t, …` up to the effective clone bound
//! `k + 1` (with `k = v·w + 1` as in IMPLIES, instantiated with Σ = M
//! itself), take cores of the chase results, and test whether the core
//! f-block size still strictly grows at the top of the ladder. Strict
//! growth past the pigeonhole bound is the paper's unboundedness
//! certificate; a plateau on every ladder means every chase-tree clone
//! family stops contributing to cores, i.e. the size is bounded.
//! Source egds are handled through *legal* canonical instances
//! (Definition 5.4), exactly as in Theorems 5.5/5.6.
//!
//! A literal (and exponentially more expensive) implementation of the
//! Theorem 4.10 test — enumerate all source instances up to the anchor
//! bound — is provided as [`fblock_size_bounded_by_exhaustive`] for
//! cross-checking on tiny schemas.

use crate::canonical::{canonical_instances, legalize};
use crate::enumerate::k_patterns;
use crate::error::Result;
use crate::pattern::Pattern;
use ndl_chase::{chase_nested, NullFactory, Prepared};
use ndl_core::prelude::*;
use ndl_hom::core_f_block_size;

/// Options for the boundedness analysis.
#[derive(Clone, Copy, Debug)]
pub struct FblockOptions {
    /// Budget on pattern enumeration.
    pub pattern_budget: usize,
    /// Extra ladder steps beyond the pigeonhole bound (more steps = more
    /// confidence in the plateau; the theory needs none beyond `k + 1`).
    pub extra_ladder_steps: usize,
}

impl Default for FblockOptions {
    fn default() -> Self {
        FblockOptions {
            pattern_budget: crate::enumerate::DEFAULT_PATTERN_BUDGET,
            extra_ladder_steps: 1,
        }
    }
}

/// Evidence that a mapping has unbounded f-block size: a pattern subtree
/// whose cloning ladder keeps strictly growing the core f-block.
#[derive(Clone, Debug)]
pub struct GrowthEvidence {
    /// Index of the tgd in the mapping.
    pub tgd_idx: usize,
    /// The base 1-pattern.
    pub base_pattern: Pattern,
    /// The node of `base_pattern` whose subtree was cloned.
    pub cloned_node: usize,
    /// Core f-block sizes along the ladder (m = 0, 1, 2, … extra clones).
    pub ladder_sizes: Vec<usize>,
}

/// The outcome of the boundedness analysis.
#[derive(Clone, Debug)]
pub struct FblockAnalysis {
    /// Is the f-block size of the mapping bounded?
    pub bounded: bool,
    /// When bounded: the maximum core f-block size observed across the
    /// ladders — the bound `b` itself for the mapping's chase cores
    /// realized through patterns.
    pub max_observed: usize,
    /// The pigeonhole clone bound `k` used for the ladders.
    pub clone_bound: usize,
    /// When unbounded: the growth certificate.
    pub evidence: Option<GrowthEvidence>,
}

/// The effective clone bound for the mapping: `k = v·w + 1` with `v` the
/// max number of Skolem functions in a tgd of M and `w` the max number of
/// universal variables in a tgd of M (the IMPLIES bound with Σ = M).
pub fn clone_bound(m: &NestedMapping, syms: &mut SymbolTable) -> usize {
    let v = m
        .tgds
        .iter()
        .map(|t| {
            let info = SkolemInfo::for_nested(t, syms);
            skolemize_with(t, &info).occurring_funcs().len()
        })
        .max()
        .unwrap_or(0);
    let w = m
        .tgds
        .iter()
        .map(NestedTgd::num_universals)
        .max()
        .unwrap_or(0);
    (v * w + 1).max(1)
}

/// Decides whether the nested GLAV mapping has bounded f-block size
/// (Theorem 4.11, via Theorems 4.4 and 4.9; with source egds,
/// Theorem 5.5).
pub fn has_bounded_fblock_size(
    m: &NestedMapping,
    syms: &mut SymbolTable,
    opts: &FblockOptions,
) -> Result<FblockAnalysis> {
    let k = clone_bound(m, syms);
    let ladder_len = k + 1 + opts.extra_ladder_steps;
    let prepared = Prepared::mapping(m, syms);
    let mut max_observed = 0usize;
    for (tgd_idx, tgd) in m.tgds.iter().enumerate() {
        let info = SkolemInfo::for_nested(tgd, syms);
        let base_patterns = k_patterns(tgd, 1, opts.pattern_budget)?;
        for base in &base_patterns {
            // Ladder for every non-root subtree of the base pattern.
            for node in 1..base.len() {
                let mut sizes = Vec::with_capacity(ladder_len + 1);
                let mut pattern = base.clone();
                for step in 0..=ladder_len {
                    if step > 0 {
                        pattern.clone_subtree(node);
                    }
                    let mut nulls = NullFactory::new();
                    let pair = canonical_instances(tgd, &info, &pattern, syms, &mut nulls);
                    let legal = legalize(&pair, &m.source_egds, &mut nulls);
                    let mut chase_nulls = NullFactory::new();
                    let chased = chase_nested(&legal.source, &prepared, &mut chase_nulls).target;
                    let size = core_f_block_size(&chased);
                    sizes.push(size);
                    max_observed = max_observed.max(size);
                }
                // Strict growth across the final steps (beyond the
                // pigeonhole bound) certifies unboundedness.
                let n = sizes.len();
                if sizes[n - 1] > sizes[n - 2] {
                    return Ok(FblockAnalysis {
                        bounded: false,
                        max_observed,
                        clone_bound: k,
                        evidence: Some(GrowthEvidence {
                            tgd_idx,
                            base_pattern: base.clone(),
                            cloned_node: node,
                            ladder_sizes: sizes,
                        }),
                    });
                }
            }
            // The base pattern itself (no cloning) still contributes to
            // the observed bound.
            if base.len() == 1 {
                let mut nulls = NullFactory::new();
                let pair = canonical_instances(tgd, &info, base, syms, &mut nulls);
                let legal = legalize(&pair, &m.source_egds, &mut nulls);
                let mut chase_nulls = NullFactory::new();
                let chased = chase_nested(&legal.source, &prepared, &mut chase_nulls).target;
                max_observed = max_observed.max(core_f_block_size(&chased));
            }
        }
    }
    Ok(FblockAnalysis {
        bounded: true,
        max_observed,
        clone_bound: k,
        evidence: None,
    })
}

/// The literal Theorem 4.10 test on tiny schemas: enumerates all source
/// instances with at most `max_atoms` atoms (up to isomorphism) over the
/// mapping's source relations, and checks whether any core f-block exceeds
/// `b`. Exponential — use only for cross-checking.
pub fn fblock_size_bounded_by_exhaustive(
    m: &NestedMapping,
    b: usize,
    max_atoms: usize,
    syms: &mut SymbolTable,
) -> bool {
    let prepared = Prepared::mapping(m, syms);
    let rels: Vec<(RelId, usize)> = m
        .schema
        .relations()
        .filter(|&(_, _, side)| side == Side::Source)
        .map(|(r, a, _)| (r, a))
        .collect();
    let max_consts: usize = max_atoms * rels.iter().map(|&(_, a)| a).max().unwrap_or(1);
    let consts: Vec<Value> = (0..max_consts)
        .map(|i| Value::Const(syms.constant(&format!("u{i}"))))
        .collect();
    // All possible facts.
    let mut all_facts = Vec::new();
    for &(rel, arity) in &rels {
        let mut tuples: Vec<Vec<Value>> = vec![vec![]];
        for _ in 0..arity {
            tuples = tuples
                .into_iter()
                .flat_map(|t| {
                    consts.iter().map(move |&c| {
                        let mut t2 = t.clone();
                        t2.push(c);
                        t2
                    })
                })
                .collect();
        }
        for t in tuples {
            all_facts.push(Fact::new(rel, t));
        }
    }
    // Enumerate subsets of size 1..=max_atoms (with a canonical-form filter
    // to skip instances isomorphic to already-seen ones).
    let mut seen = std::collections::BTreeSet::new();
    let mut stack: Vec<(usize, Vec<Fact>)> = vec![(0, vec![])];
    while let Some((start, facts)) = stack.pop() {
        if !facts.is_empty() {
            let inst = Instance::from_facts(facts.iter().cloned());
            if seen.insert(canonical_form(&inst)) {
                if !m.source_egds.is_empty() && !ndl_chase::satisfies_egds(&inst, &m.source_egds) {
                    // Illegal source; skip but keep extending (a superset
                    // is also illegal, so prune).
                    continue;
                }
                let mut nulls = NullFactory::new();
                let chased = chase_nested(&inst, &prepared, &mut nulls).target;
                if core_f_block_size(&chased) > b {
                    return false;
                }
            }
        }
        if facts.len() < max_atoms {
            for (i, fact) in all_facts.iter().enumerate().skip(start) {
                let mut f2 = facts.clone();
                f2.push(fact.clone());
                stack.push((i + 1, f2));
            }
        }
    }
    true
}

/// A cheap canonical form under constant renaming: relabel constants by
/// first occurrence in the deterministic fact order.
fn canonical_form(inst: &Instance) -> String {
    let mut renaming: std::collections::BTreeMap<Value, usize> = Default::default();
    let mut out = String::new();
    for fact in inst.facts() {
        out.push_str(&format!("{:?}(", fact.rel));
        for &v in fact.args {
            let next = renaming.len();
            let id = *renaming.entry(v).or_insert(next);
            out.push_str(&format!("{id},"));
        }
        out.push(')');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> FblockOptions {
        FblockOptions::default()
    }

    #[test]
    fn glav_mappings_are_bounded() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(&mut syms, &["S(x,y) -> exists z (R(x,z) & R(z,y))"], &[])
            .unwrap();
        let a = has_bounded_fblock_size(&m, &mut syms, &opts()).unwrap();
        assert!(a.bounded);
        assert_eq!(a.max_observed, 2);
    }

    #[test]
    fn classic_nested_tgd_is_unbounded() {
        // The intro tgd, known not equivalent to any finite set of s-t
        // tgds: its f-block size is unbounded.
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
            &[],
        )
        .unwrap();
        let a = has_bounded_fblock_size(&m, &mut syms, &opts()).unwrap();
        assert!(!a.bounded);
        let e = a.evidence.unwrap();
        // Strictly increasing ladder.
        assert!(e.ladder_sizes.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn nested_but_uncorrelated_is_bounded() {
        // The existential is never used: nesting is vacuous.
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(x2,x2))))"],
            &[],
        )
        .unwrap();
        let a = has_bounded_fblock_size(&m, &mut syms, &opts()).unwrap();
        assert!(a.bounded);
        assert_eq!(a.max_observed, 1);
    }

    #[test]
    fn example_34_realizability_is_harmless() {
        // ∀x1 S1(x1) → ((S2(x1) → T2(x1))): clones collapse since the
        // nested part has no own variables.
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1 (S1(x1) -> ((S2(x1) -> T2(x1))))"],
            &[],
        )
        .unwrap();
        let a = has_bounded_fblock_size(&m, &mut syms, &opts()).unwrap();
        assert!(a.bounded);
    }

    #[test]
    fn example_415_nested_tgd_is_unbounded() {
        // ∀z (Q(z) → ∃u (∀x∀y (S(x,y) → ∃v R(v,u,x)))) — u is shared by
        // unboundedly many R-facts.
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall z (Q(z) -> exists u (forall x,y (S(x,y) -> exists v R(v,u,x))))"],
            &[],
        )
        .unwrap();
        let a = has_bounded_fblock_size(&m, &mut syms, &opts()).unwrap();
        assert!(!a.bounded);
    }

    #[test]
    fn source_egds_can_make_a_mapping_bounded() {
        // Example 5.3's σ: under the key egd, only one x1 per z exists, so
        // the nested part fires boundedly... the f-block can still grow
        // via x2! Use the variant where growth is exactly through x1:
        // ∀z (Q(z) → ∃y ∀x1 (P1(z,x1) → R(y,x1))). Unbounded without the
        // egd; with P1's second column functionally determined by z, each
        // chase tree has ≤ 1 nested triggering — bounded.
        let mut syms = SymbolTable::new();
        let tgds = &["forall z (Q(z) -> exists y (forall x1 (P1(z,x1) -> R(y,x1))))"];
        let unconstrained = NestedMapping::parse(&mut syms, tgds, &[]).unwrap();
        let a = has_bounded_fblock_size(&unconstrained, &mut syms, &opts()).unwrap();
        assert!(!a.bounded);
        let constrained =
            NestedMapping::parse(&mut syms, tgds, &["P1(z,w1) & P1(z,w2) -> w1 = w2"]).unwrap();
        let b = has_bounded_fblock_size(&constrained, &mut syms, &opts()).unwrap();
        assert!(b.bounded);
    }

    #[test]
    fn exhaustive_check_agrees_on_tiny_cases() {
        let mut syms = SymbolTable::new();
        // Bounded mapping: every block has ≤ 1 fact.
        let m = NestedMapping::parse(&mut syms, &["S(x) -> exists y R(x,y)"], &[]).unwrap();
        assert!(fblock_size_bounded_by_exhaustive(&m, 1, 2, &mut syms));
        // The classic unbounded tgd exceeds block size 2 within 3 atoms.
        let mut syms2 = SymbolTable::new();
        let u = NestedMapping::parse(
            &mut syms2,
            &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))"],
            &[],
        )
        .unwrap();
        assert!(!fblock_size_bounded_by_exhaustive(&u, 2, 4, &mut syms2));
    }

    #[test]
    fn multiple_tgds_any_unbounded_makes_mapping_unbounded() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &[
                "S(x,y) -> R(x,y)",
                "forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> T(y,x2))))",
            ],
            &[],
        )
        .unwrap();
        let a = has_bounded_fblock_size(&m, &mut syms, &opts()).unwrap();
        assert!(!a.bounded);
        assert_eq!(a.evidence.unwrap().tgd_idx, 1);
    }
}
