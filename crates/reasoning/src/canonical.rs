//! Canonical source and target instances of a pattern (paper,
//! Definition 3.7), and their *legal* variants under source egds
//! (Definition 5.4).
//!
//! For each pattern node labeled by part σᵢ, fresh constants are assigned
//! to the part's own universal variables; the node's body atoms are added
//! to the canonical source instance `I_p` and its head atoms (with Skolem
//! terms as nulls) to the canonical target instance `J_p`.

use crate::pattern::Pattern;
use ndl_chase::{chase_egds, ground_term, Binding, NullFactory, RigidPolicy};
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// The canonical source/target instances of a pattern.
#[derive(Clone, Debug)]
pub struct CanonicalPair {
    /// The canonical source instance `I_p`.
    pub source: Instance,
    /// The canonical target instance `J_p`.
    pub target: Instance,
}

/// Builds the canonical instances of `pattern` for `tgd` (whose Skolem
/// assignment is `info`). Fresh constants are interned in `syms`
/// (named after the variables: `x1 ↦ a1`, clones get `a1_1, a1_2, …`);
/// nulls are allocated in `nulls` and labeled by their Skolem terms.
pub fn canonical_instances(
    tgd: &NestedTgd,
    info: &SkolemInfo,
    pattern: &Pattern,
    syms: &mut SymbolTable,
    nulls: &mut NullFactory,
) -> CanonicalPair {
    assert!(
        pattern.is_valid_for(tgd),
        "pattern does not match the tgd's part nesting"
    );
    let mut pair = CanonicalPair {
        source: Instance::new(),
        target: Instance::new(),
    };
    instantiate(
        tgd,
        info,
        pattern,
        0,
        &Binding::new(),
        syms,
        nulls,
        &mut pair,
    );
    pair
}

#[allow(clippy::too_many_arguments)]
fn instantiate(
    tgd: &NestedTgd,
    info: &SkolemInfo,
    pattern: &Pattern,
    node: usize,
    inherited: &Binding,
    syms: &mut SymbolTable,
    nulls: &mut NullFactory,
    pair: &mut CanonicalPair,
) {
    let part_id = pattern.nodes()[node].part;
    let part = tgd.part(part_id);
    let mut binding = inherited.clone();
    for &v in &part.universals {
        let name = const_name_for_var(syms.var_name(v));
        let c = syms.fresh_const(&name);
        binding.insert(v, Value::Const(c));
    }
    for atom in &part.body {
        let args: Vec<Value> = atom.args.iter().map(|v| binding[v]).collect();
        pair.source.insert_tuple(atom.rel, args);
    }
    for atom in &part.head {
        let args: Vec<Value> = atom
            .args
            .iter()
            .map(|v| match binding.get(v) {
                Some(&val) => val,
                None => {
                    let term = info
                        .term_for(*v)
                        .expect("head variable neither universal nor existential");
                    nulls.value_of(&ground_term(&term, &binding))
                }
            })
            .collect();
        pair.target.insert_tuple(atom.rel, args);
    }
    for &child in &pattern.nodes()[node].children {
        instantiate(tgd, info, pattern, child, &binding, syms, nulls, pair);
    }
}

/// `x1 ↦ a1`, `x ↦ a_x`: derive a readable fresh-constant prefix from a
/// variable name, mirroring the paper's `a_1, a_2, a_2', …` convention.
fn const_name_for_var(var: &str) -> String {
    let mut chars = var.chars();
    match (chars.next(), chars.as_str()) {
        (Some(c), rest)
            if c.is_ascii_alphabetic()
                && !rest.is_empty()
                && rest.chars().all(|d| d.is_ascii_digit()) =>
        {
            format!("a{rest}")
        }
        _ => format!("a_{var}"),
    }
}

/// The *legal* canonical instances under source egds (Definition 5.4):
/// `I_p` is chased with the egds (its fresh constants are flexible), and
/// the resulting constant merges are replayed into `J_p`, including inside
/// the Skolem terms labeling its nulls.
pub fn legalize(pair: &CanonicalPair, egds: &[Egd], nulls: &mut NullFactory) -> CanonicalPair {
    if egds.is_empty() {
        return pair.clone();
    }
    let chased = chase_egds(&pair.source, egds, RigidPolicy::AllFlexible)
        .expect("flexible egd chase cannot fail");
    let mut const_map: BTreeMap<ConstId, ConstId> = BTreeMap::new();
    for (from, to) in &chased.renaming {
        if let (Value::Const(a), Value::Const(b)) = (from, to) {
            const_map.insert(*a, *b);
        }
    }
    let rename = |c: ConstId| const_map.get(&c).copied().unwrap_or(c);
    let mut target = Instance::new();
    for fact in pair.target.facts() {
        let args: Vec<Value> = fact
            .args
            .iter()
            .map(|&v| match v {
                Value::Const(c) => Value::Const(rename(c)),
                Value::Null(n) => {
                    let term = nulls
                        .term(n)
                        .expect("null without a Skolem term in canonical target")
                        .map_consts(&rename);
                    nulls.value_of(&term)
                }
            })
            .collect();
        target.insert_tuple(fact.rel, args);
    }
    CanonicalPair {
        source: chased.instance,
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{k_patterns, DEFAULT_PATTERN_BUDGET};

    fn running_tgd(syms: &mut SymbolTable) -> NestedTgd {
        parse_nested_tgd(
            syms,
            "forall x1 (S1(x1) -> exists y1 (\
               forall x2 (S2(x2) -> R2(y1,x2)) & \
               forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
                 forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
        )
        .unwrap()
    }

    /// Figure 2: the canonical instances of the full 1-pattern p8.
    #[test]
    fn figure2_canonical_instances_of_p8() {
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        let info = SkolemInfo::for_nested(&tgd, &mut syms);
        // p8 = σ1(σ2 σ3(σ4)) — built explicitly as in the figure, and
        // checked to be among the 1-patterns.
        let mut p8 = Pattern::root_only(0);
        p8.add_child(0, 1);
        let s3 = p8.add_child(0, 2);
        p8.add_child(s3, 3);
        let ps = k_patterns(&tgd, 1, DEFAULT_PATTERN_BUDGET).unwrap();
        assert!(ps.contains(&p8));
        let mut nulls = NullFactory::new();
        let pair = canonical_instances(&tgd, &info, &p8, &mut syms, &mut nulls);
        // I_p8 = {S1(a1), S2(a2), S3(a1,a3), S4(a3,a4)}
        assert_eq!(pair.source.len(), 4);
        assert_eq!(
            pair.source.display(&syms),
            "S1(a1), S2(a2), S3(a1,a3), S4(a3,a4)"
        );
        // J_p8 = {R2(f(a1),a2), R3(f(a1),a3), R4(g(a1,a3,a4),a4)}
        assert_eq!(pair.target.len(), 3);
        assert_eq!(
            nulls.display_instance(&pair.target, &syms),
            "R2(f(a1),a2), R3(f(a1),a3), R4(g(a1,a3,a4),a4)"
        );
    }

    /// Figure 3: a 3-pattern with one extra clone of σ2 and two of σ4.
    #[test]
    fn figure3_cloned_canonical_source() {
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        let info = SkolemInfo::for_nested(&tgd, &mut syms);
        let mut p = Pattern::root_only(0);
        p.add_child(0, 1);
        let s3 = p.add_child(0, 2);
        p.add_child(s3, 3);
        // Find the σ2 node and the σ4 node and clone them.
        let s2_node = (0..p.len()).find(|&i| p.nodes()[i].part == 1).unwrap();
        p.clone_subtree(s2_node);
        let s4_node = (0..p.len()).find(|&i| p.nodes()[i].part == 3).unwrap();
        p.clone_subtree(s4_node);
        p.clone_subtree(s4_node);
        assert_eq!(p.max_clone_multiplicity(), 3);
        let mut nulls = NullFactory::new();
        let pair = canonical_instances(&tgd, &info, &p, &mut syms, &mut nulls);
        // Source: S1(a1), S2×2, S3(a1,a3), S4×3 = 7 atoms.
        assert_eq!(pair.source.len(), 7);
        let s2 = syms.rel("S2");
        let s4 = syms.rel("S4");
        assert_eq!(pair.source.rel_len(s2), 2);
        assert_eq!(pair.source.rel_len(s4), 3);
        // Target: R2×2, R3×1, R4×3; R2/R3 share the null f(a1).
        assert_eq!(pair.target.len(), 6);
        assert_eq!(pair.target.nulls().len(), 1 + 3);
    }

    #[test]
    fn nodes_without_own_universals_do_not_duplicate() {
        // Example 3.4-style: cloning a part with no own universals yields
        // identical atoms, which deduplicate in the canonical instances.
        let mut syms = SymbolTable::new();
        let tgd =
            parse_nested_tgd(&mut syms, "forall x1 (S1(x1) -> ((S2(x1) -> T2(x1))))").unwrap();
        let info = SkolemInfo::for_nested(&tgd, &mut syms);
        let mut p = Pattern::root_only(0);
        let c = p.add_child(0, 1);
        let _ = c;
        p.add_child(0, 1); // a clone of the σ2 node
        let mut nulls = NullFactory::new();
        let pair = canonical_instances(&tgd, &info, &p, &mut syms, &mut nulls);
        assert_eq!(pair.source.len(), 2); // S1(a1), S2(a1) — deduplicated
        assert_eq!(pair.target.len(), 1); // T2(a1)
    }

    /// Example 3.10: canonical instances of the 2-pattern p''_2.
    #[test]
    fn example_310_p2_canonical_instances() {
        let mut syms = SymbolTable::new();
        let tgd = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
        )
        .unwrap();
        let info = SkolemInfo::for_nested(&tgd, &mut syms);
        let mut p = Pattern::root_only(0);
        p.add_child(0, 1);
        p.add_child(0, 1);
        let mut nulls = NullFactory::new();
        let pair = canonical_instances(&tgd, &info, &p, &mut syms, &mut nulls);
        // I = {S1(a1), S2(a2), S2(a2_1)}; J = {R(a2,f(a1)), R(a2_1,f(a1))}.
        assert_eq!(pair.source.len(), 3);
        assert_eq!(pair.target.len(), 2);
        assert_eq!(pair.target.nulls().len(), 1);
    }

    #[test]
    fn legalization_merges_constants_and_null_labels() {
        // Example 5.3: σ = ∀z (Q(z) → ∃y ∀x1∀x2 (P1(z,x1) ∧ P2(z,x2) →
        // R(y,x1,x2))) with Σs = P1(z,x1) ∧ P1(z,x1') → x1 = x1'.
        let mut syms = SymbolTable::new();
        let tgd = parse_nested_tgd(
            &mut syms,
            "forall z (Q(z) -> exists y (forall x1,x2 (P1(z,x1) & P2(z,x2) -> R(y,x1,x2))))",
        )
        .unwrap();
        let egd = parse_egd(&mut syms, "P1(z,w1) & P1(z,w2) -> w1 = w2").unwrap();
        let info = SkolemInfo::for_nested(&tgd, &mut syms);
        // Pattern: root with two clones of the nested part.
        let mut p = Pattern::root_only(0);
        p.add_child(0, 1);
        p.add_child(0, 1);
        let mut nulls = NullFactory::new();
        let pair = canonical_instances(&tgd, &info, &p, &mut syms, &mut nulls);
        // Before legalization: two P1 atoms with distinct second columns —
        // violates Σs.
        let p1 = syms.rel("P1");
        assert_eq!(pair.source.rel_len(p1), 2);
        assert!(!ndl_chase::satisfies_egds(
            &pair.source,
            std::slice::from_ref(&egd)
        ));
        let legal = legalize(&pair, std::slice::from_ref(&egd), &mut nulls);
        assert!(ndl_chase::satisfies_egds(&legal.source, &[egd]));
        assert_eq!(legal.source.rel_len(p1), 1);
        // The target's R-atoms now agree on the (merged) x1 column.
        let r = syms.rel("R");
        let x1_col: std::collections::BTreeSet<Value> =
            legal.target.tuples(r).map(|t| t[1]).collect();
        assert_eq!(x1_col.len(), 1);
    }

    #[test]
    fn const_names_mirror_paper() {
        assert_eq!(const_name_for_var("x1"), "a1");
        assert_eq!(const_name_for_var("x12"), "a12");
        assert_eq!(const_name_for_var("x"), "a_x");
        assert_eq!(const_name_for_var("zebra"), "a_zebra");
    }
}
