//! Conjunctive queries and certain answers — the data-exchange use case
//! that motivates universal solutions (paper, Section 2 background; the
//! CQ-composition notion of \[16\] is defined through these answers).
//!
//! For a union-free conjunctive query `q` posed against the target schema,
//! the certain answers of `q` on source `I` under mapping `M` are the
//! tuples in `q(J)` for *every* solution `J`. By universality of the
//! chase, they are exactly the null-free tuples of `q(chase(I, M))`.

use ndl_chase::{all_matches, chase_mapping, Binding};
use ndl_core::error::{CoreError, Result as CoreResult};
use ndl_core::prelude::*;
use std::collections::BTreeSet;

/// A conjunctive query `q(x⃗) :- A1 ∧ … ∧ An` over the target schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// The distinguished (answer) variables.
    pub head: Vec<VarId>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a query, checking that head variables occur in the body.
    pub fn new(head: Vec<VarId>, body: Vec<Atom>) -> CoreResult<Self> {
        let bound: BTreeSet<VarId> = body.iter().flat_map(|a| a.args.iter().copied()).collect();
        for &v in &head {
            if !bound.contains(&v) {
                return Err(CoreError::UnboundVariable { var: v });
            }
        }
        Ok(ConjunctiveQuery { head, body })
    }

    /// Parses the Datalog-style syntax `q(x,y) :- R(x,z) & T(z,y)`.
    /// The head predicate name is ignored; `&` separates body atoms.
    pub fn parse(syms: &mut SymbolTable, input: &str) -> CoreResult<Self> {
        let (head_part, body_part) = input.split_once(":-").ok_or(CoreError::Parse {
            offset: 0,
            message: "expected 'q(vars) :- body'".into(),
        })?;
        // Head: ident(v1, ..., vn).
        let head_part = head_part.trim();
        let open = head_part.find('(').ok_or(CoreError::Parse {
            offset: 0,
            message: "expected '(' in query head".into(),
        })?;
        let close = head_part.rfind(')').ok_or(CoreError::Parse {
            offset: open,
            message: "expected ')' in query head".into(),
        })?;
        let head: Vec<VarId> = head_part[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| syms.var(s))
            .collect();
        // Body: atoms are `Name(args)` joined by `&`.
        let mut body = Vec::new();
        for atom_text in split_top_level(body_part.trim()) {
            let atom_text = atom_text.trim();
            let open = atom_text.find('(').ok_or(CoreError::Parse {
                offset: 0,
                message: format!("expected atom, found {atom_text:?}"),
            })?;
            if !atom_text.ends_with(')') {
                return Err(CoreError::Parse {
                    offset: 0,
                    message: format!("unterminated atom {atom_text:?}"),
                });
            }
            let rel = syms.rel(atom_text[..open].trim());
            let args: Vec<VarId> = atom_text[open + 1..atom_text.len() - 1]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| syms.var(s))
                .collect();
            body.push(Atom::new(rel, args));
        }
        ConjunctiveQuery::new(head, body)
    }

    /// Evaluates the query on an instance, returning all answer tuples
    /// (which may contain nulls when the instance does).
    pub fn evaluate(&self, instance: &Instance) -> BTreeSet<Vec<Value>> {
        all_matches(instance, &self.body, &Binding::new())
            .into_iter()
            .map(|b| self.head.iter().map(|v| b[v]).collect())
            .collect()
    }

    /// Renders the query.
    pub fn display(&self, syms: &SymbolTable) -> String {
        let head = self
            .head
            .iter()
            .map(|&v| syms.var_name(v))
            .collect::<Vec<_>>()
            .join(",");
        let body = self
            .body
            .iter()
            .map(|a| a.display(syms).to_string())
            .collect::<Vec<_>>()
            .join(" & ");
        format!("q({head}) :- {body}")
    }
}

/// Splits on `&` (no nesting to worry about: atoms contain no `&`).
fn split_top_level(s: &str) -> impl Iterator<Item = &str> {
    s.split('&')
}

/// The certain answers of `q` on `source` under `mapping`: the null-free
/// answers over the canonical universal solution.
pub fn certain_answers(
    q: &ConjunctiveQuery,
    source: &Instance,
    mapping: &NestedMapping,
    syms: &mut SymbolTable,
) -> BTreeSet<Vec<Value>> {
    let (res, _) = chase_mapping(source, mapping, syms);
    q.evaluate(&res.target)
        .into_iter()
        .filter(|t| t.iter().all(|v| v.is_const()))
        .collect()
}

/// CQ-equivalence of two mappings **on a family of source instances**:
/// they give the same certain answers for *every* conjunctive query on
/// every instance of the family. This is the equivalence notion behind
/// CQ-composition (\[16\] in the paper, via \[2\]): it holds on `I` iff the
/// canonical universal solutions are homomorphically equivalent.
///
/// A `true` answer is evidence over the finite family only; `false` is a
/// definitive separation (with the witnessing instance index).
pub fn cq_equivalent_on(
    m1: &NestedMapping,
    m2: &NestedMapping,
    family: &[Instance],
    syms: &mut SymbolTable,
) -> std::result::Result<(), usize> {
    for (i, source) in family.iter().enumerate() {
        let (r1, _) = chase_mapping(source, m1, syms);
        let (r2, _) = chase_mapping(source, m2, syms);
        if !ndl_hom::hom_equivalent(&r1.target, &r2.target) {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let mut syms = SymbolTable::new();
        let q = ConjunctiveQuery::parse(&mut syms, "q(x,y) :- R(x,z) & T(z,y)").unwrap();
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.display(&syms), "q(x,y) :- R(x,z) & T(z,y)");
    }

    #[test]
    fn parse_rejects_unbound_head() {
        let mut syms = SymbolTable::new();
        assert!(ConjunctiveQuery::parse(&mut syms, "q(w) :- R(x,y)").is_err());
        assert!(ConjunctiveQuery::parse(&mut syms, "q(x) - R(x)").is_err());
    }

    #[test]
    fn evaluation_joins() {
        let mut syms = SymbolTable::new();
        let q = ConjunctiveQuery::parse(&mut syms, "q(x,z) :- R(x,y) & R(y,z)").unwrap();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let inst = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![b, c])]);
        let ans = q.evaluate(&inst);
        assert_eq!(ans, BTreeSet::from([vec![a, c]]));
    }

    #[test]
    fn certain_answers_drop_nulls() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(&mut syms, &["S(x,y) -> exists z (R(x,z) & R(z,y))"], &[])
            .unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, b])]);
        // q1: endpoints of length-2 R-paths — certain: (a, b).
        let q1 = ConjunctiveQuery::parse(&mut syms, "q(x,y) :- R(x,z) & R(z,y)").unwrap();
        let ans1 = certain_answers(&q1, &source, &m, &mut syms);
        assert_eq!(ans1, BTreeSet::from([vec![a, b]]));
        // q2: first column of R — the only certain constants are a
        // (the invented midpoint is a null and is dropped).
        let q2 = ConjunctiveQuery::parse(&mut syms, "q(x) :- R(x,y)").unwrap();
        let ans2 = certain_answers(&q2, &source, &m, &mut syms);
        assert_eq!(ans2, BTreeSet::from([vec![a]]));
    }

    #[test]
    fn certain_answers_under_nested_mapping() {
        // The correlation of nested mappings is visible in certain
        // answers: the nested mapping certainly co-groups members of one
        // department, the flat one does not.
        let mut syms = SymbolTable::new();
        let sc = ndl_gen::clio_scenario(&mut syms, 2, 2, 5);
        let q = ConjunctiveQuery::parse(&mut syms, "q(e,p) :- EmpOf(g,e) & ProjOf(g,p)").unwrap();
        let nested_ans = certain_answers(&q, &sc.source, &sc.nested, &mut syms);
        let flat_ans = certain_answers(&q, &sc.source, &sc.flat, &mut syms);
        assert!(!nested_ans.is_empty());
        assert!(flat_ans.is_empty(), "flat mapping cannot co-group members");
    }

    #[test]
    fn cq_equivalence_on_family() {
        let mut syms = SymbolTable::new();
        // Logically inequivalent mappings that are CQ-equivalent: invented
        // values placed differently but hom-equivalently.
        let m1 = NestedMapping::parse(&mut syms, &["S(x) -> exists y R(x,y)"], &[]).unwrap();
        let m2 = NestedMapping::parse(&mut syms, &["S(x) -> exists y,z (R(x,y) & R(x,z))"], &[])
            .unwrap();
        let s = syms.rel("S");
        let family: Vec<Instance> = (0..3)
            .map(|i| {
                let a = Value::Const(syms.constant(&format!("v{i}")));
                Instance::from_facts([Fact::new(s, vec![a])])
            })
            .collect();
        assert!(cq_equivalent_on(&m1, &m2, &family, &mut syms).is_ok());
        // A genuinely different mapping is separated, with the witness.
        let m3 = NestedMapping::parse(&mut syms, &["S(x) -> R(x,x)"], &[]).unwrap();
        assert_eq!(cq_equivalent_on(&m1, &m3, &family, &mut syms), Err(0));
    }

    #[test]
    fn boolean_query() {
        let mut syms = SymbolTable::new();
        let q = ConjunctiveQuery::parse(&mut syms, "q() :- R(x,x)").unwrap();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let yes = Instance::from_facts([Fact::new(r, vec![a, a])]);
        assert_eq!(q.evaluate(&yes).len(), 1); // the empty tuple
        let no = Instance::from_facts([Fact::new(r, vec![a, Value::Null(NullId(0))])]);
        assert!(q.evaluate(&no).is_empty());
    }
}
