//! Normalization of nested tgds: equivalence-preserving syntactic
//! simplifications, each verified by construction and cross-checked with
//! IMPLIES in the test suite.
//!
//! - [`prune_unused_existentials`] — drop ∃-variables used by no head atom
//!   in scope;
//! - [`drop_vacuous_parts`] — remove parts with an empty head and no
//!   descendants with heads (the ⊤ conjuncts of the grammar);
//! - [`split_independent_conjuncts`] — split a nested tgd at the root into
//!   several tgds when its root-level conjuncts share no existential
//!   variables (the correlation-preservation boundary: conjuncts sharing
//!   an existential must stay together);
//! - [`normalize_mapping`] — the composite pass, plus IMPLIES-based
//!   redundancy removal.

use crate::error::Result;
use crate::implies::{redundant_tgds, ImpliesOptions};
use ndl_core::prelude::*;
use std::collections::BTreeSet;

/// Drops existential variables that no head atom in scope uses.
pub fn prune_unused_existentials(tgd: &NestedTgd) -> NestedTgd {
    let mut used: BTreeSet<VarId> = BTreeSet::new();
    for p in tgd.parts() {
        for a in &p.head {
            used.extend(a.args.iter().copied());
        }
    }
    let parts = tgd
        .parts()
        .iter()
        .map(|p| {
            let mut p = p.clone();
            p.existentials.retain(|v| used.contains(v));
            p
        })
        .collect();
    NestedTgd::from_parts(parts)
}

/// Removes parts whose entire subtree produces no head atoms (they assert
/// only ⊤). The root is kept even if vacuous, so the result is always a
/// well-formed nested tgd.
pub fn drop_vacuous_parts(tgd: &NestedTgd) -> NestedTgd {
    // A part is live if it or any descendant has head atoms.
    let n = tgd.num_parts();
    let mut live = vec![false; n];
    // Parts are stored with parents before children is NOT guaranteed;
    // compute by recursion instead.
    fn mark(tgd: &NestedTgd, id: PartId, live: &mut [bool]) -> bool {
        let mut l = !tgd.part(id).head.is_empty();
        for &c in tgd.children(id) {
            l |= mark(tgd, c, live);
        }
        live[id] = l;
        l
    }
    mark(tgd, tgd.root(), &mut live);
    // Rebuild the arena keeping the root and live parts.
    let mut remap = vec![usize::MAX; n];
    let mut parts: Vec<Part> = Vec::new();
    fn rebuild(
        tgd: &NestedTgd,
        id: PartId,
        parent: Option<usize>,
        live: &[bool],
        remap: &mut [usize],
        parts: &mut Vec<Part>,
    ) {
        let new_id = parts.len();
        remap[id] = new_id;
        let p = tgd.part(id);
        parts.push(Part {
            parent,
            universals: p.universals.clone(),
            body: p.body.clone(),
            existentials: p.existentials.clone(),
            head: p.head.clone(),
            children: vec![],
        });
        for &c in tgd.children(id) {
            if live[c] {
                rebuild(tgd, c, Some(new_id), live, remap, parts);
                let child_new = remap[c];
                parts[new_id].children.push(child_new);
            }
        }
    }
    rebuild(tgd, tgd.root(), None, &live, &mut remap, &mut parts);
    NestedTgd::from_parts(parts)
}

/// Splits a nested tgd at the root when root-level conjuncts (head atoms
/// and child subtrees) fall into groups sharing no existential variables.
/// Each group becomes its own tgd with the same root body; unused
/// existentials are pruned per group. Returns the original tgd when no
/// split is possible.
pub fn split_independent_conjuncts(tgd: &NestedTgd) -> Vec<NestedTgd> {
    let root = tgd.part(tgd.root());
    // Conjuncts: each head atom and each child subtree is one item; items
    // are joined when they share a root existential variable.
    let root_exts: BTreeSet<VarId> = root.existentials.iter().copied().collect();
    let mut items: Vec<(BTreeSet<VarId>, Option<usize>, Option<PartId>)> = Vec::new();
    for (i, a) in root.head.iter().enumerate() {
        let vars: BTreeSet<VarId> = a
            .args
            .iter()
            .copied()
            .filter(|v| root_exts.contains(v))
            .collect();
        items.push((vars, Some(i), None));
    }
    for &c in &root.children {
        let mut vars = BTreeSet::new();
        for pid in std::iter::once(c).chain(tgd.descendants(c)) {
            for a in &tgd.part(pid).head {
                vars.extend(a.args.iter().copied().filter(|v| root_exts.contains(v)));
            }
        }
        items.push((vars, None, Some(c)));
    }
    if items.len() <= 1 {
        return vec![tgd.clone()];
    }
    // Union-find over items via shared variables.
    let mut group: Vec<usize> = (0..items.len()).collect();
    fn find(group: &mut [usize], mut i: usize) -> usize {
        while group[i] != i {
            group[i] = group[group[i]];
            i = group[i];
        }
        i
    }
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            if !items[i].0.is_disjoint(&items[j].0) {
                let (a, b) = (find(&mut group, i), find(&mut group, j));
                group[a.max(b)] = a.min(b);
            }
        }
    }
    let roots: BTreeSet<usize> = (0..items.len()).map(|i| find(&mut group, i)).collect();
    if roots.len() <= 1 {
        return vec![tgd.clone()];
    }
    // Build one tgd per group.
    let mut out = Vec::new();
    for &g in &roots {
        let mut head = Vec::new();
        let mut child_ids = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if find(&mut group, i) != g {
                continue;
            }
            match *item {
                (_, Some(h), None) => head.push(root.head[h].clone()),
                (_, None, Some(c)) => child_ids.push(c),
                _ => unreachable!(),
            }
        }
        let mut parts = vec![Part {
            parent: None,
            universals: root.universals.clone(),
            body: root.body.clone(),
            existentials: root.existentials.clone(),
            head,
            children: vec![],
        }];
        for c in child_ids {
            let new_c = copy_subtree(tgd, c, 0, &mut parts);
            parts[0].children.push(new_c);
        }
        out.push(prune_unused_existentials(&NestedTgd::from_parts(parts)));
    }
    out
}

fn copy_subtree(tgd: &NestedTgd, id: PartId, new_parent: usize, parts: &mut Vec<Part>) -> usize {
    let new_id = parts.len();
    let p = tgd.part(id);
    parts.push(Part {
        parent: Some(new_parent),
        universals: p.universals.clone(),
        body: p.body.clone(),
        existentials: p.existentials.clone(),
        head: p.head.clone(),
        children: vec![],
    });
    for &c in tgd.children(id) {
        let nc = copy_subtree(tgd, c, new_id, parts);
        parts[new_id].children.push(nc);
    }
    new_id
}

/// The composite normalization pass over a mapping: per-tgd syntactic
/// simplifications followed by IMPLIES-based redundancy removal.
pub fn normalize_mapping(
    m: &NestedMapping,
    syms: &mut SymbolTable,
    opts: &ImpliesOptions,
) -> Result<NestedMapping> {
    let mut tgds: Vec<NestedTgd> = Vec::new();
    for t in &m.tgds {
        let t = prune_unused_existentials(t);
        let t = drop_vacuous_parts(&t);
        tgds.extend(split_independent_conjuncts(&t));
    }
    let candidate = NestedMapping::new(tgds, m.source_egds.clone())?;
    let redundant = redundant_tgds(&candidate, syms, opts)?;
    let kept: Vec<NestedTgd> = candidate
        .tgds
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !redundant.contains(i))
        .map(|(_, t)| t)
        .collect();
    Ok(NestedMapping::new(kept, m.source_egds.clone())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implies::equivalent;

    fn check_equivalent(a: &NestedMapping, b: &NestedMapping, syms: &mut SymbolTable) {
        assert!(
            equivalent(a, b, syms, &ImpliesOptions::default()).unwrap(),
            "normalization must preserve logical equivalence"
        );
    }

    #[test]
    fn prune_unused() {
        let mut syms = SymbolTable::new();
        let t = parse_nested_tgd(
            &mut syms,
            "forall x (S(x) -> exists y,z (forall w (P(w) -> R(w,y))))",
        )
        .unwrap();
        let pruned = prune_unused_existentials(&t);
        assert_eq!(pruned.part(0).existentials.len(), 1); // z dropped
        let a = NestedMapping::new(vec![t], vec![]).unwrap();
        let b = NestedMapping::new(vec![pruned], vec![]).unwrap();
        check_equivalent(&a, &b, &mut syms);
    }

    #[test]
    fn drop_vacuous() {
        let mut syms = SymbolTable::new();
        // The inner part asserts only ⊤.
        let t = parse_nested_tgd(
            &mut syms,
            "forall x (S(x) -> (R(x,x) & forall w (P(w) -> true)))",
        )
        .unwrap();
        assert_eq!(t.num_parts(), 2);
        let slim = drop_vacuous_parts(&t);
        assert_eq!(slim.num_parts(), 1);
        let a = NestedMapping::new(vec![t], vec![]).unwrap();
        let b = NestedMapping::new(vec![slim], vec![]).unwrap();
        check_equivalent(&a, &b, &mut syms);
    }

    #[test]
    fn split_when_independent() {
        let mut syms = SymbolTable::new();
        // Two root conjuncts with separate existentials: splittable.
        let t =
            parse_nested_tgd(&mut syms, "forall x (S(x) -> exists y,z (R(x,y) & T(x,z)))").unwrap();
        let split = split_independent_conjuncts(&t);
        assert_eq!(split.len(), 2);
        for s in &split {
            assert_eq!(s.part(0).existentials.len(), 1);
        }
        let a = NestedMapping::new(vec![t], vec![]).unwrap();
        let b = NestedMapping::new(split, vec![]).unwrap();
        check_equivalent(&a, &b, &mut syms);
    }

    #[test]
    fn no_split_when_correlated() {
        let mut syms = SymbolTable::new();
        // One shared existential: must stay together.
        let t =
            parse_nested_tgd(&mut syms, "forall x (S(x) -> exists y (R(x,y) & T(x,y)))").unwrap();
        assert_eq!(split_independent_conjuncts(&t).len(), 1);
        // A nested part sharing y with a root head atom: also no split.
        let t2 = parse_nested_tgd(
            &mut syms,
            "forall x (S(x) -> exists y (R(x,y) & forall w (P(w) -> T(w,y))))",
        )
        .unwrap();
        assert_eq!(split_independent_conjuncts(&t2).len(), 1);
    }

    #[test]
    fn split_detaches_uncorrelated_nested_part() {
        let mut syms = SymbolTable::new();
        // The nested part does not use y: splittable from R(x,y).
        let t = parse_nested_tgd(
            &mut syms,
            "forall x (S(x) -> exists y (R(x,y) & forall w (P(w) -> T(w,w))))",
        )
        .unwrap();
        let split = split_independent_conjuncts(&t);
        assert_eq!(split.len(), 2);
        let a = NestedMapping::new(vec![t], vec![]).unwrap();
        let b = NestedMapping::new(split, vec![]).unwrap();
        check_equivalent(&a, &b, &mut syms);
    }

    #[test]
    fn normalize_mapping_composite() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &[
                // Unused existential + vacuous part + independent conjuncts.
                "forall x (S(x) -> exists y,u (R(x,y) & T(x,x) & forall w (P(w) -> true)))",
                // Redundant: implied by the split R-part above.
                "S(x) -> exists y R(x,y)",
            ],
            &[],
        )
        .unwrap();
        let norm = normalize_mapping(&m, &mut syms, &ImpliesOptions::default()).unwrap();
        check_equivalent(&m, &norm, &mut syms);
        // R and T split; redundant tgd removed; vacuous part dropped.
        assert_eq!(norm.tgds.len(), 2);
        assert!(norm.tgds.iter().all(|t| t.num_parts() == 1));
    }
}
