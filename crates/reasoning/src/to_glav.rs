//! Deciding whether a nested GLAV mapping is logically equivalent to a
//! GLAV mapping (paper, Theorem 4.2; with source egds, Theorem 5.6) — and
//! *constructing* a verified GLAV witness when it is.
//!
//! By Theorem 4.1, M is GLAV-equivalent iff its f-block size is bounded.
//! When bounded, an equivalent GLAV mapping can be read off the chase
//! cores of canonical instances: for every pattern `p` (up to the clone
//! bound) and every f-block `B` of `core(chase(I_p, M))`, emit the s-t tgd
//! `I_p → B` (constants become universal variables, nulls existential
//! ones). The candidate set is then **verified** against M with IMPLIES in
//! both directions, so a returned witness is always correct; clone caps
//! grow until verification succeeds or the theoretical bound is reached.

use crate::canonical::{canonical_instances, legalize};
use crate::enumerate::k_patterns;
use crate::error::{ReasoningError, Result};
use crate::fblock::{clone_bound, has_bounded_fblock_size, FblockAnalysis, FblockOptions};
use crate::implies::{implies_mapping, ImpliesOptions};
use ndl_chase::{chase_nested, NullFactory, Prepared};
use ndl_core::prelude::*;
use ndl_hom::core_and_blocks;
use std::collections::BTreeMap;

/// The outcome of the GLAV-equivalence decision.
#[derive(Clone, Debug)]
pub struct GlavDecision {
    /// The boundedness analysis that drove the decision.
    pub analysis: FblockAnalysis,
    /// When equivalent: a *verified* equivalent GLAV mapping.
    pub witness: Option<NestedMapping>,
}

/// Is the nested GLAV mapping logically equivalent to some GLAV mapping?
/// Returns the boundedness analysis and, when it is, a GLAV witness that
/// has been verified equivalent via IMPLIES in both directions.
pub fn glav_equivalent(
    m: &NestedMapping,
    syms: &mut SymbolTable,
    opts: &FblockOptions,
) -> Result<GlavDecision> {
    let analysis = has_bounded_fblock_size(m, syms, opts)?;
    if !analysis.bounded {
        return Ok(GlavDecision {
            analysis,
            witness: None,
        });
    }
    let k_max = clone_bound(m, syms);
    let implies_opts = ImpliesOptions {
        pattern_budget: opts.pattern_budget,
    };
    let mut last_err = String::new();
    for cap in 1..=k_max {
        match build_candidate(m, cap, syms, opts) {
            Ok(candidate) => {
                // Verification: candidate ≡ M (relative to M's source egds).
                if implies_mapping(&candidate, m, syms, &implies_opts)?
                    && implies_mapping(m, &candidate, syms, &implies_opts)?
                {
                    return Ok(GlavDecision {
                        analysis,
                        witness: Some(candidate),
                    });
                }
                last_err = format!("candidate at clone cap {cap} failed verification");
            }
            Err(ReasoningError::PatternBudgetExceeded { budget }) => {
                last_err = format!("pattern budget {budget} exceeded at clone cap {cap}");
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Err(ReasoningError::Failed(format!(
        "mapping is f-block bounded but no GLAV witness verified up to clone bound {k_max}: {last_err}"
    )))
}

/// Builds the candidate GLAV mapping from patterns with clone cap `cap`.
fn build_candidate(
    m: &NestedMapping,
    cap: usize,
    syms: &mut SymbolTable,
    opts: &FblockOptions,
) -> Result<NestedMapping> {
    let prepared = Prepared::mapping(m, syms);
    let mut tgds: Vec<StTgd> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for tgd in &m.tgds {
        let info = SkolemInfo::for_nested(tgd, syms);
        for pattern in k_patterns(tgd, cap, opts.pattern_budget)? {
            let mut nulls = NullFactory::new();
            let pair = canonical_instances(tgd, &info, &pattern, syms, &mut nulls);
            let legal = legalize(&pair, &m.source_egds, &mut nulls);
            let mut chase_nulls = NullFactory::new();
            let chased = chase_nested(&legal.source, &prepared, &mut chase_nulls).target;
            let (_core, blocks) = core_and_blocks(&chased);
            for block in blocks {
                let st = block_to_tgd(&legal.source, &block, syms);
                let key = st.display(syms);
                if seen.insert(key) {
                    tgds.push(st);
                }
            }
        }
    }
    Ok(NestedMapping::from_st_tgds(tgds, m.source_egds.clone())?)
}

/// Turns a canonical source instance and one core f-block into the s-t tgd
/// `I → B`: constants become universal variables, nulls existential ones.
fn block_to_tgd(source: &Instance, block: &Instance, syms: &mut SymbolTable) -> StTgd {
    let mut var_of: BTreeMap<Value, VarId> = BTreeMap::new();
    let mut existentials = Vec::new();
    let mut next_u = 0usize;
    let mut next_e = 0usize;
    let mut body = Vec::new();
    for fact in source.facts() {
        let args: Vec<VarId> = fact
            .args
            .iter()
            .map(|&v| {
                *var_of.entry(v).or_insert_with(|| {
                    next_u += 1;
                    syms.fresh_var(&format!("gx{next_u}"))
                })
            })
            .collect();
        body.push(Atom::new(fact.rel, args));
    }
    let mut head = Vec::new();
    for fact in block.facts() {
        let args: Vec<VarId> = fact
            .args
            .iter()
            .map(|&v| match v {
                Value::Const(_) => *var_of
                    .get(&v)
                    .expect("core block constant not in canonical source"),
                Value::Null(_) => *var_of.entry(v).or_insert_with(|| {
                    next_e += 1;
                    let var = syms.fresh_var(&format!("gy{next_e}"));
                    existentials.push(var);
                    var
                }),
            })
            .collect();
        head.push(Atom::new(fact.rel, args));
    }
    // `existentials` collected in creation order.
    let existentials = existentials
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect::<Vec<_>>();
    StTgd::new(body, existentials, head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implies::equivalent;

    fn opts() -> FblockOptions {
        FblockOptions::default()
    }

    #[test]
    fn glav_input_yields_glav_witness() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(&mut syms, &["S(x,y) -> exists z R(x,z)"], &[]).unwrap();
        let d = glav_equivalent(&m, &mut syms, &opts()).unwrap();
        assert!(d.analysis.bounded);
        let w = d.witness.unwrap();
        assert!(w.is_glav());
        assert!(equivalent(&m, &w, &mut syms, &ImpliesOptions::default()).unwrap());
    }

    #[test]
    fn vacuously_nested_mapping_gets_unnested() {
        // Nested syntax, but equivalent to the GLAV mapping
        // S1(x1) ∧ S2(x2) → R(x2,x2).
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(x2,x2))))"],
            &[],
        )
        .unwrap();
        assert!(!m.is_glav());
        let d = glav_equivalent(&m, &mut syms, &opts()).unwrap();
        let w = d.witness.unwrap();
        assert!(w.is_glav());
        assert!(equivalent(&m, &w, &mut syms, &ImpliesOptions::default()).unwrap());
    }

    #[test]
    fn classic_nested_tgd_has_no_glav_witness() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
            &[],
        )
        .unwrap();
        let d = glav_equivalent(&m, &mut syms, &opts()).unwrap();
        assert!(!d.analysis.bounded);
        assert!(d.witness.is_none());
    }

    #[test]
    fn egds_can_restore_glav_equivalence() {
        // Unbounded without the key egd; bounded (hence GLAV-equivalent)
        // with it — the Section 5 contrast for nested tgds.
        let mut syms = SymbolTable::new();
        let tgds = &["forall z (Q(z) -> exists y (forall x1 (P1(z,x1) -> R(y,x1))))"];
        let free = NestedMapping::parse(&mut syms, tgds, &[]).unwrap();
        assert!(glav_equivalent(&free, &mut syms, &opts())
            .unwrap()
            .witness
            .is_none());
        let keyed =
            NestedMapping::parse(&mut syms, tgds, &["P1(z,w1) & P1(z,w2) -> w1 = w2"]).unwrap();
        let d = glav_equivalent(&keyed, &mut syms, &opts()).unwrap();
        assert!(d.analysis.bounded);
        let w = d.witness.unwrap();
        assert!(w.is_glav());
    }

    #[test]
    fn witness_block_tgd_shapes() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(&mut syms, &["S(x,y) -> exists z (R(x,z) & R(z,y))"], &[])
            .unwrap();
        let d = glav_equivalent(&m, &mut syms, &opts()).unwrap();
        let w = d.witness.unwrap();
        // One pattern, one block: a single tgd with a 2-atom head.
        assert_eq!(w.tgds.len(), 1);
        let st = w.to_st_tgds().unwrap().remove(0);
        assert_eq!(st.head.len(), 2);
        assert_eq!(st.existentials.len(), 1);
    }
}
