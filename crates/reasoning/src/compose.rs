//! Composition of GLAV mappings into SO tgds (Fagin, Kolaitis, Popa, Tan
//! — reference \[8\] of the paper: "SO tgds are exactly the dependencies
//! needed to specify the composition of an arbitrary number of GLAV
//! mappings"). This is the machinery that motivates the paper's interest
//! in the SO tgd ⊇ nested tgd ⊇ s-t tgd hierarchy.
//!
//! Given `M12 = (S1, S2, Σ12)` and `M23 = (S2, S3, Σ23)`, the composition
//! algorithm:
//! 1. Skolemizes Σ12 (existentials become function terms over the rule's
//!    universal variables);
//! 2. for every rule of Σ23, replaces each S2-atom of its body by the body
//!    of a (freshly renamed) Σ12 rule whose head can produce it, binding
//!    the atom's variables to the head's terms — repeated bindings become
//!    **equalities between terms**, substitution into the Σ23 rule's
//!    Skolem terms creates **nested terms**: exactly the two features
//!    separating full SO tgds from plain ones.
//!
//! The result is verified semantically in tests: `chase(I, σ13)` is
//! homomorphically equivalent to `chase(freeze(chase(I, Σ12)), Σ23)`.

use crate::error::{ReasoningError, Result};
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// One Skolemized s-t tgd of Σ12, ready for renaming.
struct SkolemRule {
    body: Vec<Atom>,
    heads: Vec<TermAtom>,
    universals: Vec<VarId>,
}

/// Composes two GLAV mappings into a single SO tgd over `(S1, S3)`.
///
/// `m12` maps S1 → S2, `m23` maps S2 → S3; the schemas must chain (every
/// relation in a Σ23 body should be producible by some Σ12 head for the
/// composition to generate clauses for it — S2-atoms with no producer
/// simply yield no clauses, which is semantically correct: those rules can
/// never fire through M12).
pub fn compose_glav(m12: &[StTgd], m23: &[StTgd], syms: &mut SymbolTable) -> Result<SoTgd> {
    let mut funcs: Vec<FuncId> = Vec::new();
    // Skolemize Σ12.
    let rules12: Vec<SkolemRule> = m12
        .iter()
        .map(|t| {
            let universals = t.universals();
            let mut term_for: BTreeMap<VarId, Term> = BTreeMap::new();
            for &y in &t.existentials {
                let f = syms.fresh_func("f");
                funcs.push(f);
                term_for.insert(
                    y,
                    Term::App(f, universals.iter().map(|&v| Term::Var(v)).collect()),
                );
            }
            let heads = t
                .head
                .iter()
                .map(|a| {
                    TermAtom::new(
                        a.rel,
                        a.args
                            .iter()
                            .map(|v| term_for.get(v).cloned().unwrap_or(Term::Var(*v)))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            SkolemRule {
                body: t.body.clone(),
                heads,
                universals,
            }
        })
        .collect();

    let mut clauses = Vec::new();
    for rule23 in m23 {
        // Skolemize this rule's existentials over its universal variables.
        let universals23 = rule23.universals();
        let mut term23: BTreeMap<VarId, Term> = BTreeMap::new();
        for &z in &rule23.existentials {
            let g = syms.fresh_func("g");
            funcs.push(g);
            term23.insert(
                z,
                Term::App(g, universals23.iter().map(|&v| Term::Var(v)).collect()),
            );
        }
        // For each S2-body atom, the candidate (rule, head-atom) producers.
        let producers: Vec<Vec<(usize, usize)>> = rule23
            .body
            .iter()
            .map(|atom| {
                rules12
                    .iter()
                    .enumerate()
                    .flat_map(|(ri, r)| {
                        r.heads
                            .iter()
                            .enumerate()
                            .filter(|(_, h)| h.rel == atom.rel)
                            .map(move |(hi, _)| (ri, hi))
                    })
                    .collect()
            })
            .collect();
        if producers.iter().any(Vec::is_empty) {
            // Some S2-atom can never be produced through M12: this Σ23
            // rule contributes no clauses.
            continue;
        }
        // Cartesian product over producer choices.
        let mut choice = vec![0usize; producers.len()];
        loop {
            clauses.push(build_clause(
                rule23, &rules12, &producers, &choice, &term23, syms,
            )?);
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    break;
                }
                choice[i] += 1;
                if choice[i] < producers[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
            if i == choice.len() {
                break;
            }
        }
    }
    Ok(SoTgd::new(funcs, clauses))
}

/// Builds one composed clause for a fixed producer choice.
fn build_clause(
    rule23: &StTgd,
    rules12: &[SkolemRule],
    producers: &[Vec<(usize, usize)>],
    choice: &[usize],
    term23: &BTreeMap<VarId, Term>,
    syms: &mut SymbolTable,
) -> Result<SoClause> {
    let mut body: Vec<Atom> = Vec::new();
    let mut equalities: Vec<(Term, Term)> = Vec::new();
    // Binding of the Σ23 rule's universal variables to terms over the
    // (renamed) Σ12 variables.
    let mut theta: BTreeMap<VarId, Term> = BTreeMap::new();
    for (atom_idx, atom) in rule23.body.iter().enumerate() {
        let (ri, hi) = producers[atom_idx][choice[atom_idx]];
        let rule = &rules12[ri];
        // Fresh renaming of the producing rule's universal variables, one
        // per atom instance.
        let renaming: BTreeMap<VarId, VarId> = rule
            .universals
            .iter()
            .map(|&v| (v, syms.fresh_var(&format!("c_{}", syms_var_name(syms, v)))))
            .collect();
        let rename_term = |t: &Term| rename(t, &renaming);
        for b in &rule.body {
            body.push(Atom::new(
                b.rel,
                b.args.iter().map(|v| renaming[v]).collect::<Vec<_>>(),
            ));
        }
        let head = &rule.heads[hi];
        for (pos, &var) in atom.args.iter().enumerate() {
            let produced = rename_term(&head.args[pos]);
            match theta.get(&var) {
                None => {
                    theta.insert(var, produced);
                }
                Some(existing) => {
                    if *existing != produced {
                        equalities.push((existing.clone(), produced));
                    }
                }
            }
        }
    }
    // Every universal of the Σ23 rule occurs in its body, so θ is total.
    for &v in &rule23.universals() {
        if !theta.contains_key(&v) {
            return Err(ReasoningError::Failed(format!(
                "composition left variable {v:?} unbound"
            )));
        }
    }
    // Substitute θ into the Σ23 head (through the rule's own Skolem terms
    // — this is where nested terms appear).
    let head = rule23
        .head
        .iter()
        .map(|a| {
            TermAtom::new(
                a.rel,
                a.args
                    .iter()
                    .map(|v| {
                        let base = term23.get(v).cloned().unwrap_or(Term::Var(*v));
                        substitute(&base, &theta)
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect::<Vec<_>>();
    Ok(SoClause::new(body, equalities, head))
}

fn syms_var_name(syms: &SymbolTable, v: VarId) -> String {
    syms.var_name(v).to_string()
}

fn rename(t: &Term, renaming: &BTreeMap<VarId, VarId>) -> Term {
    match t {
        Term::Var(v) => Term::Var(renaming[v]),
        Term::App(f, args) => Term::App(*f, args.iter().map(|a| rename(a, renaming)).collect()),
    }
}

fn substitute(t: &Term, theta: &BTreeMap<VarId, Term>) -> Term {
    match t {
        Term::Var(v) => theta.get(v).cloned().unwrap_or(Term::Var(*v)),
        Term::App(f, args) => Term::App(*f, args.iter().map(|a| substitute(a, theta)).collect()),
    }
}

/// The two-step composition chase: `chase(I, Σ12)` is frozen (its nulls
/// become fresh constants), chased with Σ23 in a **disjoint null space**,
/// and unfrozen — the canonical universal solution of `M12 ∘ M23` for `I`.
/// Keeping the second chase's null ids disjoint from the first's matters:
/// unfreezing reintroduces first-stage nulls next to second-stage ones.
pub fn two_step_chase(
    source: &Instance,
    m12: &[StTgd],
    m23: &[StTgd],
    syms: &mut SymbolTable,
) -> Instance {
    let mut n1 = ndl_chase::NullFactory::new();
    let mid = ndl_chase::chase_st(source, m12, syms, &mut n1);
    let (frozen, inverse) = freeze(&mid, syms);
    let mut n2 = ndl_chase::NullFactory::starting_at(n1.next_id());
    let far = ndl_chase::chase_st(&frozen, m23, syms, &mut n2);
    unfreeze(&far, &inverse)
}

/// Freezes an instance: nulls become fresh constants (for chasing an
/// intermediate instance as a source), returning the inverse map.
pub fn freeze(inst: &Instance, syms: &mut SymbolTable) -> (Instance, BTreeMap<ConstId, NullId>) {
    let mut inverse = BTreeMap::new();
    let mut forward: BTreeMap<NullId, ConstId> = BTreeMap::new();
    for n in inst.nulls() {
        let c = syms.fresh_const(&format!("frz{}", n.0));
        forward.insert(n, c);
        inverse.insert(c, n);
    }
    let frozen = inst.map_values(&|v| match v {
        Value::Null(n) => Value::Const(forward[&n]),
        c => c,
    });
    (frozen, inverse)
}

/// Undoes [`freeze`] on a (target) instance: frozen constants become their
/// original nulls again.
pub fn unfreeze(inst: &Instance, inverse: &BTreeMap<ConstId, NullId>) -> Instance {
    inst.map_values(&|v| match v {
        Value::Const(c) => inverse
            .get(&c)
            .map(|&n| Value::Null(n))
            .unwrap_or(Value::Const(c)),
        n => n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndl_chase::{chase_so, NullFactory};
    use ndl_hom::hom_equivalent;

    /// Semantic check: chase(I, σ13) ↔ the two-step composition chase.
    fn verify_composition(
        m12: &[StTgd],
        m23: &[StTgd],
        sigma13: &SoTgd,
        source: &Instance,
        syms: &mut SymbolTable,
    ) -> bool {
        let mut n1 = NullFactory::new();
        let direct = chase_so(source, sigma13, &mut n1);
        let two_step = two_step_chase(source, m12, m23, syms);
        hom_equivalent(&direct, &two_step)
    }

    /// The classic example from \[8\]: Emp ↦ Mgr via an invented manager,
    /// then Mgr ↦ Reports. Composition needs a function symbol.
    #[test]
    fn employee_manager_composition() {
        let mut syms = SymbolTable::new();
        let m12 = vec![parse_st_tgd(&mut syms, "Emp(e) -> exists m Mgr(e,m)").unwrap()];
        let m23 = vec![parse_st_tgd(&mut syms, "Mgr(e,m) -> Reports(e,m)").unwrap()];
        let sigma13 = compose_glav(&m12, &m23, &mut syms).unwrap();
        assert!(sigma13.is_plain());
        assert_eq!(sigma13.clauses.len(), 1);
        let emp = syms.rel("Emp");
        let a = Value::Const(syms.constant("alice"));
        let b = Value::Const(syms.constant("bob"));
        let source = Instance::from_facts([Fact::new(emp, vec![a]), Fact::new(emp, vec![b])]);
        assert!(verify_composition(&m12, &m23, &sigma13, &source, &mut syms));
    }

    /// Composition creating a NESTED term: the second mapping invents over
    /// an invented value.
    #[test]
    fn nested_terms_arise() {
        let mut syms = SymbolTable::new();
        let m12 = vec![parse_st_tgd(&mut syms, "P(x) -> exists u Q(x,u)").unwrap()];
        let m23 = vec![parse_st_tgd(&mut syms, "Q(x,u) -> exists w T(u,w)").unwrap()];
        let sigma13 = compose_glav(&m12, &m23, &mut syms).unwrap();
        // T(f(x), g(x, f(x))): the g-term nests the f-term.
        assert!(!sigma13.is_plain());
        assert!(sigma13.clauses[0].head[0].has_nested_term());
        let p = syms.rel("P");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(p, vec![a])]);
        assert!(verify_composition(&m12, &m23, &sigma13, &source, &mut syms));
    }

    /// Composition creating an EQUALITY: a Σ23 body variable matched
    /// against two different produced terms.
    #[test]
    fn equalities_arise() {
        let mut syms = SymbolTable::new();
        let m12 = vec![
            parse_st_tgd(&mut syms, "P(x) -> exists u Q(x,u)").unwrap(),
            parse_st_tgd(&mut syms, "P2(x) -> Q(x,x)").unwrap(),
        ];
        // u appears twice: once per Q-atom; different producers force t = t'.
        let m23 = vec![parse_st_tgd(&mut syms, "Q(x,u) & Q(y,u) -> T(x,y)").unwrap()];
        let sigma13 = compose_glav(&m12, &m23, &mut syms).unwrap();
        // 2 producers per atom -> 4 clauses; the mixed ones carry equalities.
        assert_eq!(sigma13.clauses.len(), 4);
        assert!(sigma13.clauses.iter().any(|c| !c.equalities.is_empty()));
        assert!(!sigma13.is_plain());
        let p = syms.rel("P");
        let p2 = syms.rel("P2");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([
            Fact::new(p, vec![a]),
            Fact::new(p2, vec![a]),
            Fact::new(p2, vec![b]),
        ]);
        assert!(verify_composition(&m12, &m23, &sigma13, &source, &mut syms));
    }

    /// Unproducible S2-atoms silence their Σ23 rules.
    #[test]
    fn unproducible_atoms_contribute_nothing() {
        let mut syms = SymbolTable::new();
        let m12 = vec![parse_st_tgd(&mut syms, "P(x) -> Q(x)").unwrap()];
        let m23 = vec![
            parse_st_tgd(&mut syms, "Q(x) -> T(x)").unwrap(),
            parse_st_tgd(&mut syms, "Unreachable(x) -> T2(x)").unwrap(),
        ];
        let sigma13 = compose_glav(&m12, &m23, &mut syms).unwrap();
        assert_eq!(sigma13.clauses.len(), 1);
    }

    /// Multi-atom Σ23 bodies take the cartesian product of producers and
    /// remain semantically correct on random inputs.
    #[test]
    fn multi_atom_bodies() {
        let mut syms = SymbolTable::new();
        let m12 = vec![parse_st_tgd(&mut syms, "A(x,y) -> exists u (Q(x,u) & Q(u,y))").unwrap()];
        let m23 = vec![parse_st_tgd(&mut syms, "Q(x,y) & Q(y,z) -> T(x,z)").unwrap()];
        let sigma13 = compose_glav(&m12, &m23, &mut syms).unwrap();
        assert_eq!(sigma13.clauses.len(), 4);
        let a_rel = syms.rel("A");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let source =
            Instance::from_facts([Fact::new(a_rel, vec![a, b]), Fact::new(a_rel, vec![b, c])]);
        assert!(verify_composition(&m12, &m23, &sigma13, &source, &mut syms));
    }

    #[test]
    fn freeze_round_trip() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let inst = Instance::from_facts([
            Fact::new(r, vec![a, Value::Null(NullId(0))]),
            Fact::new(r, vec![Value::Null(NullId(0)), Value::Null(NullId(1))]),
        ]);
        let (frozen, inverse) = freeze(&inst, &mut syms);
        assert!(frozen.is_ground());
        assert_eq!(unfreeze(&frozen, &inverse), inst);
    }
}
