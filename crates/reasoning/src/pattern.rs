//! Patterns of chase trees (paper, Definition 3.2) and subtree cloning
//! (Definition 3.3).
//!
//! A pattern of a nested tgd σ is a tree whose nodes are labeled by part
//! ids such that the parent-child relationship of nodes coincides with the
//! nesting of the labeling parts. The pattern of a chase tree forgets the
//! variable assignments of its triggerings and keeps only the part labels.

use ndl_chase::{ChaseForest, TrigId};
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// A node of a [`Pattern`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternNode {
    /// The part labeling this node.
    pub part: PartId,
    /// Parent node (None for the root).
    pub parent: Option<usize>,
    /// Child nodes.
    pub children: Vec<usize>,
}

/// A pattern: a tree of part labels. Node 0 is the root.
#[derive(Clone, Debug)]
pub struct Pattern {
    nodes: Vec<PatternNode>,
}

impl Pattern {
    /// The single-node pattern for the root part of a tgd.
    pub fn root_only(root_part: PartId) -> Pattern {
        Pattern {
            nodes: vec![PatternNode {
                part: root_part,
                parent: None,
                children: vec![],
            }],
        }
    }

    /// The nodes.
    pub fn nodes(&self) -> &[PatternNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the pattern empty? (Never true for a constructed pattern.)
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a child labeled `part` under `parent`, returning its index.
    pub fn add_child(&mut self, parent: usize, part: PartId) -> usize {
        let id = self.nodes.len();
        self.nodes.push(PatternNode {
            part,
            parent: Some(parent),
            children: vec![],
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// The node ids of the subtree rooted at `node` (pre-order, includes
    /// `node`). Subtrees are always closed under the child relation
    /// (Definition 3.3).
    pub fn subtree(&self, node: usize) -> Vec<usize> {
        let mut out = vec![node];
        let mut stack: Vec<usize> = self.nodes[node].children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.nodes[n].children.iter().rev());
        }
        out
    }

    /// Appends a clone of the subtree rooted at `node` as a new sibling
    /// (Definition 3.3: "cloning"). Returns the root of the clone.
    ///
    /// # Panics
    /// Panics if `node` is the root (the root has no siblings).
    pub fn clone_subtree(&mut self, node: usize) -> usize {
        let parent = self.nodes[node]
            .parent
            .expect("cannot clone the root of a pattern");
        self.copy_subtree(node, parent)
    }

    fn copy_subtree(&mut self, node: usize, new_parent: usize) -> usize {
        let new_id = self.add_child(new_parent, self.nodes[node].part);
        let children = self.nodes[node].children.clone();
        for c in children {
            self.copy_subtree(c, new_id);
        }
        new_id
    }

    /// The pattern of a chase tree (Definition 3.2): forget assignments,
    /// keep part labels.
    pub fn of_chase_tree(forest: &ChaseForest, root: TrigId) -> Pattern {
        fn rec(forest: &ChaseForest, trig: TrigId, pattern: &mut Pattern, at: usize) {
            for &c in &forest.nodes[trig].children {
                let child_at = pattern.add_child(at, forest.nodes[c].part);
                rec(forest, c, pattern, child_at);
            }
        }
        let mut pattern = Pattern::root_only(forest.nodes[root].part);
        rec(forest, root, &mut pattern, 0);
        pattern
    }

    /// Checks that the pattern's parent-child relationships coincide with
    /// the nesting of parts in `tgd`, and that the root is labeled by the
    /// tgd's top-level part.
    pub fn is_valid_for(&self, tgd: &NestedTgd) -> bool {
        if self.nodes.is_empty() || self.nodes[0].part != tgd.root() {
            return false;
        }
        self.nodes.iter().enumerate().all(|(i, n)| {
            n.children.iter().all(|&c| {
                self.nodes[c].parent == Some(i) && tgd.parent(self.nodes[c].part) == Some(n.part)
            })
        })
    }

    /// Canonical encoding of the subtree at `node`, modulo sibling order:
    /// the part id followed by the *sorted* encodings of the children.
    fn encode_subtree(&self, node: usize, out: &mut Vec<u8>) {
        out.push(b'(');
        out.extend_from_slice(&(self.nodes[node].part as u32).to_be_bytes());
        let mut kids: Vec<Vec<u8>> = self.nodes[node]
            .children
            .iter()
            .map(|&c| {
                let mut buf = Vec::new();
                self.encode_subtree(c, &mut buf);
                buf
            })
            .collect();
        kids.sort();
        for k in kids {
            out.extend_from_slice(&k);
        }
        out.push(b')');
    }

    /// Canonical encoding for equality/hash modulo sibling order.
    pub fn canonical_key(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if !self.nodes.is_empty() {
            self.encode_subtree(0, &mut out);
        }
        out
    }

    /// The maximum number of pairwise-isomorphic sibling subtrees — the
    /// smallest `k` such that this is a k-pattern (Definition 3.3).
    pub fn max_clone_multiplicity(&self) -> usize {
        let mut best = 0;
        for node in 0..self.nodes.len() {
            let mut counts: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
            for &c in &self.nodes[node].children {
                let mut buf = Vec::new();
                self.encode_subtree(c, &mut buf);
                *counts.entry(buf).or_insert(0) += 1;
            }
            best = best.max(counts.values().copied().max().unwrap_or(0));
        }
        best.max(usize::from(!self.nodes.is_empty()))
    }

    /// Renders the pattern as nested part labels, e.g. `σ1(σ2 σ3(σ4))`.
    pub fn display(&self) -> String {
        fn rec(p: &Pattern, node: usize, out: &mut String) {
            out.push_str(&format!("s{}", p.nodes[node].part + 1));
            if !p.nodes[node].children.is_empty() {
                out.push('(');
                for (i, &c) in p.nodes[node].children.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    rec(p, c, out);
                }
                out.push(')');
            }
        }
        let mut s = String::new();
        if !self.nodes.is_empty() {
            rec(self, 0, &mut s);
        }
        s
    }
}

impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_key() == other.canonical_key()
    }
}

impl Eq for Pattern {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pattern p8 of Figure 1: σ1(σ2, σ3(σ4)).
    fn p8() -> Pattern {
        let mut p = Pattern::root_only(0);
        p.add_child(0, 1);
        let s3 = p.add_child(0, 2);
        p.add_child(s3, 3);
        p
    }

    fn running_tgd(syms: &mut SymbolTable) -> NestedTgd {
        parse_nested_tgd(
            syms,
            "forall x1 (S1(x1) -> exists y1 (\
               forall x2 (S2(x2) -> R2(y1,x2)) & \
               forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
                 forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
        )
        .unwrap()
    }

    #[test]
    fn subtree_and_clone() {
        let mut p = p8();
        assert_eq!(p.len(), 4);
        assert_eq!(p.subtree(2), vec![2, 3]); // σ3 with σ4 below
        let clone_root = p.clone_subtree(2);
        assert_eq!(p.len(), 6);
        assert_eq!(p.nodes()[clone_root].part, 2);
        assert_eq!(p.nodes()[clone_root].children.len(), 1);
        assert_eq!(p.max_clone_multiplicity(), 2);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn cloning_root_panics() {
        let mut p = p8();
        p.clone_subtree(0);
    }

    #[test]
    fn validity_against_tgd() {
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        assert!(p8().is_valid_for(&tgd));
        // σ4 directly under σ1 is invalid.
        let mut bad = Pattern::root_only(0);
        bad.add_child(0, 3);
        assert!(!bad.is_valid_for(&tgd));
        // Root labeled by a nested part is invalid.
        let wrong_root = Pattern::root_only(1);
        assert!(!wrong_root.is_valid_for(&tgd));
    }

    #[test]
    fn canonical_key_ignores_sibling_order() {
        let mut a = Pattern::root_only(0);
        a.add_child(0, 1);
        a.add_child(0, 2);
        let mut b = Pattern::root_only(0);
        b.add_child(0, 2);
        b.add_child(0, 1);
        assert_eq!(a, b);
        let mut c = Pattern::root_only(0);
        c.add_child(0, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn pattern_of_chase_tree() {
        use ndl_chase::{chase_nested, NullFactory, Prepared};
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        let prep = Prepared::new(tgd.clone(), &mut syms);
        let s1 = syms.rel("S1");
        let s3 = syms.rel("S3");
        let s4 = syms.rel("S4");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        let source = Instance::from_facts([
            Fact::new(s1, vec![a]),
            Fact::new(s3, vec![a, b]),
            Fact::new(s4, vec![b, c]),
        ]);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &[prep], &mut nulls);
        assert_eq!(res.forest.roots.len(), 1);
        let p = Pattern::of_chase_tree(&res.forest, res.forest.roots[0]);
        assert!(p.is_valid_for(&tgd));
        // Chase tree: σ1 -> σ3 -> σ4 (no S2 facts).
        let mut expect = Pattern::root_only(0);
        let s3n = expect.add_child(0, 2);
        expect.add_child(s3n, 3);
        assert_eq!(p, expect);
    }

    #[test]
    fn multiplicity_counts_isomorphic_siblings_only() {
        let mut p = Pattern::root_only(0);
        p.add_child(0, 1);
        let c2 = p.add_child(0, 2);
        p.add_child(c2, 3);
        let c2b = p.add_child(0, 2); // second σ2-subtree WITHOUT the σ4 child
        let _ = c2b;
        // The two σ2-labeled subtrees are not isomorphic (one has a child).
        assert_eq!(p.max_clone_multiplicity(), 1);
        p.add_child(0, 1); // now two identical σ2 leaves... (part 1 leaves)
        assert_eq!(p.max_clone_multiplicity(), 2);
    }

    #[test]
    fn display_shape() {
        assert_eq!(p8().display(), "s1(s2 s3(s4))");
    }
}
