//! Telling apart plain SO tgds from nested GLAV mappings (paper,
//! Section 4.2).
//!
//! Two structural facts about nested GLAV mappings power the separation:
//!
//! - **Theorem 4.12**: on any class of source instances, a nested GLAV
//!   mapping has bounded f-block size iff it has bounded f-degree. A
//!   mapping whose core f-blocks grow while the f-degree stays bounded
//!   (Proposition 4.13) cannot be equivalent to any nested GLAV mapping.
//! - **Theorem 4.16**: every nested GLAV mapping has bounded path length
//!   (longest simple path in the Gaifman graph of nulls of the core).
//!   Growing path lengths rule out nested-GLAV-equivalence even when the
//!   fact graph is uninformative (Example 4.14's cliques).
//!
//! The sweeps below evaluate these measures on a family of source
//! instances and report the evidence. A sweep is a *sufficient-condition
//! check over a finite family*: a `Some(verdict)` is backed by a theorem
//! applied to the observed growth trend; `None` means the family showed no
//! separation (it never *proves* nested-expressibility).

use ndl_chase::{chase_mapping, chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_hom::{core_of, f_block_size, f_degree, null_path_length, DEFAULT_NODE_LIMIT};

/// Structural measures of `core(chase(I, M))` for one source instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// Number of facts of the source instance.
    pub source_size: usize,
    /// f-block size of the core.
    pub fblock_size: usize,
    /// f-degree of the core.
    pub fdegree: usize,
    /// Path length of the core's null graph (None if the exact search was
    /// skipped because the graph exceeded the node limit).
    pub path_length: Option<usize>,
}

/// Why a mapping cannot be logically equivalent to a nested GLAV mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NotNestedReason {
    /// The core f-block size grows along the family while the f-degree
    /// stays bounded — impossible for nested GLAV mappings
    /// (Theorem 4.12 / Proposition 4.13).
    FdegreeGap,
    /// The path length of the null graph grows along the family —
    /// nested GLAV mappings have bounded path length (Theorem 4.16).
    UnboundedPathLength,
}

/// The result of a separation sweep.
#[derive(Clone, Debug)]
pub struct SeparationReport {
    /// Per-instance measures, in input order.
    pub points: Vec<SweepPoint>,
    /// Separation evidence, if the sweep exhibited any.
    pub verdict: Option<NotNestedReason>,
}

impl SeparationReport {
    fn from_points(points: Vec<SweepPoint>) -> SeparationReport {
        let verdict = diagnose(&points);
        SeparationReport { points, verdict }
    }
}

/// Sweeps a plain (or full) SO tgd over a family of source instances.
pub fn sweep_so(tgd: &SoTgd, sources: &[Instance]) -> SeparationReport {
    let points = sources
        .iter()
        .map(|src| {
            let mut nulls = NullFactory::new();
            let core = core_of(&chase_so(src, tgd, &mut nulls));
            measure(src, &core)
        })
        .collect();
    SeparationReport::from_points(points)
}

/// Sweeps a nested GLAV mapping over a family of source instances
/// (useful for side-by-side comparison; by Theorems 4.12/4.16 its reports
/// can never exhibit [`NotNestedReason`] evidence asymptotically).
pub fn sweep_nested(
    m: &NestedMapping,
    sources: &[Instance],
    syms: &mut SymbolTable,
) -> SeparationReport {
    let points = sources
        .iter()
        .map(|src| {
            let (res, _) = chase_mapping(src, m, syms);
            let core = core_of(&res.target);
            measure(src, &core)
        })
        .collect();
    SeparationReport::from_points(points)
}

fn measure(source: &Instance, core: &Instance) -> SweepPoint {
    SweepPoint {
        source_size: source.len(),
        fblock_size: f_block_size(core),
        fdegree: f_degree(core),
        path_length: null_path_length(core, DEFAULT_NODE_LIMIT),
    }
}

/// Diagnoses growth trends: requires at least 3 points and strict growth
/// across the last three to call a measure "growing", and an unchanged
/// final value to call it "bounded".
fn diagnose(points: &[SweepPoint]) -> Option<NotNestedReason> {
    if points.len() < 3 {
        return None;
    }
    let last3 = &points[points.len() - 3..];
    let growing = |f: &dyn Fn(&SweepPoint) -> usize| {
        f(&last3[0]) < f(&last3[1]) && f(&last3[1]) < f(&last3[2])
    };
    let fblock_growing = growing(&|p| p.fblock_size);
    let fdegree_flat = last3[0].fdegree == last3[2].fdegree;
    let path_growing =
        last3.iter().all(|p| p.path_length.is_some()) && growing(&|p| p.path_length.unwrap());
    if fblock_growing && fdegree_flat {
        return Some(NotNestedReason::FdegreeGap);
    }
    if path_growing {
        return Some(NotNestedReason::UnboundedPathLength);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Successor relation S(1,2), ..., S(n-1,n).
    fn successor(syms: &mut SymbolTable, n: usize) -> Instance {
        let s = syms.rel("S");
        let mut inst = Instance::new();
        for i in 1..n {
            let a = Value::Const(syms.constant(&format!("c{i}")));
            let b = Value::Const(syms.constant(&format!("c{}", i + 1)));
            inst.insert(Fact::new(s, vec![a, b]));
        }
        inst
    }

    /// Proposition 4.13: τ = S(x,y) → R(f(x),f(y)) on successor relations
    /// has unbounded f-block size but f-degree 2.
    #[test]
    fn prop_413_fdegree_gap() {
        let mut syms = SymbolTable::new();
        let tau = parse_so_tgd(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))").unwrap();
        let family: Vec<Instance> = [4, 6, 8, 10]
            .iter()
            .map(|&n| successor(&mut syms, n))
            .collect();
        let report = sweep_so(&tau, &family);
        assert_eq!(report.verdict, Some(NotNestedReason::FdegreeGap));
        for w in report.points.windows(2) {
            assert!(w[1].fblock_size > w[0].fblock_size);
        }
        assert!(report.points.iter().all(|p| p.fdegree == 2));
    }

    /// Example 4.14: σ = S(x,y) ∧ Q(z) → R(f(z,x),f(z,y),g(z)) on
    /// successor × singleton sources: f-blocks are cliques (f-degree grows
    /// with the block), but the null graph has growing simple paths.
    #[test]
    fn example_414_path_length_gap() {
        let mut syms = SymbolTable::new();
        let sigma = parse_so_tgd(
            &mut syms,
            "exists f,g . S(x,y) & Q(z) -> R(f(z,x),f(z,y),g(z))",
        )
        .unwrap();
        let q = syms.rel("Q");
        let o = Value::Const(syms.constant("o"));
        let family: Vec<Instance> = [4, 6, 8]
            .iter()
            .map(|&n| {
                let mut inst = successor(&mut syms, n);
                inst.insert(Fact::new(q, vec![o]));
                inst
            })
            .collect();
        let report = sweep_so(&sigma, &family);
        assert_eq!(report.verdict, Some(NotNestedReason::UnboundedPathLength));
        // And indeed the f-degree gap test is inconclusive here: every
        // f-block is a clique so the degree grows with the block size.
        for w in report.points.windows(2) {
            assert!(w[1].fdegree > w[0].fdegree);
        }
    }

    /// Example 4.15: σ' = S(x,y) ∧ Q(z) → R(f(z,x,y),g(z),x) is equivalent
    /// to a nested tgd — the sweep must stay inconclusive.
    #[test]
    fn example_415_no_separation() {
        let mut syms = SymbolTable::new();
        let sigma = parse_so_tgd(
            &mut syms,
            "exists f,g . S(x,y) & Q(z) -> R(f(z,x,y),g(z),x)",
        )
        .unwrap();
        let q = syms.rel("Q");
        let o = Value::Const(syms.constant("o"));
        let family: Vec<Instance> = [4, 6, 8]
            .iter()
            .map(|&n| {
                let mut inst = successor(&mut syms, n);
                inst.insert(Fact::new(q, vec![o]));
                inst
            })
            .collect();
        let report = sweep_so(&sigma, &family);
        assert_eq!(report.verdict, None);
        // The f-blocks grow (the g(z) null spans everything)...
        assert!(report.points[2].fblock_size > report.points[0].fblock_size);
        // ...and so does the f-degree, in lockstep — consistent with
        // Theorem 4.12 for a nested-expressible mapping.
        assert!(report.points[2].fdegree > report.points[0].fdegree);
    }

    /// A nested GLAV mapping sweep never separates (sanity check of
    /// Theorems 4.12/4.16 on the implementation).
    #[test]
    fn nested_sweep_is_inconclusive() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
            &[],
        )
        .unwrap();
        let family: Vec<Instance> = [3, 5, 7].iter().map(|&n| successor(&mut syms, n)).collect();
        let report = sweep_nested(&m, &family, &mut syms);
        assert_eq!(report.verdict, None);
    }

    #[test]
    fn short_sweeps_are_never_conclusive() {
        let mut syms = SymbolTable::new();
        let tau = parse_so_tgd(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))").unwrap();
        let family: Vec<Instance> = [4, 8].iter().map(|&n| successor(&mut syms, n)).collect();
        assert_eq!(sweep_so(&tau, &family).verdict, None);
    }
}
