//! The decision procedure **IMPLIES** for the implication problem of
//! nested tgds (paper, Theorem 3.1), and its extension to source egds
//! (Theorem 5.7).
//!
//! `IMPLIES(Σ, σ)`:
//! 1. Skolemize σ; let `v` be the number of distinct Skolem functions
//!    occurring in σ and `w` the maximum number of universally quantified
//!    variables in a tgd of Σ.
//! 2. Let `k = v·w + 1`.
//! 3. For every k-pattern `p` of σ, build the (legal) canonical instances
//!    `I_p`, `J_p` and test whether a homomorphism `J_p → chase(I_p, Σ)`
//!    exists; answer *false* on the first failure, *true* otherwise.
//!
//! Correctness rests on (i) closure of nested tgds under target
//! homomorphisms plus universality of the chase — `Σ ⊨ σ` iff
//! `chase(I, σ) → chase(I, Σ)` for every `I` — and (ii) the pigeonhole
//! argument bounding the number of clones of a pattern subtree that can
//! matter (see the proof idea of Theorem 3.1).

use crate::canonical::{canonical_instances, legalize, CanonicalPair};
use crate::enumerate::{k_patterns, DEFAULT_PATTERN_BUDGET};
use crate::error::Result;
use crate::pattern::Pattern;
use ndl_chase::{chase_nested, NullFactory, Prepared};
use ndl_core::prelude::*;
use ndl_hom::{find_homomorphism_into_observed, HomMap};
use ndl_obs::{HomObserver, NoopObserver};

/// Options for the IMPLIES procedure.
#[derive(Clone, Copy, Debug)]
pub struct ImpliesOptions {
    /// Budget on k-pattern enumeration (the pattern count is non-elementary
    /// in the nesting depth of σ).
    pub pattern_budget: usize,
}

impl Default for ImpliesOptions {
    fn default() -> Self {
        ImpliesOptions {
            pattern_budget: DEFAULT_PATTERN_BUDGET,
        }
    }
}

/// A failed pattern check: the witness that `Σ ⊭ σ`.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The k-pattern whose canonical instances witnessed the failure.
    pub pattern: Pattern,
    /// The (legal) canonical source instance `I_p`.
    pub source: Instance,
    /// The (legal) canonical target instance `J_p` — no homomorphism from
    /// it into `chased` exists.
    pub target: Instance,
    /// `chase(I_p, Σ)`.
    pub chased: Instance,
}

/// The outcome of one IMPLIES run, including the quantities of lines 2–4
/// of the procedure (used by the Figure 4 / Example 3.10 regenerator).
#[derive(Clone, Debug)]
pub struct ImpliesReport {
    /// Does `Σ ⊨ σ` hold?
    pub holds: bool,
    /// `v`: distinct Skolem functions occurring in the Skolemized σ.
    pub v: usize,
    /// `w`: maximum number of universal variables in a tgd of Σ.
    pub w: usize,
    /// `k = v·w + 1`.
    pub k: usize,
    /// Number of k-patterns checked (all of `P_k(σ)` when `holds`).
    pub patterns_checked: usize,
    /// The failing pattern and instances, when `holds` is false.
    pub counterexample: Option<Counterexample>,
}

/// Runs `IMPLIES(Σ, σ)` where Σ is `premise` (its source egds, if any, put
/// us in the Section 5 setting: implication over sources satisfying them).
pub fn implies_tgd(
    premise: &NestedMapping,
    conclusion: &NestedTgd,
    syms: &mut SymbolTable,
    opts: &ImpliesOptions,
) -> Result<ImpliesReport> {
    implies_tgd_observed(premise, conclusion, syms, opts, &NoopObserver)
}

/// [`implies_tgd`] reporting its homomorphism searches to a
/// [`HomObserver`] (the per-pattern `J_p → chase(I_p, Σ)` checks dominate
/// the procedure's cost). With [`ndl_obs::NoopObserver`] this compiles to
/// the uninstrumented procedure.
pub fn implies_tgd_observed<O: HomObserver>(
    premise: &NestedMapping,
    conclusion: &NestedTgd,
    syms: &mut SymbolTable,
    opts: &ImpliesOptions,
    obs: &O,
) -> Result<ImpliesReport> {
    let info = SkolemInfo::for_nested(conclusion, syms);
    let skolemized = skolemize_with(conclusion, &info);
    let v = skolemized.occurring_funcs().len();
    let w = premise
        .tgds
        .iter()
        .map(NestedTgd::num_universals)
        .max()
        .unwrap_or(0);
    let k = (v * w + 1).max(1);
    let patterns = k_patterns(conclusion, k, opts.pattern_budget)?;
    let prepared = Prepared::mapping(premise, syms);
    let mut checked = 0usize;
    for pattern in &patterns {
        checked += 1;
        let mut nulls = NullFactory::new();
        let pair = canonical_instances(conclusion, &info, pattern, syms, &mut nulls);
        let CanonicalPair { source, target } = legalize(&pair, &premise.source_egds, &mut nulls);
        if target.is_empty() {
            continue;
        }
        let mut chase_nulls = NullFactory::new();
        let chased = chase_nested(&source, &prepared, &mut chase_nulls).target;
        // Subinstance fast path: the identity is a homomorphism, so the
        // backtracking search only runs on genuine candidates.
        let maps = target.is_subinstance_of(&chased) || {
            let index = TupleIndex::from_instance(&chased);
            find_homomorphism_into_observed(&target, &index, &HomMap::new(), &|_, _| false, obs)
                .is_some()
        };
        if !maps {
            return Ok(ImpliesReport {
                holds: false,
                v,
                w,
                k,
                patterns_checked: checked,
                counterexample: Some(Counterexample {
                    pattern: pattern.clone(),
                    source,
                    target,
                    chased,
                }),
            });
        }
    }
    Ok(ImpliesReport {
        holds: true,
        v,
        w,
        k,
        patterns_checked: checked,
        counterexample: None,
    })
}

/// `Σ ⊨ Σ'`: every nested tgd of `other` is implied by `premise`.
/// The source-egd setting is taken from `premise`.
pub fn implies_mapping(
    premise: &NestedMapping,
    other: &NestedMapping,
    syms: &mut SymbolTable,
    opts: &ImpliesOptions,
) -> Result<bool> {
    implies_mapping_observed(premise, other, syms, opts, &NoopObserver)
}

/// [`implies_mapping`] reporting its homomorphism searches to a
/// [`HomObserver`].
pub fn implies_mapping_observed<O: HomObserver>(
    premise: &NestedMapping,
    other: &NestedMapping,
    syms: &mut SymbolTable,
    opts: &ImpliesOptions,
    obs: &O,
) -> Result<bool> {
    for tgd in &other.tgds {
        if !implies_tgd_observed(premise, tgd, syms, opts, obs)?.holds {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Logical equivalence `Σ ≡ Σ'` (Corollary 3.11), relative to the union of
/// both mappings' source egds.
pub fn equivalent(
    a: &NestedMapping,
    b: &NestedMapping,
    syms: &mut SymbolTable,
    opts: &ImpliesOptions,
) -> Result<bool> {
    let mut egds = a.source_egds.clone();
    for e in &b.source_egds {
        if !egds.contains(e) {
            egds.push(e.clone());
        }
    }
    let a_ctx = NestedMapping::new(a.tgds.clone(), egds.clone())?;
    let b_ctx = NestedMapping::new(b.tgds.clone(), egds)?;
    Ok(
        implies_mapping(&a_ctx, &b_ctx, syms, opts)?
            && implies_mapping(&b_ctx, &a_ctx, syms, opts)?,
    )
}

/// Finds the nested tgds of `m` that are implied by the others — a
/// redundancy (minimization) pass built on IMPLIES.
pub fn redundant_tgds(
    m: &NestedMapping,
    syms: &mut SymbolTable,
    opts: &ImpliesOptions,
) -> Result<Vec<usize>> {
    let mut redundant = Vec::new();
    for i in 0..m.tgds.len() {
        let rest: Vec<NestedTgd> = m
            .tgds
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i && !redundant.contains(&j))
            .map(|(_, t)| t.clone())
            .collect();
        let rest_mapping = NestedMapping::new(rest, m.source_egds.clone())?;
        if implies_tgd(&rest_mapping, &m.tgds[i], syms, opts)?.holds {
            redundant.push(i);
        }
    }
    Ok(redundant)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ImpliesOptions {
        ImpliesOptions::default()
    }

    fn mapping(syms: &mut SymbolTable, tgds: &[&str]) -> NestedMapping {
        NestedMapping::parse(syms, tgds, &[]).unwrap()
    }

    /// Example 3.10 end-to-end: τ' ⊭ τ and τ'' ⊨ τ.
    #[test]
    fn example_310() {
        let mut syms = SymbolTable::new();
        let tau = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
        )
        .unwrap();
        let tau_p = mapping(&mut syms, &["S2(x2) -> exists z R(x2,z)"]);
        let tau_pp = mapping(&mut syms, &["S1(x1) & S2(x2) -> R(x2,x1)"]);

        let r1 = implies_tgd(&tau_p, &tau, &mut syms, &opts()).unwrap();
        assert!(!r1.holds);
        assert_eq!((r1.v, r1.w, r1.k), (1, 1, 2));
        let ce = r1.counterexample.unwrap();
        // The failing pattern is p'' or one of its clonings.
        assert!(ce.pattern.len() >= 2);

        let r2 = implies_tgd(&tau_pp, &tau, &mut syms, &opts()).unwrap();
        assert!(r2.holds);
        assert_eq!((r2.v, r2.w, r2.k), (1, 2, 3));
        assert_eq!(r2.patterns_checked, 4); // {p', p'', p''_2, p''_3}
    }

    #[test]
    fn implication_is_reflexive() {
        let mut syms = SymbolTable::new();
        let m = mapping(
            &mut syms,
            &["forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))"],
        );
        assert!(implies_mapping(&m, &m, &mut syms, &opts()).unwrap());
        assert!(equivalent(&m, &m, &mut syms, &opts()).unwrap());
    }

    #[test]
    fn weakening_holds_strengthening_fails() {
        let mut syms = SymbolTable::new();
        // Σ: S(x,y) -> R(x,y). σ: S(x,y) -> exists z R(x,z) — implied.
        let strong = mapping(&mut syms, &["S(x,y) -> R(x,y)"]);
        let weak = parse_nested_tgd(&mut syms, "S(x,y) -> exists z R(x,z)").unwrap();
        assert!(
            implies_tgd(&strong, &weak, &mut syms, &opts())
                .unwrap()
                .holds
        );
        // Converse fails.
        let weak_m = mapping(&mut syms, &["S(x,y) -> exists z R(x,z)"]);
        let strong_t = parse_nested_tgd(&mut syms, "S(x,y) -> R(x,y)").unwrap();
        assert!(
            !implies_tgd(&weak_m, &strong_t, &mut syms, &opts())
                .unwrap()
                .holds
        );
    }

    /// The intro separation: the nested tgd is implied by a suitable GLAV
    /// mapping in one direction but the GLAV mapping does not imply it.
    #[test]
    fn nested_vs_its_glav_weakening() {
        let mut syms = SymbolTable::new();
        let nested = parse_nested_tgd(
            &mut syms,
            "forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
        )
        .unwrap();
        // The "unnested" GLAV consequence: S(x1,x2) ∧ S(x1,x3) → ∃y (R(y,x2) ∧ R(y,x3)).
        let glav = mapping(
            &mut syms,
            &["S(x1,x2) & S(x1,x3) -> exists y (R(y,x2) & R(y,x3))"],
        );
        let nested_m = NestedMapping::new(vec![nested.clone()], vec![]).unwrap();
        // Nested implies the GLAV weakening...
        assert!(implies_mapping(&nested_m, &glav, &mut syms, &opts()).unwrap());
        // ...but not conversely (the nested tgd correlates unboundedly many
        // x3 under one y).
        assert!(
            !implies_tgd(&glav, &nested, &mut syms, &opts())
                .unwrap()
                .holds
        );
    }

    #[test]
    fn empty_premise_implies_only_trivial() {
        let mut syms = SymbolTable::new();
        let empty = NestedMapping::new(vec![], vec![]).unwrap();
        let t = parse_nested_tgd(&mut syms, "S(x) -> exists y R(x,y)").unwrap();
        let r = implies_tgd(&empty, &t, &mut syms, &opts()).unwrap();
        assert!(!r.holds);
        // A tgd with an empty head is vacuously implied.
        let trivial = parse_nested_tgd(&mut syms, "S(x) -> true").unwrap();
        assert!(
            implies_tgd(&empty, &trivial, &mut syms, &opts())
                .unwrap()
                .holds
        );
    }

    #[test]
    fn implication_with_source_egds() {
        // Σs: S(x,y) & S(x,y') -> y = y' (S is a function).
        // Under Σs, σ1: S(x,y) -> R(x,y) implies
        // σ2: S(x,y) & S(x,z) -> R(x,z) trivially; more interestingly,
        // the "two images" tgd S(x,y) & S(x,z) -> exists u (R(x,u)) is
        // implied without egds too; use a case that NEEDS the egd:
        // σ: S(x,y) & S(x,z) -> T(y,z) with premise S(x,y) -> T(y,y).
        let mut syms = SymbolTable::new();
        let premise_no_egd = mapping(&mut syms, &["S(x,y) -> T(y,y)"]);
        let sigma = parse_nested_tgd(&mut syms, "S(x,y) & S(x,z) -> T(y,z)").unwrap();
        assert!(
            !implies_tgd(&premise_no_egd, &sigma, &mut syms, &opts())
                .unwrap()
                .holds
        );
        let premise_egd = NestedMapping::parse(
            &mut syms,
            &["S(x,y) -> T(y,y)"],
            &["S(x,y) & S(x,yp) -> y = yp"],
        )
        .unwrap();
        assert!(
            implies_tgd(&premise_egd, &sigma, &mut syms, &opts())
                .unwrap()
                .holds
        );
    }

    #[test]
    fn redundancy_detection() {
        let mut syms = SymbolTable::new();
        let m = mapping(
            &mut syms,
            &[
                "S(x,y) -> R(x,y)",
                "S(x,y) -> exists z R(x,z)", // implied by the first
            ],
        );
        let red = redundant_tgds(&m, &mut syms, &opts()).unwrap();
        assert_eq!(red, vec![1]);
    }

    #[test]
    fn equivalence_of_syntactic_variants() {
        let mut syms = SymbolTable::new();
        // Splitting a conjunction into two tgds preserves equivalence.
        let joint = mapping(&mut syms, &["S(x,y) -> R(x,y) & T(y,x)"]);
        let split = mapping(&mut syms, &["S(x,y) -> R(x,y)", "S(x,y) -> T(y,x)"]);
        assert!(equivalent(&joint, &split, &mut syms, &opts()).unwrap());
        let other = mapping(&mut syms, &["S(x,y) -> R(x,y)"]);
        assert!(!equivalent(&joint, &other, &mut syms, &opts()).unwrap());
    }
}
